// Figure 7: runtime vs number of predicates (2-5). First predicate
// matches 1% of rows; each following predicate matches 50% of the
// remainder. 32M rows in the paper (scaled here).
//
// Paper expectation: the SISD runtime stays roughly flat-to-rising while
// the fused variants barely grow — the relative benefit increases with
// the predicate count (gathers touch only surviving rows).

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/string_util.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
using fts::ScanEngine;

constexpr ScanEngine kEngines[] = {
    ScanEngine::kSisdAutoVec,
    ScanEngine::kAvx2Fused128,
    ScanEngine::kAvx512Fused512,
};

}  // namespace

int main() {
  PrintTitle(
      "Figure 7 -- Median runtime (ms) vs number of predicates "
      "(pred1 = 1%, rest = 50%)");
  const size_t rows = ScaleRows(FullScale() ? 32'000'000 : MaxRows());
  const int reps = Reps();
  std::printf("rows = %zu, reps = %d\n\n", rows, reps);

  std::printf("%-12s", "#preds");
  for (const ScanEngine engine : kEngines) {
    std::printf("%24s", fts::ScanEngineToString(engine));
  }
  std::printf("\n");
  PrintRule('-', 12 + 24 * 3);

  for (size_t num_predicates = 2; num_predicates <= 5; ++num_predicates) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities.assign(num_predicates, 0.5);
    options.selectivities[0] = 0.01;
    options.seed = 0xF7;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);

    fts::ScanSpec spec;
    for (size_t p = 0; p < num_predicates; ++p) {
      spec.predicates.push_back({fts::StrFormat("c%zu", p),
                                 fts::CompareOp::kEq,
                                 fts::Value(generated.search_values[p])});
    }
    auto scanner = fts::TableScanner::Prepare(generated.table, spec);
    FTS_CHECK(scanner.ok());

    std::printf("%-12zu", num_predicates);
    std::vector<std::pair<ScanEngine, double>> measured;
    for (const ScanEngine engine : kEngines) {
      if (!fts::ScanEngineAvailable(engine)) {
        std::printf("%24s", "n/a");
        continue;
      }
      FTS_CHECK(*scanner->ExecuteCount(engine) ==
                generated.stage_matches.back());
      const double ms = MedianMillis(reps, [&] {
        fts::DoNotOptimizeAway(scanner->ExecuteCount(engine).ok());
      });
      std::printf("%24.3f", ms);
      measured.emplace_back(engine, ms);
    }
    std::printf("\n");
    for (const auto& [engine, ms] : measured) {
      BenchLine("fig7_predicate_count")
          .Field("predicates", static_cast<uint64_t>(num_predicates))
          .Field("engine", fts::ScanEngineToString(engine))
          .Field("rows", static_cast<uint64_t>(rows))
          .Field("median_ms", ms)
          .Emit();
    }
  }
  std::printf(
      "\nShape check vs the paper: the fused runtimes grow far slower "
      "with the predicate count than SISD.\n");
  return 0;
}
