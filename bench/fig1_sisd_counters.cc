// Figure 1: for a fixed table (paper: 100M rows; scaled here) and varying
// selectivity of the first predicate, the naive SISD scan's runtime
// correlates with useless hardware prefetches and branch mispredictions.
//
// Counter source: hardware PMU via perf_event_open when the host exposes
// one, otherwise the software models from fts/perf (see DESIGN.md
// substitution table). The source used is printed with the results.
//
// Paper expectation: mispredictions and useless prefetches rise with
// selectivity, peak in the 1%-50% region, and collapse at 100% (branches
// become perfectly predictable again); runtime follows the same arc.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/perf/branch_predictor.h"
#include "fts/perf/perf_counters.h"
#include "fts/perf/prefetcher.h"
#include "fts/scan/sisd_scan.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
}  // namespace

int main() {
  PrintTitle(
      "Figure 1 -- Naive SISD scan: runtime vs useless prefetches vs "
      "branch mispredictions");
  const size_t rows =
      ScaleRows(FullScale() ? 100'000'000 : std::min(MaxRows(),
                                                     size_t{8'000'000}));
  const int reps = Reps();
  const bool hw = fts::HardwareCountersAvailable();
  std::printf("rows = %zu, reps = %d, counter source: %s\n\n", rows, reps,
              hw ? "hardware PMU (perf_event)"
                 : "software models (gshare predictor + L2 stream "
                   "prefetcher sim)");

  const double kSelectivities[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                   1e-2, 0.1,  0.5,  1.0};

  std::printf("%-12s %14s %20s %22s\n", "match%", "runtime(ms)",
              "branch-misses", "useless prefetches");
  PrintRule('-', 72);

  for (const double selectivity : kSelectivities) {
    fts::ScanTableOptions options;
    options.rows = rows;
    // Both predicates use the same per-predicate selectivity, as in the
    // paper ("percent of qualifying rows per predicate").
    options.selectivities = {selectivity, selectivity};
    options.seed = 0xF16;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);

    fts::ScanSpec spec;
    spec.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};
    auto scanner = fts::TableScanner::Prepare(generated.table, spec);
    FTS_CHECK(scanner.ok());
    const auto& stages = scanner->chunk_plans()[0].stages;

    // Runtime of the naive loop.
    const double ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(fts::SisdScanNoVecCount(
          stages.data(), stages.size(), rows));
    });

    uint64_t branch_misses = 0;
    uint64_t useless_prefetches = 0;
    if (hw) {
      auto group = fts::PerfCounterGroup::Open({fts::HwEvent::kBranchMisses});
      FTS_CHECK(group.ok());
      FTS_CHECK(group->Start().ok());
      fts::DoNotOptimizeAway(
          fts::SisdScanNoVecCount(stages.data(), stages.size(), rows));
      FTS_CHECK(group->Stop().ok());
      branch_misses = (*group->Read())[0];
      // No portable useless-prefetch event; always use the model.
    }
    if (!hw) {
      fts::GsharePredictor predictor;
      branch_misses =
          fts::ReplaySisdScanBranches(stages.data(), stages.size(), rows,
                                      predictor)
              .mispredictions;
    }
    {
      fts::StreamPrefetcherSim prefetcher;
      useless_prefetches = fts::ReplaySisdScanAccesses(
                               stages.data(), stages.size(), rows,
                               prefetcher)
                               .useless_prefetches;
    }

    std::printf("%-12g %14.3f %20llu %22llu\n", selectivity * 100.0, ms,
                static_cast<unsigned long long>(branch_misses),
                static_cast<unsigned long long>(useless_prefetches));
  }
  std::printf(
      "\nShape check vs the paper: both counters and the runtime rise "
      "with selectivity and drop again at 100%%.\n");
  return 0;
}
