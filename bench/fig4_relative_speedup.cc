// Figure 4: relative performance of the Fused Table Scan (AVX-512, 512
// bit) over the data-centric SISD baseline, across table sizes and
// selectivities.
//
// Paper expectation: >= 2x in 32 of 40 cells, up to ~10x; the advantage
// holds across sizes. Cells whose selectivity would select < 1 row are
// omitted (as in the paper).

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/common/string_util.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
using fts::ScanEngine;
}  // namespace

int main() {
  PrintTitle(
      "Figure 4 -- Fused Table Scan speedup over SISD "
      "(table sizes x selectivities)");
  const int reps = Reps();

  const size_t kPaperSizes[] = {1'000,     10'000,     100'000,
                                1'000'000, 4'000'000,  16'000'000,
                                64'000'000, 132'000'000};
  const double kSelectivities[] = {0.5, 0.1, 0.01, 0.001, 1e-6};
  const ScanEngine fused = ScanEngine::kAvx512Fused512;
  const ScanEngine baseline = ScanEngine::kSisdAutoVec;

  if (!fts::ScanEngineAvailable(fused)) {
    std::printf("AVX-512 not available on this CPU; nothing to compare.\n");
    return 0;
  }
  std::printf("reps = %d, baseline = %s, fused = %s\n\n", reps,
              fts::ScanEngineToString(baseline),
              fts::ScanEngineToString(fused));

  std::printf("%-10s", "rows");
  for (const double sel : kSelectivities) std::printf("%12g%%", sel * 100.0);
  std::printf("\n");
  PrintRule('-', 10 + 13 * 5);

  int cells = 0, cells_2x = 0;
  double best = 0.0;
  for (const size_t requested : kPaperSizes) {
    const size_t rows = ScaleRows(requested);
    if (rows == 0) continue;  // Above the configured cap.
    std::printf("%-10s", fts::HumanRows(rows).c_str());
    for (const double selectivity : kSelectivities) {
      if (selectivity * static_cast<double>(rows) < 1.0) {
        std::printf("%13s", "-");  // Paper omits these bars.
        continue;
      }
      fts::ScanTableOptions options;
      options.rows = rows;
      options.selectivities = {selectivity, selectivity};
      options.seed = 0xF4;
      const fts::GeneratedScanTable generated = fts::MakeScanTable(options);
      fts::ScanSpec spec;
      spec.predicates = {{"c0", fts::CompareOp::kEq,
                          fts::Value(generated.search_values[0])},
                         {"c1", fts::CompareOp::kEq,
                          fts::Value(generated.search_values[1])}};
      auto scanner = fts::TableScanner::Prepare(generated.table, spec);
      FTS_CHECK(scanner.ok());
      FTS_CHECK(*scanner->ExecuteCount(fused) ==
                generated.stage_matches.back());

      const double sisd_ms = MedianMillis(reps, [&] {
        fts::DoNotOptimizeAway(scanner->ExecuteCount(baseline).ok());
      });
      const double fused_ms = MedianMillis(reps, [&] {
        fts::DoNotOptimizeAway(scanner->ExecuteCount(fused).ok());
      });
      const double speedup = sisd_ms / fused_ms;
      ++cells;
      cells_2x += (speedup >= 2.0);
      best = std::max(best, speedup);
      std::printf("%12.2fx", speedup);
    }
    std::printf("\n");
  }
  std::printf(
      "\n%d of %d measured cells show >= 2x (paper: 32 of 40); best "
      "speedup %.1fx (paper: ~10x).\n",
      cells_2x, cells, best);
  return 0;
}
