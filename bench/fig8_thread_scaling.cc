// Figure 8 (extension beyond the paper): thread-scaling sweep of the
// morsel-driven parallel scan. The paper measures single-core scans; this
// harness shows the fused kernels compose with intra-query parallelism —
// each worker runs the selected engine rung over chunk-sized morsels and
// the merged output is verified identical at every thread count.
//
// Emits one machine-readable line per configuration:
//   BENCH {"figure":"fig8_thread_scaling","engine":"...","threads":N,
//          "median_ms":...,"speedup":...}
//
// Scaling knobs: FTS_BENCH_MAX_ROWS / FTS_BENCH_REPS / FTS_BENCH_FULL
// (see bench_util.h) plus FTS_BENCH_MAX_THREADS (default: 2x hardware
// concurrency, so single-core hosts still demonstrate the no-regression
// property at 1 thread).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/exec/parallel_scan.h"
#include "fts/exec/task_pool.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
using fts::ScanEngine;

std::vector<int> ThreadSweep() {
  const int hardware = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const int max_threads = static_cast<int>(fts::GetEnvInt64(
      "FTS_BENCH_MAX_THREADS", static_cast<int64_t>(hardware) * 2));
  std::vector<int> sweep;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    sweep.push_back(threads);
  }
  return sweep;
}

}  // namespace

int main() {
  PrintTitle(
      "Figure 8 -- Morsel-driven thread scaling, median runtime (ms) "
      "of COUNT(*) with 2 predicates (1% / 50%)");
  const size_t rows = ScaleRows(FullScale() ? 64'000'000 : MaxRows());
  if (rows == 0) {
    std::printf("configuration skipped (FTS_BENCH_MAX_ROWS too small)\n");
    return 0;
  }
  const int reps = Reps();
  const int hardware = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));

  fts::ScanTableOptions options;
  options.rows = rows;
  options.selectivities = {0.01, 0.5};
  options.seed = 0xF8;
  // Chunk = morsel: enough chunks that every sweep point has work to
  // steal, large enough that per-morsel dispatch cost stays negligible.
  options.chunk_size = std::max<size_t>(rows / 256, size_t{1} << 16);
  const fts::GeneratedScanTable generated = fts::MakeScanTable(options);

  fts::ScanSpec spec;
  for (size_t i = 0; i < generated.search_values.size(); ++i) {
    spec.predicates.push_back({fts::StrFormat("c%zu", i),
                               fts::CompareOp::kEq,
                               fts::Value(generated.search_values[i])});
  }
  const auto scanner = fts::TableScanner::Prepare(generated.table, spec);
  if (!scanner.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 scanner.status().ToString().c_str());
    return 1;
  }

  const ScanEngine engine =
      fts::GetCpuFeatures().HasFusedScanAvx512()
          ? ScanEngine::kAvx512Fused512
          : ScanEngine::kScalarFused;
  const uint64_t expected = generated.stage_matches.back();

  std::printf("rows = %zu, chunks = %zu, reps = %d, engine = %s, "
              "hardware threads = %d\n\n",
              rows, generated.table->chunk_count(), reps,
              fts::ScanEngineToString(engine), hardware);
  std::printf("%-10s%16s%12s\n", "threads", "median_ms", "speedup");
  PrintRule('-', 38);

  // Serial reference: the plain single-threaded scan path, no morsel
  // scheduling at all. The threads=1 sweep point must not regress it.
  const double serial_ms = MedianMillis(reps, [&] {
    const auto count = scanner->ExecuteCount(engine);
    FTS_CHECK(count.ok() && *count == expected);
  });
  std::printf("%-10s%16.3f%12s\n", "serial", serial_ms, "1.00x");
  BenchLine("fig8_thread_scaling")
      .Field("engine", fts::ScanEngineToString(engine))
      .Field("threads", 0)
      .Field("label", "serial")
      .Field("median_ms", serial_ms)
      .Field("speedup", 1.0)
      .Emit();

  for (const int threads : ThreadSweep()) {
    // The pool is constructed outside the timed region — steady-state
    // scans reuse a live pool; thread spawn cost is not part of a scan.
    fts::TaskPool pool(threads);
    fts::ParallelScanOptions parallel_options;
    parallel_options.requested = {engine, 0};
    parallel_options.fallback = fts::FallbackPolicy::kStrict;
    parallel_options.pool = &pool;

    const double ms = MedianMillis(reps, [&] {
      const auto count =
          fts::ExecuteParallelScanCount(*scanner, parallel_options);
      FTS_CHECK(count.ok() && *count == expected);
    });
    const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
    std::printf("%-10d%16.3f%11.2fx\n", threads, ms, speedup);
    BenchLine("fig8_thread_scaling")
        .Field("engine", fts::ScanEngineToString(engine))
        .Field("threads", threads)
        .Field("median_ms", ms)
        .Field("speedup", speedup)
        .Emit();
  }

  std::printf(
      "\nEvery configuration verified against the same expected count "
      "(%llu rows).\n",
      static_cast<unsigned long long>(expected));
  return 0;
}
