// Figure 6: branch mispredictions of each implementation at 32M rows
// (scaled) across matching-row percentages.
//
// Counter source: the gshare predictor model replaying each
// implementation's exact branch trace (no PMU in this environment — see
// DESIGN.md). Series: SISD (the no-vec and auto-vec baselines execute the
// same branch trace, so one SISD series is shown) and the fused scan at 4,
// 8, and 16 lanes (128/256/512-bit) plus the AVX2 backport (4 lanes; its
// *control-flow* trace equals the 128-bit AVX-512 variant — the paper's
// Fig. 6 shows exactly this near-overlap of the fused curves).
//
// Paper expectation: the fused scan takes ~an order of magnitude fewer
// mispredictions, with the gap widest in the high-entropy middle of the
// selectivity range.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/perf/branch_predictor.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
}  // namespace

int main() {
  PrintTitle(
      "Figure 6 -- Branch mispredictions per implementation "
      "(gshare model)");
  const size_t rows =
      ScaleRows(FullScale() ? 32'000'000 : std::min(MaxRows(),
                                                    size_t{8'000'000}));
  std::printf("rows = %zu\n\n", rows);

  const double kSelectivities[] = {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0};

  std::printf("%-12s %16s %16s %16s %16s\n", "match%", "SISD",
              "Fused (128)", "Fused (256)", "Fused (512)");
  PrintRule('-', 80);

  for (const double selectivity : kSelectivities) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {selectivity, selectivity};
    options.seed = 0xF6;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);
    fts::ScanSpec spec;
    spec.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};
    auto scanner = fts::TableScanner::Prepare(generated.table, spec);
    FTS_CHECK(scanner.ok());
    const auto& stages = scanner->chunk_plans()[0].stages;

    fts::GsharePredictor sisd_predictor;
    const uint64_t sisd = fts::ReplaySisdScanBranches(
                              stages.data(), stages.size(), rows,
                              sisd_predictor)
                              .mispredictions;
    uint64_t fused[3] = {};
    const int lane_configs[3] = {4, 8, 16};
    for (int i = 0; i < 3; ++i) {
      fts::GsharePredictor predictor;
      fused[i] = fts::ReplayFusedScanBranches(stages.data(), stages.size(),
                                              rows, lane_configs[i],
                                              predictor)
                     .mispredictions;
    }

    std::printf("%-12g %16llu %16llu %16llu %16llu\n", selectivity * 100.0,
                static_cast<unsigned long long>(sisd),
                static_cast<unsigned long long>(fused[0]),
                static_cast<unsigned long long>(fused[1]),
                static_cast<unsigned long long>(fused[2]));
  }
  std::printf(
      "\nShape check vs the paper: fused mispredictions sit roughly an "
      "order of magnitude below SISD\nacross the mid-range "
      "selectivities, and wider registers branch less.\n");
  return 0;
}
