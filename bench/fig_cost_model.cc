// Cost-model figure (DESIGN.md §14, beyond the paper): what the
// calibrated cost model buys and what it costs.
//
// Three claims, one arm each:
//
//   skew_rerank        alternating chunk types with opposite value
//                      distributions under one conjunction -- the static
//                      chain order is wrong for half the chunks, the
//                      per-chunk re-rank (zone-map selectivities) fixes
//                      exactly those. Acceptance: >= 1.2x.
//   uniform_overhead   identical distribution in every chunk -- the model
//                      estimates, ranks, and changes nothing. Acceptance:
//                      <= ~2% added wall time (Prepare + Execute).
//   prediction         EstimateScanNanos vs measured median across
//                      encodings x engines, on the calibrated profile.
//                      Acceptance: within ~15% for the kernel paths.
//
// Both sides of every comparison run the identical engine and verify
// byte-identical match counts; the adaptive arms differ only in
// FTS_ADAPTIVE seen at Prepare.
//
// Emits one machine-readable line per configuration:
//   BENCH {"figure":"fig_cost_model","case":"skew_rerank",...}
//
// Scaling knobs: FTS_BENCH_MAX_ROWS / FTS_BENCH_REPS / FTS_BENCH_FULL
// (see bench_util.h). The first adaptive Prepare calibrates the profile
// (~1-3 s, once); set FTS_COST_PROFILE to cache it across runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {
using namespace fts::bench;
using fts::AlignedVector;
using fts::ScanEngine;
using fts::ScanSpec;
using fts::TablePtr;
using fts::TableScanner;
using fts::Value;

constexpr size_t kChunkSize = size_t{1} << 16;

// Prepares under the given FTS_ADAPTIVE setting. The switch is read once
// per Prepare, so toggling it here never affects scanners already built.
TableScanner PrepareWith(const TablePtr& table, const ScanSpec& spec,
                         bool adaptive_env) {
  setenv("FTS_ADAPTIVE", adaptive_env ? "1" : "0", 1);
  auto prepared = TableScanner::Prepare(table, spec);
  unsetenv("FTS_ADAPTIVE");
  FTS_CHECK(prepared.ok());
  return *std::move(prepared);
}

uint64_t MustCount(const TableScanner& scanner, ScanEngine engine) {
  const auto count = scanner.ExecuteCount(engine);
  FTS_CHECK(count.ok());
  return *count;
}

// Two-column int32 table built chunk by chunk from a generator
// f(chunk, row) -> {c0, c1}.
template <typename Fn>
TablePtr BuildTwoColumnTable(size_t rows, const Fn& cell) {
  fts::TableBuilder builder(
      {{"c0", fts::DataType::kInt32}, {"c1", fts::DataType::kInt32}},
      kChunkSize);
  size_t chunk = 0;
  for (size_t begin = 0; begin < rows; begin += kChunkSize, ++chunk) {
    const size_t n = std::min(kChunkSize, rows - begin);
    AlignedVector<int32_t> c0(n);
    AlignedVector<int32_t> c1(n);
    for (size_t r = 0; r < n; ++r) {
      const auto [a, b] = cell(chunk, r);
      c0[r] = a;
      c1[r] = b;
    }
    FTS_CHECK(builder
                  .AddChunk({std::make_shared<fts::ValueColumn<int32_t>>(
                                 std::move(c0)),
                             std::make_shared<fts::ValueColumn<int32_t>>(
                                 std::move(c1))})
                  .ok());
  }
  return builder.Build();
}

ScanSpec TwoColumnSpec() {
  ScanSpec spec;
  spec.predicates = {{"c0", fts::CompareOp::kLt, Value(int32_t{5})},
                     {"c1", fts::CompareOp::kLt, Value(int32_t{5})}};
  return spec;
}

// Median ms of Prepare + Execute for both FTS_ADAPTIVE settings -- the
// honest comparison, since estimation and re-ranking live in Prepare.
// The two arms interleave (static, adaptive, static, ...) after one
// untimed warmup each, so cache/frequency drift hits both equally
// instead of whichever arm happens to run first.
struct PairedMillis {
  double static_ms = 0.0;
  double adaptive_ms = 0.0;
};

PairedMillis PairedScanMillis(const TablePtr& table, const ScanSpec& spec,
                              ScanEngine engine, int reps) {
  const auto once = [&](bool adaptive_env) {
    const TableScanner scanner = PrepareWith(table, spec, adaptive_env);
    const auto matches = scanner.Execute(engine);
    FTS_CHECK(matches.ok());
    fts::DoNotOptimizeAway(matches->TotalMatches());
  };
  once(false);
  once(true);
  std::vector<double> static_samples;
  std::vector<double> adaptive_samples;
  static_samples.reserve(static_cast<size_t>(reps));
  adaptive_samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    for (const bool adaptive_env : {false, true}) {
      fts::Stopwatch stopwatch;
      once(adaptive_env);
      (adaptive_env ? adaptive_samples : static_samples)
          .push_back(stopwatch.ElapsedMillis());
    }
  }
  return {fts::Median(static_samples), fts::Median(adaptive_samples)};
}

// ---- prediction arm ----------------------------------------------------

struct EncodingCase {
  const char* name;
  TablePtr table;
  ScanSpec spec;
};

fts::ColumnPtr EncodeSlice64(const AlignedVector<int64_t>& slice,
                             fts::ColumnEncoding encoding) {
  switch (encoding) {
    case fts::ColumnEncoding::kRle:
      return std::make_shared<fts::RleColumn<int64_t>>(
          fts::RleColumn<int64_t>::FromValues(slice));
    case fts::ColumnEncoding::kFor: {
      auto column = fts::ForColumn<int64_t>::TryFromValues(slice);
      FTS_CHECK(column.has_value());
      return std::make_shared<fts::ForColumn<int64_t>>(std::move(*column));
    }
    case fts::ColumnEncoding::kDelta: {
      auto column = fts::DeltaColumn<int64_t>::TryFromValues(slice);
      FTS_CHECK(column.has_value());
      return std::make_shared<fts::DeltaColumn<int64_t>>(std::move(*column));
    }
    default:
      return std::make_shared<fts::ValueColumn<int64_t>>(
          AlignedVector<int64_t>(slice));
  }
}

TablePtr BuildEncoded64(const std::vector<int64_t>& values,
                        fts::ColumnEncoding encoding) {
  fts::TableBuilder builder({{"c0", fts::DataType::kInt64}}, kChunkSize);
  for (size_t begin = 0; begin < values.size(); begin += kChunkSize) {
    const size_t n = std::min(kChunkSize, values.size() - begin);
    AlignedVector<int64_t> slice(values.begin() + begin,
                                 values.begin() + begin + n);
    FTS_CHECK(builder.AddChunk({EncodeSlice64(slice, encoding)}).ok());
  }
  return builder.Build();
}

ScanSpec LtSpec64(int64_t literal) {
  ScanSpec spec;
  spec.predicates = {{"c0", fts::CompareOp::kLt, Value(literal)}};
  return spec;
}

std::vector<EncodingCase> BuildEncodingCases(size_t rows) {
  std::vector<EncodingCase> cases;
  fts::Xoshiro256 rng(0xC057);

  {  // plain32: uniform int32, ~50% below the literal.
    TablePtr table = BuildTwoColumnTable(rows, [&](size_t, size_t) {
      return std::pair<int32_t, int32_t>(
          static_cast<int32_t>(rng.NextBounded(1'000'000)), 0);
    });
    ScanSpec spec;
    spec.predicates = {{"c0", fts::CompareOp::kLt, Value(int32_t{500'000})}};
    cases.push_back({"plain32", std::move(table), std::move(spec)});
  }
  {  // plain64.
    std::vector<int64_t> values(rows);
    for (auto& v : values) {
      v = static_cast<int64_t>(rng.NextBounded(1u << 20));
    }
    cases.push_back({"plain64",
                     BuildEncoded64(values, fts::ColumnEncoding::kPlain),
                     LtSpec64(int64_t{1} << 19)});
  }
  {  // bitpacked: small-domain int32 codes, packed stream kernels.
    fts::TableBuilder builder({{"c0", fts::DataType::kInt32}}, kChunkSize);
    for (size_t begin = 0; begin < rows; begin += kChunkSize) {
      const size_t n = std::min(kChunkSize, rows - begin);
      AlignedVector<int32_t> slice(n);
      for (auto& v : slice) {
        v = static_cast<int32_t>(rng.NextBounded(512));
      }
      FTS_CHECK(builder
                    .AddChunk({std::make_shared<fts::BitPackedColumn<int32_t>>(
                        fts::BitPackedColumn<int32_t>::FromValues(slice))})
                    .ok());
    }
    ScanSpec spec;
    spec.predicates = {{"c0", fts::CompareOp::kLt, Value(int32_t{256})}};
    cases.push_back({"bitpacked", builder.Build(), std::move(spec)});
  }
  {  // for: rebased packed codes over a shifted uniform domain.
    std::vector<int64_t> values(rows);
    for (auto& v : values) {
      v = 1'000'000'000LL + static_cast<int64_t>(rng.NextBounded(1u << 20));
    }
    cases.push_back({"for", BuildEncoded64(values, fts::ColumnEncoding::kFor),
                     LtSpec64(1'000'000'000LL + (int64_t{1} << 19))});
  }
  {  // rle: 512-row runs with *random* values, so every chunk's zone
     // spans the domain and each run really gets classified (sequential
     // run values would let the zone maps decide whole chunks instead).
    std::vector<int64_t> values(rows);
    int64_t run_value = 0;
    for (size_t i = 0; i < rows; ++i) {
      if (i % 512 == 0) {
        run_value = static_cast<int64_t>(rng.NextBounded(1024));
      }
      values[i] = run_value;
    }
    cases.push_back({"rle", BuildEncoded64(values, fts::ColumnEncoding::kRle),
                     LtSpec64(512)});
  }
  {  // delta: monotone timestamps, block min/max decide most blocks.
    std::vector<int64_t> values(rows);
    int64_t now = 1'700'000'000'000LL;
    for (auto& v : values) {
      now += static_cast<int64_t>(rng.NextBounded(1000));
      v = now;
    }
    const int64_t median = values[rows / 2];
    cases.push_back({"delta",
                     BuildEncoded64(values, fts::ColumnEncoding::kDelta),
                     LtSpec64(median)});
  }
  return cases;
}

}  // namespace

int main() {
  PrintTitle(
      "Calibrated cost model -- per-chunk re-ranking, overhead, and "
      "prediction accuracy");
  const size_t rows = ScaleRows(std::min(MaxRows(), size_t{8'000'000}));
  if (rows == 0) {
    std::printf("configuration skipped (FTS_BENCH_MAX_ROWS too small)\n");
    return 0;
  }
  const int reps = Reps();
  const ScanEngine engine =
      fts::GetCpuFeatures().HasFusedScanAvx512()
          ? ScanEngine::kAvx512Fused512
          : ScanEngine::kScalarFused;
  std::printf("rows = %zu, chunks = %zu, reps = %d, engine = %s\n\n", rows,
              (rows + kChunkSize - 1) / kChunkSize, reps,
              fts::ScanEngineToString(engine));

  // ---- skew_rerank: the static order is wrong for odd chunks ----------
  // Even chunks: c0 wide [0,1000], c1 narrow [0,10] -- spec order
  // (c0 first) is already cheapest-effective-first. Odd chunks swap the
  // distributions, so the static chain runs its ~45%-selective stage
  // first and the re-rank flips it to ~0.5%.
  {
    const TablePtr table =
        BuildTwoColumnTable(rows, [](size_t chunk, size_t r) {
          const auto wide = static_cast<int32_t>(r % 1001);
          const auto narrow = static_cast<int32_t>(r % 11);
          return chunk % 2 == 0 ? std::pair<int32_t, int32_t>(wide, narrow)
                                : std::pair<int32_t, int32_t>(narrow, wide);
        });
    const ScanSpec spec = TwoColumnSpec();
    const TableScanner static_scan = PrepareWith(table, spec, false);
    const TableScanner ranked_scan = PrepareWith(table, spec, true);
    FTS_CHECK(MustCount(static_scan, engine) ==
              MustCount(ranked_scan, engine));

    const auto [static_ms, adaptive_ms] =
        PairedScanMillis(table, spec, engine, reps);
    const double speedup = static_ms / adaptive_ms;
    std::printf("skew_rerank:      static %8.3f ms   adaptive %8.3f ms   "
                "speedup %.2fx   (chunks reordered %zu/%zu)\n",
                static_ms, adaptive_ms, speedup,
                ranked_scan.chunks_reordered(),
                ranked_scan.chunk_plans().size());
    BenchLine("fig_cost_model")
        .Field("case", "skew_rerank")
        .Field("engine", fts::ScanEngineToString(engine))
        .Field("rows", static_cast<uint64_t>(rows))
        .Field("static_ms", static_ms)
        .Field("adaptive_ms", adaptive_ms)
        .Field("speedup", speedup)
        .Field("chunks_reordered",
               static_cast<uint64_t>(ranked_scan.chunks_reordered()))
        .Emit();
  }

  // ---- uniform_overhead: nothing to fix, the model must cost ~nothing --
  {
    fts::Xoshiro256 rng(0x07EA);
    const TablePtr table = BuildTwoColumnTable(rows, [&](size_t, size_t) {
      return std::pair<int32_t, int32_t>(
          static_cast<int32_t>(rng.NextBounded(1001)),
          static_cast<int32_t>(rng.NextBounded(1001)));
    });
    const ScanSpec spec = TwoColumnSpec();
    const auto [static_ms, adaptive_ms] =
        PairedScanMillis(table, spec, engine, reps);
    const double overhead_pct = (adaptive_ms / static_ms - 1.0) * 100.0;
    std::printf("uniform_overhead: static %8.3f ms   adaptive %8.3f ms   "
                "overhead %+.2f%%\n\n",
                static_ms, adaptive_ms, overhead_pct);
    BenchLine("fig_cost_model")
        .Field("case", "uniform_overhead")
        .Field("engine", fts::ScanEngineToString(engine))
        .Field("rows", static_cast<uint64_t>(rows))
        .Field("static_ms", static_ms)
        .Field("adaptive_ms", adaptive_ms)
        .Field("overhead_pct", overhead_pct)
        .Emit();
  }

  // ---- prediction: EstimateScanNanos vs measured, per encoding --------
  // The estimating scanner is prepared with spec.adaptive so it carries
  // the *calibrated* profile; the measured scanner is pinned so the
  // executed engine is exactly the predicted one.
  const size_t acc_rows = std::min(rows, size_t{4'000'000});
  std::vector<ScanEngine> engines = {ScanEngine::kSisdNoVec,
                                     ScanEngine::kScalarFused};
  if (fts::GetCpuFeatures().HasFusedScanAvx512()) {
    engines.push_back(ScanEngine::kAvx512Fused512);
  }
  std::printf("%-11s%-14s%14s%13s%11s\n", "encoding", "engine",
              "predicted_ms", "measured_ms", "error_pct");
  PrintRule('-', 63);
  for (const EncodingCase& c : BuildEncodingCases(acc_rows)) {
    ScanSpec estimating = c.spec;
    estimating.adaptive = true;
    const TableScanner estimator = PrepareWith(c.table, estimating, true);
    const TableScanner measured_scan = PrepareWith(c.table, c.spec, true);
    for (const ScanEngine e : engines) {
      const double predicted_ms =
          estimator.EstimateScanNanos(e, fts::cost::ScanMode::kMaterialize) /
          1e6;
      const double measured_ms = MedianMillis(reps, [&] {
        const auto matches = measured_scan.Execute(e);
        FTS_CHECK(matches.ok());
        fts::DoNotOptimizeAway(matches->TotalMatches());
      });
      const double error_pct =
          (predicted_ms / measured_ms - 1.0) * 100.0;
      std::printf("%-11s%-14s%14.3f%13.3f%+10.1f%%\n", c.name,
                  fts::ScanEngineToString(e), predicted_ms, measured_ms,
                  error_pct);
      BenchLine("fig_cost_model")
          .Field("case", "prediction")
          .Field("encoding", c.name)
          .Field("engine", fts::ScanEngineToString(e))
          .Field("rows", static_cast<uint64_t>(acc_rows))
          .Field("predicted_ms", predicted_ms)
          .Field("measured_ms", measured_ms)
          .Field("error_pct", error_pct)
          .Emit();
    }
  }
  return 0;
}
