// google-benchmark micro suite: raw kernel throughput per implementation,
// register width, selectivity, and chain depth — the building blocks
// behind Figures 4, 5, and 7, measured at kernel granularity (no table /
// planner overhead).

#include <benchmark/benchmark.h>

#include "fts/common/random.h"
#include "fts/scan/sisd_scan.h"
#include "fts/simd/dispatch.h"
#include "fts/storage/data_generator.h"

namespace fts {
namespace {

// Shared test data: columns regenerated per (rows, selectivity) pair and
// cached across benchmark registrations.
struct Workload {
  std::vector<AlignedVector<int32_t>> columns;
  std::vector<ScanStage> stages;
  size_t rows = 0;
};

const Workload& GetWorkload(size_t rows, double selectivity,
                            size_t num_stages) {
  static std::map<std::tuple<size_t, int, size_t>, Workload>& cache =
      *new std::map<std::tuple<size_t, int, size_t>, Workload>();
  const auto key = std::make_tuple(
      rows, static_cast<int>(selectivity * 1e6), num_stages);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  Workload workload;
  workload.rows = rows;
  Xoshiro256 rng(0xBEEF ^ rows ^ num_stages);
  for (size_t s = 0; s < num_stages; ++s) {
    const double stage_selectivity = (s == 0) ? selectivity : 0.5;
    const size_t matches = MatchCountForSelectivity(rows, stage_selectivity);
    const auto mask = ExactSelectivityMask(rows, matches, rng);
    workload.columns.push_back(
        FillFromMask<int32_t>(mask, 5, 1000, 1 << 30, rng));
    ScanStage stage;
    stage.data = workload.columns.back().data();
    stage.type = ScanElementType::kI32;
    stage.op = CompareOp::kEq;
    stage.value.i32 = 5;
    workload.stages.push_back(stage);
  }
  return cache.emplace(key, std::move(workload)).first->second;
}

constexpr size_t kRows = 4 << 20;  // 4Mi rows, ~16 MiB per column.

void BM_FusedKernel(benchmark::State& state) {
  const auto kind = static_cast<FusedKernelKind>(state.range(0));
  const double selectivity = static_cast<double>(state.range(1)) / 1000.0;
  const auto kernel = GetFusedScanKernel(kind);
  if (!kernel.ok()) {
    state.SkipWithError(kernel.status().ToString().c_str());
    return;
  }
  const Workload& workload = GetWorkload(kRows, selectivity, 2);
  std::vector<uint32_t> out(kRows + kScanOutputSlack);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*kernel)(workload.stages.data(),
                                       workload.stages.size(), kRows,
                                       out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  state.SetLabel(FusedKernelKindToString(kind));
}
BENCHMARK(BM_FusedKernel)
    ->ArgsProduct({{static_cast<long>(FusedKernelKind::kScalar),
                    static_cast<long>(FusedKernelKind::kAvx2_128),
                    static_cast<long>(FusedKernelKind::kAvx512_128),
                    static_cast<long>(FusedKernelKind::kAvx512_256),
                    static_cast<long>(FusedKernelKind::kAvx512_512)},
                   {1, 100, 500}})  // 0.1%, 10%, 50% first-stage match.
    ->Unit(benchmark::kMillisecond);

void BM_SisdBaseline(benchmark::State& state) {
  const bool autovec = state.range(0) != 0;
  const double selectivity = static_cast<double>(state.range(1)) / 1000.0;
  const Workload& workload = GetWorkload(kRows, selectivity, 2);
  for (auto _ : state) {
    const size_t count =
        autovec ? SisdScanAutoVecCount(workload.stages.data(),
                                       workload.stages.size(), kRows)
                : SisdScanNoVecCount(workload.stages.data(),
                                     workload.stages.size(), kRows);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  state.SetLabel(autovec ? "SISD (auto vec)" : "SISD (no vec)");
}
BENCHMARK(BM_SisdBaseline)
    ->ArgsProduct({{0, 1}, {1, 100, 500}})
    ->Unit(benchmark::kMillisecond);

void BM_ChainDepth(benchmark::State& state) {
  const auto kind = static_cast<FusedKernelKind>(state.range(0));
  const auto depth = static_cast<size_t>(state.range(1));
  const auto kernel = GetFusedScanKernel(kind);
  if (!kernel.ok()) {
    state.SkipWithError(kernel.status().ToString().c_str());
    return;
  }
  const Workload& workload = GetWorkload(kRows, 0.01, depth);
  std::vector<uint32_t> out(kRows + kScanOutputSlack);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*kernel)(workload.stages.data(), depth, kRows,
                                       out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  state.SetLabel(FusedKernelKindToString(kind));
}
BENCHMARK(BM_ChainDepth)
    ->ArgsProduct({{static_cast<long>(FusedKernelKind::kAvx2_128),
                    static_cast<long>(FusedKernelKind::kAvx512_512)},
                   {1, 2, 3, 4, 5}})
    ->Unit(benchmark::kMillisecond);

// Single-predicate scan: the compress-store fast path.
void BM_SinglePredicate(benchmark::State& state) {
  const auto kind = static_cast<FusedKernelKind>(state.range(0));
  const auto kernel = GetFusedScanKernel(kind);
  if (!kernel.ok()) {
    state.SkipWithError(kernel.status().ToString().c_str());
    return;
  }
  const Workload& workload = GetWorkload(kRows, 0.1, 1);
  std::vector<uint32_t> out(kRows + kScanOutputSlack);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*kernel)(workload.stages.data(), 1, kRows, out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRows));
  state.SetLabel(FusedKernelKindToString(kind));
}
BENCHMARK(BM_SinglePredicate)
    ->Arg(static_cast<long>(FusedKernelKind::kAvx512_512))
    ->Arg(static_cast<long>(FusedKernelKind::kAvx2_128))
    ->Arg(static_cast<long>(FusedKernelKind::kScalar))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fts

BENCHMARK_MAIN();
