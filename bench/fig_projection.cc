// Late materialization: SIMD batch-gather projection vs tuple-at-a-time
// value boxing, across predicate selectivities and projection widths.
//
// Both arms run the same fused scan; only the Project stage differs. The
// reference arm (FTS_GATHER=0) boxes every surviving cell through
// Table::GetValue into row vectors — the seed repo's materializer. The
// gather arm turns each chunk's survivor position list into dense typed
// column buffers with the SIMD batch-gather kernels and defers boxing to
// the result accessors.
//
// Expectation: the gather arm wins big on wide projections (4+ columns)
// once enough rows survive to amortize the per-chunk setup — the
// acceptance bar is >= 2x at >= 10 % selectivity — while narrow
// single-column projections and COUNT(*) queries (which never touch the
// projector) stay within noise (<= 5 %).
//
// Every measured configuration is self-verified: both arms must agree on
// the row count and render identical rows.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "fts/common/string_util.h"
#include "fts/db/database.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;

constexpr double kSelectivities[] = {0.01, 0.10, 0.50};

// Rows rendered for the cross-arm identity check; the row count is
// compared in full, the rendered prefix guards cell values and order.
constexpr size_t kVerifyRows = 200;

struct ArmResult {
  double median_ms = 0.0;
  size_t rows_out = 0;
  std::string rendered;
};

ArmResult RunArm(fts::Database& db, const std::string& sql,
                 const fts::Database::QueryOptions& options, bool gather,
                 int reps) {
  // The FTS_GATHER kill switch selects the Project implementation; both
  // arms share every other stage of the pipeline.
  if (gather) {
    ::unsetenv("FTS_GATHER");
  } else {
    ::setenv("FTS_GATHER", "0", 1);
  }
  const auto result = db.Query(sql, options);
  FTS_CHECK(result.ok());
  ArmResult arm;
  arm.rows_out = result->RowCountOut();
  arm.rendered = result->ToString(kVerifyRows);
  arm.median_ms = MedianMillis(
      reps, [&] { fts::DoNotOptimizeAway(db.Query(sql, options).ok()); });
  ::unsetenv("FTS_GATHER");
  return arm;
}

void RunCase(fts::Database& db, const char* label, const std::string& sql,
             double selectivity, size_t rows, int columns, int threads,
             int reps) {
  fts::Database::QueryOptions options;
  options.threads = threads;
  const ArmResult reference = RunArm(db, sql, options, /*gather=*/false,
                                     reps);
  const ArmResult gather = RunArm(db, sql, options, /*gather=*/true, reps);
  FTS_CHECK(reference.rows_out == gather.rows_out);
  FTS_CHECK(reference.rendered == gather.rendered);

  const double speedup =
      gather.median_ms > 0.0 ? reference.median_ms / gather.median_ms : 0.0;
  std::printf("%-12s%-8d%-14.2f%18.3f%18.3f%9.2fx\n", label, threads,
              selectivity, reference.median_ms, gather.median_ms, speedup);
  BenchLine("fig_projection")
      .Field("case", label)
      .Field("threads", threads)
      .Field("selectivity", selectivity)
      .Field("rows", static_cast<uint64_t>(rows))
      .Field("columns", columns)
      .Field("rows_out", static_cast<uint64_t>(gather.rows_out))
      .Field("reference_ms", reference.median_ms)
      .Field("gather_ms", gather.median_ms)
      .Field("speedup", speedup)
      .Emit();
}

}  // namespace

int main() {
  PrintTitle(
      "Late materialization -- SIMD batch-gather projection vs "
      "tuple-at-a-time boxing (FTS_GATHER=0 reference arm)");
  const size_t rows = ScaleRows(FullScale() ? 32'000'000 : MaxRows());
  const int reps = Reps();
  std::printf("rows = %zu, reps = %d, wide query = SELECT c0..c4 FROM t "
              "WHERE c0 = <v>\n\n",
              rows, reps);

  std::printf("%-12s%-8s%-14s%18s%18s%10s\n", "case", "threads",
              "selectivity", "reference (ms)", "gather (ms)", "speedup");
  PrintRule('-', 12 + 8 + 14 + 18 + 18 + 10);

  fts::Database db;
  for (const double selectivity : kSelectivities) {
    fts::ScanTableOptions options;
    options.rows = rows;
    // One predicate column and four payload columns every row matches, so
    // the projection width is 5 and the survivor count tracks the
    // predicate's selectivity alone.
    options.selectivities = {selectivity, 1.0, 1.0, 1.0, 1.0};
    options.seed = 0x9A7;
    // Multi-chunk so the morsel-parallel case schedules real work.
    options.chunk_size = rows / 8;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);
    FTS_CHECK(db.RegisterTable("t", generated.table).ok());

    fts::ScanTableOptions dict_options = options;
    dict_options.dictionary_encode = true;
    const fts::GeneratedScanTable dict_generated =
        fts::MakeScanTable(dict_options);
    FTS_CHECK(db.RegisterTable("t_dict", dict_generated.table).ok());

    const std::string where = fts::StrFormat(
        "WHERE c0 = %d", generated.search_values[0]);
    const std::string wide =
        "SELECT c0, c1, c2, c3, c4 FROM t " + where;

    // The headline: wide projection, serial and morsel-parallel.
    RunCase(db, "wide", wide, selectivity, rows, 5, /*threads=*/1, reps);
    RunCase(db, "wide-mt4", wide, selectivity, rows, 5, /*threads=*/4,
            reps);
    // Dictionary-encoded payloads: the gather translates codes to values
    // through the 8-byte-window kernels instead of copying plain cells.
    RunCase(db, "wide-dict", "SELECT c0, c1, c2, c3, c4 FROM t_dict " +
            fts::StrFormat("WHERE c0 = %d", dict_generated.search_values[0]),
            selectivity, rows, 5, /*threads=*/1, reps);
    // Regression guards: narrow projection and COUNT(*) must not pay for
    // the gather machinery (acceptance: within 5 %).
    RunCase(db, "narrow", "SELECT c0 FROM t " + where, selectivity, rows, 1,
            /*threads=*/1, reps);
    RunCase(db, "count", "SELECT COUNT(*) FROM t " + where, selectivity,
            rows, 0, /*threads=*/1, reps);

    FTS_CHECK(db.DropTable("t").ok());
    FTS_CHECK(db.DropTable("t_dict").ok());
  }
  std::printf(
      "\nShape check: wide >= 2x at selectivity >= 10%% — batch gathers "
      "replace per-cell Value boxing; narrow and count stay within 5%% "
      "(the gather pipeline adds no fixed cost they would pay).\n");
  return 0;
}
