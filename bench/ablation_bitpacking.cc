// Future-Work ablation: bit-packed (null-suppressed) scans.
//
// The paper's closing section predicts that bit-packing "can be most
// beneficial" for the Fused Table Scan and names the gather-side
// extraction of single packed values as the main challenge. This harness
// measures that trade-off: per-code bit width on the x-axis, fused scan
// runtime for plain int32 values, uint32 dictionary codes, and b-bit
// packed codes, plus the bytes each representation transfers.
//
// Expected shape: packing shifts work from the memory bus to the CPU
// (Abadi et al.); with cache-resident tables the unpack ALU cost
// dominates, with memory-resident tables the 4x-32x byte reduction pays.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/common/random.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {
using namespace fts::bench;
using fts::AlignedVector;
using fts::ScanEngine;

struct Variant {
  fts::TablePtr table;
  double megabytes = 0.0;
};

// Builds the same logical two-column data under one encoding.
Variant BuildVariant(const AlignedVector<int32_t>& a,
                     const AlignedVector<int32_t>& b,
                     fts::ColumnEncoding encoding) {
  fts::TableBuilder builder(
      {{"a", fts::DataType::kInt32}, {"b", fts::DataType::kInt32}});
  std::vector<fts::ColumnPtr> columns;
  double bytes = 0.0;
  for (const auto* values : {&a, &b}) {
    switch (encoding) {
      case fts::ColumnEncoding::kPlain: {
        AlignedVector<int32_t> copy = *values;
        bytes += static_cast<double>(copy.size() * 4);
        columns.push_back(
            std::make_shared<fts::ValueColumn<int32_t>>(std::move(copy)));
        break;
      }
      case fts::ColumnEncoding::kDictionary: {
        auto column = fts::DictionaryColumn<int32_t>::FromValues(*values);
        bytes += static_cast<double>(column.codes().size() * 4);
        columns.push_back(std::make_shared<fts::DictionaryColumn<int32_t>>(
            std::move(column)));
        break;
      }
      case fts::ColumnEncoding::kBitPacked: {
        auto column = fts::BitPackedColumn<int32_t>::FromValues(*values);
        bytes += static_cast<double>(column.packed_bytes());
        columns.push_back(std::make_shared<fts::BitPackedColumn<int32_t>>(
            std::move(column)));
        break;
      }
      default:
        FTS_CHECK_MSG(false, "ablation covers plain/dict/bit-packed only");
    }
  }
  FTS_CHECK(builder.AddChunk(std::move(columns)).ok());
  return {builder.Build(), bytes / 1024.0 / 1024.0};
}

}  // namespace

int main() {
  PrintTitle(
      "Future-Work ablation -- bit-packed scans (fused AVX-512, 2 "
      "predicates)");
  const ScanEngine engine =
      fts::ScanEngineAvailable(ScanEngine::kAvx512Fused512)
          ? ScanEngine::kAvx512Fused512
          : ScanEngine::kScalarFused;
  const size_t rows = ScaleRows(std::min(MaxRows(), size_t{8'000'000}));
  const int reps = Reps();
  std::printf("rows = %zu, reps = %d, engine = %s\n\n", rows, reps,
              fts::ScanEngineToString(engine));

  std::printf("%-10s %-8s %12s %12s %12s %14s\n", "dict size", "bits",
              "plain(ms)", "dict(ms)", "packed(ms)", "packed size");
  PrintRule('-', 74);

  for (const size_t dict_size :
       {4ul, 16ul, 256ul, 4096ul, 65536ul, 1048576ul}) {
    fts::Xoshiro256 rng(dict_size);
    // Values drawn from `dict_size` distinct ints; predicate selects ~25%.
    AlignedVector<int32_t> a(rows), b(rows);
    for (size_t i = 0; i < rows; ++i) {
      a[i] = static_cast<int32_t>(rng.NextBounded(dict_size)) * 3;
      b[i] = static_cast<int32_t>(rng.NextBounded(dict_size)) * 3;
    }
    const auto threshold =
        static_cast<int32_t>(dict_size * 3 / 4);  // ~25% match per column.
    fts::ScanSpec spec;
    spec.predicates = {{"a", fts::CompareOp::kGe, fts::Value(threshold * 3)},
                       {"b", fts::CompareOp::kGe, fts::Value(threshold * 3)}};

    const Variant plain = BuildVariant(a, b, fts::ColumnEncoding::kPlain);
    const Variant dict = BuildVariant(a, b, fts::ColumnEncoding::kDictionary);
    const Variant packed = BuildVariant(a, b, fts::ColumnEncoding::kBitPacked);

    // All three must agree before timing.
    const auto expected = fts::ExecuteScanCount(plain.table, spec, engine);
    FTS_CHECK(expected.ok());
    FTS_CHECK(*fts::ExecuteScanCount(dict.table, spec, engine) == *expected);
    FTS_CHECK(*fts::ExecuteScanCount(packed.table, spec, engine) ==
              *expected);

    auto time_variant = [&](const Variant& variant) {
      auto scanner = fts::TableScanner::Prepare(variant.table, spec);
      FTS_CHECK(scanner.ok());
      return MedianMillis(reps, [&] {
        fts::DoNotOptimizeAway(scanner->ExecuteCount(engine).ok());
      });
    };

    const int bits = fts::BitPackedColumn<int32_t>::BitWidthFor(dict_size);
    std::printf("%-10zu %-8d %12.3f %12.3f %12.3f %11.1f MiB\n", dict_size,
                bits, time_variant(plain), time_variant(dict),
                time_variant(packed), packed.megabytes);
  }
  std::printf(
      "\npacked transfers %dx fewer bytes at small dictionaries; whether "
      "that wins depends on\nwhere the table lives (memory-resident: bus "
      "savings; cache-resident: unpack cost).\n",
      32);
  return 0;
}
