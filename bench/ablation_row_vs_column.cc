// Intro motivation: the row-versus-column-store comparison. The same
// logical data is scanned as (a) a row store (tuple-at-a-time over packed
// rows), (b) a column store with the SISD baseline, and (c) a column store
// with the Fused Table Scan. Wider rows make the row store touch ever more
// useless bytes per scanned predicate; the columnar scans touch only the
// predicate columns, and the fused scan only gathers surviving rows.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/common/random.h"
#include "fts/common/string_util.h"
#include "fts/scan/row_store.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {
using namespace fts::bench;
using fts::AlignedVector;
using fts::ScanEngine;
}  // namespace

int main() {
  PrintTitle("Intro ablation -- row store vs column store scans");
  const size_t rows = ScaleRows(std::min(MaxRows(), size_t{2'000'000}));
  const int reps = std::max(3, Reps() / 3);  // Row-store appends are slow.
  const ScanEngine fused =
      fts::ScanEngineAvailable(ScanEngine::kAvx512Fused512)
          ? ScanEngine::kAvx512Fused512
          : ScanEngine::kScalarFused;
  std::printf("rows = %zu, reps = %d\n\n", rows, reps);
  std::printf("%-14s %14s %16s %16s\n", "payload cols", "row store(ms)",
              "column SISD(ms)", "column fused(ms)");
  PrintRule('-', 64);

  // 2 predicate columns + a growing payload (the columns a real table
  // carries but this query never reads).
  for (const size_t payload_columns : {0ul, 2ul, 6ul, 14ul}) {
    fts::Xoshiro256 rng(payload_columns + 1);
    const size_t total_columns = 2 + payload_columns;

    std::vector<fts::ColumnDefinition> schema;
    for (size_t c = 0; c < total_columns; ++c) {
      schema.push_back(
          {fts::StrFormat("c%zu", c), fts::DataType::kInt32});
    }

    // Predicate columns: ~1% and 50% match.
    std::vector<AlignedVector<int32_t>> data;
    for (size_t c = 0; c < total_columns; ++c) {
      if (c == 0) {
        const auto mask = fts::ExactSelectivityMask(
            rows, fts::MatchCountForSelectivity(rows, 0.01), rng);
        data.push_back(
            fts::FillFromMask<int32_t>(mask, 5, 1000, 1 << 30, rng));
      } else if (c == 1) {
        const auto mask = fts::ExactSelectivityMask(
            rows, fts::MatchCountForSelectivity(rows, 0.5), rng);
        data.push_back(
            fts::FillFromMask<int32_t>(mask, 2, 1000, 1 << 30, rng));
      } else {
        data.push_back(
            fts::GenerateUniformColumn<int32_t>(rows, 0, 1 << 30, rng));
      }
    }

    // Column store.
    fts::TableBuilder builder(schema);
    std::vector<fts::ColumnPtr> columns;
    std::vector<const fts::BaseColumn*> raw_columns;
    for (auto& values : data) {
      AlignedVector<int32_t> copy = values;
      columns.push_back(
          std::make_shared<fts::ValueColumn<int32_t>>(std::move(copy)));
      raw_columns.push_back(columns.back().get());
    }
    FTS_CHECK(builder.AddChunk(columns).ok());
    const fts::TablePtr table = builder.Build();

    // Row store with identical content.
    fts::RowStore row_store(schema);
    FTS_CHECK(row_store.AppendColumnsAsRows(raw_columns).ok());

    fts::ScanSpec spec;
    spec.predicates = {{"c0", fts::CompareOp::kEq, fts::Value(5)},
                       {"c1", fts::CompareOp::kEq, fts::Value(2)}};

    const auto row_count = row_store.ScanCount(spec);
    const auto column_count =
        fts::ExecuteScanCount(table, spec, ScanEngine::kSisdNoVec);
    FTS_CHECK(row_count.ok() && column_count.ok());
    FTS_CHECK(*row_count == *column_count);

    const double row_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(row_store.ScanCount(spec).ok());
    });
    auto scanner = fts::TableScanner::Prepare(table, spec);
    FTS_CHECK(scanner.ok());
    const double sisd_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(
          scanner->ExecuteCount(ScanEngine::kSisdNoVec).ok());
    });
    const double fused_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(scanner->ExecuteCount(fused).ok());
    });
    std::printf("%-14zu %14.3f %16.3f %16.3f\n", payload_columns, row_ms,
                sisd_ms, fused_ms);
  }
  std::printf(
      "\nThe columnar scans are insensitive to payload width; the row "
      "store pays for every byte\nof every row — the paper's motivation "
      "for fast columnar scans.\n");
  return 0;
}
