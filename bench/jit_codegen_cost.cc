// Section V economics: what does runtime code generation cost, and when
// does it pay off? Measures per-signature compile time, cache-hit cost,
// and compares the JIT-generated operator's runtime against the static
// AVX-512 kernel (identical algorithm, compile-time-specialized stages vs
// in-loop dispatched stages).

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/jit/jit_cache.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
}  // namespace

int main() {
  PrintTitle("Section V -- JIT code generation: cost and benefit");
  if (!fts::ScanEngineAvailable(fts::ScanEngine::kJit)) {
    std::printf("JIT engine unavailable (needs AVX-512).\n");
    return 0;
  }
  const size_t rows = ScaleRows(std::min(MaxRows(), size_t{8'000'000}));
  const int reps = Reps();

  // --- Compile cost per chain length and register width.
  std::printf("\nCompile cost (generate + g++ + dlopen), one signature "
              "each:\n");
  std::printf("%-10s %12s %12s %14s\n", "#preds", "width", "source(B)",
              "compile(ms)");
  PrintRule('-', 52);
  for (const int width : {128, 256, 512}) {
    for (size_t n = 1; n <= 5; ++n) {
      fts::JitScanSignature signature;
      signature.register_bits = width;
      for (size_t s = 0; s < n; ++s) {
        signature.stages.push_back(
            {fts::ScanElementType::kI32, fts::CompareOp::kEq});
      }
      // Ops vary per stage so each signature is distinct in the cache.
      signature.stages[0].op = fts::CompareOp::kGe;
      const auto source = fts::GenerateFusedScanSource(signature);
      FTS_CHECK(source.ok());
      fts::JitCache cache;
      const auto entry = cache.GetOrCompile(signature);
      FTS_CHECK(entry.ok());
      std::printf("%-10zu %12d %12zu %14.1f\n", n, width, source->size(),
                  entry->module->compile_millis());
    }
  }

  // --- Cache hit cost.
  {
    fts::JitCache cache;
    fts::JitScanSignature signature;
    signature.stages = {{fts::ScanElementType::kI32, fts::CompareOp::kEq},
                        {fts::ScanElementType::kI32, fts::CompareOp::kEq}};
    FTS_CHECK(cache.GetOrCompile(signature).ok());
    const double hit_ms = MedianMillis(1000, [&] {
      fts::DoNotOptimizeAway(cache.GetOrCompile(signature).ok());
    });
    std::printf("\ncache hit: %.4f ms (vs ~hundreds of ms cold)\n", hit_ms);
  }

  // --- JIT vs static kernel runtime.
  std::printf("\nOperator runtime on %zu rows (2 eq-predicates, 1%% then "
              "50%%):\n",
              rows);
  fts::ScanTableOptions options;
  options.rows = rows;
  options.selectivities = {0.01, 0.5};
  options.seed = 0x717;
  const fts::GeneratedScanTable generated = fts::MakeScanTable(options);
  fts::ScanSpec spec;
  spec.predicates = {
      {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
      {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};

  auto scanner = fts::TableScanner::Prepare(generated.table, spec);
  FTS_CHECK(scanner.ok());
  const double static_ms = MedianMillis(reps, [&] {
    fts::DoNotOptimizeAway(
        scanner->ExecuteCount(fts::ScanEngine::kAvx512Fused512).ok());
  });

  fts::JitScanEngine jit(512);
  FTS_CHECK(*jit.ExecuteCount(generated.table, spec) ==
            generated.stage_matches.back());
  const double jit_count_ms = MedianMillis(reps, [&] {
    fts::DoNotOptimizeAway(jit.ExecuteCount(generated.table, spec).ok());
  });
  FTS_CHECK(jit.Execute(generated.table, spec).ok());  // Warm the cache.
  const double jit_ms = MedianMillis(reps, [&] {
    fts::DoNotOptimizeAway(jit.Execute(generated.table, spec).ok());
  });

  std::printf("%-34s %10.3f ms\n", "static AVX-512 Fused (512)", static_ms);
  std::printf("%-34s %10.3f ms (warm cache)\n", "JIT AVX-512 Fused (512)",
              jit_ms);
  std::printf("%-34s %10.3f ms (warm cache)\n",
              "JIT count-only (no materialize)", jit_count_ms);
  std::printf(
      "\nbreak-even: compile cost / per-scan saving = scans needed before "
      "JIT wins;\nwith cached operators the cost is paid once per "
      "signature (Section V).\n");
  return 0;
}
