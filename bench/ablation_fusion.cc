// Ablation: what exactly buys the speedup?
//   1. Fusion vs materialization: the fused chain vs the classic
//      block-at-a-time pipeline that materializes a position list after
//      the first predicate (ScanEngine::kBlockwise).
//   2. Dictionary codes vs plain values: scanning uint32 codes behaves
//      identically to plain int32 (assumption 3 of the paper).
//   3. Predicate order: most-selective-first vs worst order — the gap the
//      optimizer's reordering rule closes.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
using fts::ScanEngine;
}  // namespace

int main() {
  PrintTitle("Ablations -- where the Fused Table Scan's win comes from");
  const size_t rows = ScaleRows(std::min(MaxRows(), size_t{8'000'000}));
  const int reps = Reps();
  const ScanEngine fused = fts::ScanEngineAvailable(
                               ScanEngine::kAvx512Fused512)
                               ? ScanEngine::kAvx512Fused512
                               : ScanEngine::kScalarFused;
  std::printf("rows = %zu, reps = %d, fused engine = %s\n", rows, reps,
              fts::ScanEngineToString(fused));

  // --- 1. Fusion vs materialized position lists.
  std::printf("\n[1] fusion vs materialization (2 predicates)\n");
  std::printf("%-12s %18s %18s %10s\n", "match%", "fused(ms)",
              "blockwise(ms)", "ratio");
  PrintRule('-', 62);
  for (const double selectivity : {0.001, 0.01, 0.1, 0.5}) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {selectivity, 0.5};
    options.seed = 0xAB1;
    const auto generated = fts::MakeScanTable(options);
    fts::ScanSpec spec;
    spec.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};
    auto scanner = fts::TableScanner::Prepare(generated.table, spec);
    FTS_CHECK(scanner.ok());
    FTS_CHECK(*scanner->ExecuteCount(fused) ==
              *scanner->ExecuteCount(ScanEngine::kBlockwise));
    const double fused_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(scanner->ExecuteCount(fused).ok());
    });
    const double blockwise_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(
          scanner->ExecuteCount(ScanEngine::kBlockwise).ok());
    });
    std::printf("%-12g %18.3f %18.3f %9.2fx\n", selectivity * 100,
                fused_ms, blockwise_ms, blockwise_ms / fused_ms);
  }

  // --- 2. Dictionary codes vs plain values.
  std::printf("\n[2] plain int32 vs dictionary codes (uint32)\n");
  std::printf("%-12s %18s %18s\n", "match%", "plain(ms)", "dict(ms)");
  PrintRule('-', 50);
  for (const double selectivity : {0.01, 0.5}) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {selectivity, 0.5};
    options.seed = 0xAB2;
    const auto plain = fts::MakeScanTable(options);
    options.dictionary_encode = true;
    const auto dict = fts::MakeScanTable(options);
    fts::ScanSpec spec;
    spec.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(plain.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(plain.search_values[1])}};
    auto plain_scan = fts::TableScanner::Prepare(plain.table, spec);
    auto dict_scan = fts::TableScanner::Prepare(dict.table, spec);
    FTS_CHECK(plain_scan.ok() && dict_scan.ok());
    FTS_CHECK(*plain_scan->ExecuteCount(fused) ==
              *dict_scan->ExecuteCount(fused));
    const double plain_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(plain_scan->ExecuteCount(fused).ok());
    });
    const double dict_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(dict_scan->ExecuteCount(fused).ok());
    });
    std::printf("%-12g %18.3f %18.3f\n", selectivity * 100, plain_ms,
                dict_ms);
  }

  // --- 3. Predicate order.
  std::printf("\n[3] predicate order (0.1%% predicate vs 50%% predicate "
              "first)\n");
  {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {0.001, 0.5};
    options.seed = 0xAB3;
    const auto generated = fts::MakeScanTable(options);
    fts::ScanSpec good, bad;
    good.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};
    bad.predicates = {good.predicates[1], good.predicates[0]};
    auto good_scan = fts::TableScanner::Prepare(generated.table, good);
    auto bad_scan = fts::TableScanner::Prepare(generated.table, bad);
    FTS_CHECK(good_scan.ok() && bad_scan.ok());
    FTS_CHECK(*good_scan->ExecuteCount(fused) ==
              *bad_scan->ExecuteCount(fused));
    const double good_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(good_scan->ExecuteCount(fused).ok());
    });
    const double bad_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(bad_scan->ExecuteCount(fused).ok());
    });
    std::printf("selective first: %.3f ms, unselective first: %.3f ms "
                "(%.2fx)\n",
                good_ms, bad_ms, bad_ms / good_ms);
  }
  return 0;
}
