// Aggregate pushdown: fused aggregation (masked SIMD accumulators inside
// the scan loop, no position list) vs materialize-then-aggregate (scan to
// a position list, then walk it computing the aggregates), across
// predicate selectivities.
//
// Expectation: the fused path wins everywhere and the gap widens as
// selectivity drops — the materialize arm still allocates and walks a
// position list plus re-reads the aggregate column tuple-at-a-time, while
// the fused arm folds survivors straight out of the compare mask.
//
// Every reported value is self-verified against the SISD scalar reference
// (materialize path, sisd-novec), and the pushed-down row must be
// byte-identical across 1/2/4 worker threads.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/string_util.h"
#include "fts/db/database.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;

constexpr double kSelectivities[] = {0.001, 0.01, 0.05, 0.10, 0.25, 0.50};

// One aggregate result row rendered for comparison.
std::string RenderRow(const fts::QueryResult& result) {
  FTS_CHECK(result.rows.size() == 1);
  std::vector<std::string> cells;
  cells.reserve(result.rows[0].size());
  for (const fts::Value& value : result.rows[0]) {
    cells.push_back(fts::ValueToString(value));
  }
  return fts::Join(cells, " | ");
}

}  // namespace

int main() {
  PrintTitle(
      "Aggregate pushdown -- fused aggregation vs materialize-then-"
      "aggregate, SUM+MIN+COUNT over one predicate");
  const size_t rows = ScaleRows(FullScale() ? 32'000'000 : MaxRows());
  const int reps = Reps();
  std::printf("rows = %zu, reps = %d, query = SELECT SUM(c1), MIN(c1), "
              "COUNT(*) FROM t WHERE c0 = <v>\n\n",
              rows, reps);

  std::printf("%-14s%18s%18s%10s\n", "selectivity", "materialize (ms)",
              "pushdown (ms)", "speedup");
  PrintRule('-', 14 + 18 + 18 + 10);

  fts::Database db;
  for (const double selectivity : kSelectivities) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {selectivity, 0.5};
    options.seed = 0xA66;
    // Multi-chunk so the thread-determinism check schedules real morsels.
    options.chunk_size = rows / 8;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);
    FTS_CHECK(db.RegisterTable("t", generated.table).ok());
    const std::string sql = fts::StrFormat(
        "SELECT SUM(c1), MIN(c1), COUNT(*) FROM t WHERE c0 = %d",
        generated.search_values[0]);

    fts::Database::QueryOptions materialize;
    materialize.aggregate_pushdown = false;
    fts::Database::QueryOptions pushdown;
    pushdown.aggregate_pushdown = true;

    // SISD scalar reference (materialize path): the ground truth every
    // measured arm must reproduce.
    fts::Database::QueryOptions reference = materialize;
    reference.engine = fts::ScanEngine::kSisdNoVec;
    const auto expected = db.Query(sql, reference);
    FTS_CHECK(expected.ok());
    const std::string expected_row = RenderRow(*expected);

    const auto materialized = db.Query(sql, materialize);
    FTS_CHECK(materialized.ok() &&
              !materialized->execution_report.aggregate_pushdown);
    FTS_CHECK(RenderRow(*materialized) == expected_row);
    const auto pushed = db.Query(sql, pushdown);
    FTS_CHECK(pushed.ok() && pushed->execution_report.aggregate_pushdown);
    FTS_CHECK(RenderRow(*pushed) == expected_row);

    // Determinism: the pushed-down row is byte-identical across worker
    // thread counts (chunk-order merge of partial accumulators).
    for (const int threads : {1, 2, 4}) {
      fts::Database::QueryOptions threaded = pushdown;
      threaded.threads = threads;
      const auto result = db.Query(sql, threaded);
      FTS_CHECK(result.ok() && RenderRow(*result) == expected_row);
    }

    const double materialize_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(db.Query(sql, materialize).ok());
    });
    const double pushdown_ms = MedianMillis(reps, [&] {
      fts::DoNotOptimizeAway(db.Query(sql, pushdown).ok());
    });
    const double speedup = pushdown_ms > 0.0 ? materialize_ms / pushdown_ms
                                             : 0.0;
    std::printf("%-14.3f%18.3f%18.3f%9.2fx\n", selectivity, materialize_ms,
                pushdown_ms, speedup);
    BenchLine("fig_agg_pushdown")
        .Field("selectivity", selectivity)
        .Field("rows", static_cast<uint64_t>(rows))
        .Field("materialize_ms", materialize_ms)
        .Field("pushdown_ms", pushdown_ms)
        .Field("speedup", speedup)
        .Emit();
    FTS_CHECK(db.DropTable("t").ok());
  }
  std::printf(
      "\nShape check: pushdown >= 1.5x at selectivities <= 10%% — the "
      "fused fold avoids materializing and re-walking a position list.\n");
  return 0;
}
