// Figure 2: a naive SISD scan cannot use the available memory bandwidth.
// Comparing only every n-th 4-byte value still transfers every cache
// line, so the bytes/second figure rises with the skip count while the
// values actually processed per microsecond fall.
//
// Paper expectation: GB/s grows roughly linearly with the number of
// skipped values until it saturates near the machine's read bandwidth
// (the paper's Xeon reached ~12 GB/s single-threaded).

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/common/random.h"
#include "fts/perf/bandwidth.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
}  // namespace

int main() {
  PrintTitle(
      "Figure 2 -- Strided SISD scan: bandwidth vs values processed");
  const size_t rows =
      ScaleRows(FullScale() ? 400'000'000 : std::min(MaxRows(),
                                                     size_t{64'000'000}));
  const int reps = Reps();

  fts::Xoshiro256 rng(0xF2);
  const fts::AlignedVector<int32_t> data =
      fts::GenerateUniformColumn<int32_t>(rows, 0, 1 << 30, rng);

  // "Available bandwidth" reference: touch one value per 64-byte line —
  // the loop issues one compare per line, so the line-fetch rate, not the
  // ALU, limits it (this is the ceiling Fig. 2's curve approaches).
  std::vector<double> line_rate;
  for (int rep = 0; rep < reps; ++rep) {
    line_rate.push_back(
        fts::MeasureStridedScan(data.data(), rows, 42, 16).gb_per_second);
  }
  const double peak = fts::Median(line_rate);
  std::printf("rows = %zu (%.1f MiB), reps = %d\n", rows,
              static_cast<double>(rows) * 4 / 1024 / 1024, reps);
  std::printf("available bandwidth (one compare per line): %.2f GB/s\n",
              peak);
  std::printf("scalar 8-chain summation reference:         %.2f GB/s\n\n",
              fts::MeasurePeakReadBandwidthGbs(data.data(), rows));

  std::printf("%-28s %14s %22s\n", "values skipped per line", "GB/s",
              "values / microsecond");
  PrintRule('-', 66);

  // x-axis of Fig. 2: skipping k of every (k+1) 4-byte values, k = 0..7.
  for (size_t skipped = 0; skipped <= 7; ++skipped) {
    const size_t stride = skipped + 1;
    std::vector<double> gbs, vpu;
    for (int rep = 0; rep < reps; ++rep) {
      const fts::BandwidthSample sample =
          fts::MeasureStridedScan(data.data(), rows, 42, stride);
      gbs.push_back(sample.gb_per_second);
      vpu.push_back(sample.values_per_microsecond);
    }
    std::printf("%-28zu %14.2f %22.1f\n", skipped, fts::Median(gbs),
                fts::Median(vpu));
  }
  std::printf(
      "\nShape check vs the paper: GB/s climbs toward the reference "
      "bandwidth as values are skipped;\nprocessed values/us falls -- "
      "the scalar compare loop, not the bus, limits the naive scan.\n");
  return 0;
}
