// Query lifecycle: time-to-cancel and admission throughput.
//
// Arm 1 measures the cancellation latency contract on the paper's scan
// shape: a multi-predicate scan over a large table at 4 worker threads
// with a 5 ms deadline. The deadline fires on the timer wheel; the scan
// notices at the next morsel boundary. The reported overshoot
// (wall-clock past the armed deadline) is the cost of cooperative
// cancellation — one in-flight morsel per worker, never a kernel
// abandoned midway. The acceptance bar is p99 overshoot <= 10 ms.
//
// Arm 2 measures admission-controller throughput under contention: 64
// submitter threads hammer a local controller (4 slots, queue depth 64)
// with short critical sections, reporting sustained admissions/sec and
// queue-wait percentiles. Rejections only happen when the bounded queue
// overflows, and every admit is eventually released — the counters must
// drain to zero.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/stats.h"
#include "fts/common/string_util.h"
#include "fts/db/database.h"
#include "fts/exec/admission.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;

constexpr int64_t kDeadlineMillis = 5;

void RunCancellationArm() {
  const size_t rows = ScaleRows(MaxRows());
  // Enough reps for a meaningful p99 (the acceptance criterion is stated
  // over 100 runs).
  const int reps = std::max(Reps(), 100);

  fts::ScanTableOptions options;
  options.rows = rows;
  options.selectivities = {0.2, 0.5};
  options.seed = 0xCA7;
  options.chunk_size = rows / 64;  // 64 morsels: fine-grained boundaries.
  const fts::GeneratedScanTable generated = fts::MakeScanTable(options);

  fts::Database db;
  FTS_CHECK(db.RegisterTable("t", generated.table).ok());
  const std::string sql = fts::StrFormat(
      "SELECT COUNT(*) FROM t WHERE c0 = %d AND c1 = %d",
      generated.search_values[0], generated.search_values[1]);

  // Unconstrained baseline: how long the scan takes when nothing cancels
  // it. If this is already under the deadline the arm cannot measure
  // overshoot (tiny FTS_BENCH_MAX_ROWS); it reports completions instead.
  fts::Database::QueryOptions plain;
  plain.threads = 4;
  const double scan_ms = MedianMillis(5, [&] {
    fts::DoNotOptimizeAway(db.Query(sql, plain).ok());
  });

  std::printf("rows = %zu, scan (no deadline, 4 threads) = %.3f ms, "
              "deadline = %lld ms, reps = %d\n\n",
              rows, scan_ms, static_cast<long long>(kDeadlineMillis), reps);

  std::vector<double> overshoot_ms;
  overshoot_ms.reserve(static_cast<size_t>(reps));
  int completed = 0;
  for (int i = 0; i < reps; ++i) {
    fts::Database::QueryOptions deadline;
    deadline.threads = 4;
    deadline.deadline_millis = kDeadlineMillis;
    fts::Stopwatch stopwatch;
    const auto result = db.Query(sql, deadline);
    const double elapsed = stopwatch.ElapsedMillis();
    if (result.ok()) {
      ++completed;
      continue;
    }
    FTS_CHECK(result.status().code() == fts::StatusCode::kDeadlineExceeded);
    overshoot_ms.push_back(elapsed - static_cast<double>(kDeadlineMillis));
  }

  if (overshoot_ms.empty()) {
    std::printf("every run completed before the deadline (table too small "
                "to measure overshoot)\n");
    BenchLine("fig_cancellation_latency")
        .Field("arm", "time_to_cancel")
        .Field("rows", static_cast<uint64_t>(rows))
        .Field("deadline_ms", kDeadlineMillis)
        .Field("reps", reps)
        .Field("completed", completed)
        .Emit();
    return;
  }

  const double p50 = fts::Percentile(overshoot_ms, 50.0);
  const double p99 = fts::Percentile(overshoot_ms, 99.0);
  std::printf("%-22s%12s%12s%12s\n", "", "p50 (ms)", "p99 (ms)", "runs");
  PrintRule('-', 22 + 12 + 12 + 12);
  std::printf("%-22s%12.3f%12.3f%12zu\n", "deadline overshoot", p50, p99,
              overshoot_ms.size());
  if (completed > 0) {
    std::printf("(%d of %d runs finished under the deadline)\n", completed,
                reps);
  }
  BenchLine("fig_cancellation_latency")
      .Field("arm", "time_to_cancel")
      .Field("rows", static_cast<uint64_t>(rows))
      .Field("deadline_ms", kDeadlineMillis)
      .Field("reps", reps)
      .Field("cancelled_runs", static_cast<uint64_t>(overshoot_ms.size()))
      .Field("completed_runs", completed)
      .Field("overshoot_p50_ms", p50)
      .Field("overshoot_p99_ms", p99)
      .Emit();
  std::printf("\nShape check: p99 overshoot <= 10 ms — a worker finishes "
              "at most one in-flight morsel before honoring the deadline.\n");
}

void RunAdmissionArm() {
  constexpr int kSubmitters = 64;
  constexpr int kAdmitsPerSubmitter = 200;
  fts::AdmissionOptions options;
  options.max_concurrent = 4;
  options.queue_depth = kSubmitters;  // Every submitter can queue: no
                                      // rejections, pure throughput.
  fts::AdmissionController controller(options);

  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<int64_t> waits_micros(
      static_cast<size_t>(kSubmitters) * kAdmitsPerSubmitter, 0);

  fts::Stopwatch stopwatch;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kAdmitsPerSubmitter; ++i) {
        auto ticket = controller.Admit(nullptr);
        if (!ticket.ok()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        waits_micros[static_cast<size_t>(s) * kAdmitsPerSubmitter +
                     static_cast<size_t>(i)] = ticket->queue_wait_micros();
        admitted.fetch_add(1, std::memory_order_relaxed);
        // Short critical section standing in for a fast query.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ticket->Release();
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  const double elapsed_ms = stopwatch.ElapsedMillis();

  // The controller must fully drain: no slot leaked by any path.
  const fts::AdmissionController::Stats stats = controller.stats();
  FTS_CHECK(stats.running == 0 && stats.waiting == 0);

  std::vector<double> waits_ms;
  waits_ms.reserve(waits_micros.size());
  for (const int64_t w : waits_micros) {
    waits_ms.push_back(static_cast<double>(w) / 1000.0);
  }
  const double wait_p50 = fts::Percentile(waits_ms, 50.0);
  const double wait_p99 = fts::Percentile(waits_ms, 99.0);
  const double throughput =
      static_cast<double>(admitted.load()) / (elapsed_ms / 1000.0);

  std::printf("\nsubmitters = %d, admits each = %d, slots = %d, queue "
              "depth = %d\n",
              kSubmitters, kAdmitsPerSubmitter, options.max_concurrent,
              options.queue_depth);
  std::printf("admitted = %llu, rejected = %llu, elapsed = %.1f ms, "
              "throughput = %.0f admits/s\n",
              static_cast<unsigned long long>(admitted.load()),
              static_cast<unsigned long long>(rejected.load()), elapsed_ms,
              throughput);
  std::printf("queue wait: p50 = %.3f ms, p99 = %.3f ms\n", wait_p50,
              wait_p99);
  BenchLine("fig_cancellation_latency")
      .Field("arm", "admission_throughput")
      .Field("submitters", kSubmitters)
      .Field("max_concurrent", options.max_concurrent)
      .Field("queue_depth", options.queue_depth)
      .Field("admitted", admitted.load())
      .Field("rejected", rejected.load())
      .Field("elapsed_ms", elapsed_ms)
      .Field("admits_per_sec", throughput)
      .Field("queue_wait_p50_ms", wait_p50)
      .Field("queue_wait_p99_ms", wait_p99)
      .Emit();
}

}  // namespace

int main() {
  PrintTitle(
      "Query lifecycle -- time-to-cancel under a 5 ms deadline and "
      "admission throughput under 64 submitters");
  RunCancellationArm();
  RunAdmissionArm();
  return 0;
}
