// Figure 9 (extension beyond the paper): zone-map chunk pruning. Sweeps a
// range predicate's selectivity over two physical layouts of the same
// value set:
//
//   clustered  c0[i] = i          -- disjoint per-chunk zones; a narrow
//                                    range touches few chunks, the rest are
//                                    skipped before any kernel runs
//   uniform    shuffled           -- every chunk spans the full domain, so
//                                    zone maps can never prune; measures
//                                    the overhead of consulting them
//
// Each configuration runs the full query path (Prepare + count) with zone
// maps on and off over the identical table, and self-verifies both counts
// against an unpruned SISD reference scan.
//
// Emits one machine-readable line per configuration:
//   BENCH {"figure":"fig9_zone_pruning","layout":"...","selectivity":...,
//          "pruned_ms":...,"unpruned_ms":...,"speedup":...,
//          "chunks_pruned":N,"chunks_total":N}
//
// Scaling knobs: FTS_BENCH_MAX_ROWS / FTS_BENCH_REPS / FTS_BENCH_FULL
// (see bench_util.h).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {
using namespace fts::bench;
using fts::ScanEngine;

constexpr size_t kChunkSize = size_t{1} << 16;

// Bulk-ingests `values` as 64K-row chunks of one plain int32 column.
fts::TablePtr BuildTable(const std::vector<int32_t>& values) {
  fts::TableBuilder builder({{"c0", fts::DataType::kInt32}}, kChunkSize);
  for (size_t begin = 0; begin < values.size(); begin += kChunkSize) {
    const size_t rows = std::min(kChunkSize, values.size() - begin);
    fts::AlignedVector<int32_t> chunk(values.begin() + begin,
                                      values.begin() + begin + rows);
    FTS_CHECK(builder
                  .AddChunk({std::make_shared<fts::ValueColumn<int32_t>>(
                      std::move(chunk))})
                  .ok());
  }
  return builder.Build();
}

// The range [lo, hi] selecting `selectivity` of a permutation of 0..rows-1,
// centered in the domain so both range ends exercise pruning.
struct Range {
  int32_t lo;
  int32_t hi;
  uint64_t expected;  // Exact: the values are a permutation of 0..rows-1.
};

Range RangeForSelectivity(size_t rows, double selectivity) {
  const auto span = static_cast<uint64_t>(
      static_cast<double>(rows) * selectivity);
  const uint64_t lo = (rows - span) / 2;
  return {static_cast<int32_t>(lo), static_cast<int32_t>(lo + span - 1),
          span};
}

}  // namespace

int main() {
  PrintTitle(
      "Figure 9 -- Zone-map chunk pruning: range-predicate COUNT(*), "
      "clustered vs uniform layout, zone maps on vs off");
  const size_t rows = ScaleRows(FullScale() ? 64'000'000 : MaxRows());
  if (rows == 0) {
    std::printf("configuration skipped (FTS_BENCH_MAX_ROWS too small)\n");
    return 0;
  }
  const int reps = Reps();

  // Clustered: the identity permutation, so chunk k holds exactly
  // [k*64K, (k+1)*64K). Uniform: the same values Fisher-Yates-shuffled —
  // identical global content, maximally overlapping chunk zones.
  std::vector<int32_t> values(rows);
  for (size_t i = 0; i < rows; ++i) values[i] = static_cast<int32_t>(i);
  const fts::TablePtr clustered = BuildTable(values);
  fts::Xoshiro256 rng(0xF9);
  rng.Shuffle(values);
  const fts::TablePtr uniform = BuildTable(values);
  values.clear();
  values.shrink_to_fit();

  const ScanEngine engine =
      fts::GetCpuFeatures().HasFusedScanAvx512()
          ? ScanEngine::kAvx512Fused512
          : ScanEngine::kScalarFused;
  std::printf("rows = %zu, chunks = %zu, reps = %d, engine = %s\n\n", rows,
              clustered->chunk_count(), reps,
              fts::ScanEngineToString(engine));
  std::printf("%-12s%14s%14s%14s%10s%10s\n", "layout", "selectivity",
              "pruned_ms", "unpruned_ms", "speedup", "pruned");
  PrintRule('-', 74);

  const struct {
    const char* name;
    const fts::TablePtr& table;
  } layouts[] = {{"clustered", clustered}, {"uniform", uniform}};

  for (const auto& layout : layouts) {
    for (const double selectivity : {0.001, 0.01, 0.1, 0.5}) {
      const Range range = RangeForSelectivity(rows, selectivity);
      if (range.expected == 0) continue;
      fts::ScanSpec spec;
      spec.predicates = {
          {"c0", fts::CompareOp::kGe, fts::Value(range.lo)},
          {"c0", fts::CompareOp::kLe, fts::Value(range.hi)}};

      // Self-verification: the zone-pruned fused count must equal the
      // unpruned SISD reference on the same table.
      const auto unpruned_scanner = fts::TableScanner::Prepare(
          layout.table, spec,
          fts::TableScanner::PrepareOptions{.use_zone_maps = false});
      FTS_CHECK(unpruned_scanner.ok());
      const auto sisd = unpruned_scanner->ExecuteCount(ScanEngine::kSisdNoVec);
      FTS_CHECK(sisd.ok() && *sisd == range.expected);
      const auto pruned_scanner =
          fts::TableScanner::Prepare(layout.table, spec);
      FTS_CHECK(pruned_scanner.ok());
      const auto pruned_count = pruned_scanner->ExecuteCount(engine);
      FTS_CHECK(pruned_count.ok() && *pruned_count == range.expected);
      const fts::TableScanner::PruningSummary pruning =
          pruned_scanner->pruning();

      // Timed region = the full per-query cost: Prepare (where zone maps
      // are consulted) plus the count execution. The two variants are
      // sampled interleaved, not as two sequential blocks — clock drift on
      // a shared vCPU otherwise skews whichever block runs first by more
      // than the uniform-layout overhead being measured.
      std::vector<double> pruned_samples, unpruned_samples;
      for (int rep = 0; rep < reps; ++rep) {
        {
          fts::Stopwatch stopwatch;
          const auto scanner =
              fts::TableScanner::Prepare(layout.table, spec);
          const auto count = scanner->ExecuteCount(engine);
          FTS_CHECK(count.ok() && *count == range.expected);
          pruned_samples.push_back(stopwatch.ElapsedMillis());
        }
        {
          fts::Stopwatch stopwatch;
          const auto scanner = fts::TableScanner::Prepare(
              layout.table, spec,
              fts::TableScanner::PrepareOptions{.use_zone_maps = false});
          const auto count = scanner->ExecuteCount(engine);
          FTS_CHECK(count.ok() && *count == range.expected);
          unpruned_samples.push_back(stopwatch.ElapsedMillis());
        }
      }
      const double pruned_ms = fts::Median(pruned_samples);
      const double unpruned_ms = fts::Median(unpruned_samples);
      const double speedup = pruned_ms > 0.0 ? unpruned_ms / pruned_ms : 0.0;

      std::printf("%-12s%14.3f%14.3f%14.3f%9.2fx%6zu/%zu\n", layout.name,
                  selectivity, pruned_ms, unpruned_ms, speedup,
                  pruning.chunks_pruned, pruning.chunks_total);
      BenchLine("fig9_zone_pruning")
          .Field("layout", layout.name)
          .Field("selectivity", selectivity)
          .Field("pruned_ms", pruned_ms)
          .Field("unpruned_ms", unpruned_ms)
          .Field("speedup", speedup)
          .Field("chunks_pruned", static_cast<uint64_t>(pruning.chunks_pruned))
          .Field("chunks_total", static_cast<uint64_t>(pruning.chunks_total))
          .Emit();
    }
  }

  std::printf(
      "\nEvery configuration verified against the unpruned SISD reference "
      "count.\n");
  return 0;
}
