// Figure 5: median runtime of the six scan implementations over 32M rows
// (scaled by FTS_BENCH_MAX_ROWS) for matching-row percentages from 1e-5%
// to 100%.
//
// Paper expectation: every fused variant beats both SISD baselines at all
// selectivities; AVX-512 beats the AVX2 backport; wider registers are
// faster, with a larger 128->256 gap than 256->512.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/common/cpu_info.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {

using fts::ScanEngine;
using namespace fts::bench;

constexpr ScanEngine kEngines[] = {
    ScanEngine::kSisdNoVec,      ScanEngine::kSisdAutoVec,
    ScanEngine::kAvx2Fused128,   ScanEngine::kAvx512Fused128,
    ScanEngine::kAvx512Fused256, ScanEngine::kAvx512Fused512,
};

}  // namespace

int main() {
  PrintTitle(
      "Figure 5 -- Median runtime (ms) vs matching rows (%), "
      "2 eq-predicates");
  const size_t rows = ScaleRows(FullScale() ? 32'000'000 : MaxRows());
  const int reps = Reps();
  std::printf("rows = %zu, reps = %d, CPU: %s\n\n", rows, reps,
              fts::GetCpuFeatures().ToString().c_str());

  // Matching-rows percentages from the paper's x-axis (1e-5 .. 100).
  const double kSelectivities[] = {1e-7, 1e-6, 1e-5, 1e-4,
                                   1e-3, 1e-2, 0.1,  0.5, 1.0};

  std::printf("%-12s", "match%");
  for (const ScanEngine engine : kEngines) {
    std::printf("%22s", fts::ScanEngineToString(engine));
  }
  std::printf("\n");
  PrintRule('-', 12 + 22 * 6);

  std::vector<BenchLine> bench_lines;

  for (const double selectivity : kSelectivities) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {selectivity, selectivity};
    options.seed = 0x515;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);

    fts::ScanSpec spec;
    spec.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};

    std::printf("%-12g", selectivity * 100.0);
    for (const ScanEngine engine : kEngines) {
      if (!fts::ScanEngineAvailable(engine)) {
        std::printf("%22s", "n/a");
        continue;
      }
      auto scanner = fts::TableScanner::Prepare(generated.table, spec);
      FTS_CHECK(scanner.ok());
      // Correctness check once per configuration.
      const auto count = scanner->ExecuteCount(engine);
      FTS_CHECK(count.ok());
      FTS_CHECK_MSG(*count == generated.stage_matches.back(),
                    fts::ScanEngineToString(engine));
      const double ms = MedianMillis(reps, [&] {
        const auto result = scanner->ExecuteCount(engine);
        fts::DoNotOptimizeAway(result.ok());
      });
      std::printf("%22.3f", ms);
      bench_lines.push_back(BenchLine("fig5_impl_comparison")
                                .Field("engine",
                                       fts::ScanEngineToString(engine))
                                .Field("match_pct", selectivity * 100.0)
                                .Field("rows", static_cast<uint64_t>(rows))
                                .Field("median_ms", ms));
    }
    std::printf("\n");
  }
  // BENCH lines after the table so the human-readable grid stays aligned.
  for (BenchLine& line : bench_lines) line.Emit();
  std::printf(
      "\nShape checks vs the paper: fused < SISD everywhere; "
      "AVX-512(128) < AVX2(128); 512 < 256 < 128.\n");
  return 0;
}
