// Cache-behaviour ablation: memory traffic of the SISD and fused access
// patterns through a model of the paper's cache hierarchy (32 KB L1d /
// 1 MB L2 / 38.5 MB L3, the Xeon 8180). The paper flushed caches between
// runs; this model shows why: per-level miss rates change qualitatively
// once the working set exceeds each level.

#include <cstdio>

#include "bench/bench_util.h"
#include "fts/perf/cache_sim.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/data_generator.h"

namespace {
using namespace fts::bench;
}  // namespace

int main() {
  PrintTitle(
      "Cache ablation -- modelled memory traffic per scan implementation");
  const size_t rows =
      ScaleRows(std::min(MaxRows(), size_t{4'000'000}));
  std::printf("rows = %zu (2 int32 columns = %.1f MiB), hierarchy: 32K/1M/"
              "38.5M\n\n",
              rows, static_cast<double>(rows) * 8 / 1024 / 1024);

  std::printf("%-10s %-8s %12s %12s %12s %14s\n", "match%", "impl",
              "L1 miss%", "L2 miss%", "L3 miss%", "mem traffic");
  PrintRule('-', 74);

  for (const double selectivity : {0.001, 0.1, 0.5}) {
    fts::ScanTableOptions options;
    options.rows = rows;
    options.selectivities = {selectivity, 0.5};
    options.seed = 0xCAC;
    const fts::GeneratedScanTable generated = fts::MakeScanTable(options);
    fts::ScanSpec spec;
    spec.predicates = {
        {"c0", fts::CompareOp::kEq, fts::Value(generated.search_values[0])},
        {"c1", fts::CompareOp::kEq, fts::Value(generated.search_values[1])}};
    auto scanner = fts::TableScanner::Prepare(generated.table, spec);
    FTS_CHECK(scanner.ok());
    const auto& stages = scanner->chunk_plans()[0].stages;

    struct Row {
      const char* name;
      bool fused;
      int lanes;
    };
    for (const Row& impl : {Row{"SISD", false, 0},
                            Row{"Fused512", true, 16}}) {
      fts::CacheHierarchySim cache;
      if (impl.fused) {
        ReplayFusedScanCacheAccesses(stages.data(), stages.size(), rows,
                                     impl.lanes, cache);
      } else {
        ReplaySisdScanCacheAccesses(stages.data(), stages.size(), rows,
                                    cache);
      }
      std::printf("%-10g %-8s %11.2f%% %11.2f%% %11.2f%% %11.1f MiB\n",
                  selectivity * 100, impl.name,
                  cache.stats()[0].MissRate() * 100,
                  cache.stats()[1].MissRate() * 100,
                  cache.stats()[2].MissRate() * 100,
                  static_cast<double>(cache.MemoryTrafficBytes()) / 1024 /
                      1024);
    }
  }
  std::printf(
      "\nBoth implementations fetch the same compulsory first-column "
      "lines; the fused scan's gathers\ntouch second-column lines only "
      "for surviving rows, matching the SISD short-circuit pattern\n"
      "without its branches. Traffic differences stay small — the win is "
      "compute, not bytes (Fig. 2).\n");
  return 0;
}
