// Compressed-domain scan figure (tentpole extension beyond the paper):
// RLE / frame-of-reference / delta columns filtered *without decoding*,
// against the decode-then-scan baseline every engine without
// compressed-domain support must pay. Three data shapes, each under its
// natural encoding plus the others that fit:
//
//   uniform    random values              -- RLE-hostile (runs of 1); FoR
//                                            packs the narrow domain
//   clustered  runs of ~512 equal values  -- RLE classifies each run once
//              cycling the whole domain      and emits position ranges;
//              per chunk                     zone maps cannot prune
//   timestamp  monotone increments        -- delta blocks answer from
//                                            block min/max; zone maps and
//                                            block pruning compound
//
// Per configuration, three medians over the identical logical data:
//   plain_ms        fused scan over the pre-decoded plain table
//   compressed_ms   Prepare + count over the encoded table (the
//                   compressed-domain path under test)
//   decode_scan_ms  decode every chunk to a plain buffer, then the same
//                   fused scan -- what "decompress first" actually costs
//
// Counts are self-verified against a SISD scan of the plain table.
//
// Emits one machine-readable line per configuration:
//   BENCH {"figure":"fig_compressed_scan","shape":"...","encoding":"...",
//          "selectivity":...,"plain_ms":...,"compressed_ms":...,
//          "decode_scan_ms":...,"speedup_vs_decode":...,...}
//
// Scaling knobs: FTS_BENCH_MAX_ROWS / FTS_BENCH_REPS / FTS_BENCH_FULL
// (see bench_util.h).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "fts/common/cpu_info.h"
#include "fts/common/random.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace {
using namespace fts::bench;
using fts::AlignedVector;
using fts::ColumnEncoding;
using fts::ScanEngine;

constexpr size_t kChunkSize = size_t{1} << 16;

// Encodes one 64K slice of `values` under `encoding`; FoR/delta must fit
// by construction of the shapes below.
fts::ColumnPtr EncodeSlice(const AlignedVector<int64_t>& slice,
                           ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kRle:
      return std::make_shared<fts::RleColumn<int64_t>>(
          fts::RleColumn<int64_t>::FromValues(slice));
    case ColumnEncoding::kFor: {
      auto column = fts::ForColumn<int64_t>::TryFromValues(slice);
      FTS_CHECK_MSG(column.has_value(), "FoR range exceeds kMaxPackedBits");
      return std::make_shared<fts::ForColumn<int64_t>>(std::move(*column));
    }
    case ColumnEncoding::kDelta: {
      auto column = fts::DeltaColumn<int64_t>::TryFromValues(slice);
      FTS_CHECK_MSG(column.has_value(), "delta diffs exceed kMaxDeltaBits");
      return std::make_shared<fts::DeltaColumn<int64_t>>(std::move(*column));
    }
    default:
      return std::make_shared<fts::ValueColumn<int64_t>>(
          AlignedVector<int64_t>(slice));
  }
}

fts::TablePtr BuildTable(const std::vector<int64_t>& values,
                         ColumnEncoding encoding) {
  fts::TableBuilder builder({{"c0", fts::DataType::kInt64}}, kChunkSize);
  for (size_t begin = 0; begin < values.size(); begin += kChunkSize) {
    const size_t rows = std::min(kChunkSize, values.size() - begin);
    AlignedVector<int64_t> slice(values.begin() + begin,
                                 values.begin() + begin + rows);
    FTS_CHECK(builder.AddChunk({EncodeSlice(slice, encoding)}).ok());
  }
  return builder.Build();
}

// Decodes one column into `out` the way a decode-then-scan engine must:
// RLE expands runs, FoR rebases every code, delta prefix-reconstructs
// block by block.
void DecodeColumn(const fts::BaseColumn& column, int64_t* out) {
  switch (column.encoding()) {
    case ColumnEncoding::kRle: {
      const auto& rle = static_cast<const fts::RleColumn<int64_t>&>(column);
      size_t row = 0;
      for (size_t run = 0; run < rle.run_count(); ++run) {
        const int64_t value = rle.run_values()[run];
        const uint32_t end = rle.run_ends()[run];
        for (; row < end; ++row) out[row] = value;
      }
      return;
    }
    case ColumnEncoding::kFor: {
      const auto& for_column =
          static_cast<const fts::ForColumn<int64_t>&>(column);
      for (size_t row = 0; row < for_column.size(); ++row) {
        out[row] = for_column.ValueAt(row);
      }
      return;
    }
    case ColumnEncoding::kDelta: {
      const auto& delta =
          static_cast<const fts::DeltaColumn<int64_t>&>(column);
      int64_t* cursor = out;
      for (size_t b = 0; b < delta.blocks().size(); ++b) {
        cursor += delta.DecodeBlock(b, cursor);
      }
      return;
    }
    default:
      FTS_CHECK_MSG(false, "decode covers rle/for/delta only");
  }
}

// The decode-then-scan baseline: expand every chunk of the encoded table
// into the scratch buffer, then run the fused count over the *plain*
// table (same bytes the decode just produced). Decoding into scratch and
// scanning the prebuilt plain table keeps the comparison allocation-free
// without letting the compiler elide the decode.
uint64_t DecodeThenScan(const fts::TablePtr& encoded,
                        const fts::TableScanner& plain_scanner,
                        ScanEngine engine, AlignedVector<int64_t>& scratch) {
  for (fts::ChunkId chunk = 0; chunk < encoded->chunk_count(); ++chunk) {
    DecodeColumn(encoded->chunk(chunk).column(0), scratch.data());
    fts::DoNotOptimizeAway(scratch[scratch.size() / 2]);
  }
  const auto count = plain_scanner.ExecuteCount(engine);
  FTS_CHECK(count.ok());
  return *count;
}

struct Shape {
  const char* name;
  ColumnEncoding encoding;
  std::vector<int64_t> values;
};

}  // namespace

int main() {
  PrintTitle(
      "Compressed-domain scans -- RLE/FoR/delta filtering without "
      "decoding vs decode-then-scan");
  const size_t rows = ScaleRows(MaxRows());
  if (rows == 0) {
    std::printf("configuration skipped (FTS_BENCH_MAX_ROWS too small)\n");
    return 0;
  }
  const int reps = Reps();
  const ScanEngine engine =
      fts::GetCpuFeatures().HasFusedScanAvx512()
          ? ScanEngine::kAvx512Fused512
          : ScanEngine::kScalarFused;

  // uniform: random in [0, 2^20) -- fits FoR's packed width.
  fts::Xoshiro256 rng(0xC0);
  Shape uniform{"uniform", ColumnEncoding::kFor, {}};
  uniform.values.resize(rows);
  for (auto& v : uniform.values) {
    v = static_cast<int64_t>(rng.NextBounded(1u << 20));
  }
  // clustered: runs of ~512 equal values cycling a 1024-value domain, so
  // every chunk spans the domain and zone maps never prune -- the RLE run
  // classifier does all the work.
  Shape clustered{"clustered", ColumnEncoding::kRle, {}};
  clustered.values.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    clustered.values[i] = static_cast<int64_t>((i / 512) % 1024);
  }
  // timestamp: monotone with random millisecond-ish steps.
  Shape timestamp{"timestamp", ColumnEncoding::kDelta, {}};
  timestamp.values.resize(rows);
  int64_t now = 1'700'000'000'000LL;
  for (auto& v : timestamp.values) {
    now += static_cast<int64_t>(rng.NextBounded(1000));
    v = now;
  }

  std::printf("rows = %zu, chunks = %zu, reps = %d, engine = %s\n\n", rows,
              (rows + kChunkSize - 1) / kChunkSize, reps,
              fts::ScanEngineToString(engine));
  std::printf("%-11s%-10s%13s%11s%15s%17s%10s\n", "shape", "encoding",
              "selectivity", "plain_ms", "compressed_ms", "decode_scan_ms",
              "speedup");
  PrintRule('-', 87);

  for (Shape* shape_ptr : {&uniform, &clustered, &timestamp}) {
    Shape& shape = *shape_ptr;
    const fts::TablePtr plain =
        BuildTable(shape.values, ColumnEncoding::kPlain);
    const fts::TablePtr encoded = BuildTable(shape.values, shape.encoding);

    for (const double selectivity : {0.01, 0.1, 0.5, 0.9}) {
      // Threshold at the selectivity quantile: exact for the monotone
      // shape (sorted order = row order), statistical for the others --
      // the *measured* count is verified exactly either way.
      std::vector<int64_t> sorted = shape.values;
      std::nth_element(
          sorted.begin(),
          sorted.begin() + static_cast<ptrdiff_t>(
                               static_cast<double>(rows) * selectivity),
          sorted.end());
      const int64_t threshold =
          sorted[static_cast<size_t>(static_cast<double>(rows) *
                                     selectivity)];
      fts::ScanSpec spec;
      spec.predicates = {{"c0", fts::CompareOp::kLt, fts::Value(threshold)}};

      const auto plain_scanner = fts::TableScanner::Prepare(plain, spec);
      FTS_CHECK(plain_scanner.ok());
      const auto expected =
          plain_scanner->ExecuteCount(ScanEngine::kSisdNoVec);
      FTS_CHECK(expected.ok());

      // Self-verification: compressed-domain and decode-then-scan counts
      // must match the SISD reference exactly.
      const auto compressed_scanner =
          fts::TableScanner::Prepare(encoded, spec);
      FTS_CHECK(compressed_scanner.ok());
      FTS_CHECK(*compressed_scanner->ExecuteCount(engine) == *expected);
      AlignedVector<int64_t> scratch(kChunkSize);
      FTS_CHECK(DecodeThenScan(encoded, *plain_scanner, engine, scratch) ==
                *expected);

      // Interleaved sampling (see fig9): per-rep Prepare so the timed
      // region is the full per-query cost including zone-map consults.
      std::vector<double> plain_samples, compressed_samples, decode_samples;
      for (int rep = 0; rep < reps; ++rep) {
        {
          fts::Stopwatch stopwatch;
          const auto scanner = fts::TableScanner::Prepare(plain, spec);
          FTS_CHECK(*scanner->ExecuteCount(engine) == *expected);
          plain_samples.push_back(stopwatch.ElapsedMillis());
        }
        {
          fts::Stopwatch stopwatch;
          const auto scanner = fts::TableScanner::Prepare(encoded, spec);
          FTS_CHECK(*scanner->ExecuteCount(engine) == *expected);
          compressed_samples.push_back(stopwatch.ElapsedMillis());
        }
        {
          fts::Stopwatch stopwatch;
          FTS_CHECK(DecodeThenScan(encoded, *plain_scanner, engine,
                                   scratch) == *expected);
          decode_samples.push_back(stopwatch.ElapsedMillis());
        }
      }
      const double plain_ms = fts::Median(plain_samples);
      const double compressed_ms = fts::Median(compressed_samples);
      const double decode_ms = fts::Median(decode_samples);
      const double speedup =
          compressed_ms > 0.0 ? decode_ms / compressed_ms : 0.0;

      const auto& stats = *compressed_scanner->compressed_stats();
      std::printf("%-11s%-10s%13.2f%11.3f%15.3f%17.3f%9.2fx\n", shape.name,
                  fts::ColumnEncodingName(shape.encoding), selectivity,
                  plain_ms, compressed_ms, decode_ms, speedup);
      BenchLine("fig_compressed_scan")
          .Field("shape", shape.name)
          .Field("encoding", fts::ColumnEncodingName(shape.encoding))
          .Field("selectivity", selectivity)
          .Field("rows", static_cast<uint64_t>(rows))
          .Field("plain_ms", plain_ms)
          .Field("compressed_ms", compressed_ms)
          .Field("decode_scan_ms", decode_ms)
          .Field("speedup_vs_decode", speedup)
          .Field("rle_runs_classified",
                 stats.rle_runs_classified.load(std::memory_order_relaxed))
          .Field("rle_runs_skipped",
                 stats.rle_runs_skipped.load(std::memory_order_relaxed))
          .Field("delta_blocks_pruned",
                 stats.delta_blocks_pruned.load(std::memory_order_relaxed))
          .Field("delta_blocks_decoded",
                 stats.delta_blocks_decoded.load(std::memory_order_relaxed))
          .Emit();
    }
  }

  std::printf(
      "\nEvery configuration verified against the SISD reference count "
      "over the decoded plain table.\n");
  return 0;
}
