#ifndef FTS_BENCH_BENCH_UTIL_H_
#define FTS_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses. Each fig*_ binary
// regenerates one figure of the paper and prints the same series as an
// aligned text table.
//
// Scaling knobs (environment):
//   FTS_BENCH_MAX_ROWS  cap on table sizes (default 16M; the paper grid
//                       goes to 132M — set FTS_BENCH_FULL=1 to restore it)
//   FTS_BENCH_REPS      repetitions per configuration (default 15; the
//                       paper uses >= 100)
//   FTS_BENCH_FULL      1 = paper-scale grid (hours on one vCPU)

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fts/common/env.h"
#include "fts/common/stats.h"
#include "fts/common/timer.h"
#include "fts/obs/json_writer.h"

namespace fts::bench {

inline bool FullScale() { return GetEnvBool("FTS_BENCH_FULL", false); }

inline size_t MaxRows() {
  if (FullScale()) return 132'000'000;
  return static_cast<size_t>(GetEnvInt64("FTS_BENCH_MAX_ROWS", 16'000'000));
}

inline int Reps() {
  if (FullScale()) return 101;
  return static_cast<int>(GetEnvInt64("FTS_BENCH_REPS", 15));
}

// Caps a requested row count; returns 0 when the configuration should be
// skipped entirely (paper bars are omitted the same way when selectivity
// * rows < 1).
inline size_t ScaleRows(size_t requested) {
  return requested <= MaxRows() ? requested : 0;
}

// Median wall-clock milliseconds of `reps` runs of `fn`.
inline double MedianMillis(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Stopwatch stopwatch;
    fn();
    samples.push_back(stopwatch.ElapsedMillis());
  }
  return Median(samples);
}

// One machine-readable result line:
//   BENCH {"figure":"fig8_thread_scaling","threads":4,"median_ms":1.234}
// Built on the same obs::JsonWriter the tracing/metrics exporters use, so
// every BENCH line is well-formed JSON (strings escaped, commas managed).
// Usage: BenchLine("fig8_thread_scaling").Field("threads", 4).Emit();
class BenchLine {
 public:
  explicit BenchLine(std::string_view figure) {
    writer_.BeginObject();
    Field("figure", figure);
  }

  BenchLine& Field(std::string_view key, std::string_view value) {
    writer_.Key(key).String(value);
    return *this;
  }
  BenchLine& Field(std::string_view key, const char* value) {
    writer_.Key(key).String(value);
    return *this;
  }
  BenchLine& Field(std::string_view key, double value) {
    writer_.Key(key).Number(value);
    return *this;
  }
  BenchLine& Field(std::string_view key, uint64_t value) {
    writer_.Key(key).Number(value);
    return *this;
  }
  BenchLine& Field(std::string_view key, int64_t value) {
    writer_.Key(key).Number(value);
    return *this;
  }
  BenchLine& Field(std::string_view key, int value) {
    writer_.Key(key).Number(value);
    return *this;
  }
  void Emit() {
    writer_.EndObject();
    std::printf("BENCH %s\n", writer_.str().c_str());
  }

 private:
  obs::JsonWriter writer_;
};

inline void PrintRule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

}  // namespace fts::bench

#endif  // FTS_BENCH_BENCH_UTIL_H_
