# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/fts/common")
subdirs("src/fts/storage")
subdirs("src/fts/simd")
subdirs("src/fts/scan")
subdirs("src/fts/perf")
subdirs("src/fts/jit")
subdirs("src/fts/sql")
subdirs("src/fts/plan")
subdirs("src/fts/db")
subdirs("tests")
subdirs("bench")
subdirs("examples")
