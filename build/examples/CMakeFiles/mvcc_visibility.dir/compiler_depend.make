# Empty compiler generated dependencies file for mvcc_visibility.
# This may be replaced when dependencies are built.
