file(REMOVE_RECURSE
  "CMakeFiles/mvcc_visibility.dir/mvcc_visibility.cpp.o"
  "CMakeFiles/mvcc_visibility.dir/mvcc_visibility.cpp.o.d"
  "mvcc_visibility"
  "mvcc_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcc_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
