file(REMOVE_RECURSE
  "CMakeFiles/fig3_walkthrough.dir/fig3_walkthrough.cpp.o"
  "CMakeFiles/fig3_walkthrough.dir/fig3_walkthrough.cpp.o.d"
  "fig3_walkthrough"
  "fig3_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
