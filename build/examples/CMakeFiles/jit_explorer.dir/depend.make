# Empty dependencies file for jit_explorer.
# This may be replaced when dependencies are built.
