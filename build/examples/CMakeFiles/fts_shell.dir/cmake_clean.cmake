file(REMOVE_RECURSE
  "CMakeFiles/fts_shell.dir/fts_shell.cpp.o"
  "CMakeFiles/fts_shell.dir/fts_shell.cpp.o.d"
  "fts_shell"
  "fts_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
