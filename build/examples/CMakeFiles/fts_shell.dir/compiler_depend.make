# Empty compiler generated dependencies file for fts_shell.
# This may be replaced when dependencies are built.
