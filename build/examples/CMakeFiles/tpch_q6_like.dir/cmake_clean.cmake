file(REMOVE_RECURSE
  "CMakeFiles/tpch_q6_like.dir/tpch_q6_like.cpp.o"
  "CMakeFiles/tpch_q6_like.dir/tpch_q6_like.cpp.o.d"
  "tpch_q6_like"
  "tpch_q6_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_q6_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
