# Empty compiler generated dependencies file for tpch_q6_like.
# This may be replaced when dependencies are built.
