file(REMOVE_RECURSE
  "libfts_db.a"
)
