file(REMOVE_RECURSE
  "CMakeFiles/fts_db.dir/database.cc.o"
  "CMakeFiles/fts_db.dir/database.cc.o.d"
  "libfts_db.a"
  "libfts_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
