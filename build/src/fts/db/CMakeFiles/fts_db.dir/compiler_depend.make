# Empty compiler generated dependencies file for fts_db.
# This may be replaced when dependencies are built.
