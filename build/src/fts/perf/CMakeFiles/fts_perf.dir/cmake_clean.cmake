file(REMOVE_RECURSE
  "CMakeFiles/fts_perf.dir/bandwidth.cc.o"
  "CMakeFiles/fts_perf.dir/bandwidth.cc.o.d"
  "CMakeFiles/fts_perf.dir/branch_predictor.cc.o"
  "CMakeFiles/fts_perf.dir/branch_predictor.cc.o.d"
  "CMakeFiles/fts_perf.dir/cache_sim.cc.o"
  "CMakeFiles/fts_perf.dir/cache_sim.cc.o.d"
  "CMakeFiles/fts_perf.dir/perf_counters.cc.o"
  "CMakeFiles/fts_perf.dir/perf_counters.cc.o.d"
  "CMakeFiles/fts_perf.dir/prefetcher.cc.o"
  "CMakeFiles/fts_perf.dir/prefetcher.cc.o.d"
  "libfts_perf.a"
  "libfts_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
