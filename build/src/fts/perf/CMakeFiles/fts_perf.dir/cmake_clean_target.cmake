file(REMOVE_RECURSE
  "libfts_perf.a"
)
