
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fts/perf/bandwidth.cc" "src/fts/perf/CMakeFiles/fts_perf.dir/bandwidth.cc.o" "gcc" "src/fts/perf/CMakeFiles/fts_perf.dir/bandwidth.cc.o.d"
  "/root/repo/src/fts/perf/branch_predictor.cc" "src/fts/perf/CMakeFiles/fts_perf.dir/branch_predictor.cc.o" "gcc" "src/fts/perf/CMakeFiles/fts_perf.dir/branch_predictor.cc.o.d"
  "/root/repo/src/fts/perf/cache_sim.cc" "src/fts/perf/CMakeFiles/fts_perf.dir/cache_sim.cc.o" "gcc" "src/fts/perf/CMakeFiles/fts_perf.dir/cache_sim.cc.o.d"
  "/root/repo/src/fts/perf/perf_counters.cc" "src/fts/perf/CMakeFiles/fts_perf.dir/perf_counters.cc.o" "gcc" "src/fts/perf/CMakeFiles/fts_perf.dir/perf_counters.cc.o.d"
  "/root/repo/src/fts/perf/prefetcher.cc" "src/fts/perf/CMakeFiles/fts_perf.dir/prefetcher.cc.o" "gcc" "src/fts/perf/CMakeFiles/fts_perf.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fts/simd/CMakeFiles/fts_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/common/CMakeFiles/fts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/storage/CMakeFiles/fts_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
