# Empty compiler generated dependencies file for fts_perf.
# This may be replaced when dependencies are built.
