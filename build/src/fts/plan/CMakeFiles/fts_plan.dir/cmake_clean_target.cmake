file(REMOVE_RECURSE
  "libfts_plan.a"
)
