file(REMOVE_RECURSE
  "CMakeFiles/fts_plan.dir/lqp.cc.o"
  "CMakeFiles/fts_plan.dir/lqp.cc.o.d"
  "CMakeFiles/fts_plan.dir/optimizer.cc.o"
  "CMakeFiles/fts_plan.dir/optimizer.cc.o.d"
  "CMakeFiles/fts_plan.dir/physical_plan.cc.o"
  "CMakeFiles/fts_plan.dir/physical_plan.cc.o.d"
  "CMakeFiles/fts_plan.dir/translator.cc.o"
  "CMakeFiles/fts_plan.dir/translator.cc.o.d"
  "libfts_plan.a"
  "libfts_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
