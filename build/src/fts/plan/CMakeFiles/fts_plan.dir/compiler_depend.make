# Empty compiler generated dependencies file for fts_plan.
# This may be replaced when dependencies are built.
