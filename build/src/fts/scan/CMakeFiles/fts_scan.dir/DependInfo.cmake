
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fts/scan/row_store.cc" "src/fts/scan/CMakeFiles/fts_scan.dir/row_store.cc.o" "gcc" "src/fts/scan/CMakeFiles/fts_scan.dir/row_store.cc.o.d"
  "/root/repo/src/fts/scan/scan_engine.cc" "src/fts/scan/CMakeFiles/fts_scan.dir/scan_engine.cc.o" "gcc" "src/fts/scan/CMakeFiles/fts_scan.dir/scan_engine.cc.o.d"
  "/root/repo/src/fts/scan/scan_spec.cc" "src/fts/scan/CMakeFiles/fts_scan.dir/scan_spec.cc.o" "gcc" "src/fts/scan/CMakeFiles/fts_scan.dir/scan_spec.cc.o.d"
  "/root/repo/src/fts/scan/sisd_scan_autovec.cc" "src/fts/scan/CMakeFiles/fts_scan.dir/sisd_scan_autovec.cc.o" "gcc" "src/fts/scan/CMakeFiles/fts_scan.dir/sisd_scan_autovec.cc.o.d"
  "/root/repo/src/fts/scan/sisd_scan_novec.cc" "src/fts/scan/CMakeFiles/fts_scan.dir/sisd_scan_novec.cc.o" "gcc" "src/fts/scan/CMakeFiles/fts_scan.dir/sisd_scan_novec.cc.o.d"
  "/root/repo/src/fts/scan/table_scan.cc" "src/fts/scan/CMakeFiles/fts_scan.dir/table_scan.cc.o" "gcc" "src/fts/scan/CMakeFiles/fts_scan.dir/table_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fts/simd/CMakeFiles/fts_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/storage/CMakeFiles/fts_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/common/CMakeFiles/fts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
