file(REMOVE_RECURSE
  "libfts_scan.a"
)
