# Empty dependencies file for fts_scan.
# This may be replaced when dependencies are built.
