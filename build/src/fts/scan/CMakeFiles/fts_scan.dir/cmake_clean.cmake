file(REMOVE_RECURSE
  "CMakeFiles/fts_scan.dir/row_store.cc.o"
  "CMakeFiles/fts_scan.dir/row_store.cc.o.d"
  "CMakeFiles/fts_scan.dir/scan_engine.cc.o"
  "CMakeFiles/fts_scan.dir/scan_engine.cc.o.d"
  "CMakeFiles/fts_scan.dir/scan_spec.cc.o"
  "CMakeFiles/fts_scan.dir/scan_spec.cc.o.d"
  "CMakeFiles/fts_scan.dir/sisd_scan_autovec.cc.o"
  "CMakeFiles/fts_scan.dir/sisd_scan_autovec.cc.o.d"
  "CMakeFiles/fts_scan.dir/sisd_scan_novec.cc.o"
  "CMakeFiles/fts_scan.dir/sisd_scan_novec.cc.o.d"
  "CMakeFiles/fts_scan.dir/table_scan.cc.o"
  "CMakeFiles/fts_scan.dir/table_scan.cc.o.d"
  "libfts_scan.a"
  "libfts_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
