file(REMOVE_RECURSE
  "libfts_common.a"
)
