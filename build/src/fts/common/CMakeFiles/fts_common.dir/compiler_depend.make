# Empty compiler generated dependencies file for fts_common.
# This may be replaced when dependencies are built.
