file(REMOVE_RECURSE
  "CMakeFiles/fts_common.dir/cpu_info.cc.o"
  "CMakeFiles/fts_common.dir/cpu_info.cc.o.d"
  "CMakeFiles/fts_common.dir/env.cc.o"
  "CMakeFiles/fts_common.dir/env.cc.o.d"
  "CMakeFiles/fts_common.dir/random.cc.o"
  "CMakeFiles/fts_common.dir/random.cc.o.d"
  "CMakeFiles/fts_common.dir/stats.cc.o"
  "CMakeFiles/fts_common.dir/stats.cc.o.d"
  "CMakeFiles/fts_common.dir/status.cc.o"
  "CMakeFiles/fts_common.dir/status.cc.o.d"
  "CMakeFiles/fts_common.dir/string_util.cc.o"
  "CMakeFiles/fts_common.dir/string_util.cc.o.d"
  "libfts_common.a"
  "libfts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
