
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fts/common/cpu_info.cc" "src/fts/common/CMakeFiles/fts_common.dir/cpu_info.cc.o" "gcc" "src/fts/common/CMakeFiles/fts_common.dir/cpu_info.cc.o.d"
  "/root/repo/src/fts/common/env.cc" "src/fts/common/CMakeFiles/fts_common.dir/env.cc.o" "gcc" "src/fts/common/CMakeFiles/fts_common.dir/env.cc.o.d"
  "/root/repo/src/fts/common/random.cc" "src/fts/common/CMakeFiles/fts_common.dir/random.cc.o" "gcc" "src/fts/common/CMakeFiles/fts_common.dir/random.cc.o.d"
  "/root/repo/src/fts/common/stats.cc" "src/fts/common/CMakeFiles/fts_common.dir/stats.cc.o" "gcc" "src/fts/common/CMakeFiles/fts_common.dir/stats.cc.o.d"
  "/root/repo/src/fts/common/status.cc" "src/fts/common/CMakeFiles/fts_common.dir/status.cc.o" "gcc" "src/fts/common/CMakeFiles/fts_common.dir/status.cc.o.d"
  "/root/repo/src/fts/common/string_util.cc" "src/fts/common/CMakeFiles/fts_common.dir/string_util.cc.o" "gcc" "src/fts/common/CMakeFiles/fts_common.dir/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
