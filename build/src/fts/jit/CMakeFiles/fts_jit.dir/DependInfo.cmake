
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fts/jit/code_generator.cc" "src/fts/jit/CMakeFiles/fts_jit.dir/code_generator.cc.o" "gcc" "src/fts/jit/CMakeFiles/fts_jit.dir/code_generator.cc.o.d"
  "/root/repo/src/fts/jit/compiler_driver.cc" "src/fts/jit/CMakeFiles/fts_jit.dir/compiler_driver.cc.o" "gcc" "src/fts/jit/CMakeFiles/fts_jit.dir/compiler_driver.cc.o.d"
  "/root/repo/src/fts/jit/jit_cache.cc" "src/fts/jit/CMakeFiles/fts_jit.dir/jit_cache.cc.o" "gcc" "src/fts/jit/CMakeFiles/fts_jit.dir/jit_cache.cc.o.d"
  "/root/repo/src/fts/jit/jit_scan_engine.cc" "src/fts/jit/CMakeFiles/fts_jit.dir/jit_scan_engine.cc.o" "gcc" "src/fts/jit/CMakeFiles/fts_jit.dir/jit_scan_engine.cc.o.d"
  "/root/repo/src/fts/jit/scan_signature.cc" "src/fts/jit/CMakeFiles/fts_jit.dir/scan_signature.cc.o" "gcc" "src/fts/jit/CMakeFiles/fts_jit.dir/scan_signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fts/scan/CMakeFiles/fts_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/simd/CMakeFiles/fts_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/common/CMakeFiles/fts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/storage/CMakeFiles/fts_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
