# Empty dependencies file for fts_jit.
# This may be replaced when dependencies are built.
