file(REMOVE_RECURSE
  "CMakeFiles/fts_jit.dir/code_generator.cc.o"
  "CMakeFiles/fts_jit.dir/code_generator.cc.o.d"
  "CMakeFiles/fts_jit.dir/compiler_driver.cc.o"
  "CMakeFiles/fts_jit.dir/compiler_driver.cc.o.d"
  "CMakeFiles/fts_jit.dir/jit_cache.cc.o"
  "CMakeFiles/fts_jit.dir/jit_cache.cc.o.d"
  "CMakeFiles/fts_jit.dir/jit_scan_engine.cc.o"
  "CMakeFiles/fts_jit.dir/jit_scan_engine.cc.o.d"
  "CMakeFiles/fts_jit.dir/scan_signature.cc.o"
  "CMakeFiles/fts_jit.dir/scan_signature.cc.o.d"
  "libfts_jit.a"
  "libfts_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
