file(REMOVE_RECURSE
  "libfts_jit.a"
)
