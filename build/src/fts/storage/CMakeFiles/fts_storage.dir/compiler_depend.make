# Empty compiler generated dependencies file for fts_storage.
# This may be replaced when dependencies are built.
