file(REMOVE_RECURSE
  "libfts_storage.a"
)
