file(REMOVE_RECURSE
  "CMakeFiles/fts_storage.dir/compare_op.cc.o"
  "CMakeFiles/fts_storage.dir/compare_op.cc.o.d"
  "CMakeFiles/fts_storage.dir/csv_loader.cc.o"
  "CMakeFiles/fts_storage.dir/csv_loader.cc.o.d"
  "CMakeFiles/fts_storage.dir/data_generator.cc.o"
  "CMakeFiles/fts_storage.dir/data_generator.cc.o.d"
  "CMakeFiles/fts_storage.dir/data_type.cc.o"
  "CMakeFiles/fts_storage.dir/data_type.cc.o.d"
  "CMakeFiles/fts_storage.dir/table.cc.o"
  "CMakeFiles/fts_storage.dir/table.cc.o.d"
  "CMakeFiles/fts_storage.dir/table_builder.cc.o"
  "CMakeFiles/fts_storage.dir/table_builder.cc.o.d"
  "CMakeFiles/fts_storage.dir/table_statistics.cc.o"
  "CMakeFiles/fts_storage.dir/table_statistics.cc.o.d"
  "CMakeFiles/fts_storage.dir/value.cc.o"
  "CMakeFiles/fts_storage.dir/value.cc.o.d"
  "libfts_storage.a"
  "libfts_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
