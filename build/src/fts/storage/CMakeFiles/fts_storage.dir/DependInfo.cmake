
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fts/storage/compare_op.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/compare_op.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/compare_op.cc.o.d"
  "/root/repo/src/fts/storage/csv_loader.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/csv_loader.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/csv_loader.cc.o.d"
  "/root/repo/src/fts/storage/data_generator.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/data_generator.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/data_generator.cc.o.d"
  "/root/repo/src/fts/storage/data_type.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/data_type.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/data_type.cc.o.d"
  "/root/repo/src/fts/storage/table.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/table.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/table.cc.o.d"
  "/root/repo/src/fts/storage/table_builder.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/table_builder.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/table_builder.cc.o.d"
  "/root/repo/src/fts/storage/table_statistics.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/table_statistics.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/table_statistics.cc.o.d"
  "/root/repo/src/fts/storage/value.cc" "src/fts/storage/CMakeFiles/fts_storage.dir/value.cc.o" "gcc" "src/fts/storage/CMakeFiles/fts_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fts/common/CMakeFiles/fts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
