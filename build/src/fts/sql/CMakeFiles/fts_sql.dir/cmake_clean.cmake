file(REMOVE_RECURSE
  "CMakeFiles/fts_sql.dir/ast.cc.o"
  "CMakeFiles/fts_sql.dir/ast.cc.o.d"
  "CMakeFiles/fts_sql.dir/lexer.cc.o"
  "CMakeFiles/fts_sql.dir/lexer.cc.o.d"
  "CMakeFiles/fts_sql.dir/parser.cc.o"
  "CMakeFiles/fts_sql.dir/parser.cc.o.d"
  "libfts_sql.a"
  "libfts_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
