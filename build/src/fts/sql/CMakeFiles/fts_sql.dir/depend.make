# Empty dependencies file for fts_sql.
# This may be replaced when dependencies are built.
