file(REMOVE_RECURSE
  "libfts_sql.a"
)
