
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fts/simd/dispatch.cc" "src/fts/simd/CMakeFiles/fts_simd.dir/dispatch.cc.o" "gcc" "src/fts/simd/CMakeFiles/fts_simd.dir/dispatch.cc.o.d"
  "/root/repo/src/fts/simd/kernels_avx2.cc" "src/fts/simd/CMakeFiles/fts_simd.dir/kernels_avx2.cc.o" "gcc" "src/fts/simd/CMakeFiles/fts_simd.dir/kernels_avx2.cc.o.d"
  "/root/repo/src/fts/simd/kernels_avx512.cc" "src/fts/simd/CMakeFiles/fts_simd.dir/kernels_avx512.cc.o" "gcc" "src/fts/simd/CMakeFiles/fts_simd.dir/kernels_avx512.cc.o.d"
  "/root/repo/src/fts/simd/kernels_scalar.cc" "src/fts/simd/CMakeFiles/fts_simd.dir/kernels_scalar.cc.o" "gcc" "src/fts/simd/CMakeFiles/fts_simd.dir/kernels_scalar.cc.o.d"
  "/root/repo/src/fts/simd/scan_stage.cc" "src/fts/simd/CMakeFiles/fts_simd.dir/scan_stage.cc.o" "gcc" "src/fts/simd/CMakeFiles/fts_simd.dir/scan_stage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fts/storage/CMakeFiles/fts_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/common/CMakeFiles/fts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
