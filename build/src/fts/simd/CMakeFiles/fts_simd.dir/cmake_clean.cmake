file(REMOVE_RECURSE
  "CMakeFiles/fts_simd.dir/dispatch.cc.o"
  "CMakeFiles/fts_simd.dir/dispatch.cc.o.d"
  "CMakeFiles/fts_simd.dir/kernels_avx2.cc.o"
  "CMakeFiles/fts_simd.dir/kernels_avx2.cc.o.d"
  "CMakeFiles/fts_simd.dir/kernels_avx512.cc.o"
  "CMakeFiles/fts_simd.dir/kernels_avx512.cc.o.d"
  "CMakeFiles/fts_simd.dir/kernels_scalar.cc.o"
  "CMakeFiles/fts_simd.dir/kernels_scalar.cc.o.d"
  "CMakeFiles/fts_simd.dir/scan_stage.cc.o"
  "CMakeFiles/fts_simd.dir/scan_stage.cc.o.d"
  "libfts_simd.a"
  "libfts_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
