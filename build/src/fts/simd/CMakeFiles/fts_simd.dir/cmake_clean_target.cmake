file(REMOVE_RECURSE
  "libfts_simd.a"
)
