# Empty dependencies file for fts_simd.
# This may be replaced when dependencies are built.
