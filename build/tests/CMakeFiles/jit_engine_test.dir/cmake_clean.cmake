file(REMOVE_RECURSE
  "CMakeFiles/jit_engine_test.dir/jit_engine_test.cc.o"
  "CMakeFiles/jit_engine_test.dir/jit_engine_test.cc.o.d"
  "jit_engine_test"
  "jit_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
