# Empty dependencies file for jit_engine_test.
# This may be replaced when dependencies are built.
