# Empty compiler generated dependencies file for perf_sim_test.
# This may be replaced when dependencies are built.
