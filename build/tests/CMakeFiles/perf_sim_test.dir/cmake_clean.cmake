file(REMOVE_RECURSE
  "CMakeFiles/perf_sim_test.dir/perf_sim_test.cc.o"
  "CMakeFiles/perf_sim_test.dir/perf_sim_test.cc.o.d"
  "perf_sim_test"
  "perf_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
