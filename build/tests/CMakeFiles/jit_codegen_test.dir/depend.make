# Empty dependencies file for jit_codegen_test.
# This may be replaced when dependencies are built.
