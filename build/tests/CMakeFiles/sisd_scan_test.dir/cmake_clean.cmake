file(REMOVE_RECURSE
  "CMakeFiles/sisd_scan_test.dir/sisd_scan_test.cc.o"
  "CMakeFiles/sisd_scan_test.dir/sisd_scan_test.cc.o.d"
  "sisd_scan_test"
  "sisd_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
