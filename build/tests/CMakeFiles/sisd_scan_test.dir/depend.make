# Empty dependencies file for sisd_scan_test.
# This may be replaced when dependencies are built.
