file(REMOVE_RECURSE
  "CMakeFiles/table_scan_test.dir/table_scan_test.cc.o"
  "CMakeFiles/table_scan_test.dir/table_scan_test.cc.o.d"
  "table_scan_test"
  "table_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
