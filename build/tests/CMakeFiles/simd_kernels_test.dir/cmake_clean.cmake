file(REMOVE_RECURSE
  "CMakeFiles/simd_kernels_test.dir/simd_kernels_test.cc.o"
  "CMakeFiles/simd_kernels_test.dir/simd_kernels_test.cc.o.d"
  "simd_kernels_test"
  "simd_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
