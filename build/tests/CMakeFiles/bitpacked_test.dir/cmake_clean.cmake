file(REMOVE_RECURSE
  "CMakeFiles/bitpacked_test.dir/bitpacked_test.cc.o"
  "CMakeFiles/bitpacked_test.dir/bitpacked_test.cc.o.d"
  "bitpacked_test"
  "bitpacked_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitpacked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
