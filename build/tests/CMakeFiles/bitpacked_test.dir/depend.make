# Empty dependencies file for bitpacked_test.
# This may be replaced when dependencies are built.
