# Empty dependencies file for fig5_impl_comparison.
# This may be replaced when dependencies are built.
