file(REMOVE_RECURSE
  "CMakeFiles/fig5_impl_comparison.dir/fig5_impl_comparison.cc.o"
  "CMakeFiles/fig5_impl_comparison.dir/fig5_impl_comparison.cc.o.d"
  "fig5_impl_comparison"
  "fig5_impl_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_impl_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
