file(REMOVE_RECURSE
  "CMakeFiles/fig7_predicate_count.dir/fig7_predicate_count.cc.o"
  "CMakeFiles/fig7_predicate_count.dir/fig7_predicate_count.cc.o.d"
  "fig7_predicate_count"
  "fig7_predicate_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_predicate_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
