# Empty dependencies file for fig7_predicate_count.
# This may be replaced when dependencies are built.
