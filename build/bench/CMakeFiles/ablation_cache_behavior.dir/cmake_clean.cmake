file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_behavior.dir/ablation_cache_behavior.cc.o"
  "CMakeFiles/ablation_cache_behavior.dir/ablation_cache_behavior.cc.o.d"
  "ablation_cache_behavior"
  "ablation_cache_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
