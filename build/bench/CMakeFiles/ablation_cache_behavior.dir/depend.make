# Empty dependencies file for ablation_cache_behavior.
# This may be replaced when dependencies are built.
