# Empty compiler generated dependencies file for fig2_bandwidth_ceiling.
# This may be replaced when dependencies are built.
