file(REMOVE_RECURSE
  "CMakeFiles/fig2_bandwidth_ceiling.dir/fig2_bandwidth_ceiling.cc.o"
  "CMakeFiles/fig2_bandwidth_ceiling.dir/fig2_bandwidth_ceiling.cc.o.d"
  "fig2_bandwidth_ceiling"
  "fig2_bandwidth_ceiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bandwidth_ceiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
