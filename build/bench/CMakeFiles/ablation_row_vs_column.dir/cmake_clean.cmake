file(REMOVE_RECURSE
  "CMakeFiles/ablation_row_vs_column.dir/ablation_row_vs_column.cc.o"
  "CMakeFiles/ablation_row_vs_column.dir/ablation_row_vs_column.cc.o.d"
  "ablation_row_vs_column"
  "ablation_row_vs_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_row_vs_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
