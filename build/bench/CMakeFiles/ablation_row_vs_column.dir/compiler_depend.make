# Empty compiler generated dependencies file for ablation_row_vs_column.
# This may be replaced when dependencies are built.
