file(REMOVE_RECURSE
  "CMakeFiles/fig6_branch_misses.dir/fig6_branch_misses.cc.o"
  "CMakeFiles/fig6_branch_misses.dir/fig6_branch_misses.cc.o.d"
  "fig6_branch_misses"
  "fig6_branch_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_branch_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
