# Empty dependencies file for fig6_branch_misses.
# This may be replaced when dependencies are built.
