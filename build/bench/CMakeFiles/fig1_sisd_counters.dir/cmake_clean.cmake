file(REMOVE_RECURSE
  "CMakeFiles/fig1_sisd_counters.dir/fig1_sisd_counters.cc.o"
  "CMakeFiles/fig1_sisd_counters.dir/fig1_sisd_counters.cc.o.d"
  "fig1_sisd_counters"
  "fig1_sisd_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sisd_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
