# Empty compiler generated dependencies file for fig1_sisd_counters.
# This may be replaced when dependencies are built.
