
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_sisd_counters.cc" "bench/CMakeFiles/fig1_sisd_counters.dir/fig1_sisd_counters.cc.o" "gcc" "bench/CMakeFiles/fig1_sisd_counters.dir/fig1_sisd_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fts/db/CMakeFiles/fts_db.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/plan/CMakeFiles/fts_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/jit/CMakeFiles/fts_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/scan/CMakeFiles/fts_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/perf/CMakeFiles/fts_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/simd/CMakeFiles/fts_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/sql/CMakeFiles/fts_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/storage/CMakeFiles/fts_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/fts/common/CMakeFiles/fts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
