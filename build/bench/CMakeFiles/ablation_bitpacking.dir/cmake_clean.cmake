file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitpacking.dir/ablation_bitpacking.cc.o"
  "CMakeFiles/ablation_bitpacking.dir/ablation_bitpacking.cc.o.d"
  "ablation_bitpacking"
  "ablation_bitpacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitpacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
