# Empty dependencies file for ablation_bitpacking.
# This may be replaced when dependencies are built.
