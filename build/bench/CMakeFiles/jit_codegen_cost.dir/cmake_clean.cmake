file(REMOVE_RECURSE
  "CMakeFiles/jit_codegen_cost.dir/jit_codegen_cost.cc.o"
  "CMakeFiles/jit_codegen_cost.dir/jit_codegen_cost.cc.o.d"
  "jit_codegen_cost"
  "jit_codegen_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_codegen_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
