# Empty compiler generated dependencies file for jit_codegen_cost.
# This may be replaced when dependencies are built.
