#!/usr/bin/env bash
# CI gate: build and run the tier-1 test suite in two configurations.
#
#   1. plain       -- cmake default flags, `ctest -L tier1`
#   2. sanitizer   -- -DFTS_SANITIZE=thread, `ctest -L concurrency` plus
#                     the encoding fuzzers (property_test,
#                     encoding_roundtrip_test) whose differential cases
#                     drive RLE/FoR/delta chunks through the parallel
#                     executor; JIT-compiled operators are dlopen'd
#                     uninstrumented code, so JIT cases self-skip
#
# Usage: scripts/run_tier1.sh [--skip-tsan]
#
# Environment:
#   FTS_TIER1_BUILD_DIR   plain build dir   (default: build-tier1)
#   FTS_TSAN_BUILD_DIR    TSan build dir    (default: build-tsan)
#   FTS_TIER1_JOBS        parallel build/ctest jobs (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${FTS_TIER1_JOBS:-$(nproc)}"
PLAIN_DIR="${FTS_TIER1_BUILD_DIR:-build-tier1}"
TSAN_DIR="${FTS_TSAN_BUILD_DIR:-build-tsan}"
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "==> plain config: ${PLAIN_DIR}"
cmake -S . -B "${PLAIN_DIR}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PLAIN_DIR}" -j "${JOBS}"
ctest --test-dir "${PLAIN_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

if [[ "${SKIP_TSAN}" == "1" ]]; then
  echo "==> sanitizer config skipped (--skip-tsan)"
  exit 0
fi

echo "==> sanitizer config (FTS_SANITIZE=thread): ${TSAN_DIR}"
cmake -S . -B "${TSAN_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFTS_SANITIZE=thread >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target task_pool_test \
  differential_test agg_pushdown_test zone_pruning_test metrics_test \
  trace_test query_log_test cancellation_fuzz_test cost_model_test \
  projection_differential_test property_test encoding_roundtrip_test
ctest --test-dir "${TSAN_DIR}" -L concurrency -j "${JOBS}" \
  --output-on-failure
# The encoding fuzzers are tier1-labelled (not concurrency), but their
# multi-thread differential cases are exactly the races TSan should see;
# run them in this config too.
ctest --test-dir "${TSAN_DIR}" -j "${JOBS}" \
  -R "property_test|encoding_roundtrip_test" --output-on-failure

echo "==> tier-1 gate green (plain + thread sanitizer)"
