#include "fts/simd/kernels_scalar.h"

#include "fts/common/macros.h"

namespace fts {

size_t FusedScanScalar(const ScanStage* stages, size_t num_stages,
                       size_t row_count, uint32_t* out) {
  FTS_CHECK(num_stages >= 1);
  size_t matches = 0;
  for (size_t row = 0; row < row_count; ++row) {
    bool all = true;
    for (size_t s = 0; s < num_stages; ++s) {
      if (!EvaluateStageAtRow(stages[s], row)) {
        all = false;
        break;
      }
    }
    if (all) out[matches++] = static_cast<uint32_t>(row);
  }
  return matches;
}

size_t FusedScanScalarCount(const ScanStage* stages, size_t num_stages,
                            size_t row_count) {
  FTS_CHECK(num_stages >= 1);
  size_t matches = 0;
  for (size_t row = 0; row < row_count; ++row) {
    bool all = true;
    for (size_t s = 0; s < num_stages; ++s) {
      if (!EvaluateStageAtRow(stages[s], row)) {
        all = false;
        break;
      }
    }
    matches += all ? 1 : 0;
  }
  return matches;
}

size_t FusedAggScanScalar(const ScanStage* stages, size_t num_stages,
                          size_t row_count, const AggTerm* terms,
                          size_t num_terms, AggAccumulator* accs) {
  FTS_CHECK(num_terms <= kMaxAggTerms);
  size_t matches = 0;
  for (size_t row = 0; row < row_count; ++row) {
    bool all = true;
    for (size_t s = 0; s < num_stages; ++s) {
      if (!EvaluateStageAtRow(stages[s], row)) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    ++matches;
    for (size_t t = 0; t < num_terms; ++t) {
      FoldRowScalar(terms[t], row, accs[t]);
    }
  }
  return matches;
}

}  // namespace fts
