#include "fts/common/cpu_info.h"
#include "fts/simd/minmax_kernels.h"

namespace fts {

const char* MinMaxKernelKindToString(MinMaxKernelKind kind) {
  switch (kind) {
    case MinMaxKernelKind::kScalar:
      return "scalar";
    case MinMaxKernelKind::kAvx2:
      return "avx2";
    case MinMaxKernelKind::kAvx512:
      return "avx512";
  }
  return "?";
}

const MinMaxKernels* GetMinMaxKernels(MinMaxKernelKind kind) {
  const CpuFeatures& cpu = GetCpuFeatures();
  switch (kind) {
    case MinMaxKernelKind::kScalar:
      return GetScalarMinMaxKernels();
    case MinMaxKernelKind::kAvx2:
      return cpu.avx2 ? GetAvx2MinMaxKernels() : nullptr;
    case MinMaxKernelKind::kAvx512:
      return cpu.HasFusedScanAvx512() ? GetAvx512MinMaxKernels() : nullptr;
  }
  return nullptr;
}

MinMaxKernelKind BestMinMaxKernel() {
  const CpuFeatures& cpu = GetCpuFeatures();
  if (cpu.HasFusedScanAvx512()) return MinMaxKernelKind::kAvx512;
  if (cpu.avx2) return MinMaxKernelKind::kAvx2;
  return MinMaxKernelKind::kScalar;
}

}  // namespace fts
