#ifndef FTS_SIMD_AGG_SPEC_H_
#define FTS_SIMD_AGG_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "fts/simd/scan_stage.h"

namespace fts {

// Aggregate operations the fused kernels fold inside the scan loop. AVG is
// lowered to SUM + COUNT by the planner before reaching this layer.
enum class AggOp : uint8_t {
  kCount = 0,
  kSum,
  kMin,
  kMax,
};

const char* AggOpToString(AggOp op);

// Value domain of a term after decode. Selects which accumulator fields the
// term uses and the widening rule: signed/unsigned integers fold into
// wrapping 64-bit integer lanes, floats into double.
enum class AggDomain : uint8_t {
  kSigned = 0,
  kUnsigned,
  kFloat,
};

// One aggregate folded inside the scan loop. For kCount, `data` is null and
// the remaining fields are ignored. Dictionary-encoded columns point `data`
// at the u32 code vector (or at the packed byte stream when `packed_bits`
// is non-zero) and `dict` at a decode table widened to 8 bytes per entry —
// int64_t for kSigned, uint64_t for kUnsigned, double for kFloat — indexed
// by code. Plain columns leave `dict` null and are read directly per
// `type`.
struct AggTerm {
  AggOp op = AggOp::kCount;
  const void* data = nullptr;
  ScanElementType type = ScanElementType::kI32;
  uint8_t packed_bits = 0;     // Non-zero: bit-packed u32 codes.
  const void* dict = nullptr;  // Non-null: widened decode table.
  AggDomain domain = AggDomain::kSigned;
};

// Maximum aggregate terms per fused scan, mirroring kMaxScanStages.
inline constexpr size_t kMaxAggTerms = 8;

// Partial aggregate state for one term. Every field is 8 bytes and the
// struct has no padding, so the JIT engine can emit a mirror struct with
// identical layout in generated code (a static_assert there pins sizeof).
// Integer sums wrap mod 2^64 — exact for any input once the finalizer
// reinterprets the bits per domain; float sums accumulate in double.
// Merge is domain-agnostic: only the fields a term's op/domain pair uses
// are ever read back, so merging all of them is harmless.
struct AggAccumulator {
  uint64_t count = 0;
  uint64_t sum_bits = 0;
  double sum_double = 0.0;
  int64_t min_i = std::numeric_limits<int64_t>::max();
  int64_t max_i = std::numeric_limits<int64_t>::min();
  uint64_t min_u = std::numeric_limits<uint64_t>::max();
  uint64_t max_u = 0;
  double min_d = std::numeric_limits<double>::infinity();
  double max_d = -std::numeric_limits<double>::infinity();

  void Merge(const AggAccumulator& o) {
    count += o.count;
    sum_bits += o.sum_bits;
    sum_double += o.sum_double;
    if (o.min_i < min_i) min_i = o.min_i;
    if (o.max_i > max_i) max_i = o.max_i;
    if (o.min_u < min_u) min_u = o.min_u;
    if (o.max_u > max_u) max_u = o.max_u;
    if (o.min_d < min_d) min_d = o.min_d;
    if (o.max_d > max_d) max_d = o.max_d;
  }
};

static_assert(sizeof(AggAccumulator) == 9 * 8,
              "generated JIT code mirrors this layout field-for-field");

// Extracts the b-bit code of logical element `row` from a bit-packed byte
// stream (same windowed read as EvaluateStageAtRow; requires the stream's
// kBitPackedSlackBytes padding).
inline uint32_t ExtractPackedCode(const void* data, uint8_t bits,
                                  size_t row) {
  const auto* packed = static_cast<const uint8_t*>(data);
  const size_t bit_offset = row * bits;
  uint64_t window;
  __builtin_memcpy(&window, packed + (bit_offset >> 3), sizeof(window));
  return static_cast<uint32_t>((window >> (bit_offset & 7)) &
                               ((1ull << bits) - 1));
}

// Domain-typed folds (value only; `count` is maintained by the caller —
// SIMD sinks add one popcount per emitted mask instead of one increment
// per row).
inline void FoldSigned(AggOp op, int64_t v, AggAccumulator& acc) {
  switch (op) {
    case AggOp::kSum:
      acc.sum_bits += static_cast<uint64_t>(v);
      break;
    case AggOp::kMin:
      if (v < acc.min_i) acc.min_i = v;
      break;
    case AggOp::kMax:
      if (v > acc.max_i) acc.max_i = v;
      break;
    case AggOp::kCount:
      break;
  }
}

inline void FoldUnsigned(AggOp op, uint64_t v, AggAccumulator& acc) {
  switch (op) {
    case AggOp::kSum:
      acc.sum_bits += v;
      break;
    case AggOp::kMin:
      if (v < acc.min_u) acc.min_u = v;
      break;
    case AggOp::kMax:
      if (v > acc.max_u) acc.max_u = v;
      break;
    case AggOp::kCount:
      break;
  }
}

inline void FoldFloat(AggOp op, double v, AggAccumulator& acc) {
  switch (op) {
    case AggOp::kSum:
      acc.sum_double += v;
      break;
    case AggOp::kMin:
      if (v < acc.min_d) acc.min_d = v;
      break;
    case AggOp::kMax:
      if (v > acc.max_d) acc.max_d = v;
      break;
    case AggOp::kCount:
      break;
  }
}

// Folds the term's decoded value at `row` into `acc` without touching
// `count`. Used by SIMD sinks for the cases they handle scalar (dictionary
// and bit-packed terms) and by the scalar kernel for every row.
inline void FoldValueAtRow(const AggTerm& term, size_t row,
                           AggAccumulator& acc) {
  if (term.op == AggOp::kCount) return;
  if (term.dict != nullptr) {
    const uint32_t code =
        term.packed_bits != 0
            ? ExtractPackedCode(term.data, term.packed_bits, row)
            : static_cast<const uint32_t*>(term.data)[row];
    switch (term.domain) {
      case AggDomain::kSigned:
        FoldSigned(term.op, static_cast<const int64_t*>(term.dict)[code],
                   acc);
        return;
      case AggDomain::kUnsigned:
        FoldUnsigned(term.op, static_cast<const uint64_t*>(term.dict)[code],
                     acc);
        return;
      case AggDomain::kFloat:
        FoldFloat(term.op, static_cast<const double*>(term.dict)[code], acc);
        return;
    }
    __builtin_unreachable();
  }
  switch (term.type) {
    case ScanElementType::kI32:
      FoldSigned(term.op, static_cast<const int32_t*>(term.data)[row], acc);
      return;
    case ScanElementType::kU32:
      FoldUnsigned(term.op, static_cast<const uint32_t*>(term.data)[row],
                   acc);
      return;
    case ScanElementType::kF32:
      FoldFloat(term.op, static_cast<const float*>(term.data)[row], acc);
      return;
    case ScanElementType::kI64:
      FoldSigned(term.op, static_cast<const int64_t*>(term.data)[row], acc);
      return;
    case ScanElementType::kU64:
      FoldUnsigned(term.op, static_cast<const uint64_t*>(term.data)[row],
                   acc);
      return;
    case ScanElementType::kF64:
      FoldFloat(term.op, static_cast<const double*>(term.data)[row], acc);
      return;
  }
  __builtin_unreachable();
}

// Scalar fold of one matching row (count + value) — the semantic reference
// every SIMD/JIT fold is verified against.
inline void FoldRowScalar(const AggTerm& term, size_t row,
                          AggAccumulator& acc) {
  acc.count += 1;
  FoldValueAtRow(term, row, acc);
}

// Aggregate kernel contract shared by the scalar, AVX2, AVX-512 and JIT
// implementations: evaluate the conjunction of `stages` (num_stages may be
// 0, meaning every row matches — possible when zone maps drop every
// conjunct as tautological but a SUM still forces the scan), fold each
// surviving row into the per-term accumulators, return the match count.
// No position list is ever materialized.
using FusedAggScanFn = size_t (*)(const ScanStage* stages, size_t num_stages,
                                  size_t row_count, const AggTerm* terms,
                                  size_t num_terms, AggAccumulator* accs);

}  // namespace fts

#endif  // FTS_SIMD_AGG_SPEC_H_
