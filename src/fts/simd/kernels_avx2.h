#ifndef FTS_SIMD_KERNELS_AVX2_H_
#define FTS_SIMD_KERNELS_AVX2_H_

#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// "AVX2 Fused (128)" from the paper's Fig. 5: the Fused Table Scan with
// every AVX-512 instruction replaced by its AVX2 equivalent. What AVX-512
// does in one instruction becomes several here:
//   - k-masks        -> vector masks + MOVMSKPS
//   - vpcompressd    -> 16-entry PSHUFB shuffle-mask lookup table (the
//                       paper's 32-line _mmX_mask_compress_epi32 backport)
//   - vpexpandd      -> PSHUFB lane shift + PBLENDVB against a lane-count
//                       mask table
//   - masked compare -> compare + PAND
// Gathers exist in AVX2 (_mm_mask_i32gather_epi32) and are used directly.
//
// Requires AVX2 at runtime (check GetCpuFeatures().avx2).
size_t FusedScanAvx2_128(const ScanStage* stages, size_t num_stages,
                         size_t row_count, uint32_t* out);

// Aggregate-pushdown variant: the predicate chain runs SIMD, survivors of
// each final mask are folded scalar into the per-term accumulators (AVX2
// lacks the masked min/max + compress primitives the AVX-512 fold uses).
// Accepts num_stages == 0 (all rows match).
size_t FusedAggScanAvx2_128(const ScanStage* stages, size_t num_stages,
                            size_t row_count, const AggTerm* terms,
                            size_t num_terms, AggAccumulator* accs);

}  // namespace fts

#endif  // FTS_SIMD_KERNELS_AVX2_H_
