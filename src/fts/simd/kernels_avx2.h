#ifndef FTS_SIMD_KERNELS_AVX2_H_
#define FTS_SIMD_KERNELS_AVX2_H_

#include "fts/simd/scan_stage.h"

namespace fts {

// "AVX2 Fused (128)" from the paper's Fig. 5: the Fused Table Scan with
// every AVX-512 instruction replaced by its AVX2 equivalent. What AVX-512
// does in one instruction becomes several here:
//   - k-masks        -> vector masks + MOVMSKPS
//   - vpcompressd    -> 16-entry PSHUFB shuffle-mask lookup table (the
//                       paper's 32-line _mmX_mask_compress_epi32 backport)
//   - vpexpandd      -> PSHUFB lane shift + PBLENDVB against a lane-count
//                       mask table
//   - masked compare -> compare + PAND
// Gathers exist in AVX2 (_mm_mask_i32gather_epi32) and are used directly.
//
// Requires AVX2 at runtime (check GetCpuFeatures().avx2).
size_t FusedScanAvx2_128(const ScanStage* stages, size_t num_stages,
                         size_t row_count, uint32_t* out);

}  // namespace fts

#endif  // FTS_SIMD_KERNELS_AVX2_H_
