#include <immintrin.h>

#include <algorithm>

#include "fts/simd/minmax_kernels.h"

// Compiled with -mavx2 (see CMakeLists.txt); never executed unless the
// dispatcher confirmed CPUID.

namespace fts {
namespace minmax_detail {
// Shared scalar packed reduction (minmax_scalar.cc) — reused as the tail.
void ScalarPackedMinMax(const uint8_t* packed, size_t rows, int bits,
                        uint32_t* min, uint32_t* max);
}  // namespace minmax_detail

namespace {

// AVX2 has no 256-bit horizontal reductions; accumulators are spilled to a
// small stack array at the very end (that is the final reduction, not an
// unpacked copy of the data).

template <typename T>
void ReduceLanes(__m256i vlo, __m256i vhi, T* lo, T* hi) {
  alignas(32) T lanes_lo[32 / sizeof(T)];
  alignas(32) T lanes_hi[32 / sizeof(T)];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_lo), vlo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_hi), vhi);
  for (size_t l = 0; l < 32 / sizeof(T); ++l) {
    if (lanes_lo[l] < *lo) *lo = lanes_lo[l];
    if (lanes_hi[l] > *hi) *hi = lanes_hi[l];
  }
}

bool MinMaxI32(const int32_t* data, size_t rows, int32_t* min, int32_t* max) {
  __m256i vlo = _mm256_set1_epi32(data[0]);
  __m256i vhi = vlo;
  size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    vlo = _mm256_min_epi32(vlo, v);
    vhi = _mm256_max_epi32(vhi, v);
  }
  int32_t lo = data[0];
  int32_t hi = data[0];
  ReduceLanes(vlo, vhi, &lo, &hi);
  for (; i < rows; ++i) {
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxU32(const uint32_t* data, size_t rows, uint32_t* min,
               uint32_t* max) {
  __m256i vlo = _mm256_set1_epi32(static_cast<int>(data[0]));
  __m256i vhi = vlo;
  size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    vlo = _mm256_min_epu32(vlo, v);
    vhi = _mm256_max_epu32(vhi, v);
  }
  uint32_t lo = data[0];
  uint32_t hi = data[0];
  ReduceLanes(vlo, vhi, &lo, &hi);
  for (; i < rows; ++i) {
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxF32(const float* data, size_t rows, float* min, float* max) {
  __m256 vlo = _mm256_set1_ps(data[0]);
  __m256 vhi = vlo;
  __m256 unordered = _mm256_cmp_ps(vlo, vlo, _CMP_UNORD_Q);
  size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    const __m256 v = _mm256_loadu_ps(data + i);
    unordered = _mm256_or_ps(unordered, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    vlo = _mm256_min_ps(vlo, v);
    vhi = _mm256_max_ps(vhi, v);
  }
  if (_mm256_movemask_ps(unordered) != 0) return false;
  alignas(32) float lanes_lo[8];
  alignas(32) float lanes_hi[8];
  _mm256_store_ps(lanes_lo, vlo);
  _mm256_store_ps(lanes_hi, vhi);
  float lo = data[0];
  float hi = data[0];
  for (int l = 0; l < 8; ++l) {
    if (lanes_lo[l] < lo) lo = lanes_lo[l];
    if (lanes_hi[l] > hi) hi = lanes_hi[l];
  }
  for (; i < rows; ++i) {
    if (std::isnan(data[i])) return false;
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxF64(const double* data, size_t rows, double* min, double* max) {
  __m256d vlo = _mm256_set1_pd(data[0]);
  __m256d vhi = vlo;
  __m256d unordered = _mm256_cmp_pd(vlo, vlo, _CMP_UNORD_Q);
  size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const __m256d v = _mm256_loadu_pd(data + i);
    unordered = _mm256_or_pd(unordered, _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
    vlo = _mm256_min_pd(vlo, v);
    vhi = _mm256_max_pd(vhi, v);
  }
  if (_mm256_movemask_pd(unordered) != 0) return false;
  alignas(32) double lanes_lo[4];
  alignas(32) double lanes_hi[4];
  _mm256_store_pd(lanes_lo, vlo);
  _mm256_store_pd(lanes_hi, vhi);
  double lo = data[0];
  double hi = data[0];
  for (int l = 0; l < 4; ++l) {
    if (lanes_lo[l] < lo) lo = lanes_lo[l];
    if (lanes_hi[l] > hi) hi = lanes_hi[l];
  }
  for (; i < rows; ++i) {
    if (std::isnan(data[i])) return false;
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

// Bit-packed code reduction, AVX2 flavour of the AVX-512 dataflow: 8 rows
// per iteration, two 4-lane byte-granular window gathers
// (vpgatherqq-by-dword-index), variable shift, mask — codes stay in
// registers, no unpacked temporary buffer. kBitPackedSlackBytes keeps the
// window loads in bounds.
void PackedMinMax(const uint8_t* packed, size_t rows, int bits,
                  uint32_t* min, uint32_t* max) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const __m256i vmask64 = _mm256_set1_epi64x(static_cast<long long>(mask));
  // Min-neutral init is the largest possible code (all accumulation below
  // uses signed 64-bit compares, valid because codes are at most 26 bits).
  __m256i acc_lo = vmask64;
  __m256i acc_hi = _mm256_setzero_si256();

  size_t i = 0;
  if (rows >= 8) {
    const __m256i vbits = _mm256_set1_epi32(bits);
    const __m256i seven = _mm256_set1_epi32(7);
    __m256i row_vec = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi32(8);
    // AVX2 lacks unsigned 64-bit min/max; codes are at most 26 bits, so
    // signed epi64 compares order them correctly.
    for (; i + 8 <= rows; i += 8) {
      const __m256i bit_offset = _mm256_mullo_epi32(row_vec, vbits);
      const __m256i byte_offset = _mm256_srli_epi32(bit_offset, 3);
      const __m256i shift32 = _mm256_and_si256(bit_offset, seven);

      const __m256i window_lo = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(packed),
          _mm256_castsi256_si128(byte_offset), 1);
      const __m256i codes_lo = _mm256_and_si256(
          _mm256_srlv_epi64(window_lo,
                            _mm256_cvtepu32_epi64(
                                _mm256_castsi256_si128(shift32))),
          vmask64);

      const __m256i window_hi = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(packed),
          _mm256_extracti128_si256(byte_offset, 1), 1);
      const __m256i codes_hi = _mm256_and_si256(
          _mm256_srlv_epi64(window_hi,
                            _mm256_cvtepu32_epi64(
                                _mm256_extracti128_si256(shift32, 1))),
          vmask64);

      const __m256i lo_pair = _mm256_blendv_epi8(
          codes_lo, codes_hi, _mm256_cmpgt_epi64(codes_lo, codes_hi));
      const __m256i hi_pair = _mm256_blendv_epi8(
          codes_hi, codes_lo, _mm256_cmpgt_epi64(codes_lo, codes_hi));
      acc_lo = _mm256_blendv_epi8(acc_lo, lo_pair,
                                  _mm256_cmpgt_epi64(acc_lo, lo_pair));
      acc_hi = _mm256_blendv_epi8(acc_hi, hi_pair,
                                  _mm256_cmpgt_epi64(hi_pair, acc_hi));
      row_vec = _mm256_add_epi32(row_vec, step);
    }
  }

  uint32_t lo = ~uint32_t{0};
  uint32_t hi = 0;
  if (i > 0) {
    alignas(32) uint64_t lanes_lo[4];
    alignas(32) uint64_t lanes_hi[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_lo), acc_lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_hi), acc_hi);
    for (int l = 0; l < 4; ++l) {
      lo = std::min(lo, static_cast<uint32_t>(lanes_lo[l]));
      hi = std::max(hi, static_cast<uint32_t>(lanes_hi[l]));
    }
  }
  if (i < rows) {
    uint32_t tail_lo;
    uint32_t tail_hi;
    minmax_detail::ScalarPackedMinMax(
        packed + (i * static_cast<size_t>(bits)) / 8, rows - i, bits,
        &tail_lo, &tail_hi);
    lo = std::min(lo, tail_lo);
    hi = std::max(hi, tail_hi);
  }
  *min = lo;
  *max = hi;
}

const MinMaxKernels kAvx2Kernels = {
    &MinMaxI32,          &MinMaxU32,
    &ScalarMinMax<int64_t>,  // AVX2 lacks 64-bit integer min/max.
    &ScalarMinMax<uint64_t>,
    &MinMaxF32,          &MinMaxF64,
    &PackedMinMax,
};

}  // namespace

const MinMaxKernels* GetAvx2MinMaxKernels() { return &kAvx2Kernels; }

}  // namespace fts
