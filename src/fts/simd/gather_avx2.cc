// AVX2 batch-gather kernels (compiled with -mavx2; reached behind the
// GetCpuFeatures().avx2 dispatch gate). AVX2 has no fault-suppressing
// partial masks, so the loops run full 8- or 4-lane groups and hand the
// tail to the scalar reference — the tail is at most 7 rows, noise next
// to the gather itself.

#include <immintrin.h>

#include "fts/simd/gather_kernels.h"

namespace fts {
namespace {

// Lane indices 0,2,4,6 of an epi64 vector viewed as epi32 — compacts four
// 64-bit code lanes into four 32-bit lanes (the epi64->epi32 truncation
// AVX-512 gets from cvtepi64_epi32).
inline __m128i TruncateEpi64ToEpi32(__m256i v) {
  const __m256i packed = _mm256_permutevar8x32_epi32(
      v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  return _mm256_castsi256_si128(packed);
}

void GatherPlain32(const void* data, const uint32_t* positions, size_t n,
                   void* out) {
  auto* dst = static_cast<uint32_t*>(out);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(positions + i));
    const __m256i vals =
        _mm256_i32gather_epi32(static_cast<const int*>(data), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vals);
  }
  if (i < n) {
    GatherTerm tail;
    tail.data = data;
    tail.type = ScanElementType::kU32;
    GatherScalar(tail, positions + i, n - i, dst + i);
  }
}

void GatherPlain64(const void* data, const uint32_t* positions, size_t n,
                   void* out) {
  auto* dst = static_cast<uint64_t*>(out);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(positions + i));
    const __m256i vals = _mm256_i32gather_epi64(
        static_cast<const long long*>(data), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vals);
  }
  if (i < n) {
    GatherTerm tail;
    tail.data = data;
    tail.type = ScanElementType::kU64;
    GatherScalar(tail, positions + i, n - i, dst + i);
  }
}

void GatherCodes32(const GatherTerm& term, const uint32_t* positions,
                   size_t n, void* out) {
  auto* dst = static_cast<uint32_t*>(out);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(positions + i));
    const __m256i codes = _mm256_i32gather_epi32(
        static_cast<const int*>(term.data), idx, 4);
    const __m256i vals = _mm256_i32gather_epi32(
        static_cast<const int*>(term.dict), codes, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vals);
  }
  if (i < n) GatherScalar(term, positions + i, n - i, dst + i);
}

void GatherCodes64(const GatherTerm& term, const uint32_t* positions,
                   size_t n, void* out) {
  auto* dst = static_cast<uint64_t*>(out);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(positions + i));
    const __m128i codes = _mm_i32gather_epi32(
        static_cast<const int*>(term.data), idx, 4);
    const __m256i vals = _mm256_i32gather_epi64(
        static_cast<const long long*>(term.dict), codes, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), vals);
  }
  if (i < n) GatherScalar(term, positions + i, n - i, dst + i);
}

// Bit-packed codes, 4 lanes per iteration: byte-granular window gather
// (scale-1 i32gather_epi64 into the slack-padded stream), variable shift,
// mask — then dictionary translation or frame-of-reference rebase.
void GatherPacked(const GatherTerm& term, const uint32_t* positions,
                  size_t n, void* out) {
  const __m256i bit_mask =
      _mm256_set1_epi64x((uint64_t{1} << term.packed_bits) - 1);
  const __m256i base =
      _mm256_set1_epi64x(static_cast<long long>(term.base_bits));
  const __m128i bits = _mm_set1_epi32(term.packed_bits);
  const __m128i seven = _mm_set1_epi32(7);
  const bool wide = GatherElementIs64(term.type);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(positions + i));
    const __m128i bit_off = _mm_mullo_epi32(idx, bits);
    const __m128i byte_off = _mm_srli_epi32(bit_off, 3);
    const __m128i shift32 = _mm_and_si128(bit_off, seven);
    const __m256i windows = _mm256_i32gather_epi64(
        static_cast<const long long*>(term.data), byte_off, 1);
    const __m256i shift64 = _mm256_cvtepu32_epi64(shift32);
    const __m256i codes64 = _mm256_and_si256(
        _mm256_srlv_epi64(windows, shift64), bit_mask);
    if (term.dict != nullptr) {
      const __m128i codes32 = TruncateEpi64ToEpi32(codes64);
      if (wide) {
        const __m256i vals = _mm256_i32gather_epi64(
            static_cast<const long long*>(term.dict), codes32, 8);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(static_cast<uint64_t*>(out) + i),
            vals);
      } else {
        const __m128i vals = _mm_i32gather_epi32(
            static_cast<const int*>(term.dict), codes32, 4);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(static_cast<uint32_t*>(out) + i),
            vals);
      }
      continue;
    }
    const __m256i vals = _mm256_add_epi64(codes64, base);
    if (wide) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(static_cast<uint64_t*>(out) + i),
          vals);
    } else {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(static_cast<uint32_t*>(out) + i),
          TruncateEpi64ToEpi32(vals));
    }
  }
  if (i < n) {
    GatherScalar(term, positions + i, n - i,
                 wide ? static_cast<void*>(static_cast<uint64_t*>(out) + i)
                      : static_cast<void*>(static_cast<uint32_t*>(out) + i));
  }
}

}  // namespace

void GatherAvx2(const GatherTerm& term, const uint32_t* positions,
                size_t n, void* out) {
  if (n == 0) return;
  if (term.packed_bits != 0) {
    GatherPacked(term, positions, n, out);
    return;
  }
  const bool wide = GatherElementIs64(term.type);
  if (term.dict != nullptr) {
    if (wide) {
      GatherCodes64(term, positions, n, out);
    } else {
      GatherCodes32(term, positions, n, out);
    }
    return;
  }
  if (wide) {
    GatherPlain64(term.data, positions, n, out);
  } else {
    GatherPlain32(term.data, positions, n, out);
  }
}

}  // namespace fts
