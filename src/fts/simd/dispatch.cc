#include "fts/simd/dispatch.h"

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/simd/gather_kernels.h"
#include "fts/simd/kernels_avx2.h"
#include "fts/simd/kernels_avx512.h"
#include "fts/simd/kernels_scalar.h"

namespace fts {

const char* FusedKernelKindToString(FusedKernelKind kind) {
  switch (kind) {
    case FusedKernelKind::kScalar:
      return "Scalar Fused";
    case FusedKernelKind::kAvx2_128:
      return "AVX2 Fused (128)";
    case FusedKernelKind::kAvx512_128:
      return "AVX-512 Fused (128)";
    case FusedKernelKind::kAvx512_256:
      return "AVX-512 Fused (256)";
    case FusedKernelKind::kAvx512_512:
      return "AVX-512 Fused (512)";
  }
  return "?";
}

StatusOr<FusedScanFn> GetFusedScanKernel(FusedKernelKind kind) {
  const CpuFeatures& cpu = GetCpuFeatures();
  switch (kind) {
    case FusedKernelKind::kScalar:
      return FusedScanFn{&FusedScanScalar};
    case FusedKernelKind::kAvx2_128:
      if (!cpu.avx2) {
        return Status::Unavailable("CPU does not support AVX2");
      }
      return FusedScanFn{&FusedScanAvx2_128};
    case FusedKernelKind::kAvx512_128:
    case FusedKernelKind::kAvx512_256:
    case FusedKernelKind::kAvx512_512:
      if (!cpu.HasFusedScanAvx512()) {
        return Status::Unavailable(StrFormat(
            "CPU lacks AVX-512 F/BW/DQ/VL (detected: %s)",
            cpu.ToString().c_str()));
      }
      if (kind == FusedKernelKind::kAvx512_128) {
        return FusedScanFn{&FusedScanAvx512_128};
      }
      if (kind == FusedKernelKind::kAvx512_256) {
        return FusedScanFn{&FusedScanAvx512_256};
      }
      return FusedScanFn{&FusedScanAvx512_512};
  }
  return Status::InvalidArgument("unknown kernel kind");
}

StatusOr<FusedAggScanFn> GetFusedAggKernel(FusedKernelKind kind) {
  const CpuFeatures& cpu = GetCpuFeatures();
  switch (kind) {
    case FusedKernelKind::kScalar:
      return FusedAggScanFn{&FusedAggScanScalar};
    case FusedKernelKind::kAvx2_128:
      if (!cpu.avx2) {
        return Status::Unavailable("CPU does not support AVX2");
      }
      return FusedAggScanFn{&FusedAggScanAvx2_128};
    case FusedKernelKind::kAvx512_128:
    case FusedKernelKind::kAvx512_256:
    case FusedKernelKind::kAvx512_512:
      if (!cpu.HasFusedScanAvx512()) {
        return Status::Unavailable(StrFormat(
            "CPU lacks AVX-512 F/BW/DQ/VL (detected: %s)",
            cpu.ToString().c_str()));
      }
      if (kind == FusedKernelKind::kAvx512_128) {
        return FusedAggScanFn{&FusedAggScanAvx512_128};
      }
      if (kind == FusedKernelKind::kAvx512_256) {
        return FusedAggScanFn{&FusedAggScanAvx512_256};
      }
      return FusedAggScanFn{&FusedAggScanAvx512_512};
  }
  return Status::InvalidArgument("unknown kernel kind");
}

StatusOr<GatherFn> GetGatherKernel(FusedKernelKind kind) {
  const CpuFeatures& cpu = GetCpuFeatures();
  switch (kind) {
    case FusedKernelKind::kScalar:
      return GatherFn{&GatherScalar};
    case FusedKernelKind::kAvx2_128:
      if (!cpu.avx2) {
        return Status::Unavailable("CPU does not support AVX2");
      }
      return GatherFn{&GatherAvx2};
    case FusedKernelKind::kAvx512_128:
    case FusedKernelKind::kAvx512_256:
    case FusedKernelKind::kAvx512_512:
      if (!cpu.HasFusedScanAvx512()) {
        return Status::Unavailable(StrFormat(
            "CPU lacks AVX-512 F/BW/DQ/VL (detected: %s)",
            cpu.ToString().c_str()));
      }
      return GatherFn{&GatherAvx512};
  }
  return Status::InvalidArgument("unknown kernel kind");
}

FusedKernelKind BestAvailableKernel() {
  const CpuFeatures& cpu = GetCpuFeatures();
  if (cpu.HasFusedScanAvx512()) return FusedKernelKind::kAvx512_512;
  if (cpu.avx2) return FusedKernelKind::kAvx2_128;
  return FusedKernelKind::kScalar;
}

std::vector<FusedKernelKind> AvailableKernels() {
  const CpuFeatures& cpu = GetCpuFeatures();
  std::vector<FusedKernelKind> kinds = {FusedKernelKind::kScalar};
  if (cpu.avx2) kinds.push_back(FusedKernelKind::kAvx2_128);
  if (cpu.HasFusedScanAvx512()) {
    kinds.push_back(FusedKernelKind::kAvx512_128);
    kinds.push_back(FusedKernelKind::kAvx512_256);
    kinds.push_back(FusedKernelKind::kAvx512_512);
  }
  return kinds;
}

}  // namespace fts
