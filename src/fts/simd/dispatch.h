#ifndef FTS_SIMD_DISPATCH_H_
#define FTS_SIMD_DISPATCH_H_

#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/simd/agg_spec.h"
#include "fts/simd/gather_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// The scan implementations the paper evaluates (Fig. 5), plus the portable
// scalar fallback. "Sisd" engines live in fts/scan (they implement the
// naive tuple-at-a-time loop, not the fused contract).
enum class FusedKernelKind : uint8_t {
  kScalar = 0,      // Portable reference.
  kAvx2_128,        // "AVX2 Fused (128)".
  kAvx512_128,      // "AVX-512 Fused (128)".
  kAvx512_256,      // "AVX-512 Fused (256)".
  kAvx512_512,      // "AVX-512 Fused (512)".
};

const char* FusedKernelKindToString(FusedKernelKind kind);

// Returns the kernel for `kind`, or an error when the CPU lacks the
// required instruction set.
StatusOr<FusedScanFn> GetFusedScanKernel(FusedKernelKind kind);

// Returns the aggregate-pushdown kernel for `kind` (same availability
// rules as GetFusedScanKernel).
StatusOr<FusedAggScanFn> GetFusedAggKernel(FusedKernelKind kind);

// Returns the batch-gather kernel for `kind` (same availability rules).
// The three AVX-512 widths share one gather implementation: gathers are
// indexed loads, so there is no narrow-register variant worth keeping.
StatusOr<GatherFn> GetGatherKernel(FusedKernelKind kind);

// The fastest kernel available on this CPU (AVX-512 512-bit when present,
// else AVX2, else scalar).
FusedKernelKind BestAvailableKernel();

// All kernel kinds usable on this CPU, in ascending capability order.
std::vector<FusedKernelKind> AvailableKernels();

}  // namespace fts

#endif  // FTS_SIMD_DISPATCH_H_
