#include "fts/simd/agg_spec.h"
#include "fts/simd/fused_chain_avx512.h"
#include "fts/simd/kernels_avx512.h"

// Aggregate-pushdown kernels: the fused chain from fused_chain_avx512.h
// feeding an AggSink that gathers the aggregate columns under the final
// predicate mask and folds them into vector accumulators — COUNT via
// popcount, SUM via widening masked adds into 64-bit lanes, MIN/MAX via
// masked vmin/vmax — with one horizontal reduction per chunk at the end.
// No position list is ever materialized.
//
// Compiled with -mavx512f -mavx512bw -mavx512dq -mavx512vl (see
// CMakeLists.txt). The sink always folds at 512 bits: narrower chain
// widths zero-extend their (mask, positions) pairs, so the fold logic is
// written once. Dictionary and bit-packed terms compress the surviving
// positions to a 16-slot stack buffer and fold scalar — the predicate
// chain stays fully SIMD either way.

namespace fts {
namespace {

using avx512_detail::EmitAllRows;
using avx512_detail::FusedChain;
using avx512_detail::WidthTraits;

// How one term is folded per emitted survivor set. 32-bit integer sums
// widen into 64-bit lanes *before* adding (no 32-bit lane can ever
// overflow); unsigned and signed differ only in the widening instruction.
// i64/u64 sums share a kind: both are wrapping 64-bit adds.
enum class FoldKind : uint8_t {
  kCountOnly = 0,
  kSumI32,
  kSumU32,
  kSumF32,
  kSumI64,
  kSumF64,
  kMinI32,
  kMaxI32,
  kMinU32,
  kMaxU32,
  kMinF32,
  kMaxF32,
  kMinI64,
  kMaxI64,
  kMinU64,
  kMaxU64,
  kMinF64,
  kMaxF64,
  kScalarFold,  // Dictionary / bit-packed: compress + scalar fold.
};

FoldKind ClassifyTerm(const AggTerm& term) {
  if (term.op == AggOp::kCount || term.data == nullptr) {
    return FoldKind::kCountOnly;
  }
  if (term.dict != nullptr || term.packed_bits != 0) {
    return FoldKind::kScalarFold;
  }
  switch (term.op) {
    case AggOp::kSum:
      switch (term.type) {
        case ScanElementType::kI32:
          return FoldKind::kSumI32;
        case ScanElementType::kU32:
          return FoldKind::kSumU32;
        case ScanElementType::kF32:
          return FoldKind::kSumF32;
        case ScanElementType::kI64:
        case ScanElementType::kU64:
          return FoldKind::kSumI64;
        case ScanElementType::kF64:
          return FoldKind::kSumF64;
      }
      break;
    case AggOp::kMin:
    case AggOp::kMax: {
      const bool is_min = term.op == AggOp::kMin;
      switch (term.type) {
        case ScanElementType::kI32:
          return is_min ? FoldKind::kMinI32 : FoldKind::kMaxI32;
        case ScanElementType::kU32:
          return is_min ? FoldKind::kMinU32 : FoldKind::kMaxU32;
        case ScanElementType::kF32:
          return is_min ? FoldKind::kMinF32 : FoldKind::kMaxF32;
        case ScanElementType::kI64:
          return is_min ? FoldKind::kMinI64 : FoldKind::kMaxI64;
        case ScanElementType::kU64:
          return is_min ? FoldKind::kMinU64 : FoldKind::kMaxU64;
        case ScanElementType::kF64:
          return is_min ? FoldKind::kMinF64 : FoldKind::kMaxF64;
      }
      break;
    }
    case AggOp::kCount:
      break;
  }
  return FoldKind::kScalarFold;
}

// Vector accumulators for one term. Only the register the kind uses is
// ever read; the others stay at their init value.
struct TermState {
  FoldKind kind = FoldKind::kCountOnly;
  __m512i vi;
  __m512d vd;
  __m512 vf;
};

template <int kBits>
class AggSink {
  using Traits = WidthTraits<kBits>;
  using VecI = typename Traits::VecI;

 public:
  AggSink(const AggTerm* terms, size_t num_terms, AggAccumulator* accs)
      : terms_(terms), num_terms_(num_terms), accs_(accs) {
    FTS_CHECK(num_terms <= kMaxAggTerms);
    for (size_t t = 0; t < num_terms; ++t) {
      TermState& st = state_[t];
      st.kind = ClassifyTerm(terms[t]);
      st.vi = _mm512_setzero_si512();
      st.vd = _mm512_setzero_pd();
      st.vf = _mm512_setzero_ps();
      switch (st.kind) {
        case FoldKind::kMinI32:
          st.vi = _mm512_set1_epi32(INT32_MAX);
          break;
        case FoldKind::kMaxI32:
          st.vi = _mm512_set1_epi32(INT32_MIN);
          break;
        case FoldKind::kMinU32:
        case FoldKind::kMinU64:
          st.vi = _mm512_set1_epi32(-1);  // All-ones: unsigned max.
          break;
        case FoldKind::kMinI64:
          st.vi = _mm512_set1_epi64(INT64_MAX);
          break;
        case FoldKind::kMaxI64:
          st.vi = _mm512_set1_epi64(INT64_MIN);
          break;
        case FoldKind::kMinF32:
          st.vf = _mm512_set1_ps(__builtin_inff());
          break;
        case FoldKind::kMaxF32:
          st.vf = _mm512_set1_ps(-__builtin_inff());
          break;
        case FoldKind::kMinF64:
          st.vd = _mm512_set1_pd(__builtin_inf());
          break;
        case FoldKind::kMaxF64:
          st.vd = _mm512_set1_pd(-__builtin_inf());
          break;
        default:
          break;  // Sums / count / unsigned max start at zero.
      }
    }
  }

  // Folds the survivors selected by `m` among `positions` into every
  // term's vector accumulators. Widened to 512 bits so one fold body
  // serves all three chain widths.
  void Emit(uint32_t m, VecI positions) {
    matches_ += static_cast<size_t>(__builtin_popcount(m));
    const __mmask16 k = static_cast<__mmask16>(m);
    const __m512i pos = Traits::ZeroExtendTo512(positions);
    const __mmask8 klo = static_cast<__mmask8>(m & 0xFF);
    const __mmask8 khi = static_cast<__mmask8>(m >> 8);
    const __m256i idx_lo = _mm512_castsi512_si256(pos);
    const __m256i idx_hi = _mm512_extracti64x4_epi64(pos, 1);
    const __m512i zero = _mm512_setzero_si512();

    for (size_t t = 0; t < num_terms_; ++t) {
      TermState& st = state_[t];
      const void* base = terms_[t].data;
      switch (st.kind) {
        case FoldKind::kCountOnly:
          break;
        case FoldKind::kSumI32: {
          const __m512i g =
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4);
          st.vi = _mm512_add_epi64(
              st.vi, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(g)));
          st.vi = _mm512_add_epi64(
              st.vi,
              _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(g, 1)));
          break;
        }
        case FoldKind::kSumU32: {
          const __m512i g =
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4);
          st.vi = _mm512_add_epi64(
              st.vi, _mm512_cvtepu32_epi64(_mm512_castsi512_si256(g)));
          st.vi = _mm512_add_epi64(
              st.vi,
              _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(g, 1)));
          break;
        }
        case FoldKind::kSumF32: {
          // maskz gather zeroes inactive lanes; adding 0.0 is a no-op, so
          // no extra masking is needed on the accumulate.
          const __m512 g = _mm512_castsi512_ps(
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4));
          st.vd = _mm512_add_pd(
              st.vd, _mm512_cvtps_pd(_mm512_castps512_ps256(g)));
          st.vd = _mm512_add_pd(
              st.vd, _mm512_cvtps_pd(_mm512_extractf32x8_ps(g, 1)));
          break;
        }
        case FoldKind::kSumI64: {
          const __m512i glo =
              _mm512_mask_i32gather_epi64(zero, klo, idx_lo, base, 8);
          const __m512i ghi =
              _mm512_mask_i32gather_epi64(zero, khi, idx_hi, base, 8);
          st.vi = _mm512_add_epi64(st.vi, _mm512_add_epi64(glo, ghi));
          break;
        }
        case FoldKind::kSumF64: {
          const __m512d glo = _mm512_mask_i32gather_pd(
              _mm512_setzero_pd(), klo, idx_lo, base, 8);
          const __m512d ghi = _mm512_mask_i32gather_pd(
              _mm512_setzero_pd(), khi, idx_hi, base, 8);
          st.vd = _mm512_add_pd(st.vd, _mm512_add_pd(glo, ghi));
          break;
        }
        case FoldKind::kMinI32: {
          const __m512i g =
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4);
          st.vi = _mm512_mask_min_epi32(st.vi, k, st.vi, g);
          break;
        }
        case FoldKind::kMaxI32: {
          const __m512i g =
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4);
          st.vi = _mm512_mask_max_epi32(st.vi, k, st.vi, g);
          break;
        }
        case FoldKind::kMinU32: {
          const __m512i g =
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4);
          st.vi = _mm512_mask_min_epu32(st.vi, k, st.vi, g);
          break;
        }
        case FoldKind::kMaxU32: {
          const __m512i g =
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4);
          st.vi = _mm512_mask_max_epu32(st.vi, k, st.vi, g);
          break;
        }
        case FoldKind::kMinF32: {
          const __m512 g = _mm512_castsi512_ps(
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4));
          st.vf = _mm512_mask_min_ps(st.vf, k, st.vf, g);
          break;
        }
        case FoldKind::kMaxF32: {
          const __m512 g = _mm512_castsi512_ps(
              _mm512_mask_i32gather_epi32(zero, k, pos, base, 4));
          st.vf = _mm512_mask_max_ps(st.vf, k, st.vf, g);
          break;
        }
        case FoldKind::kMinI64: {
          const __m512i glo =
              _mm512_mask_i32gather_epi64(zero, klo, idx_lo, base, 8);
          const __m512i ghi =
              _mm512_mask_i32gather_epi64(zero, khi, idx_hi, base, 8);
          st.vi = _mm512_mask_min_epi64(st.vi, klo, st.vi, glo);
          st.vi = _mm512_mask_min_epi64(st.vi, khi, st.vi, ghi);
          break;
        }
        case FoldKind::kMaxI64: {
          const __m512i glo =
              _mm512_mask_i32gather_epi64(zero, klo, idx_lo, base, 8);
          const __m512i ghi =
              _mm512_mask_i32gather_epi64(zero, khi, idx_hi, base, 8);
          st.vi = _mm512_mask_max_epi64(st.vi, klo, st.vi, glo);
          st.vi = _mm512_mask_max_epi64(st.vi, khi, st.vi, ghi);
          break;
        }
        case FoldKind::kMinU64: {
          const __m512i glo =
              _mm512_mask_i32gather_epi64(zero, klo, idx_lo, base, 8);
          const __m512i ghi =
              _mm512_mask_i32gather_epi64(zero, khi, idx_hi, base, 8);
          st.vi = _mm512_mask_min_epu64(st.vi, klo, st.vi, glo);
          st.vi = _mm512_mask_min_epu64(st.vi, khi, st.vi, ghi);
          break;
        }
        case FoldKind::kMaxU64: {
          const __m512i glo =
              _mm512_mask_i32gather_epi64(zero, klo, idx_lo, base, 8);
          const __m512i ghi =
              _mm512_mask_i32gather_epi64(zero, khi, idx_hi, base, 8);
          st.vi = _mm512_mask_max_epu64(st.vi, klo, st.vi, glo);
          st.vi = _mm512_mask_max_epu64(st.vi, khi, st.vi, ghi);
          break;
        }
        case FoldKind::kMinF64: {
          const __m512d glo = _mm512_mask_i32gather_pd(
              _mm512_setzero_pd(), klo, idx_lo, base, 8);
          const __m512d ghi = _mm512_mask_i32gather_pd(
              _mm512_setzero_pd(), khi, idx_hi, base, 8);
          st.vd = _mm512_mask_min_pd(st.vd, klo, st.vd, glo);
          st.vd = _mm512_mask_min_pd(st.vd, khi, st.vd, ghi);
          break;
        }
        case FoldKind::kMaxF64: {
          const __m512d glo = _mm512_mask_i32gather_pd(
              _mm512_setzero_pd(), klo, idx_lo, base, 8);
          const __m512d ghi = _mm512_mask_i32gather_pd(
              _mm512_setzero_pd(), khi, idx_hi, base, 8);
          st.vd = _mm512_mask_max_pd(st.vd, klo, st.vd, glo);
          st.vd = _mm512_mask_max_pd(st.vd, khi, st.vd, ghi);
          break;
        }
        case FoldKind::kScalarFold: {
          alignas(64) uint32_t buf[16];
          _mm512_mask_compressstoreu_epi32(buf, k, pos);
          const int n = __builtin_popcount(m);
          for (int i = 0; i < n; ++i) {
            FoldValueAtRow(terms_[t], buf[i], accs_[t]);
          }
          break;
        }
      }
    }
  }

  // Horizontal reductions into the caller's accumulators; returns the
  // match count. Min/max reductions are guarded on matches > 0 so the
  // identity lanes never leak into an empty result.
  size_t Finalize() {
    for (size_t t = 0; t < num_terms_; ++t) {
      TermState& st = state_[t];
      AggAccumulator& acc = accs_[t];
      acc.count += matches_;
      switch (st.kind) {
        case FoldKind::kSumI32:
        case FoldKind::kSumU32:
        case FoldKind::kSumI64:
          acc.sum_bits +=
              static_cast<uint64_t>(_mm512_reduce_add_epi64(st.vi));
          break;
        case FoldKind::kSumF32:
        case FoldKind::kSumF64:
          acc.sum_double += _mm512_reduce_add_pd(st.vd);
          break;
        case FoldKind::kMinI32:
          if (matches_ > 0) {
            FoldSigned(AggOp::kMin, _mm512_reduce_min_epi32(st.vi), acc);
          }
          break;
        case FoldKind::kMaxI32:
          if (matches_ > 0) {
            FoldSigned(AggOp::kMax, _mm512_reduce_max_epi32(st.vi), acc);
          }
          break;
        case FoldKind::kMinU32:
          if (matches_ > 0) {
            FoldUnsigned(AggOp::kMin, _mm512_reduce_min_epu32(st.vi), acc);
          }
          break;
        case FoldKind::kMaxU32:
          if (matches_ > 0) {
            FoldUnsigned(AggOp::kMax, _mm512_reduce_max_epu32(st.vi), acc);
          }
          break;
        case FoldKind::kMinF32:
          if (matches_ > 0) {
            FoldFloat(AggOp::kMin, _mm512_reduce_min_ps(st.vf), acc);
          }
          break;
        case FoldKind::kMaxF32:
          if (matches_ > 0) {
            FoldFloat(AggOp::kMax, _mm512_reduce_max_ps(st.vf), acc);
          }
          break;
        case FoldKind::kMinI64:
          if (matches_ > 0) {
            FoldSigned(AggOp::kMin, _mm512_reduce_min_epi64(st.vi), acc);
          }
          break;
        case FoldKind::kMaxI64:
          if (matches_ > 0) {
            FoldSigned(AggOp::kMax, _mm512_reduce_max_epi64(st.vi), acc);
          }
          break;
        case FoldKind::kMinU64:
          if (matches_ > 0) {
            FoldUnsigned(AggOp::kMin, _mm512_reduce_min_epu64(st.vi), acc);
          }
          break;
        case FoldKind::kMaxU64:
          if (matches_ > 0) {
            FoldUnsigned(AggOp::kMax, _mm512_reduce_max_epu64(st.vi), acc);
          }
          break;
        case FoldKind::kMinF64:
          if (matches_ > 0) {
            FoldFloat(AggOp::kMin, _mm512_reduce_min_pd(st.vd), acc);
          }
          break;
        case FoldKind::kMaxF64:
          if (matches_ > 0) {
            FoldFloat(AggOp::kMax, _mm512_reduce_max_pd(st.vd), acc);
          }
          break;
        case FoldKind::kCountOnly:
        case FoldKind::kScalarFold:
          break;  // Count handled above; scalar folds went direct.
      }
    }
    return matches_;
  }

 private:
  const AggTerm* terms_;
  size_t num_terms_;
  AggAccumulator* accs_;
  TermState state_[kMaxAggTerms];
  size_t matches_ = 0;
};

template <int kBits>
size_t FusedAggScanAvx512(const ScanStage* stages, size_t num_stages,
                          size_t row_count, const AggTerm* terms,
                          size_t num_terms, AggAccumulator* accs) {
  if (row_count == 0) return 0;
  for (size_t s = 0; s < num_stages; ++s) {
    if (stages[s].packed_bits != 0) {
      FTS_CHECK(row_count * stages[s].packed_bits <
                (uint64_t{1} << 32));
    }
  }
  AggSink<kBits> sink(terms, num_terms, accs);
  if (num_stages == 0) {
    // Every conjunct was dropped as tautological, but the aggregate still
    // needs the column values: feed every row to the sink.
    avx512_detail::EmitAllRows<kBits>(row_count, sink);
  } else {
    FusedChain<kBits, AggSink<kBits>> chain(stages, num_stages, sink);
    chain.Run(row_count);
  }
  return sink.Finalize();
}

}  // namespace

size_t FusedAggScanAvx512_512(const ScanStage* stages, size_t num_stages,
                              size_t row_count, const AggTerm* terms,
                              size_t num_terms, AggAccumulator* accs) {
  return FusedAggScanAvx512<512>(stages, num_stages, row_count, terms,
                                 num_terms, accs);
}

size_t FusedAggScanAvx512_256(const ScanStage* stages, size_t num_stages,
                              size_t row_count, const AggTerm* terms,
                              size_t num_terms, AggAccumulator* accs) {
  return FusedAggScanAvx512<256>(stages, num_stages, row_count, terms,
                                 num_terms, accs);
}

size_t FusedAggScanAvx512_128(const ScanStage* stages, size_t num_stages,
                              size_t row_count, const AggTerm* terms,
                              size_t num_terms, AggAccumulator* accs) {
  return FusedAggScanAvx512<128>(stages, num_stages, row_count, terms,
                                 num_terms, accs);
}

}  // namespace fts
