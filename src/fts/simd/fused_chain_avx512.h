#ifndef FTS_SIMD_FUSED_CHAIN_AVX512_H_
#define FTS_SIMD_FUSED_CHAIN_AVX512_H_

// The AVX-512 fused-chain dataflow (Fig. 3), shared by the position-list
// kernels (kernels_avx512.cc) and the aggregate-pushdown kernels
// (agg_kernels_avx512.cc). The chain is templated on a Sink that receives
// the final predicate's survivors as (mask, position-register) pairs —
// a position-list sink compress-stores them, an aggregate sink gathers the
// aggregate columns under the mask and folds into vector accumulators.
//
// ONLY include this header from translation units compiled with
//   -mavx512f -mavx512bw -mavx512dq -mavx512vl
// (see simd/CMakeLists.txt); it emits AVX-512 instructions unconditionally.

#include <immintrin.h>

#include "fts/common/macros.h"
#include "fts/simd/scan_stage.h"

namespace fts {
namespace avx512_detail {

// Width traits: one implementation of the Fig. 3 dataflow, instantiated at
// 512/256/128 bits. Lane masks are passed around as uint32_t and cast to
// the intrinsic mask type at the call boundary.
template <int kBits>
struct WidthTraits;

template <>
struct WidthTraits<512> {
  using VecI = __m512i;
  static constexpr int kLanes32 = 16;

  static VecI Zero() { return _mm512_setzero_si512(); }
  static VecI Set1_32(uint32_t v) {
    return _mm512_set1_epi32(static_cast<int>(v));
  }
  static VecI Set1_64(uint64_t v) {
    return _mm512_set1_epi64(static_cast<long long>(v));
  }
  static VecI FirstIndices() {
    return _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                             14, 15);
  }
  static VecI Add32(VecI a, VecI b) { return _mm512_add_epi32(a, b); }
  static VecI LoadU(const void* p) { return _mm512_loadu_si512(p); }
  static VecI MaskzLoad32(uint32_t k, const void* p) {
    return _mm512_maskz_loadu_epi32(static_cast<__mmask16>(k), p);
  }
  static VecI MaskzCompress32(uint32_t k, VecI v) {
    return _mm512_maskz_compress_epi32(static_cast<__mmask16>(k), v);
  }
  // Appends the dense lanes of `vals` after the first `count` lanes of
  // `acc`: a single vpexpandd replaces the paper's permutex2var +
  // mask_compress pair.
  static VecI Append32(VecI acc, int count, VecI vals) {
    const auto k = static_cast<__mmask16>(0xFFFFu << count);
    return _mm512_mask_expand_epi32(acc, k, vals);
  }
  static void CompressStore32(void* p, uint32_t k, VecI v) {
    _mm512_mask_compressstoreu_epi32(p, static_cast<__mmask16>(k), v);
  }
  static VecI Gather32(uint32_t k, VecI idx, const void* base) {
    return _mm512_mask_i32gather_epi32(Zero(), static_cast<__mmask16>(k),
                                       idx, base, 4);
  }
  // 64-bit gather of the low/high half of a 32-bit index vector.
  static VecI Gather64Lo(uint32_t k, VecI idx, const void* base) {
    return _mm512_mask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                       _mm512_castsi512_si256(idx), base, 8);
  }
  static VecI Gather64Hi(uint32_t k, VecI idx, const void* base) {
    return _mm512_mask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                       _mm512_extracti64x4_epi64(idx, 1),
                                       base, 8);
  }
  // Byte-granular (scale 1) window gathers for bit-packed streams.
  static VecI Gather64LoBytes(uint32_t k, VecI byte_idx, const void* base) {
    return _mm512_mask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                       _mm512_castsi512_si256(byte_idx),
                                       base, 1);
  }
  static VecI Gather64HiBytes(uint32_t k, VecI byte_idx, const void* base) {
    return _mm512_mask_i32gather_epi64(
        Zero(), static_cast<__mmask8>(k),
        _mm512_extracti64x4_epi64(byte_idx, 1), base, 1);
  }
  static VecI Mullo32(VecI a, VecI b) { return _mm512_mullo_epi32(a, b); }
  static VecI Srli32_3(VecI v) { return _mm512_srli_epi32(v, 3); }
  static VecI And(VecI a, VecI b) { return _mm512_and_si512(a, b); }
  static VecI Srlv64(VecI v, VecI counts) {
    return _mm512_srlv_epi64(v, counts);
  }
  // Zero-extends the low/high 32-bit half into 64-bit lanes.
  static VecI WidenLo32(VecI v) {
    return _mm512_cvtepu32_epi64(_mm512_castsi512_si256(v));
  }
  static VecI WidenHi32(VecI v) {
    return _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(v, 1));
  }
  // Zero-extends the register into the low lanes of a zmm (identity at
  // 512 bits) — the aggregate sink folds at full width regardless of the
  // chain's register width.
  static __m512i ZeroExtendTo512(VecI v) { return v; }

  template <int kImm>
  static uint32_t CmpI32(uint32_t k, VecI a, VecI b) {
    return _mm512_mask_cmp_epi32_mask(static_cast<__mmask16>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpU32(uint32_t k, VecI a, VecI b) {
    return _mm512_mask_cmp_epu32_mask(static_cast<__mmask16>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpF32(uint32_t k, VecI a, VecI b) {
    return _mm512_mask_cmp_ps_mask(static_cast<__mmask16>(k),
                                   _mm512_castsi512_ps(a),
                                   _mm512_castsi512_ps(b), kImm);
  }
  template <int kImm>
  static uint32_t CmpI64(uint32_t k, VecI a, VecI b) {
    return _mm512_mask_cmp_epi64_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpU64(uint32_t k, VecI a, VecI b) {
    return _mm512_mask_cmp_epu64_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpF64(uint32_t k, VecI a, VecI b) {
    return _mm512_mask_cmp_pd_mask(static_cast<__mmask8>(k),
                                   _mm512_castsi512_pd(a),
                                   _mm512_castsi512_pd(b), kImm);
  }
  static VecI MaskzLoad64(uint32_t k, const void* p) {
    return _mm512_maskz_loadu_epi64(static_cast<__mmask8>(k), p);
  }
};

template <>
struct WidthTraits<256> {
  using VecI = __m256i;
  static constexpr int kLanes32 = 8;

  static VecI Zero() { return _mm256_setzero_si256(); }
  static VecI Set1_32(uint32_t v) {
    return _mm256_set1_epi32(static_cast<int>(v));
  }
  static VecI Set1_64(uint64_t v) {
    return _mm256_set1_epi64x(static_cast<long long>(v));
  }
  static VecI FirstIndices() {
    return _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  }
  static VecI Add32(VecI a, VecI b) { return _mm256_add_epi32(a, b); }
  static VecI LoadU(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  static VecI MaskzLoad32(uint32_t k, const void* p) {
    return _mm256_maskz_loadu_epi32(static_cast<__mmask8>(k), p);
  }
  static VecI MaskzCompress32(uint32_t k, VecI v) {
    return _mm256_maskz_compress_epi32(static_cast<__mmask8>(k), v);
  }
  static VecI Append32(VecI acc, int count, VecI vals) {
    const auto k = static_cast<__mmask8>(0xFFu << count);
    return _mm256_mask_expand_epi32(acc, k, vals);
  }
  static void CompressStore32(void* p, uint32_t k, VecI v) {
    _mm256_mask_compressstoreu_epi32(p, static_cast<__mmask8>(k), v);
  }
  static VecI Gather32(uint32_t k, VecI idx, const void* base) {
    return _mm256_mmask_i32gather_epi32(Zero(), static_cast<__mmask8>(k),
                                        idx, base, 4);
  }
  static VecI Gather64Lo(uint32_t k, VecI idx, const void* base) {
    return _mm256_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                        _mm256_castsi256_si128(idx), base, 8);
  }
  static VecI Gather64Hi(uint32_t k, VecI idx, const void* base) {
    return _mm256_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                        _mm256_extracti128_si256(idx, 1),
                                        base, 8);
  }
  static VecI Gather64LoBytes(uint32_t k, VecI byte_idx, const void* base) {
    return _mm256_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                        _mm256_castsi256_si128(byte_idx),
                                        base, 1);
  }
  static VecI Gather64HiBytes(uint32_t k, VecI byte_idx, const void* base) {
    return _mm256_mmask_i32gather_epi64(
        Zero(), static_cast<__mmask8>(k),
        _mm256_extracti128_si256(byte_idx, 1), base, 1);
  }
  static VecI Mullo32(VecI a, VecI b) { return _mm256_mullo_epi32(a, b); }
  static VecI Srli32_3(VecI v) { return _mm256_srli_epi32(v, 3); }
  static VecI And(VecI a, VecI b) { return _mm256_and_si256(a, b); }
  static VecI Srlv64(VecI v, VecI counts) {
    return _mm256_srlv_epi64(v, counts);
  }
  static VecI WidenLo32(VecI v) {
    return _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
  }
  static VecI WidenHi32(VecI v) {
    return _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
  }
  static __m512i ZeroExtendTo512(VecI v) {
    return _mm512_zextsi256_si512(v);
  }

  template <int kImm>
  static uint32_t CmpI32(uint32_t k, VecI a, VecI b) {
    return _mm256_mask_cmp_epi32_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpU32(uint32_t k, VecI a, VecI b) {
    return _mm256_mask_cmp_epu32_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpF32(uint32_t k, VecI a, VecI b) {
    return _mm256_mask_cmp_ps_mask(static_cast<__mmask8>(k),
                                   _mm256_castsi256_ps(a),
                                   _mm256_castsi256_ps(b), kImm);
  }
  template <int kImm>
  static uint32_t CmpI64(uint32_t k, VecI a, VecI b) {
    return _mm256_mask_cmp_epi64_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpU64(uint32_t k, VecI a, VecI b) {
    return _mm256_mask_cmp_epu64_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpF64(uint32_t k, VecI a, VecI b) {
    return _mm256_mask_cmp_pd_mask(static_cast<__mmask8>(k),
                                   _mm256_castsi256_pd(a),
                                   _mm256_castsi256_pd(b), kImm);
  }
  static VecI MaskzLoad64(uint32_t k, const void* p) {
    return _mm256_maskz_loadu_epi64(static_cast<__mmask8>(k), p);
  }
};

template <>
struct WidthTraits<128> {
  using VecI = __m128i;
  static constexpr int kLanes32 = 4;

  static VecI Zero() { return _mm_setzero_si128(); }
  static VecI Set1_32(uint32_t v) {
    return _mm_set1_epi32(static_cast<int>(v));
  }
  static VecI Set1_64(uint64_t v) {
    return _mm_set1_epi64x(static_cast<long long>(v));
  }
  static VecI FirstIndices() { return _mm_setr_epi32(0, 1, 2, 3); }
  static VecI Add32(VecI a, VecI b) { return _mm_add_epi32(a, b); }
  static VecI LoadU(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  static VecI MaskzLoad32(uint32_t k, const void* p) {
    return _mm_maskz_loadu_epi32(static_cast<__mmask8>(k), p);
  }
  static VecI MaskzCompress32(uint32_t k, VecI v) {
    return _mm_maskz_compress_epi32(static_cast<__mmask8>(k), v);
  }
  static VecI Append32(VecI acc, int count, VecI vals) {
    const auto k = static_cast<__mmask8>((0xFu << count) & 0xFu);
    return _mm_mask_expand_epi32(acc, k, vals);
  }
  static void CompressStore32(void* p, uint32_t k, VecI v) {
    _mm_mask_compressstoreu_epi32(p, static_cast<__mmask8>(k), v);
  }
  static VecI Gather32(uint32_t k, VecI idx, const void* base) {
    return _mm_mmask_i32gather_epi32(Zero(), static_cast<__mmask8>(k), idx,
                                     base, 4);
  }
  static VecI Gather64Lo(uint32_t k, VecI idx, const void* base) {
    return _mm_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k), idx,
                                     base, 8);
  }
  static VecI Gather64Hi(uint32_t k, VecI idx, const void* base) {
    // Move lanes 2,3 of idx into lanes 0,1 for the second 2-wide gather.
    return _mm_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                     _mm_unpackhi_epi64(idx, idx), base, 8);
  }
  static VecI Gather64LoBytes(uint32_t k, VecI byte_idx, const void* base) {
    return _mm_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                     byte_idx, base, 1);
  }
  static VecI Gather64HiBytes(uint32_t k, VecI byte_idx, const void* base) {
    return _mm_mmask_i32gather_epi64(Zero(), static_cast<__mmask8>(k),
                                     _mm_unpackhi_epi64(byte_idx, byte_idx),
                                     base, 1);
  }
  static VecI Mullo32(VecI a, VecI b) { return _mm_mullo_epi32(a, b); }
  static VecI Srli32_3(VecI v) { return _mm_srli_epi32(v, 3); }
  static VecI And(VecI a, VecI b) { return _mm_and_si128(a, b); }
  static VecI Srlv64(VecI v, VecI counts) {
    return _mm_srlv_epi64(v, counts);
  }
  static VecI WidenLo32(VecI v) { return _mm_cvtepu32_epi64(v); }
  static VecI WidenHi32(VecI v) {
    return _mm_cvtepu32_epi64(_mm_unpackhi_epi64(v, v));
  }
  static __m512i ZeroExtendTo512(VecI v) {
    return _mm512_zextsi128_si512(v);
  }

  template <int kImm>
  static uint32_t CmpI32(uint32_t k, VecI a, VecI b) {
    return _mm_mask_cmp_epi32_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpU32(uint32_t k, VecI a, VecI b) {
    return _mm_mask_cmp_epu32_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpF32(uint32_t k, VecI a, VecI b) {
    return _mm_mask_cmp_ps_mask(static_cast<__mmask8>(k),
                                _mm_castsi128_ps(a), _mm_castsi128_ps(b),
                                kImm);
  }
  template <int kImm>
  static uint32_t CmpI64(uint32_t k, VecI a, VecI b) {
    return _mm_mask_cmp_epi64_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpU64(uint32_t k, VecI a, VecI b) {
    return _mm_mask_cmp_epu64_mask(static_cast<__mmask8>(k), a, b, kImm);
  }
  template <int kImm>
  static uint32_t CmpF64(uint32_t k, VecI a, VecI b) {
    return _mm_mask_cmp_pd_mask(static_cast<__mmask8>(k),
                                _mm_castsi128_pd(a), _mm_castsi128_pd(b),
                                kImm);
  }
  static VecI MaskzLoad64(uint32_t k, const void* p) {
    return _mm_maskz_loadu_epi64(static_cast<__mmask8>(k), p);
  }
};

// Integer comparison immediates follow _MM_CMPINT_* and equal the CompareOp
// enum values (see compare_op.h). Float immediates use the ordered/
// unordered variants that match C++ scalar semantics on NaN: ==, <, <=,
// >, >= are false when either operand is NaN; != is true.
template <typename Traits>
uint32_t CompareMasked32(ScanElementType type, CompareOp op, uint32_t k,
                         typename Traits::VecI a, typename Traits::VecI b) {
  switch (type) {
    case ScanElementType::kI32:
      switch (op) {
        case CompareOp::kEq:
          return Traits::template CmpI32<_MM_CMPINT_EQ>(k, a, b);
        case CompareOp::kLt:
          return Traits::template CmpI32<_MM_CMPINT_LT>(k, a, b);
        case CompareOp::kLe:
          return Traits::template CmpI32<_MM_CMPINT_LE>(k, a, b);
        case CompareOp::kNe:
          return Traits::template CmpI32<_MM_CMPINT_NE>(k, a, b);
        case CompareOp::kGe:
          return Traits::template CmpI32<_MM_CMPINT_NLT>(k, a, b);
        case CompareOp::kGt:
          return Traits::template CmpI32<_MM_CMPINT_NLE>(k, a, b);
      }
      break;
    case ScanElementType::kU32:
      switch (op) {
        case CompareOp::kEq:
          return Traits::template CmpU32<_MM_CMPINT_EQ>(k, a, b);
        case CompareOp::kLt:
          return Traits::template CmpU32<_MM_CMPINT_LT>(k, a, b);
        case CompareOp::kLe:
          return Traits::template CmpU32<_MM_CMPINT_LE>(k, a, b);
        case CompareOp::kNe:
          return Traits::template CmpU32<_MM_CMPINT_NE>(k, a, b);
        case CompareOp::kGe:
          return Traits::template CmpU32<_MM_CMPINT_NLT>(k, a, b);
        case CompareOp::kGt:
          return Traits::template CmpU32<_MM_CMPINT_NLE>(k, a, b);
      }
      break;
    case ScanElementType::kF32:
      switch (op) {
        case CompareOp::kEq:
          return Traits::template CmpF32<_CMP_EQ_OQ>(k, a, b);
        case CompareOp::kLt:
          return Traits::template CmpF32<_CMP_LT_OS>(k, a, b);
        case CompareOp::kLe:
          return Traits::template CmpF32<_CMP_LE_OS>(k, a, b);
        case CompareOp::kNe:
          return Traits::template CmpF32<_CMP_NEQ_UQ>(k, a, b);
        case CompareOp::kGe:
          return Traits::template CmpF32<_CMP_GE_OS>(k, a, b);
        case CompareOp::kGt:
          return Traits::template CmpF32<_CMP_GT_OS>(k, a, b);
      }
      break;
    default:
      break;
  }
  __builtin_unreachable();
}

template <typename Traits>
uint32_t CompareMasked64(ScanElementType type, CompareOp op, uint32_t k,
                         typename Traits::VecI a, typename Traits::VecI b) {
  switch (type) {
    case ScanElementType::kI64:
      switch (op) {
        case CompareOp::kEq:
          return Traits::template CmpI64<_MM_CMPINT_EQ>(k, a, b);
        case CompareOp::kLt:
          return Traits::template CmpI64<_MM_CMPINT_LT>(k, a, b);
        case CompareOp::kLe:
          return Traits::template CmpI64<_MM_CMPINT_LE>(k, a, b);
        case CompareOp::kNe:
          return Traits::template CmpI64<_MM_CMPINT_NE>(k, a, b);
        case CompareOp::kGe:
          return Traits::template CmpI64<_MM_CMPINT_NLT>(k, a, b);
        case CompareOp::kGt:
          return Traits::template CmpI64<_MM_CMPINT_NLE>(k, a, b);
      }
      break;
    case ScanElementType::kU64:
      switch (op) {
        case CompareOp::kEq:
          return Traits::template CmpU64<_MM_CMPINT_EQ>(k, a, b);
        case CompareOp::kLt:
          return Traits::template CmpU64<_MM_CMPINT_LT>(k, a, b);
        case CompareOp::kLe:
          return Traits::template CmpU64<_MM_CMPINT_LE>(k, a, b);
        case CompareOp::kNe:
          return Traits::template CmpU64<_MM_CMPINT_NE>(k, a, b);
        case CompareOp::kGe:
          return Traits::template CmpU64<_MM_CMPINT_NLT>(k, a, b);
        case CompareOp::kGt:
          return Traits::template CmpU64<_MM_CMPINT_NLE>(k, a, b);
      }
      break;
    case ScanElementType::kF64:
      switch (op) {
        case CompareOp::kEq:
          return Traits::template CmpF64<_CMP_EQ_OQ>(k, a, b);
        case CompareOp::kLt:
          return Traits::template CmpF64<_CMP_LT_OS>(k, a, b);
        case CompareOp::kLe:
          return Traits::template CmpF64<_CMP_LE_OS>(k, a, b);
        case CompareOp::kNe:
          return Traits::template CmpF64<_CMP_NEQ_UQ>(k, a, b);
        case CompareOp::kGe:
          return Traits::template CmpF64<_CMP_GE_OS>(k, a, b);
        case CompareOp::kGt:
          return Traits::template CmpF64<_CMP_GT_OS>(k, a, b);
      }
      break;
    default:
      break;
  }
  __builtin_unreachable();
}

inline bool Is64Bit(ScanElementType type) {
  return type == ScanElementType::kI64 || type == ScanElementType::kU64 ||
         type == ScanElementType::kF64;
}

// The fused scan chain state and logic for one register width. `Sink`
// receives every final-stage survivor set via
//   sink.Emit(uint32_t mask, VecI positions)
// where set bits of `mask` select the matching lanes of `positions`
// (positions are NOT compressed — the sink chooses compress-store or
// masked gather as needed).
template <int kBits, typename Sink>
class FusedChain {
  using Traits = WidthTraits<kBits>;
  using VecI = typename Traits::VecI;
  static constexpr int kW = Traits::kLanes32;
  static constexpr uint32_t kFullMask = (kW == 32) ? ~0u : ((1u << kW) - 1);

 public:
  FusedChain(const ScanStage* stages, size_t num_stages, Sink& sink)
      : stages_(stages), num_stages_(num_stages), sink_(sink) {
    FTS_CHECK(num_stages >= 1 && num_stages <= kMaxScanStages);
    seven32_ = Traits::Set1_32(7);
    for (size_t s = 0; s < num_stages; ++s) {
      acc_[s] = Traits::Zero();
      count_[s] = 0;
      if (stages[s].packed_bits != 0) {
        // Bit-packed stage: codes are unpacked into 64-bit lanes and
        // compared there, so the search code broadcasts as epi64.
        FTS_CHECK(stages[s].type == ScanElementType::kU32);
        const int bits = stages[s].packed_bits;
        broadcast_[s] = Traits::Set1_64(stages[s].value.u32);
        packed_mult_[s] = Traits::Set1_32(static_cast<uint32_t>(bits));
        packed_mask64_[s] = Traits::Set1_64((1ull << bits) - 1);
      } else if (Is64Bit(stages[s].type)) {
        broadcast_[s] = Traits::Set1_64(stages[s].value.u64);
      } else {
        broadcast_[s] = Traits::Set1_32(stages[s].value.u32);
      }
    }
  }

  // Runs the whole chain over `row_count` rows.
  void Run(size_t row_count) {
    const ScanStage& first = stages_[0];
    VecI indices = Traits::FirstIndices();
    const VecI step = Traits::Set1_32(kW);

    const size_t full_blocks = row_count / kW;
    for (size_t b = 0; b < full_blocks; ++b) {
      const uint32_t m = CompareBlock(first, b * kW, kFullMask, indices);
      EmitFromFirstStage(indices, m);
      indices = Traits::Add32(indices, step);
    }
    const size_t tail = row_count - full_blocks * kW;
    if (tail > 0) {
      const uint32_t valid = (1u << tail) - 1;
      const uint32_t m =
          CompareBlock(first, full_blocks * kW, valid, indices);
      EmitFromFirstStage(indices, m);
    }
    // Drain the partially-filled accumulators front to back; flushing
    // stage s can only push positions into stages > s.
    for (size_t s = 1; s < num_stages_; ++s) Flush(s);
  }

 private:
  // Unpack-and-compare of a bit-packed stage at the rows in `row_vec`
  // (stage 0 passes the running block indices; gather stages pass the
  // accumulated positions). Each row's b-bit code is fetched by loading
  // the 8-byte window that contains it (byte-granular gather), shifting it
  // into place (vpsrlvq) and masking — the "extraction of single values as
  // part of the gather step" the paper's Future Work describes.
  uint32_t PackedCompare(size_t s, VecI row_vec, uint32_t valid) {
    const ScanStage& stage = stages_[s];
    const VecI bit_offset = Traits::Mullo32(row_vec, packed_mult_[s]);
    const VecI byte_offset = Traits::Srli32_3(bit_offset);
    const VecI shift32 = Traits::And(bit_offset, seven32_);
    constexpr int kHalf = kW / 2;
    const uint32_t valid_lo = valid & ((1u << kHalf) - 1);
    const uint32_t valid_hi = valid >> kHalf;
    uint32_t m = 0;
    if (valid_lo != 0) {
      const VecI window =
          Traits::Gather64LoBytes(valid_lo, byte_offset, stage.data);
      const VecI codes = Traits::And(
          Traits::Srlv64(window, Traits::WidenLo32(shift32)),
          packed_mask64_[s]);
      m |= CompareMasked64<Traits>(ScanElementType::kU64, stage.op,
                                   valid_lo, codes, broadcast_[s]);
    }
    if (valid_hi != 0) {
      const VecI window =
          Traits::Gather64HiBytes(valid_hi, byte_offset, stage.data);
      const VecI codes = Traits::And(
          Traits::Srlv64(window, Traits::WidenHi32(shift32)),
          packed_mask64_[s]);
      m |= CompareMasked64<Traits>(ScanElementType::kU64, stage.op,
                                   valid_hi, codes, broadcast_[s])
           << kHalf;
    }
    return m;
  }

  // Compares one kW-row block of the first column; `valid` masks the tail.
  uint32_t CompareBlock(const ScanStage& stage, size_t start,
                        uint32_t valid, VecI indices) {
    if (stage.packed_bits != 0) return PackedCompare(0, indices, valid);
    if (!Is64Bit(stage.type)) {
      const char* ptr =
          static_cast<const char*>(stage.data) + start * 4;
      const VecI data = (valid == kFullMask)
                            ? Traits::LoadU(ptr)
                            : Traits::MaskzLoad32(valid, ptr);
      return CompareMasked32<Traits>(stage.type, stage.op, valid, data,
                                     broadcast_[0]);
    }
    // 64-bit first column: two half-width loads and compares per block.
    const char* ptr = static_cast<const char*>(stage.data) + start * 8;
    constexpr int kHalf = kW / 2;
    const uint32_t valid_lo = valid & ((1u << kHalf) - 1);
    const uint32_t valid_hi = valid >> kHalf;
    uint32_t m = 0;
    if (valid_lo != 0) {
      const VecI lo = Traits::MaskzLoad64(valid_lo, ptr);
      m |= CompareMasked64<Traits>(stage.type, stage.op, valid_lo, lo,
                                   broadcast_[0]);
    }
    if (valid_hi != 0) {
      const VecI hi = Traits::MaskzLoad64(valid_hi, ptr + kHalf * 8);
      m |= CompareMasked64<Traits>(stage.type, stage.op, valid_hi, hi,
                                   broadcast_[0]) << kHalf;
    }
    return m;
  }

  // Routes the first predicate's matches onward: straight to the sink for
  // single-predicate scans, otherwise into stage 1's accumulator.
  void EmitFromFirstStage(VecI indices, uint32_t m) {
    if (m == 0) return;
    if (num_stages_ == 1) {
      sink_.Emit(m, indices);
      return;
    }
    Push(1, Traits::MaskzCompress32(m, indices), __builtin_popcount(m));
  }

  // Appends `n` dense positions to stage `s`'s accumulator. If they do not
  // fit, the incomplete accumulator is processed first and a new list is
  // started (Section III: "we first process the incomplete list and then
  // start a new list").
  void Push(size_t s, VecI positions, int n) {
    if (n == 0) return;
    if (count_[s] + n > kW) Flush(s);
    acc_[s] = Traits::Append32(acc_[s], count_[s], positions);
    count_[s] += n;
    if (count_[s] == kW) Flush(s);
  }

  // Applies predicate `s` to the accumulated positions: masked gather of
  // column s at those row ids, masked compare, compress survivors onward.
  void Flush(size_t s) {
    const int n = count_[s];
    count_[s] = 0;
    if (n == 0) return;
    const uint32_t valid = (n == kW) ? kFullMask : ((1u << n) - 1);
    const ScanStage& stage = stages_[s];
    const VecI positions = acc_[s];

    uint32_t m;
    if (stage.packed_bits != 0) {
      m = PackedCompare(s, positions, valid);
    } else if (!Is64Bit(stage.type)) {
      const VecI gathered = Traits::Gather32(valid, positions, stage.data);
      m = CompareMasked32<Traits>(stage.type, stage.op, valid, gathered,
                                  broadcast_[s]);
    } else {
      // Width transition (Section V): 32-bit row ids indexing an 8-byte
      // column need two half-width 64-bit gathers per position register.
      constexpr int kHalf = kW / 2;
      const uint32_t valid_lo = valid & ((1u << kHalf) - 1);
      const uint32_t valid_hi = valid >> kHalf;
      m = 0;
      if (valid_lo != 0) {
        const VecI lo = Traits::Gather64Lo(valid_lo, positions, stage.data);
        m |= CompareMasked64<Traits>(stage.type, stage.op, valid_lo, lo,
                                     broadcast_[s]);
      }
      if (valid_hi != 0) {
        const VecI hi = Traits::Gather64Hi(valid_hi, positions, stage.data);
        m |= CompareMasked64<Traits>(stage.type, stage.op, valid_hi, hi,
                                     broadcast_[s]) << kHalf;
      }
    }
    if (m == 0) return;
    if (s + 1 == num_stages_) {
      sink_.Emit(m, positions);
      return;
    }
    Push(s + 1, Traits::MaskzCompress32(m, positions),
         __builtin_popcount(m));
  }

  const ScanStage* stages_;
  size_t num_stages_;
  Sink& sink_;
  VecI acc_[kMaxScanStages];
  VecI broadcast_[kMaxScanStages];
  VecI packed_mult_[kMaxScanStages];
  VecI packed_mask64_[kMaxScanStages];
  VecI seven32_;
  int count_[kMaxScanStages] = {};
};

// Feeds every row of [0, row_count) to the sink as full-mask blocks — the
// degenerate chain used when zone maps proved every conjunct tautological
// but an aggregate still needs the scan (num_stages == 0).
template <int kBits, typename Sink>
void EmitAllRows(size_t row_count, Sink& sink) {
  using Traits = WidthTraits<kBits>;
  using VecI = typename Traits::VecI;
  constexpr int kW = Traits::kLanes32;
  constexpr uint32_t kFullMask = (kW == 32) ? ~0u : ((1u << kW) - 1);
  VecI indices = Traits::FirstIndices();
  const VecI step = Traits::Set1_32(kW);
  const size_t full_blocks = row_count / kW;
  for (size_t b = 0; b < full_blocks; ++b) {
    sink.Emit(kFullMask, indices);
    indices = Traits::Add32(indices, step);
  }
  const size_t tail = row_count - full_blocks * kW;
  if (tail > 0) sink.Emit((1u << tail) - 1, indices);
}

}  // namespace avx512_detail
}  // namespace fts

#endif  // FTS_SIMD_FUSED_CHAIN_AVX512_H_
