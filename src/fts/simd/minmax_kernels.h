#ifndef FTS_SIMD_MINMAX_KERNELS_H_
#define FTS_SIMD_MINMAX_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace fts {

// Min/max reduction kernels that build the zone maps
// (fts/storage/zone_map.h) at ingest. Dispatched like the fused-scan
// compare kernels: one scalar reference, an AVX2 translation unit, an
// AVX-512 translation unit, each compiled with its own ISA flags and
// selected at runtime via CPUID (BestMinMaxKernel).
//
// The floating-point reductions return false when the data contains a NaN
// — min/max bounds over such a chunk cannot prune soundly, so the caller
// leaves the zone map invalid.
enum class MinMaxKernelKind : uint8_t {
  kScalar = 0,
  kAvx2,
  kAvx512,
};

const char* MinMaxKernelKindToString(MinMaxKernelKind kind);

// Function table for one kernel kind. Integer reductions always succeed;
// float/double return false on NaN (out-params untouched in that case).
// `packed` reduces a bit-packed code stream (fts/storage/
// bitpacked_column.h layout: code i in bits [i*bits, (i+1)*bits)) without
// ever unpacking into a temporary buffer: codes are extracted from 8-byte
// windows — registers-at-a-time on the SIMD rungs, exactly the fused
// kernels' gather-shift-mask dataflow. All entries require rows >= 1.
struct MinMaxKernels {
  bool (*i32)(const int32_t* data, size_t rows, int32_t* min, int32_t* max);
  bool (*u32)(const uint32_t* data, size_t rows, uint32_t* min,
              uint32_t* max);
  bool (*i64)(const int64_t* data, size_t rows, int64_t* min, int64_t* max);
  bool (*u64)(const uint64_t* data, size_t rows, uint64_t* min,
              uint64_t* max);
  bool (*f32)(const float* data, size_t rows, float* min, float* max);
  bool (*f64)(const double* data, size_t rows, double* min, double* max);
  void (*packed)(const uint8_t* packed, size_t rows, int bits, uint32_t* min,
                 uint32_t* max);
};

// Kernel table for `kind`; null when the CPU lacks the instruction set.
const MinMaxKernels* GetMinMaxKernels(MinMaxKernelKind kind);

// The fastest kind available on this CPU (AVX-512 when present, else AVX2,
// else scalar).
MinMaxKernelKind BestMinMaxKernel();

// Portable reference reduction for any supported element type, shared by
// the scalar kernel table, the narrow (8/16-bit) ingest path, and the
// tests that verify the SIMD rungs. Returns false on NaN.
template <typename T>
bool ScalarMinMax(const T* data, size_t rows, T* min, T* max) {
  T lo = data[0];
  T hi = data[0];
  if constexpr (std::is_floating_point_v<T>) {
    bool nan = std::isnan(data[0]);
    for (size_t i = 1; i < rows; ++i) {
      const T v = data[i];
      nan |= std::isnan(v);
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    if (nan) return false;
  } else {
    for (size_t i = 1; i < rows; ++i) {
      const T v = data[i];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
  }
  *min = lo;
  *max = hi;
  return true;
}

// Per-ISA kernel tables, one per translation unit (minmax_scalar.cc,
// minmax_avx2.cc, minmax_avx512.cc). Callers go through GetMinMaxKernels,
// which adds the CPUID gate.
const MinMaxKernels* GetScalarMinMaxKernels();
const MinMaxKernels* GetAvx2MinMaxKernels();
const MinMaxKernels* GetAvx512MinMaxKernels();

}  // namespace fts

#endif  // FTS_SIMD_MINMAX_KERNELS_H_
