// AVX-512 batch-gather kernels (compiled with -mavx512f/bw/dq/vl; only
// reached behind the GetCpuFeatures().HasFusedScanAvx512() dispatch gate).
//
// Every loop is fully masked — the tail iteration runs the same gather
// with a partial mask instead of a scalar epilogue, which is what makes
// the 0/1/15/17-survivor tails exercise the identical code path as full
// registers. Masked-off gather lanes are fault-suppressed by the ISA, so
// partial masks never read past the column.

#include <immintrin.h>

#include "fts/simd/gather_kernels.h"

namespace fts {
namespace {

// Mask for the iteration starting at `i` of `n` lanes total.
inline __mmask16 TailMask16(size_t i, size_t n) {
  const size_t left = n - i;
  return left >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << left) - 1);
}

inline __mmask8 TailMask8(size_t i, size_t n) {
  const size_t left = n - i;
  return left >= 8 ? static_cast<__mmask8>(0xFF)
                   : static_cast<__mmask8>((1u << left) - 1);
}

// Plain 4-byte elements: 16 positions -> one masked i32gather_epi32.
void GatherPlain32(const void* data, const uint32_t* positions, size_t n,
                   void* out) {
  auto* dst = static_cast<uint32_t*>(out);
  for (size_t i = 0; i < n; i += 16) {
    const __mmask16 mask = TailMask16(i, n);
    const __m512i idx = _mm512_maskz_loadu_epi32(mask, positions + i);
    const __m512i vals = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), mask, idx, data, 4);
    _mm512_mask_storeu_epi32(dst + i, mask, vals);
  }
}

// Plain 8-byte elements: 8 positions -> one masked i32gather_epi64.
void GatherPlain64(const void* data, const uint32_t* positions, size_t n,
                   void* out) {
  auto* dst = static_cast<uint64_t*>(out);
  for (size_t i = 0; i < n; i += 8) {
    const __mmask8 mask = TailMask8(i, n);
    const __m256i idx = _mm256_maskz_loadu_epi32(mask, positions + i);
    const __m512i vals = _mm512_mask_i32gather_epi64(
        _mm512_setzero_si512(), mask, idx, data, 8);
    _mm512_mask_storeu_epi64(dst + i, mask, vals);
  }
}

// Dictionary codes in a plain u32 vector: gather the codes, then gather
// the decode table with the codes as indices (two dependent gathers, still
// no scalar work per row).
void GatherCodes32(const GatherTerm& term, const uint32_t* positions,
                   size_t n, void* out) {
  auto* dst = static_cast<uint32_t*>(out);
  for (size_t i = 0; i < n; i += 16) {
    const __mmask16 mask = TailMask16(i, n);
    const __m512i idx = _mm512_maskz_loadu_epi32(mask, positions + i);
    const __m512i codes = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), mask, idx, term.data, 4);
    const __m512i vals = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), mask, codes, term.dict, 4);
    _mm512_mask_storeu_epi32(dst + i, mask, vals);
  }
}

void GatherCodes64(const GatherTerm& term, const uint32_t* positions,
                   size_t n, void* out) {
  auto* dst = static_cast<uint64_t*>(out);
  for (size_t i = 0; i < n; i += 8) {
    const __mmask8 mask = TailMask8(i, n);
    const __m256i idx = _mm256_maskz_loadu_epi32(mask, positions + i);
    const __m256i codes = _mm256_mmask_i32gather_epi32(
        _mm256_setzero_si256(), mask, idx, term.data, 4);
    const __m512i vals = _mm512_mask_i32gather_epi64(
        _mm512_setzero_si512(), mask, codes, term.dict, 8);
    _mm512_mask_storeu_epi64(dst + i, mask, vals);
  }
}

// Bit-packed codes (dictionary or frame-of-reference): the paper's 8-byte
// window dataflow, batched — per lane compute the code's byte offset and
// intra-byte shift, gather the 8-byte windows at byte granularity
// (scale-1 i32gather_epi64, in-bounds thanks to kBitPackedSlackBytes),
// then variable-shift and mask the codes out. 8 lanes per iteration
// (window width caps the lane width at 64 bits).
void GatherPacked(const GatherTerm& term, const uint32_t* positions,
                  size_t n, void* out) {
  const __m512i bit_mask =
      _mm512_set1_epi64((uint64_t{1} << term.packed_bits) - 1);
  const __m512i base = _mm512_set1_epi64(
      static_cast<long long>(term.base_bits));
  const __m256i bits256 = _mm256_set1_epi32(term.packed_bits);
  const bool wide = GatherElementIs64(term.type);
  for (size_t i = 0; i < n; i += 8) {
    const __mmask8 mask = TailMask8(i, n);
    const __m256i idx = _mm256_maskz_loadu_epi32(mask, positions + i);
    const __m256i bit_off = _mm256_mullo_epi32(idx, bits256);
    const __m256i byte_off = _mm256_srli_epi32(bit_off, 3);
    const __m256i shift32 = _mm256_and_si256(bit_off,
                                             _mm256_set1_epi32(7));
    const __m512i windows = _mm512_mask_i32gather_epi64(
        _mm512_setzero_si512(), mask, byte_off, term.data, 1);
    const __m512i shift64 = _mm512_cvtepu32_epi64(shift32);
    const __m512i codes64 = _mm512_and_si512(
        _mm512_srlv_epi64(windows, shift64), bit_mask);
    if (term.dict != nullptr) {
      const __m256i codes32 = _mm512_cvtepi64_epi32(codes64);
      if (wide) {
        const __m512i vals = _mm512_mask_i32gather_epi64(
            _mm512_setzero_si512(), mask, codes32, term.dict, 8);
        _mm512_mask_storeu_epi64(static_cast<uint64_t*>(out) + i, mask,
                                 vals);
      } else {
        const __m256i vals = _mm256_mmask_i32gather_epi32(
            _mm256_setzero_si256(), mask, codes32, term.dict, 4);
        _mm256_mask_storeu_epi32(static_cast<uint32_t*>(out) + i, mask,
                                 vals);
      }
      continue;
    }
    // Frame-of-reference rebase: wraparound add in 64-bit, truncate to
    // the element width on store.
    const __m512i vals = _mm512_add_epi64(codes64, base);
    if (wide) {
      _mm512_mask_storeu_epi64(static_cast<uint64_t*>(out) + i, mask, vals);
    } else {
      _mm256_mask_storeu_epi32(static_cast<uint32_t*>(out) + i, mask,
                               _mm512_cvtepi64_epi32(vals));
    }
  }
}

}  // namespace

void GatherAvx512(const GatherTerm& term, const uint32_t* positions,
                  size_t n, void* out) {
  if (n == 0) return;
  if (term.packed_bits != 0) {
    GatherPacked(term, positions, n, out);
    return;
  }
  const bool wide = GatherElementIs64(term.type);
  if (term.dict != nullptr) {
    if (wide) {
      GatherCodes64(term, positions, n, out);
    } else {
      GatherCodes32(term, positions, n, out);
    }
    return;
  }
  if (wide) {
    GatherPlain64(term.data, positions, n, out);
  } else {
    GatherPlain32(term.data, positions, n, out);
  }
}

}  // namespace fts
