#ifndef FTS_SIMD_GATHER_SPEC_H_
#define FTS_SIMD_GATHER_SPEC_H_

#include <cstddef>
#include <cstdint>

#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// One projected column of a batch-gather: materialize the values at an
// ascending list of chunk offsets (a scan's survivor positions) into a
// dense typed output array. This is the projection analogue of AggTerm —
// the same three source shapes the aggregate kernels decode, but writing
// values out instead of folding them into accumulators.
//
// Source shapes:
//   - Plain:       `dict` null, `packed_bits` 0; `data` is a contiguous
//                  array of `type` elements read directly.
//   - Dictionary:  `dict` non-null; `data` is the u32 code vector (or the
//                  bit-packed byte stream when `packed_bits` is non-zero)
//                  and `dict` is the decode table of `type` elements
//                  indexed by code.
//   - Frame-of-reference: `dict` null, `packed_bits` non-zero; `data` is
//                  the packed unsigned-delta stream and `base_bits` holds
//                  the chunk base; the gathered value is
//                  (base + delta) truncated to the element width. `type`
//                  names the decoded integral element (kI32/kU32/kI64/
//                  kU64 — FoR never encodes floats).
//
// Narrow (1/2-byte) elements and the RLE/delta encodings never reach a
// kernel: the scan-layer gatherer (fts/scan/projection_gather.h) handles
// them with typed run/block-aware loops.
struct GatherTerm {
  const void* data = nullptr;       // Element array / u32 codes / packed bytes.
  ScanElementType type = ScanElementType::kI32;  // Output element type.
  uint8_t packed_bits = 0;          // Non-zero: bit-packed u32 codes.
  const void* dict = nullptr;       // Non-null: decode table of `type` elems.
  uint64_t base_bits = 0;           // FoR base (raw bits), added to the code.
};

// Maximum gather terms per fused scan+gather, mirroring kMaxAggTerms.
inline constexpr size_t kMaxGatherTerms = 8;

// Gather kernel contract shared by the scalar, AVX2 and AVX-512
// implementations: materialize `term`'s value at each of the `n` ascending
// chunk offsets in `positions` into `out[0..n)`, a dense array of `type`
// elements. Positions are produced by the fused scan, so every offset is
// in-bounds for `data`; bit-packed streams carry kBitPackedSlackBytes of
// padding, which keeps the kernels' 8-byte window loads in-bounds for the
// last logical element.
using GatherFn = void (*)(const GatherTerm& term, const uint32_t* positions,
                          size_t n, void* out);

// Decoded u64 bit pattern of `term`'s value at `row` — the semantic
// reference every SIMD gather lane is verified against. Integral values
// are zero/sign-extended per the element width; float bits are the IEEE
// pattern. Callers store the low ScanElementSize(term.type) bytes.
inline uint64_t GatherBitsAtRow(const GatherTerm& term, size_t row) {
  if (term.dict != nullptr || term.packed_bits != 0) {
    const uint32_t code =
        term.packed_bits != 0
            ? ExtractPackedCode(term.data, term.packed_bits, row)
            : static_cast<const uint32_t*>(term.data)[row];
    if (term.dict == nullptr) {
      // Frame-of-reference: rebase the delta. Wraparound addition is
      // exact for every integral width (two's complement).
      return term.base_bits + code;
    }
    switch (term.type) {
      case ScanElementType::kI32:
      case ScanElementType::kU32:
      case ScanElementType::kF32:
        return static_cast<const uint32_t*>(term.dict)[code];
      case ScanElementType::kI64:
      case ScanElementType::kU64:
      case ScanElementType::kF64:
        return static_cast<const uint64_t*>(term.dict)[code];
    }
    __builtin_unreachable();
  }
  switch (term.type) {
    case ScanElementType::kI32:
    case ScanElementType::kU32:
    case ScanElementType::kF32:
      return static_cast<const uint32_t*>(term.data)[row];
    case ScanElementType::kI64:
    case ScanElementType::kU64:
    case ScanElementType::kF64:
      return static_cast<const uint64_t*>(term.data)[row];
  }
  __builtin_unreachable();
}

// True when `type` stores 8-byte elements (the kernels' only width split).
inline bool GatherElementIs64(ScanElementType type) {
  return type == ScanElementType::kI64 || type == ScanElementType::kU64 ||
         type == ScanElementType::kF64;
}

}  // namespace fts

#endif  // FTS_SIMD_GATHER_SPEC_H_
