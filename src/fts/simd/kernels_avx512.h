#ifndef FTS_SIMD_KERNELS_AVX512_H_
#define FTS_SIMD_KERNELS_AVX512_H_

#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// AVX-512 Fused Table Scan kernels at the three register widths the paper
// evaluates (Fig. 5). These follow the Fig. 3 dataflow exactly:
// compare -> maskz_compress (bitmask to dense position list) ->
// mask_expand (append to the per-stage position accumulator) ->
// masked gather of the next column -> masked compare -> compress, with
// intermediate results never leaving the vector registers.
//
// Callers must verify GetCpuFeatures().HasFusedScanAvx512() before calling;
// these functions execute AVX-512 instructions unconditionally. The 128-
// and 256-bit variants rely on AVX-512VL encodings (still AVX-512
// instructions on narrow registers, as in the paper's example).
size_t FusedScanAvx512_512(const ScanStage* stages, size_t num_stages,
                           size_t row_count, uint32_t* out);
size_t FusedScanAvx512_256(const ScanStage* stages, size_t num_stages,
                           size_t row_count, uint32_t* out);
size_t FusedScanAvx512_128(const ScanStage* stages, size_t num_stages,
                           size_t row_count, uint32_t* out);

// Aggregate-pushdown variants: same chain dataflow, but the final
// predicate's survivors are gathered under their k-mask and folded into
// vector accumulators (COUNT via popcount, SUM via widening masked adds
// into 64-bit lanes, MIN/MAX via masked vmin/vmax) with one horizontal
// reduction per call — no position list is materialized. All three widths
// fold at 512 bits. Accept num_stages == 0 (all rows match).
size_t FusedAggScanAvx512_512(const ScanStage* stages, size_t num_stages,
                              size_t row_count, const AggTerm* terms,
                              size_t num_terms, AggAccumulator* accs);
size_t FusedAggScanAvx512_256(const ScanStage* stages, size_t num_stages,
                              size_t row_count, const AggTerm* terms,
                              size_t num_terms, AggAccumulator* accs);
size_t FusedAggScanAvx512_128(const ScanStage* stages, size_t num_stages,
                              size_t row_count, const AggTerm* terms,
                              size_t num_terms, AggAccumulator* accs);

}  // namespace fts

#endif  // FTS_SIMD_KERNELS_AVX512_H_
