#include "fts/simd/minmax_kernels.h"

namespace fts {
namespace minmax_detail {

// Scalar packed-code reduction: each code is pulled from the 8-byte window
// containing it (the same dataflow as BitPackedColumn::ExtractCode), never
// materializing an unpacked buffer. The stream carries
// kBitPackedSlackBytes of padding, so the window load at the last code
// stays in bounds.
void ScalarPackedMinMax(const uint8_t* packed, size_t rows, int bits,
                        uint32_t* min, uint32_t* max) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  uint32_t lo = ~uint32_t{0};
  uint32_t hi = 0;
  for (size_t row = 0; row < rows; ++row) {
    const size_t bit_offset = row * static_cast<size_t>(bits);
    uint64_t window;
    __builtin_memcpy(&window, packed + (bit_offset >> 3), sizeof(window));
    const auto code =
        static_cast<uint32_t>((window >> (bit_offset & 7)) & mask);
    if (code < lo) lo = code;
    if (code > hi) hi = code;
  }
  *min = lo;
  *max = hi;
}

}  // namespace minmax_detail

namespace {

const MinMaxKernels kScalarKernels = {
    &ScalarMinMax<int32_t>,  &ScalarMinMax<uint32_t>,
    &ScalarMinMax<int64_t>,  &ScalarMinMax<uint64_t>,
    &ScalarMinMax<float>,    &ScalarMinMax<double>,
    &minmax_detail::ScalarPackedMinMax,
};

}  // namespace

const MinMaxKernels* GetScalarMinMaxKernels() { return &kScalarKernels; }

}  // namespace fts
