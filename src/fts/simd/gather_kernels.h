#ifndef FTS_SIMD_GATHER_KERNELS_H_
#define FTS_SIMD_GATHER_KERNELS_H_

#include "fts/simd/gather_spec.h"

namespace fts {

// Portable scalar batch-gather — the semantic reference for the SIMD
// implementations and the fallback on CPUs without AVX2/AVX-512.
void GatherScalar(const GatherTerm& term, const uint32_t* positions,
                  size_t n, void* out);

// AVX2 batch-gather: 8-lane _mm256_i32gather for plain 4-byte elements
// and dictionary translation, 4-lane i32gather_epi64 for 8-byte elements;
// bit-packed windows are loaded with i32gather_epi64 at byte granularity.
// Tails run through the scalar reference.
void GatherAvx2(const GatherTerm& term, const uint32_t* positions,
                size_t n, void* out);

// AVX-512 batch-gather: 16-lane masked i32gather_epi32 / 8-lane
// i32gather_epi64 with maskz tails (no scalar epilogue). Requires
// F/BW/DQ/VL, same gate as the fused scan kernels.
void GatherAvx512(const GatherTerm& term, const uint32_t* positions,
                  size_t n, void* out);

}  // namespace fts

#endif  // FTS_SIMD_GATHER_KERNELS_H_
