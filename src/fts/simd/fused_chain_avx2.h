#ifndef FTS_SIMD_FUSED_CHAIN_AVX2_H_
#define FTS_SIMD_FUSED_CHAIN_AVX2_H_

// The AVX2 fused-chain dataflow — the paper's backport baseline — shared
// by the position-list kernel (kernels_avx2.cc) and the aggregate-pushdown
// kernel (agg_kernels_avx2.cc). Mirrors fused_chain_avx512.h with every
// AVX-512 primitive replaced by its multi-instruction AVX2 emulation; the
// Sink receives final-stage survivors as (mask, position-register) pairs.
//
// ONLY include this header from translation units compiled with -mavx2;
// no AVX-512 instructions may appear here.

#include <immintrin.h>

#include "fts/common/macros.h"
#include "fts/simd/scan_stage.h"

namespace fts {
namespace avx2_detail {

inline constexpr int kW = 4;  // 32-bit lanes in a 128-bit register.

// Shuffle controls emulating vpcompressd: entry m moves the lanes whose
// bit is set in m densely to the front; remaining bytes become zero
// (0x80 in PSHUFB zeroes the byte). This table *is* the paper's AVX2
// mask_compress emulation.
struct CompressLut {
  alignas(16) uint8_t bytes[16][16];
};

constexpr CompressLut MakeCompressLut() {
  CompressLut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int out_lane = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        for (int b = 0; b < 4; ++b) {
          lut.bytes[mask][out_lane * 4 + b] =
              static_cast<uint8_t>(lane * 4 + b);
        }
        ++out_lane;
      }
    }
    for (int lane = out_lane; lane < 4; ++lane) {
      for (int b = 0; b < 4; ++b) {
        lut.bytes[mask][lane * 4 + b] = 0x80;
      }
    }
  }
  return lut;
}

// Shuffle controls shifting lanes upward by `count` (entry c moves lane j
// to lane j + c), used to emulate the append half of vpexpandd.
struct ShiftUpLut {
  alignas(16) uint8_t bytes[5][16];
};

constexpr ShiftUpLut MakeShiftUpLut() {
  ShiftUpLut lut{};
  for (int count = 0; count <= 4; ++count) {
    for (int lane = 0; lane < 4; ++lane) {
      for (int b = 0; b < 4; ++b) {
        const int src = lane - count;
        lut.bytes[count][lane * 4 + b] =
            (src >= 0) ? static_cast<uint8_t>(src * 4 + b) : 0x80;
      }
    }
  }
  return lut;
}

// Byte masks with the first `count` 32-bit lanes set (for PBLENDVB), and
// lane masks with the first `count` lanes set (for masked gather/load).
struct LaneMaskLut {
  alignas(16) uint8_t bytes[5][16];
};

constexpr LaneMaskLut MakeLaneMaskLut() {
  LaneMaskLut lut{};
  for (int count = 0; count <= 4; ++count) {
    for (int byte = 0; byte < 16; ++byte) {
      lut.bytes[count][byte] = (byte / 4 < count) ? 0xFF : 0x00;
    }
  }
  return lut;
}

inline constexpr CompressLut kCompressLut = MakeCompressLut();
inline constexpr ShiftUpLut kShiftUpLut = MakeShiftUpLut();
inline constexpr LaneMaskLut kLaneMaskLut = MakeLaneMaskLut();

inline __m128i LoadLut16(const uint8_t (&row)[16]) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(row));
}

// Emulated _mm_maskz_compress_epi32: the paper's 32-line AVX2 equivalent.
inline __m128i EmulatedCompress32(int mask, __m128i v) {
  return _mm_shuffle_epi8(v, LoadLut16(kCompressLut.bytes[mask]));
}

// Emulated append (vpexpandd): keep the low `count` lanes of `acc`, place
// `vals` starting at lane `count`.
inline __m128i EmulatedAppend32(__m128i acc, int count, __m128i vals) {
  const __m128i shifted =
      _mm_shuffle_epi8(vals, LoadLut16(kShiftUpLut.bytes[count]));
  return _mm_blendv_epi8(shifted, acc, LoadLut16(kLaneMaskLut.bytes[count]));
}

// Vector mask with the first `count` lanes all-ones.
inline __m128i LaneCountMask(int count) {
  return LoadLut16(kLaneMaskLut.bytes[count]);
}

inline bool Is64Bit(ScanElementType type) {
  return type == ScanElementType::kI64 || type == ScanElementType::kU64 ||
         type == ScanElementType::kF64;
}

inline __m128i SignFlip32() {
  return _mm_set1_epi32(static_cast<int>(0x80000000u));
}
inline __m128i SignFlip64() {
  return _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
}

// Vector-mask comparison for 4 x 32-bit lanes. AVX2 has no unsigned
// compares and no single-instruction Ge/Le, so they are composed.
inline __m128i CompareVec32(ScanElementType type, CompareOp op, __m128i a,
                            __m128i b) {
  if (type == ScanElementType::kF32) {
    const __m128 fa = _mm_castsi128_ps(a);
    const __m128 fb = _mm_castsi128_ps(b);
    switch (op) {
      case CompareOp::kEq:
        return _mm_castps_si128(_mm_cmp_ps(fa, fb, _CMP_EQ_OQ));
      case CompareOp::kNe:
        return _mm_castps_si128(_mm_cmp_ps(fa, fb, _CMP_NEQ_UQ));
      case CompareOp::kLt:
        return _mm_castps_si128(_mm_cmp_ps(fa, fb, _CMP_LT_OS));
      case CompareOp::kLe:
        return _mm_castps_si128(_mm_cmp_ps(fa, fb, _CMP_LE_OS));
      case CompareOp::kGe:
        return _mm_castps_si128(_mm_cmp_ps(fa, fb, _CMP_GE_OS));
      case CompareOp::kGt:
        return _mm_castps_si128(_mm_cmp_ps(fa, fb, _CMP_GT_OS));
    }
    __builtin_unreachable();
  }
  if (type == ScanElementType::kU32) {
    // Bias both operands so signed compares produce unsigned ordering.
    a = _mm_xor_si128(a, SignFlip32());
    b = _mm_xor_si128(b, SignFlip32());
  }
  switch (op) {
    case CompareOp::kEq:
      return _mm_cmpeq_epi32(a, b);
    case CompareOp::kNe:
      return _mm_xor_si128(_mm_cmpeq_epi32(a, b), _mm_set1_epi32(-1));
    case CompareOp::kLt:
      return _mm_cmpgt_epi32(b, a);
    case CompareOp::kLe:
      return _mm_xor_si128(_mm_cmpgt_epi32(a, b), _mm_set1_epi32(-1));
    case CompareOp::kGe:
      return _mm_xor_si128(_mm_cmpgt_epi32(b, a), _mm_set1_epi32(-1));
    case CompareOp::kGt:
      return _mm_cmpgt_epi32(a, b);
  }
  __builtin_unreachable();
}

// Vector-mask comparison for 2 x 64-bit lanes.
inline __m128i CompareVec64(ScanElementType type, CompareOp op, __m128i a,
                            __m128i b) {
  if (type == ScanElementType::kF64) {
    const __m128d fa = _mm_castsi128_pd(a);
    const __m128d fb = _mm_castsi128_pd(b);
    switch (op) {
      case CompareOp::kEq:
        return _mm_castpd_si128(_mm_cmp_pd(fa, fb, _CMP_EQ_OQ));
      case CompareOp::kNe:
        return _mm_castpd_si128(_mm_cmp_pd(fa, fb, _CMP_NEQ_UQ));
      case CompareOp::kLt:
        return _mm_castpd_si128(_mm_cmp_pd(fa, fb, _CMP_LT_OS));
      case CompareOp::kLe:
        return _mm_castpd_si128(_mm_cmp_pd(fa, fb, _CMP_LE_OS));
      case CompareOp::kGe:
        return _mm_castpd_si128(_mm_cmp_pd(fa, fb, _CMP_GE_OS));
      case CompareOp::kGt:
        return _mm_castpd_si128(_mm_cmp_pd(fa, fb, _CMP_GT_OS));
    }
    __builtin_unreachable();
  }
  if (type == ScanElementType::kU64) {
    a = _mm_xor_si128(a, SignFlip64());
    b = _mm_xor_si128(b, SignFlip64());
  }
  switch (op) {
    case CompareOp::kEq:
      return _mm_cmpeq_epi64(a, b);
    case CompareOp::kNe:
      return _mm_xor_si128(_mm_cmpeq_epi64(a, b), _mm_set1_epi32(-1));
    case CompareOp::kLt:
      return _mm_cmpgt_epi64(b, a);
    case CompareOp::kLe:
      return _mm_xor_si128(_mm_cmpgt_epi64(a, b), _mm_set1_epi32(-1));
    case CompareOp::kGe:
      return _mm_xor_si128(_mm_cmpgt_epi64(b, a), _mm_set1_epi32(-1));
    case CompareOp::kGt:
      return _mm_cmpgt_epi64(a, b);
  }
  __builtin_unreachable();
}

// 4-bit lane mask from a 32-bit vector mask.
inline int MoveMask32(__m128i m) {
  return _mm_movemask_ps(_mm_castsi128_ps(m));
}

// The AVX2 fused chain; mirrors FusedChain in fused_chain_avx512.h with
// every AVX-512 primitive replaced by its multi-instruction AVX2
// emulation. `Sink` receives final-stage survivors via
// sink.Emit(int mask, __m128i positions) — positions uncompressed, set
// bits of mask selecting the matching lanes.
template <typename Sink>
class FusedChainAvx2 {
 public:
  FusedChainAvx2(const ScanStage* stages, size_t num_stages, Sink& sink)
      : stages_(stages), num_stages_(num_stages), sink_(sink) {
    FTS_CHECK(num_stages >= 1 && num_stages <= kMaxScanStages);
    for (size_t s = 0; s < num_stages; ++s) {
      acc_[s] = _mm_setzero_si128();
      count_[s] = 0;
      if (stages[s].packed_bits != 0) {
        FTS_CHECK(stages[s].type == ScanElementType::kU32);
        const int bits = stages[s].packed_bits;
        broadcast_[s] =
            _mm_set1_epi64x(static_cast<long long>(stages[s].value.u32));
        packed_mult_[s] = _mm_set1_epi32(bits);
        packed_mask64_[s] =
            _mm_set1_epi64x(static_cast<long long>((1ull << bits) - 1));
      } else if (Is64Bit(stages[s].type)) {
        broadcast_[s] =
            _mm_set1_epi64x(static_cast<long long>(stages[s].value.u64));
      } else {
        broadcast_[s] =
            _mm_set1_epi32(static_cast<int>(stages[s].value.u32));
      }
    }
  }

  void Run(size_t row_count) {
    const ScanStage& first = stages_[0];
    __m128i indices = _mm_setr_epi32(0, 1, 2, 3);
    const __m128i step = _mm_set1_epi32(kW);

    const size_t full_blocks = row_count / kW;
    for (size_t b = 0; b < full_blocks; ++b) {
      const int m = CompareBlock(first, b * kW, kW, indices);
      EmitFromFirstStage(indices, m);
      indices = _mm_add_epi32(indices, step);
    }
    const int tail = static_cast<int>(row_count - full_blocks * kW);
    if (tail > 0) {
      const int m = CompareBlock(first, full_blocks * kW, tail, indices);
      EmitFromFirstStage(indices, m);
    }
    for (size_t s = 1; s < num_stages_; ++s) Flush(s);
  }

 private:
  // Bit-packed unpack-and-compare at the first `valid_lanes` rows of
  // `row_vec` (AVX2 equivalent of the AVX-512 PackedCompare: byte-granular
  // 64-bit window gathers + variable shift + mask, two lanes at a time).
  int PackedCompare(size_t s, __m128i row_vec, int valid_lanes) {
    const ScanStage& stage = stages_[s];
    const __m128i bit_offset = _mm_mullo_epi32(row_vec, packed_mult_[s]);
    const __m128i byte_offset = _mm_srli_epi32(bit_offset, 3);
    const __m128i shift32 = _mm_and_si128(bit_offset, _mm_set1_epi32(7));
    const long long* base = static_cast<const long long*>(stage.data);
    int m = 0;
    const int lo_lanes = valid_lanes < 2 ? valid_lanes : 2;
    const int hi_lanes = valid_lanes - lo_lanes;
    if (lo_lanes > 0) {
      const __m128i window = _mm_mask_i32gather_epi64(
          _mm_setzero_si128(), base, byte_offset,
          LaneCountMask(2 * lo_lanes), 1);
      const __m128i codes =
          _mm_and_si128(_mm_srlv_epi64(window, _mm_cvtepu32_epi64(shift32)),
                        packed_mask64_[s]);
      const __m128i cm = CompareVec64(ScanElementType::kU64, stage.op,
                                      codes, broadcast_[s]);
      m |= _mm_movemask_pd(_mm_castsi128_pd(cm)) & ((1 << lo_lanes) - 1);
    }
    if (hi_lanes > 0) {
      const __m128i hi_off = _mm_unpackhi_epi64(byte_offset, byte_offset);
      const __m128i hi_shift = _mm_cvtepu32_epi64(
          _mm_unpackhi_epi64(shift32, shift32));
      const __m128i window = _mm_mask_i32gather_epi64(
          _mm_setzero_si128(), base, hi_off, LaneCountMask(2 * hi_lanes),
          1);
      const __m128i codes = _mm_and_si128(
          _mm_srlv_epi64(window, hi_shift), packed_mask64_[s]);
      const __m128i cm = CompareVec64(ScanElementType::kU64, stage.op,
                                      codes, broadcast_[s]);
      m |= (_mm_movemask_pd(_mm_castsi128_pd(cm)) & ((1 << hi_lanes) - 1))
           << 2;
    }
    return m;
  }

  int CompareBlock(const ScanStage& stage, size_t start, int valid_lanes,
                   __m128i indices) {
    if (stage.packed_bits != 0) {
      return PackedCompare(0, indices, valid_lanes);
    }
    if (!Is64Bit(stage.type)) {
      const int* ptr = reinterpret_cast<const int*>(
          static_cast<const char*>(stage.data) + start * 4);
      const __m128i data =
          (valid_lanes == kW)
              ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(ptr))
              : _mm_maskload_epi32(ptr, LaneCountMask(valid_lanes));
      const __m128i m = CompareVec32(stage.type, stage.op, data,
                                     broadcast_[0]);
      return MoveMask32(m) & ((1 << valid_lanes) - 1);
    }
    // 64-bit first column: two 2-lane loads/compares per 4-row block.
    const long long* ptr = reinterpret_cast<const long long*>(
        static_cast<const char*>(stage.data) + start * 8);
    int m = 0;
    const int lo_lanes = valid_lanes < 2 ? valid_lanes : 2;
    const int hi_lanes = valid_lanes - lo_lanes;
    if (lo_lanes > 0) {
      const __m128i lo =
          (lo_lanes == 2)
              ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(ptr))
              : _mm_maskload_epi64(ptr, LaneCountMask(2 * lo_lanes));
      const __m128i cm = CompareVec64(stage.type, stage.op, lo,
                                      broadcast_[0]);
      m |= _mm_movemask_pd(_mm_castsi128_pd(cm)) & ((1 << lo_lanes) - 1);
    }
    if (hi_lanes > 0) {
      const __m128i hi =
          (hi_lanes == 2)
              ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(ptr + 2))
              : _mm_maskload_epi64(ptr + 2, LaneCountMask(2 * hi_lanes));
      const __m128i cm = CompareVec64(stage.type, stage.op, hi,
                                      broadcast_[0]);
      m |= (_mm_movemask_pd(_mm_castsi128_pd(cm)) & ((1 << hi_lanes) - 1))
           << 2;
    }
    return m;
  }

  void EmitFromFirstStage(__m128i indices, int m) {
    if (m == 0) return;
    if (num_stages_ == 1) {
      sink_.Emit(m, indices);
      return;
    }
    Push(1, EmulatedCompress32(m, indices), __builtin_popcount(m));
  }

  void Push(size_t s, __m128i positions, int n) {
    if (n == 0) return;
    if (count_[s] + n > kW) Flush(s);
    acc_[s] = EmulatedAppend32(acc_[s], count_[s], positions);
    count_[s] += n;
    if (count_[s] == kW) Flush(s);
  }

  void Flush(size_t s) {
    const int n = count_[s];
    count_[s] = 0;
    if (n == 0) return;
    const ScanStage& stage = stages_[s];
    const __m128i positions = acc_[s];

    int m;
    if (stage.packed_bits != 0) {
      m = PackedCompare(s, positions, n);
    } else if (!Is64Bit(stage.type)) {
      const __m128i lane_mask = LaneCountMask(n);
      const __m128i gathered = _mm_mask_i32gather_epi32(
          _mm_setzero_si128(), static_cast<const int*>(stage.data),
          positions, lane_mask, 4);
      const __m128i cm = CompareVec32(stage.type, stage.op, gathered,
                                      broadcast_[s]);
      m = MoveMask32(cm) & ((1 << n) - 1);
    } else {
      // Two 2-wide 64-bit gathers per 4-entry position list.
      const long long* base = static_cast<const long long*>(stage.data);
      m = 0;
      const int lo_lanes = n < 2 ? n : 2;
      const int hi_lanes = n - lo_lanes;
      if (lo_lanes > 0) {
        const __m128i g = _mm_mask_i32gather_epi64(
            _mm_setzero_si128(), base, positions,
            LaneCountMask(2 * lo_lanes), 8);
        const __m128i cm = CompareVec64(stage.type, stage.op, g,
                                        broadcast_[s]);
        m |= _mm_movemask_pd(_mm_castsi128_pd(cm)) & ((1 << lo_lanes) - 1);
      }
      if (hi_lanes > 0) {
        const __m128i hi_idx = _mm_unpackhi_epi64(positions, positions);
        const __m128i g = _mm_mask_i32gather_epi64(
            _mm_setzero_si128(), base, hi_idx, LaneCountMask(2 * hi_lanes),
            8);
        const __m128i cm = CompareVec64(stage.type, stage.op, g,
                                        broadcast_[s]);
        m |= (_mm_movemask_pd(_mm_castsi128_pd(cm)) & ((1 << hi_lanes) - 1))
             << 2;
      }
    }
    if (m == 0) return;
    if (s + 1 == num_stages_) {
      sink_.Emit(m, positions);
      return;
    }
    Push(s + 1, EmulatedCompress32(m, positions), __builtin_popcount(m));
  }

  const ScanStage* stages_;
  size_t num_stages_;
  Sink& sink_;
  __m128i acc_[kMaxScanStages];
  __m128i broadcast_[kMaxScanStages];
  __m128i packed_mult_[kMaxScanStages];
  __m128i packed_mask64_[kMaxScanStages];
  int count_[kMaxScanStages] = {};
};

}  // namespace avx2_detail
}  // namespace fts

#endif  // FTS_SIMD_FUSED_CHAIN_AVX2_H_
