#include "fts/simd/agg_spec.h"

namespace fts {

const char* AggOpToString(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kSum:
      return "SUM";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace fts
