#include "fts/simd/zone_map_builder.h"

#include "fts/simd/minmax_kernels.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

// Typed reduction over a plain value array through the dispatched kernel
// table; the narrow types the kernels don't cover run the scalar
// reference. Returns false on NaN.
template <typename T>
bool ReduceValues(const MinMaxKernels& kernels, const T* data, size_t rows,
                  T* min, T* max) {
  if constexpr (std::is_same_v<T, int32_t>) {
    return kernels.i32(data, rows, min, max);
  } else if constexpr (std::is_same_v<T, uint32_t>) {
    return kernels.u32(data, rows, min, max);
  } else if constexpr (std::is_same_v<T, int64_t>) {
    return kernels.i64(data, rows, min, max);
  } else if constexpr (std::is_same_v<T, uint64_t>) {
    return kernels.u64(data, rows, min, max);
  } else if constexpr (std::is_same_v<T, float>) {
    return kernels.f32(data, rows, min, max);
  } else if constexpr (std::is_same_v<T, double>) {
    return kernels.f64(data, rows, min, max);
  } else {
    return ScalarMinMax(data, rows, min, max);
  }
}

// Dictionary entries are engine-produced sorted values; NaN would already
// break the sorted-translation contract, but a hand-built column could
// still smuggle one in — bounds containing NaN must not prune.
template <typename T>
bool BoundsUsable(T min, T max) {
  if constexpr (std::is_floating_point_v<T>) {
    return !std::isnan(min) && !std::isnan(max);
  }
  (void)min;
  (void)max;
  return true;
}

}  // namespace

ZoneMap BuildColumnZoneMap(const BaseColumn& column) {
  ZoneMap zone;
  zone.row_count = column.size();
  if (column.size() == 0) return zone;  // Invalid: nothing to bound.

  const MinMaxKernels& kernels = *GetMinMaxKernels(BestMinMaxKernel());

  DispatchDataType(column.data_type(), [&](auto tag) {
    using T = decltype(tag);
    switch (column.encoding()) {
      case ColumnEncoding::kPlain: {
        const auto& plain = static_cast<const ValueColumn<T>&>(column);
        T min{};
        T max{};
        if (ReduceValues(kernels, plain.values().data(),
                         plain.values().size(), &min, &max)) {
          zone.min = min;
          zone.max = max;
          zone.valid = true;
        }
        return;
      }
      case ColumnEncoding::kDictionary: {
        const auto& dict = static_cast<const DictionaryColumn<T>&>(column);
        kernels.u32(dict.codes().data(), dict.codes().size(), &zone.min_code,
                    &zone.max_code);
        zone.has_codes = true;
        // The dictionary is sorted, so the code bounds index the value
        // bounds directly — and stay exact even for hand-built dictionaries
        // carrying entries no row references.
        const T lo = dict.dictionary()[zone.min_code];
        const T hi = dict.dictionary()[zone.max_code];
        if (BoundsUsable(lo, hi)) {
          zone.min = lo;
          zone.max = hi;
          zone.valid = true;
        }
        return;
      }
      case ColumnEncoding::kBitPacked: {
        const auto& packed = static_cast<const BitPackedColumn<T>&>(column);
        // The SIMD packed reductions compute bit offsets in 32-bit lanes
        // (like the scan kernels); oversized chunks take the scalar path,
        // which uses size_t offsets throughout.
        const bool fits_u32 =
            static_cast<uint64_t>(packed.size()) * packed.bit_width() <
            (uint64_t{1} << 32);
        const MinMaxKernels& packed_kernels =
            fits_u32 ? kernels
                     : *GetMinMaxKernels(MinMaxKernelKind::kScalar);
        packed_kernels.packed(
            static_cast<const uint8_t*>(packed.scan_data()), packed.size(),
            packed.bit_width(), &zone.min_code, &zone.max_code);
        zone.has_codes = true;
        const T lo = packed.dictionary()[zone.min_code];
        const T hi = packed.dictionary()[zone.max_code];
        if (BoundsUsable(lo, hi)) {
          zone.min = lo;
          zone.max = hi;
          zone.valid = true;
        }
        return;
      }
      case ColumnEncoding::kRle: {
        // Reduce over the run values — every stored value appears as a
        // run value, so the bounds are exact without decoding any row.
        const auto& rle = static_cast<const RleColumn<T>&>(column);
        T min{};
        T max{};
        if (ReduceValues(kernels, rle.run_values().data(), rle.run_count(),
                         &min, &max)) {
          zone.min = min;
          zone.max = max;
          zone.valid = true;
        }
        return;
      }
      case ColumnEncoding::kFor: {
        if constexpr (std::is_integral_v<T>) {
          // The encoder already computed exact bounds: the base is the
          // chunk minimum and max_delta spans to the maximum. The code
          // bounds are the delta-domain bounds the rebased stages use.
          const auto& fr = static_cast<const ForColumn<T>&>(column);
          zone.min = fr.base();
          zone.max = static_cast<T>(static_cast<uint64_t>(fr.base()) +
                                    fr.max_delta());
          zone.has_codes = true;
          zone.min_code = 0;
          zone.max_code = static_cast<uint32_t>(fr.max_delta());
          zone.valid = true;
        }
        return;
      }
      case ColumnEncoding::kDelta: {
        if constexpr (std::is_integral_v<T>) {
          // Aggregate the per-block bounds the encoder tracked.
          const auto& delta = static_cast<const DeltaColumn<T>&>(column);
          T min = delta.blocks().front().min;
          T max = delta.blocks().front().max;
          for (const auto& block : delta.blocks()) {
            min = std::min(min, block.min);
            max = std::max(max, block.max);
          }
          zone.min = min;
          zone.max = max;
          zone.valid = true;
        }
        return;
      }
    }
  });
  return zone;
}

}  // namespace fts
