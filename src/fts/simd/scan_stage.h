#ifndef FTS_SIMD_SCAN_STAGE_H_
#define FTS_SIMD_SCAN_STAGE_H_

#include <cstddef>
#include <cstdint>

#include "fts/common/status.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/data_type.h"
#include "fts/storage/value.h"

namespace fts {

// Element types the scan kernels handle natively. 8- and 16-bit columns are
// scanned through their dictionary code vectors (uint32), which realizes the
// paper's assumption 3 (fixed-size values via dictionary encoding) without a
// kernel per narrow width.
enum class ScanElementType : uint8_t {
  kI32 = 0,
  kU32,
  kF32,
  kI64,
  kU64,
  kF64,
};

size_t ScanElementSize(ScanElementType type);
const char* ScanElementTypeToString(ScanElementType type);

// Maps a column's scan type to the kernel element type. Fails for 8/16-bit
// types (those must be dictionary-encoded first).
StatusOr<ScanElementType> ScanElementTypeFromDataType(DataType type);

// Search value as raw bits, interpreted per ScanElementType.
union ScanValue {
  int32_t i32;
  uint32_t u32;
  float f32;
  int64_t i64;
  uint64_t u64;
  double f64;
};

// Converts a boxed Value (already cast to the column's type) into kernel
// bits for `type`.
ScanValue MakeScanValue(ScanElementType type, const Value& value);

// One predicate of a fused conjunctive scan: `data[i] op value`.
//
// When `packed_bits` is non-zero the stage reads a bit-packed code stream
// (fts/storage/bitpacked_column.h): `data` points at the packed bytes,
// logical element i is the uint32 code in bits [i*packed_bits,
// (i+1)*packed_bits), `type` must be kU32 and `value.u32` is the search
// code. The buffer must carry kBitPackedSlackBytes of padding.
struct ScanStage {
  const void* data = nullptr;  // Contiguous array of `type` elements.
  ScanElementType type = ScanElementType::kI32;
  CompareOp op = CompareOp::kEq;
  ScanValue value{};
  uint8_t packed_bits = 0;  // 0 = plain fixed-size elements.
  // Source column encoding (fts::ColumnEncoding values), for observability
  // and JIT signatures. Kernels ignore it: a dictionary stage scans codes
  // like a plain u32 stage, a frame-of-reference stage scans its rebased
  // deltas through the packed path. RLE/delta predicates never become
  // ScanStages — they run in the compressed domain
  // (fts/scan/compressed_scan.h).
  uint8_t encoding = 0;
};

// Maximum chain length supported by the static kernels. The JIT engine has
// no such limit (it unrolls the chain it compiles), but 8 covers every
// experiment in the paper (max 5 predicates) with headroom.
inline constexpr size_t kMaxScanStages = 8;

// Kernel signature shared by every implementation (scalar, AVX2, AVX-512
// at each register width, and JIT-generated code):
//   - `stages`: `num_stages` predicates, ANDed; all arrays hold `row_count`
//     elements.
//   - `out`: receives the chunk offsets of rows satisfying all predicates,
//     in ascending order. Must have capacity for row_count + 16 entries
//     (kernels that emulate compress-store write a full register and then
//     advance by the match count).
//   - returns the number of matches written.
using FusedScanFn = size_t (*)(const ScanStage* stages, size_t num_stages,
                               size_t row_count, uint32_t* out);

// Extra output-buffer slack required beyond row_count (see above).
inline constexpr size_t kScanOutputSlack = 16;

// Scalar evaluation of one stage at one row — the semantic ground truth
// every kernel is tested against.
bool EvaluateStageAtRow(const ScanStage& stage, size_t row);

}  // namespace fts

#endif  // FTS_SIMD_SCAN_STAGE_H_
