#include <immintrin.h>

#include "fts/simd/minmax_kernels.h"

// Compiled with -mavx512f -mavx512bw -mavx512dq -mavx512vl (see
// CMakeLists.txt); never executed unless the dispatcher confirmed CPUID.

namespace fts {
namespace {

// 32/64-bit full-register reductions with a scalar tail. The tail is at
// most 15 elements, noise next to the chunk-sized bodies these run over.

bool MinMaxI32(const int32_t* data, size_t rows, int32_t* min, int32_t* max) {
  __m512i vlo = _mm512_set1_epi32(data[0]);
  __m512i vhi = vlo;
  size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    const __m512i v = _mm512_loadu_si512(data + i);
    vlo = _mm512_min_epi32(vlo, v);
    vhi = _mm512_max_epi32(vhi, v);
  }
  int32_t lo = _mm512_reduce_min_epi32(vlo);
  int32_t hi = _mm512_reduce_max_epi32(vhi);
  for (; i < rows; ++i) {
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxU32(const uint32_t* data, size_t rows, uint32_t* min,
               uint32_t* max) {
  __m512i vlo = _mm512_set1_epi32(static_cast<int>(data[0]));
  __m512i vhi = vlo;
  size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    const __m512i v = _mm512_loadu_si512(data + i);
    vlo = _mm512_min_epu32(vlo, v);
    vhi = _mm512_max_epu32(vhi, v);
  }
  uint32_t lo = _mm512_reduce_min_epu32(vlo);
  uint32_t hi = _mm512_reduce_max_epu32(vhi);
  for (; i < rows; ++i) {
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxI64(const int64_t* data, size_t rows, int64_t* min, int64_t* max) {
  __m512i vlo = _mm512_set1_epi64(data[0]);
  __m512i vhi = vlo;
  size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    const __m512i v = _mm512_loadu_si512(data + i);
    vlo = _mm512_min_epi64(vlo, v);
    vhi = _mm512_max_epi64(vhi, v);
  }
  int64_t lo = _mm512_reduce_min_epi64(vlo);
  int64_t hi = _mm512_reduce_max_epi64(vhi);
  for (; i < rows; ++i) {
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxU64(const uint64_t* data, size_t rows, uint64_t* min,
               uint64_t* max) {
  __m512i vlo = _mm512_set1_epi64(static_cast<long long>(data[0]));
  __m512i vhi = vlo;
  size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    const __m512i v = _mm512_loadu_si512(data + i);
    vlo = _mm512_min_epu64(vlo, v);
    vhi = _mm512_max_epu64(vhi, v);
  }
  uint64_t lo = _mm512_reduce_min_epu64(vlo);
  uint64_t hi = _mm512_reduce_max_epu64(vhi);
  for (; i < rows; ++i) {
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

// Float reductions track NaN with an unordered self-compare; a single NaN
// invalidates the zone map (min/max cannot prune rows that compare false
// against everything).

bool MinMaxF32(const float* data, size_t rows, float* min, float* max) {
  __m512 vlo = _mm512_set1_ps(data[0]);
  __m512 vhi = vlo;
  __mmask16 unordered = _mm512_cmp_ps_mask(vlo, vlo, _CMP_UNORD_Q);
  size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    const __m512 v = _mm512_loadu_ps(data + i);
    unordered |= _mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q);
    vlo = _mm512_min_ps(vlo, v);
    vhi = _mm512_max_ps(vhi, v);
  }
  if (unordered != 0) return false;
  float lo = _mm512_reduce_min_ps(vlo);
  float hi = _mm512_reduce_max_ps(vhi);
  for (; i < rows; ++i) {
    if (std::isnan(data[i])) return false;
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

bool MinMaxF64(const double* data, size_t rows, double* min, double* max) {
  __m512d vlo = _mm512_set1_pd(data[0]);
  __m512d vhi = vlo;
  __mmask8 unordered = _mm512_cmp_pd_mask(vlo, vlo, _CMP_UNORD_Q);
  size_t i = 0;
  for (; i + 8 <= rows; i += 8) {
    const __m512d v = _mm512_loadu_pd(data + i);
    unordered |= _mm512_cmp_pd_mask(v, v, _CMP_UNORD_Q);
    vlo = _mm512_min_pd(vlo, v);
    vhi = _mm512_max_pd(vhi, v);
  }
  if (unordered != 0) return false;
  double lo = _mm512_reduce_min_pd(vlo);
  double hi = _mm512_reduce_max_pd(vhi);
  for (; i < rows; ++i) {
    if (std::isnan(data[i])) return false;
    if (data[i] < lo) lo = data[i];
    if (data[i] > hi) hi = data[i];
  }
  *min = lo;
  *max = hi;
  return true;
}

// Bit-packed code reduction, register-resident end to end: 16 rows per
// iteration are turned into byte offsets and shifts, their 8-byte windows
// gathered at byte granularity, shifted and masked into 64-bit code lanes
// (the fused kernels' PackedCompare dataflow, kernels_avx512.cc), and
// min/max-accumulated — no unpacked temporary buffer exists at any point.
// The stream's kBitPackedSlackBytes padding keeps every window in bounds.
void PackedMinMax(const uint8_t* packed, size_t rows, int bits,
                  uint32_t* min, uint32_t* max) {
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  __m512i acc_lo = _mm512_set1_epi64(-1);  // All-ones: neutral for min.
  __m512i acc_hi = _mm512_setzero_si512();
  const __m512i vbits = _mm512_set1_epi32(bits);
  const __m512i vmask64 = _mm512_set1_epi64(static_cast<long long>(mask));
  const __m512i seven = _mm512_set1_epi32(7);
  __m512i row_vec = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                      12, 13, 14, 15);
  const __m512i step = _mm512_set1_epi32(16);

  size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    const __m512i bit_offset = _mm512_mullo_epi32(row_vec, vbits);
    const __m512i byte_offset = _mm512_srli_epi32(bit_offset, 3);
    const __m512i shift32 = _mm512_and_si512(bit_offset, seven);

    const __m512i window_lo = _mm512_mask_i32gather_epi64(
        _mm512_setzero_si512(), static_cast<__mmask8>(0xFF),
        _mm512_castsi512_si256(byte_offset), packed, 1);
    const __m512i codes_lo = _mm512_and_si512(
        _mm512_srlv_epi64(window_lo,
                          _mm512_cvtepu32_epi64(
                              _mm512_castsi512_si256(shift32))),
        vmask64);

    const __m512i window_hi = _mm512_mask_i32gather_epi64(
        _mm512_setzero_si512(), static_cast<__mmask8>(0xFF),
        _mm512_extracti64x4_epi64(byte_offset, 1), packed, 1);
    const __m512i codes_hi = _mm512_and_si512(
        _mm512_srlv_epi64(window_hi,
                          _mm512_cvtepu32_epi64(
                              _mm512_extracti64x4_epi64(shift32, 1))),
        vmask64);

    acc_lo = _mm512_min_epu64(acc_lo, _mm512_min_epu64(codes_lo, codes_hi));
    acc_hi = _mm512_max_epu64(acc_hi, _mm512_max_epu64(codes_lo, codes_hi));
    row_vec = _mm512_add_epi32(row_vec, step);
  }

  uint64_t lo = i > 0 ? _mm512_reduce_min_epu64(acc_lo) : ~uint64_t{0};
  uint64_t hi = i > 0 ? _mm512_reduce_max_epu64(acc_hi) : 0;
  for (; i < rows; ++i) {
    const size_t bit_offset = i * static_cast<size_t>(bits);
    uint64_t window;
    __builtin_memcpy(&window, packed + (bit_offset >> 3), sizeof(window));
    const uint64_t code = (window >> (bit_offset & 7)) & mask;
    if (code < lo) lo = code;
    if (code > hi) hi = code;
  }
  *min = static_cast<uint32_t>(lo);
  *max = static_cast<uint32_t>(hi);
}

const MinMaxKernels kAvx512Kernels = {
    &MinMaxI32, &MinMaxU32, &MinMaxI64, &MinMaxU64,
    &MinMaxF32, &MinMaxF64, &PackedMinMax,
};

}  // namespace

const MinMaxKernels* GetAvx512MinMaxKernels() { return &kAvx512Kernels; }

}  // namespace fts
