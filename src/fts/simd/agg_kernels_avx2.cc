#include "fts/simd/agg_spec.h"
#include "fts/simd/fused_chain_avx2.h"
#include "fts/simd/kernels_avx2.h"

// AVX2 aggregate-pushdown kernel: the predicate chain runs fully SIMD
// through fused_chain_avx2.h; the sink folds the (at most 4) survivors of
// each emitted mask scalar. AVX2 lacks the masked min/max and compress
// primitives that make the AVX-512 fold profitable, and this rung only
// runs as a fallback — the win over materialize-then-aggregate (no
// position list, no second pass) is preserved either way.
//
// Compiled with -mavx2 only; no AVX-512 instructions may appear here.

namespace fts {
namespace {

struct AggSinkAvx2 {
  AggSinkAvx2(const AggTerm* terms, size_t num_terms, AggAccumulator* accs)
      : terms_(terms), num_terms_(num_terms), accs_(accs) {
    FTS_CHECK(num_terms <= kMaxAggTerms);
  }

  void Emit(int m, __m128i positions) {
    alignas(16) uint32_t pos[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(pos), positions);
    matches_ += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(m)));
    for (int lanes = m; lanes != 0; lanes &= lanes - 1) {
      const int lane = __builtin_ctz(static_cast<unsigned>(lanes));
      for (size_t t = 0; t < num_terms_; ++t) {
        FoldValueAtRow(terms_[t], pos[lane], accs_[t]);
      }
    }
  }

  size_t Finalize() {
    for (size_t t = 0; t < num_terms_; ++t) accs_[t].count += matches_;
    return matches_;
  }

  const AggTerm* terms_;
  size_t num_terms_;
  AggAccumulator* accs_;
  size_t matches_ = 0;
};

}  // namespace

size_t FusedAggScanAvx2_128(const ScanStage* stages, size_t num_stages,
                            size_t row_count, const AggTerm* terms,
                            size_t num_terms, AggAccumulator* accs) {
  if (row_count == 0) return 0;
  for (size_t s = 0; s < num_stages; ++s) {
    if (stages[s].packed_bits != 0) {
      FTS_CHECK(row_count * stages[s].packed_bits < (uint64_t{1} << 32));
    }
  }
  AggSinkAvx2 sink(terms, num_terms, accs);
  if (num_stages == 0) {
    // All conjuncts dropped as tautological: every row matches.
    for (size_t row = 0; row < row_count; ++row) {
      for (size_t t = 0; t < num_terms; ++t) {
        FoldValueAtRow(terms[t], row, accs[t]);
      }
    }
    for (size_t t = 0; t < num_terms; ++t) accs[t].count += row_count;
    return row_count;
  }
  avx2_detail::FusedChainAvx2<AggSinkAvx2> chain(stages, num_stages, sink);
  chain.Run(row_count);
  return sink.Finalize();
}

}  // namespace fts
