#ifndef FTS_SIMD_KERNELS_SCALAR_H_
#define FTS_SIMD_KERNELS_SCALAR_H_

#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// Portable scalar implementation of the fused-scan contract. Serves as the
// semantic reference for kernel tests and as the fallback on CPUs without
// AVX2/AVX-512. Produces identical output (ascending match positions) to
// every SIMD kernel.
size_t FusedScanScalar(const ScanStage* stages, size_t num_stages,
                       size_t row_count, uint32_t* out);

// Count-only variant (no position materialization), the scalar analogue of
// the paper's naive COUNT(*) loop.
size_t FusedScanScalarCount(const ScanStage* stages, size_t num_stages,
                            size_t row_count);

// Aggregate-pushdown variant: folds every matching row directly into the
// per-term accumulators (tuple-at-a-time; the semantic reference for the
// SIMD and JIT aggregate kernels). Accepts num_stages == 0 (all rows
// match).
size_t FusedAggScanScalar(const ScanStage* stages, size_t num_stages,
                          size_t row_count, const AggTerm* terms,
                          size_t num_terms, AggAccumulator* accs);

}  // namespace fts

#endif  // FTS_SIMD_KERNELS_SCALAR_H_
