#include "fts/simd/scan_stage.h"

#include "fts/common/string_util.h"

namespace fts {

size_t ScanElementSize(ScanElementType type) {
  switch (type) {
    case ScanElementType::kI32:
    case ScanElementType::kU32:
    case ScanElementType::kF32:
      return 4;
    case ScanElementType::kI64:
    case ScanElementType::kU64:
    case ScanElementType::kF64:
      return 8;
  }
  return 0;
}

const char* ScanElementTypeToString(ScanElementType type) {
  switch (type) {
    case ScanElementType::kI32:
      return "i32";
    case ScanElementType::kU32:
      return "u32";
    case ScanElementType::kF32:
      return "f32";
    case ScanElementType::kI64:
      return "i64";
    case ScanElementType::kU64:
      return "u64";
    case ScanElementType::kF64:
      return "f64";
  }
  return "?";
}

StatusOr<ScanElementType> ScanElementTypeFromDataType(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return ScanElementType::kI32;
    case DataType::kUInt32:
      return ScanElementType::kU32;
    case DataType::kFloat32:
      return ScanElementType::kF32;
    case DataType::kInt64:
      return ScanElementType::kI64;
    case DataType::kUInt64:
      return ScanElementType::kU64;
    case DataType::kFloat64:
      return ScanElementType::kF64;
    default:
      return Status::InvalidArgument(StrFormat(
          "type %s has no native scan kernel; dictionary-encode the column",
          DataTypeToString(type)));
  }
}

ScanValue MakeScanValue(ScanElementType type, const Value& value) {
  ScanValue out{};
  switch (type) {
    case ScanElementType::kI32:
      out.i32 = ValueAs<int32_t>(value);
      break;
    case ScanElementType::kU32:
      out.u32 = ValueAs<uint32_t>(value);
      break;
    case ScanElementType::kF32:
      out.f32 = ValueAs<float>(value);
      break;
    case ScanElementType::kI64:
      out.i64 = ValueAs<int64_t>(value);
      break;
    case ScanElementType::kU64:
      out.u64 = ValueAs<uint64_t>(value);
      break;
    case ScanElementType::kF64:
      out.f64 = ValueAs<double>(value);
      break;
  }
  return out;
}

bool EvaluateStageAtRow(const ScanStage& stage, size_t row) {
  if (stage.packed_bits != 0) {
    // Bit-packed code stream: extract the b-bit code from the 8-byte
    // window containing it (mirrors the SIMD gather-unpack path).
    const auto* packed = static_cast<const uint8_t*>(stage.data);
    const size_t bit_offset = row * stage.packed_bits;
    uint64_t window;
    __builtin_memcpy(&window, packed + (bit_offset >> 3), sizeof(window));
    const uint32_t code = static_cast<uint32_t>(
        (window >> (bit_offset & 7)) & ((1ull << stage.packed_bits) - 1));
    return EvaluateCompare(stage.op, code, stage.value.u32);
  }
  switch (stage.type) {
    case ScanElementType::kI32:
      return EvaluateCompare(stage.op,
                             static_cast<const int32_t*>(stage.data)[row],
                             stage.value.i32);
    case ScanElementType::kU32:
      return EvaluateCompare(stage.op,
                             static_cast<const uint32_t*>(stage.data)[row],
                             stage.value.u32);
    case ScanElementType::kF32:
      return EvaluateCompare(stage.op,
                             static_cast<const float*>(stage.data)[row],
                             stage.value.f32);
    case ScanElementType::kI64:
      return EvaluateCompare(stage.op,
                             static_cast<const int64_t*>(stage.data)[row],
                             stage.value.i64);
    case ScanElementType::kU64:
      return EvaluateCompare(stage.op,
                             static_cast<const uint64_t*>(stage.data)[row],
                             stage.value.u64);
    case ScanElementType::kF64:
      return EvaluateCompare(stage.op,
                             static_cast<const double*>(stage.data)[row],
                             stage.value.f64);
  }
  __builtin_unreachable();
}

}  // namespace fts
