#include <cstring>

#include "fts/simd/gather_kernels.h"

namespace fts {
namespace {

// Direct typed copy for plain columns — lets the compiler keep the loop a
// load/store pair per element instead of going through GatherBitsAtRow's
// switch.
template <typename T>
void GatherPlain(const void* data, const uint32_t* positions, size_t n,
                 void* out) {
  const T* src = static_cast<const T*>(data);
  T* dst = static_cast<T*>(out);
  for (size_t i = 0; i < n; ++i) dst[i] = src[positions[i]];
}

template <typename T>
void GatherDecoded(const GatherTerm& term, const uint32_t* positions,
                   size_t n, void* out) {
  T* dst = static_cast<T*>(out);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bits = GatherBitsAtRow(term, positions[i]);
    T value;
    __builtin_memcpy(&value, &bits, sizeof(T));
    dst[i] = value;
  }
}

}  // namespace

void GatherScalar(const GatherTerm& term, const uint32_t* positions,
                  size_t n, void* out) {
  const bool wide = GatherElementIs64(term.type);
  if (term.dict == nullptr && term.packed_bits == 0) {
    if (wide) {
      GatherPlain<uint64_t>(term.data, positions, n, out);
    } else {
      GatherPlain<uint32_t>(term.data, positions, n, out);
    }
    return;
  }
  if (wide) {
    GatherDecoded<uint64_t>(term, positions, n, out);
  } else {
    GatherDecoded<uint32_t>(term, positions, n, out);
  }
}

}  // namespace fts
