#include "fts/simd/kernels_avx512.h"

#include "fts/common/macros.h"
#include "fts/simd/fused_chain_avx512.h"

// This translation unit is compiled with
//   -mavx512f -mavx512bw -mavx512dq -mavx512vl
// (see CMakeLists.txt). Nothing here runs unless the dispatcher confirmed
// the CPU supports those extensions. The chain dataflow itself lives in
// fused_chain_avx512.h, shared with the aggregate-pushdown kernels; this
// file instantiates it with the position-list sink.

namespace fts {
namespace {

// Sink realizing the classic fused-scan contract: compress-store each
// final-stage survivor set into the output position list.
template <int kBits>
struct PositionListSink {
  using Traits = avx512_detail::WidthTraits<kBits>;

  explicit PositionListSink(uint32_t* out) : out_(out) {}

  void Emit(uint32_t m, typename Traits::VecI positions) {
    Traits::CompressStore32(out_ + count_, m, positions);
    count_ += static_cast<size_t>(__builtin_popcount(m));
  }

  uint32_t* out_;
  size_t count_ = 0;
};

template <int kBits>
size_t FusedScanAvx512(const ScanStage* stages, size_t num_stages,
                       size_t row_count, uint32_t* out) {
  if (row_count == 0) return 0;
  for (size_t s = 0; s < num_stages; ++s) {
    if (stages[s].packed_bits != 0) {
      // Bit offsets are computed in 32-bit lanes; the packed stream must
      // stay below 2^32 bits.
      FTS_CHECK(row_count * stages[s].packed_bits <
                (uint64_t{1} << 32));
    }
  }
  PositionListSink<kBits> sink(out);
  avx512_detail::FusedChain<kBits, PositionListSink<kBits>> chain(
      stages, num_stages, sink);
  chain.Run(row_count);
  return sink.count_;
}

}  // namespace

size_t FusedScanAvx512_512(const ScanStage* stages, size_t num_stages,
                           size_t row_count, uint32_t* out) {
  return FusedScanAvx512<512>(stages, num_stages, row_count, out);
}

size_t FusedScanAvx512_256(const ScanStage* stages, size_t num_stages,
                           size_t row_count, uint32_t* out) {
  return FusedScanAvx512<256>(stages, num_stages, row_count, out);
}

size_t FusedScanAvx512_128(const ScanStage* stages, size_t num_stages,
                           size_t row_count, uint32_t* out) {
  return FusedScanAvx512<128>(stages, num_stages, row_count, out);
}

}  // namespace fts
