#ifndef FTS_SIMD_ZONE_MAP_BUILDER_H_
#define FTS_SIMD_ZONE_MAP_BUILDER_H_

#include "fts/storage/column.h"
#include "fts/storage/zone_map.h"

namespace fts {

// Computes the zone map for one column via the fastest min-max reduction
// kernel this CPU offers (fts/simd/minmax_kernels.h). Called once per
// column at ingest by TableBuilder, which covers every construction path
// (row-wise AppendRow, bulk AddChunk, CsvLoader, DataGenerator).
//
// Returns an invalid zone map (ZoneMap::valid == false) for empty columns
// and for floating-point columns containing NaN — consumers skip those and
// simply scan the chunk in full.
//
// Dictionary and bit-packed columns additionally carry code-space bounds
// (min/max over the stored codes; the bit-packed reduction reads the
// packed stream directly, never unpacking into a temporary buffer). Their
// value bounds come from indexing the sorted dictionary with the code
// bounds, which stays exact even when a hand-built dictionary carries
// entries no row references.
ZoneMap BuildColumnZoneMap(const BaseColumn& column);

}  // namespace fts

#endif  // FTS_SIMD_ZONE_MAP_BUILDER_H_
