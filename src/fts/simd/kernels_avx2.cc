#include "fts/simd/kernels_avx2.h"

#include "fts/common/macros.h"
#include "fts/simd/fused_chain_avx2.h"

// Compiled with -mavx2 only — no AVX-512 instructions may appear here;
// this is the paper's backport baseline. The chain dataflow lives in
// fused_chain_avx2.h, shared with the aggregate-pushdown kernel; this file
// instantiates it with the position-list sink.

namespace fts {
namespace {

// Emulated compress-store sink: writes a full (compressed) register and
// advances by the match count — hence the kScanOutputSlack requirement.
struct PositionListSinkAvx2 {
  explicit PositionListSinkAvx2(uint32_t* out) : out_(out) {}

  void Emit(int m, __m128i positions) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_ + count_),
                     avx2_detail::EmulatedCompress32(m, positions));
    count_ += static_cast<size_t>(__builtin_popcount(m));
  }

  uint32_t* out_;
  size_t count_ = 0;
};

}  // namespace

size_t FusedScanAvx2_128(const ScanStage* stages, size_t num_stages,
                         size_t row_count, uint32_t* out) {
  if (row_count == 0) return 0;
  for (size_t s = 0; s < num_stages; ++s) {
    if (stages[s].packed_bits != 0) {
      FTS_CHECK(row_count * stages[s].packed_bits < (uint64_t{1} << 32));
    }
  }
  PositionListSinkAvx2 sink(out);
  avx2_detail::FusedChainAvx2<PositionListSinkAvx2> chain(stages,
                                                          num_stages, sink);
  chain.Run(row_count);
  return sink.count_;
}

}  // namespace fts
