#include "fts/scan/table_scan.h"

#include <numeric>

#include "fts/common/string_util.h"
#include "fts/scan/sisd_scan.h"
#include "fts/simd/dispatch.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/dictionary_column.h"

namespace fts {
namespace {

// Builds the ScanStage for one predicate against one chunk's column.
// Returns true in `*dropped` when the predicate is a tautology for this
// chunk and sets `*impossible` when it cannot match.
Status BuildStage(const BaseColumn& column, const PredicateSpec& predicate,
                  ScanStage* stage, bool* dropped, bool* impossible) {
  *dropped = false;
  *impossible = false;

  if (column.encoding() == ColumnEncoding::kDictionary ||
      column.encoding() == ColumnEncoding::kBitPacked) {
    // Rewrite into code space. Dictionary code vectors are uint32 and
    // directly scannable (paper assumption 3); bit-packed code streams are
    // scanned through the kernels' unpack path (paper Future Work).
    DictionaryPredicate translated;
    Status status = DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      auto casted = CastValue(predicate.value, column.data_type());
      if (!casted.ok()) return casted.status();
      if (column.encoding() == ColumnEncoding::kDictionary) {
        translated =
            static_cast<const DictionaryColumn<T>&>(column)
                .TranslatePredicate(predicate.op, ValueAs<T>(*casted));
      } else {
        translated =
            static_cast<const BitPackedColumn<T>&>(column)
                .TranslatePredicate(predicate.op, ValueAs<T>(*casted));
      }
      return Status::Ok();
    });
    FTS_RETURN_IF_ERROR(status);
    switch (translated.kind) {
      case DictionaryPredicate::Kind::kNone:
        *impossible = true;
        return Status::Ok();
      case DictionaryPredicate::Kind::kAll:
        *dropped = true;
        return Status::Ok();
      case DictionaryPredicate::Kind::kCompare:
        stage->data = column.scan_data();
        stage->type = ScanElementType::kU32;
        stage->op = translated.op;
        stage->value.u32 = translated.code;
        stage->packed_bits = column.packed_bit_width();
        if (stage->packed_bits != 0 &&
            static_cast<uint64_t>(column.size()) * stage->packed_bits >=
                (uint64_t{1} << 32)) {
          // The kernels compute bit offsets in 32-bit lanes.
          return Status::InvalidArgument(StrFormat(
              "bit-packed chunk too large (%zu rows x %d bits); "
              "partition the table into smaller chunks",
              column.size(), stage->packed_bits));
        }
        return Status::Ok();
    }
    __builtin_unreachable();
  }

  // Plain column: cast the search value to the column type.
  FTS_ASSIGN_OR_RETURN(const ScanElementType element_type,
                       ScanElementTypeFromDataType(column.scan_type()));
  FTS_ASSIGN_OR_RETURN(const Value casted,
                       CastValue(predicate.value, column.data_type()));
  stage->data = column.scan_data();
  stage->type = element_type;
  stage->op = predicate.op;
  stage->value = MakeScanValue(element_type, casted);
  return Status::Ok();
}

// Maps a fused ScanEngine to its static kernel. Callers have already
// checked availability.
FusedScanFn FusedFnForEngine(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kScalarFused:
      return *GetFusedScanKernel(FusedKernelKind::kScalar);
    case ScanEngine::kAvx2Fused128:
      return *GetFusedScanKernel(FusedKernelKind::kAvx2_128);
    case ScanEngine::kAvx512Fused128:
      return *GetFusedScanKernel(FusedKernelKind::kAvx512_128);
    case ScanEngine::kAvx512Fused256:
      return *GetFusedScanKernel(FusedKernelKind::kAvx512_256);
    case ScanEngine::kAvx512Fused512:
      return *GetFusedScanKernel(FusedKernelKind::kAvx512_512);
    default:
      return nullptr;
  }
}

// Shared entry checks for every execution path.
Status ValidateEngine(ScanEngine engine) {
  if (engine == ScanEngine::kJit) {
    return Status::InvalidArgument(
        "the JIT engine is driven by fts::JitScanEngine (fts/jit)");
  }
  if (!ScanEngineAvailable(engine)) {
    return Status::Unavailable(StrFormat(
        "scan engine %s is not available on this CPU",
        ScanEngineToString(engine)));
  }
  return Status::Ok();
}

// Classic block-at-a-time execution: the first predicate runs vectorized
// over the whole chunk and *materializes* its position list; every further
// predicate iterates that list one row at a time ("breaking out of SIMD
// code", as Menon et al. put it — see Section VI.C). This is the baseline
// strategy the Fused Table Scan's register-resident position lists avoid.
size_t BlockwiseScan(const std::vector<ScanStage>& stages, size_t row_count,
                     uint32_t* out) {
  const FusedKernelKind first_kind = BestAvailableKernel();
  const FusedScanFn first_stage_fn = *GetFusedScanKernel(first_kind);

  PosList current(row_count + kScanOutputSlack);
  size_t count = first_stage_fn(stages.data(), 1, row_count, current.data());

  for (size_t s = 1; s < stages.size(); ++s) {
    size_t kept = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint32_t pos = current[i];
      if (EvaluateStageAtRow(stages[s], pos)) current[kept++] = pos;
    }
    count = kept;
  }
  for (size_t i = 0; i < count; ++i) out[i] = current[i];
  return count;
}

}  // namespace

StatusOr<TableScanner> TableScanner::Prepare(TablePtr table,
                                             const ScanSpec& spec) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (spec.predicates.size() > kMaxScanStages) {
    return Status::InvalidArgument(
        StrFormat("scan has %zu predicates; static kernels support up to %zu",
                  spec.predicates.size(), kMaxScanStages));
  }
  // Resolve all column names once.
  std::vector<size_t> column_indexes;
  column_indexes.reserve(spec.predicates.size());
  for (const auto& predicate : spec.predicates) {
    FTS_ASSIGN_OR_RETURN(const size_t index,
                         table->ColumnIndex(predicate.column));
    column_indexes.push_back(index);
  }

  std::vector<ChunkPlan> plans;
  plans.reserve(table->chunk_count());
  for (ChunkId chunk_id = 0; chunk_id < table->chunk_count(); ++chunk_id) {
    const Chunk& chunk = table->chunk(chunk_id);
    ChunkPlan plan;
    plan.row_count = chunk.row_count();
    for (size_t p = 0; p < spec.predicates.size(); ++p) {
      ScanStage stage;
      bool dropped = false;
      bool impossible = false;
      FTS_RETURN_IF_ERROR(BuildStage(chunk.column(column_indexes[p]),
                                     spec.predicates[p], &stage, &dropped,
                                     &impossible));
      if (impossible) {
        plan.impossible = true;
        plan.stages.clear();
        break;
      }
      if (!dropped) plan.stages.push_back(stage);
    }
    plans.push_back(std::move(plan));
  }
  return TableScanner(std::move(table), std::move(plans));
}

StatusOr<size_t> TableScanner::ExecuteChunk(ScanEngine engine,
                                            ChunkId chunk_id,
                                            ChunkOffset* out) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  if (chunk_id >= chunk_plans_.size()) {
    return Status::InvalidArgument(
        StrFormat("chunk %u out of range (%zu chunks)", chunk_id,
                  chunk_plans_.size()));
  }
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  if (plan.impossible || plan.row_count == 0) return size_t{0};
  if (plan.stages.empty()) {
    std::iota(out, out + plan.row_count, ChunkOffset{0});
    return plan.row_count;
  }
  switch (engine) {
    case ScanEngine::kSisdNoVec:
      return SisdScanNoVecCollect(plan.stages.data(), plan.stages.size(),
                                  plan.row_count, out);
    case ScanEngine::kSisdAutoVec:
      return SisdScanAutoVecCollect(plan.stages.data(), plan.stages.size(),
                                    plan.row_count, out);
    case ScanEngine::kBlockwise:
      return BlockwiseScan(plan.stages, plan.row_count, out);
    default:
      return FusedFnForEngine(engine)(plan.stages.data(), plan.stages.size(),
                                      plan.row_count, out);
  }
}

StatusOr<uint64_t> TableScanner::ExecuteChunkCount(ScanEngine engine,
                                                   ChunkId chunk_id) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  if (chunk_id >= chunk_plans_.size()) {
    return Status::InvalidArgument(
        StrFormat("chunk %u out of range (%zu chunks)", chunk_id,
                  chunk_plans_.size()));
  }
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  if (plan.impossible || plan.row_count == 0) return uint64_t{0};
  if (plan.stages.empty()) return plan.row_count;
  // The SISD engines count without materializing — the paper's Section II
  // baseline loop.
  if (engine == ScanEngine::kSisdNoVec) {
    return SisdScanNoVecCount(plan.stages.data(), plan.stages.size(),
                              plan.row_count);
  }
  if (engine == ScanEngine::kSisdAutoVec) {
    return SisdScanAutoVecCount(plan.stages.data(), plan.stages.size(),
                                plan.row_count);
  }
  PosList scratch(plan.row_count + kScanOutputSlack);
  return ExecuteChunk(engine, chunk_id, scratch.data());
}

StatusOr<TableMatches> TableScanner::Execute(ScanEngine engine) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  TableMatches result;
  result.chunks.reserve(chunk_plans_.size());
  for (ChunkId chunk_id = 0; chunk_id < chunk_plans_.size(); ++chunk_id) {
    const ChunkPlan& plan = chunk_plans_[chunk_id];
    ChunkMatches matches;
    matches.chunk_id = chunk_id;
    if (!plan.impossible && plan.row_count > 0) {
      PosList positions(plan.row_count + kScanOutputSlack);
      FTS_ASSIGN_OR_RETURN(const size_t count,
                           ExecuteChunk(engine, chunk_id, positions.data()));
      positions.resize(count);
      matches.positions = std::move(positions);
    }
    result.chunks.push_back(std::move(matches));
  }
  return result;
}

StatusOr<uint64_t> TableScanner::ExecuteCount(ScanEngine engine) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  uint64_t total = 0;
  for (ChunkId chunk_id = 0; chunk_id < chunk_plans_.size(); ++chunk_id) {
    FTS_ASSIGN_OR_RETURN(const uint64_t count,
                         ExecuteChunkCount(engine, chunk_id));
    total += count;
  }
  return total;
}

StatusOr<TableMatches> ExecuteScan(TablePtr table, const ScanSpec& spec,
                                   ScanEngine engine) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  return scanner.Execute(engine);
}

StatusOr<uint64_t> ExecuteScanCount(TablePtr table, const ScanSpec& spec,
                                    ScanEngine engine) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  return scanner.ExecuteCount(engine);
}

}  // namespace fts
