#include "fts/scan/table_scan.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>

#include "fts/common/string_util.h"
#include "fts/obs/metrics.h"
#include "fts/obs/trace.h"
#include "fts/scan/sisd_scan.h"
#include "fts/simd/dispatch.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/zone_map.h"

namespace fts {
namespace {

// Bytes a scan of this column's chunk actually touches: the packed stream
// for bit-packed / frame-of-reference columns, the run and block metadata
// for the compressed-domain encodings, the scan representation (codes for
// dictionary columns, values otherwise) for the rest. Used for the
// bytes-skipped estimate in PruningSummary.
uint64_t ColumnScanBytes(const BaseColumn& column) {
  if (column.encoding() == ColumnEncoding::kRle) {
    // Run values + cumulative ends; run-granular evaluation never touches
    // per-row data.
    uint64_t bytes = 0;
    DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      bytes = static_cast<uint64_t>(
                  static_cast<const RleColumn<T>&>(column).run_count()) *
              (sizeof(T) + sizeof(uint32_t));
    });
    return bytes;
  }
  if (column.encoding() == ColumnEncoding::kDelta) {
    uint64_t bytes = 0;
    DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      if constexpr (std::is_integral_v<T>) {
        bytes = static_cast<const DeltaColumn<T>&>(column).packed_bytes();
      }
    });
    return bytes;
  }
  const int bits = column.packed_bit_width();
  if (bits != 0) {
    return (static_cast<uint64_t>(column.size()) * bits + 7) / 8;
  }
  return static_cast<uint64_t>(column.size()) *
         DataTypeSize(column.scan_type());
}

// Builds the ScanStage for one predicate against one chunk's column.
// Returns true in `*dropped` when the predicate is a tautology for this
// chunk and sets `*impossible` when it cannot match. `zone` is the chunk's
// zone map for this column (nullptr when absent or pruning is disabled);
// bounds that disprove or prove the predicate short-circuit stage
// construction exactly like dictionary translation does, so serial and
// parallel executors see one unified impossible/dropped mechanism.
// Predicates over RLE/delta columns that survive zone classification fill
// `*compressed_stage` and set `*is_compressed` instead of building a
// kernel stage (fts/scan/compressed_scan.h). `*selectivity` receives the
// cost model's estimate of the fraction of this chunk's rows the
// predicate keeps, from the same bounds zone classification consults
// (0.5 when no bounds exist).
Status BuildStage(const BaseColumn& column, const ZoneMap* zone,
                  const PredicateSpec& predicate, ScanStage* stage,
                  CompressedScanStage* compressed_stage, bool* is_compressed,
                  bool* dropped, bool* impossible, double* selectivity) {
  *dropped = false;
  *impossible = false;
  *is_compressed = false;
  *selectivity = 0.5;

  if (column.encoding() == ColumnEncoding::kFor) {
    // Frame-of-reference: rebase the literal into the delta domain, after
    // which the chunk scans through the packed-code path like a
    // bit-packed column — no decode anywhere. The literal translation
    // mirrors sorted-dictionary translation: out-of-frame literals are
    // decided outright, in-frame literals compare exactly because
    // value -> value - base is monotone over the frame.
    FTS_ASSIGN_OR_RETURN(const Value casted,
                         CastValue(predicate.value, column.data_type()));
    uint64_t delta = 0;
    uint32_t max_code = 0;
    bool below = false;  // literal < base (below the frame)
    bool above = false;  // literal > base + max_delta (above the frame)
    DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      if constexpr (std::is_integral_v<T>) {
        const auto& fr = static_cast<const ForColumn<T>&>(column);
        const T literal = ValueAs<T>(casted);
        const T frame_max = static_cast<T>(
            static_cast<uint64_t>(fr.base()) + fr.max_delta());
        below = literal < fr.base();
        above = literal > frame_max;
        max_code = static_cast<uint32_t>(fr.max_delta());
        if (!below && !above) {
          delta = ForColumn<T>::DeltaOf(literal, fr.base());
        }
      }
    });
    if (below || above) {
      // Every stored value is >= base (below) or <= base + max_delta
      // (above); the comparison is decided for the whole chunk.
      switch (predicate.op) {
        case CompareOp::kEq:
          *impossible = true;
          return Status::Ok();
        case CompareOp::kNe:
          *dropped = true;
          return Status::Ok();
        case CompareOp::kLt:
        case CompareOp::kLe:
          *(below ? impossible : dropped) = true;
          return Status::Ok();
        case CompareOp::kGt:
        case CompareOp::kGe:
          *(below ? dropped : impossible) = true;
          return Status::Ok();
      }
      __builtin_unreachable();
    }
    // In-frame literal: classify against the delta-domain code bounds
    // (min delta is 0 by construction — the base is the chunk minimum).
    switch (ClassifyZone<uint32_t>(0, max_code, predicate.op,
                                   static_cast<uint32_t>(delta))) {
      case ZoneFate::kNone:
        *impossible = true;
        return Status::Ok();
      case ZoneFate::kAll:
        *dropped = true;
        return Status::Ok();
      case ZoneFate::kMaybe:
        break;
    }
    *selectivity = cost::EstimateUniformSelectivity<uint32_t>(
        0, max_code, predicate.op, static_cast<uint32_t>(delta));
    stage->data = column.scan_data();
    stage->type = ScanElementType::kU32;
    stage->op = predicate.op;
    stage->value.u32 = static_cast<uint32_t>(delta);
    stage->packed_bits = column.packed_bit_width();
    stage->encoding = static_cast<uint8_t>(ColumnEncoding::kFor);
    if (static_cast<uint64_t>(column.size()) * stage->packed_bits >=
        (uint64_t{1} << 32)) {
      return Status::InvalidArgument(StrFormat(
          "frame-of-reference chunk too large (%zu rows x %d bits); "
          "partition the table into smaller chunks",
          column.size(), stage->packed_bits));
    }
    return Status::Ok();
  }

  if (column.encoding() == ColumnEncoding::kRle ||
      column.encoding() == ColumnEncoding::kDelta) {
    // Compressed-domain stage: keep the predicate in the value domain and
    // let the range builder classify runs/blocks at execution. The zone
    // map still gets first say so whole-chunk facts prune here like
    // everywhere else.
    FTS_ASSIGN_OR_RETURN(const Value casted,
                         CastValue(predicate.value, column.data_type()));
    if (zone != nullptr && zone->valid) {
      ZoneFate fate = ZoneFate::kMaybe;
      DispatchDataType(column.data_type(), [&](auto tag) {
        using T = decltype(tag);
        fate = ClassifyZone<T>(ValueAs<T>(zone->min), ValueAs<T>(zone->max),
                               predicate.op, ValueAs<T>(casted));
      });
      if (fate == ZoneFate::kNone) {
        *impossible = true;
        return Status::Ok();
      }
      if (fate == ZoneFate::kAll) {
        *dropped = true;
        return Status::Ok();
      }
      DispatchDataType(column.data_type(), [&](auto tag) {
        using T = decltype(tag);
        *selectivity = cost::EstimateUniformSelectivity<T>(
            ValueAs<T>(zone->min), ValueAs<T>(zone->max), predicate.op,
            ValueAs<T>(casted));
      });
    }
    compressed_stage->column = &column;
    compressed_stage->op = predicate.op;
    compressed_stage->value = casted;
    *is_compressed = true;
    return Status::Ok();
  }

  if (column.encoding() == ColumnEncoding::kDictionary ||
      column.encoding() == ColumnEncoding::kBitPacked) {
    // Rewrite into code space. Dictionary code vectors are uint32 and
    // directly scannable (paper assumption 3); bit-packed code streams are
    // scanned through the kernels' unpack path (paper Future Work).
    DictionaryPredicate translated;
    Status status = DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      auto casted = CastValue(predicate.value, column.data_type());
      if (!casted.ok()) return casted.status();
      if (column.encoding() == ColumnEncoding::kDictionary) {
        translated =
            static_cast<const DictionaryColumn<T>&>(column)
                .TranslatePredicate(predicate.op, ValueAs<T>(*casted));
      } else {
        translated =
            static_cast<const BitPackedColumn<T>&>(column)
                .TranslatePredicate(predicate.op, ValueAs<T>(*casted));
      }
      return Status::Ok();
    });
    FTS_RETURN_IF_ERROR(status);
    switch (translated.kind) {
      case DictionaryPredicate::Kind::kNone:
        *impossible = true;
        return Status::Ok();
      case DictionaryPredicate::Kind::kAll:
        *dropped = true;
        return Status::Ok();
      case DictionaryPredicate::Kind::kCompare:
        if (zone != nullptr && zone->has_codes) {
          // Code-space classification catches chunk-level facts the
          // whole-dictionary translation cannot see — e.g. a chunk whose
          // rows all share one code, or whose codes sit entirely on one
          // side of the translated boundary.
          switch (ClassifyZone<uint32_t>(zone->min_code, zone->max_code,
                                         translated.op, translated.code)) {
            case ZoneFate::kNone:
              *impossible = true;
              return Status::Ok();
            case ZoneFate::kAll:
              *dropped = true;
              return Status::Ok();
            case ZoneFate::kMaybe:
              break;
          }
          *selectivity = cost::EstimateUniformSelectivity<uint32_t>(
              zone->min_code, zone->max_code, translated.op,
              translated.code);
        }
        stage->data = column.scan_data();
        stage->type = ScanElementType::kU32;
        stage->op = translated.op;
        stage->value.u32 = translated.code;
        stage->packed_bits = column.packed_bit_width();
        stage->encoding = static_cast<uint8_t>(column.encoding());
        if (stage->packed_bits != 0 &&
            static_cast<uint64_t>(column.size()) * stage->packed_bits >=
                (uint64_t{1} << 32)) {
          // The kernels compute bit offsets in 32-bit lanes.
          return Status::InvalidArgument(StrFormat(
              "bit-packed chunk too large (%zu rows x %d bits); "
              "partition the table into smaller chunks",
              column.size(), stage->packed_bits));
        }
        return Status::Ok();
    }
    __builtin_unreachable();
  }

  // Plain column: cast the search value to the column type.
  FTS_ASSIGN_OR_RETURN(const ScanElementType element_type,
                       ScanElementTypeFromDataType(column.scan_type()));
  FTS_ASSIGN_OR_RETURN(const Value casted,
                       CastValue(predicate.value, column.data_type()));
  if (zone != nullptr && zone->valid) {
    ZoneFate fate = ZoneFate::kMaybe;
    DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      fate = ClassifyZone<T>(ValueAs<T>(zone->min), ValueAs<T>(zone->max),
                             predicate.op, ValueAs<T>(casted));
    });
    if (fate == ZoneFate::kNone) {
      *impossible = true;
      return Status::Ok();
    }
    if (fate == ZoneFate::kAll) {
      *dropped = true;
      return Status::Ok();
    }
    DispatchDataType(column.data_type(), [&](auto tag) {
      using T = decltype(tag);
      *selectivity = cost::EstimateUniformSelectivity<T>(
          ValueAs<T>(zone->min), ValueAs<T>(zone->max), predicate.op,
          ValueAs<T>(casted));
    });
  }
  stage->data = column.scan_data();
  stage->type = element_type;
  stage->op = predicate.op;
  stage->value = MakeScanValue(element_type, casted);
  stage->encoding = static_cast<uint8_t>(ColumnEncoding::kPlain);
  return Status::Ok();
}

// Value domain of a column type, selecting the AggAccumulator fields and
// widening rule an aggregate term uses.
AggDomain AggDomainForType(DataType type) {
  AggDomain domain = AggDomain::kSigned;
  DispatchDataType(type, [&](auto tag) {
    using T = decltype(tag);
    if constexpr (std::is_floating_point_v<T>) {
      domain = AggDomain::kFloat;
    } else if constexpr (std::is_signed_v<T>) {
      domain = AggDomain::kSigned;
    } else {
      domain = AggDomain::kUnsigned;
    }
  });
  return domain;
}

// Builds the AggTerm for one aggregate against one chunk's column and
// appends it to `plan`. Dictionary / bit-packed columns get a decode table
// widened to 8 bytes per entry (owned by plan->agg_dicts) so the kernels
// fold decoded values without per-row type dispatch.
Status BuildAggTerm(const Chunk& chunk,
                    const std::optional<size_t>& column_index, AggOp op,
                    TableScanner::ChunkPlan* plan) {
  AggTerm term;
  term.op = op;
  if (!column_index.has_value()) {  // COUNT(*): no column read.
    plan->agg_terms.push_back(term);
    return Status::Ok();
  }
  const BaseColumn& column = chunk.column(*column_index);
  term.domain = AggDomainForType(column.data_type());
  if (!IsKernelScannable(column.encoding()) ||
      column.encoding() == ColumnEncoding::kFor) {
    // RLE/delta terms would need per-row decode inside the kernel loop and
    // FoR would need a rebase-add per fold; the planner routes these to
    // the materialize-then-aggregate path (fts/plan/translator.cc), so
    // only direct API callers can reach this.
    return Status::InvalidArgument(StrFormat(
        "aggregate pushdown folds plain/dictionary/bit-packed columns "
        "only; column is %s-encoded",
        ColumnEncodingName(column.encoding())));
  }
  if (column.encoding() == ColumnEncoding::kDictionary ||
      column.encoding() == ColumnEncoding::kBitPacked) {
    term.data = column.scan_data();
    term.type = ScanElementType::kU32;
    term.packed_bits = column.packed_bit_width();
    FTS_RETURN_IF_ERROR(DispatchDataType(
        column.data_type(), [&](auto tag) -> Status {
          using T = decltype(tag);
          const std::vector<T>& dict =
              column.encoding() == ColumnEncoding::kDictionary
                  ? static_cast<const DictionaryColumn<T>&>(column)
                        .dictionary()
                  : static_cast<const BitPackedColumn<T>&>(column)
                        .dictionary();
          if constexpr (std::is_floating_point_v<T>) {
            auto widened = std::make_shared<std::vector<double>>(
                dict.begin(), dict.end());
            term.dict = widened->data();
            plan->agg_dicts.emplace_back(std::move(widened));
          } else if constexpr (std::is_signed_v<T>) {
            auto widened = std::make_shared<std::vector<int64_t>>(
                dict.begin(), dict.end());
            term.dict = widened->data();
            plan->agg_dicts.emplace_back(std::move(widened));
          } else {
            auto widened = std::make_shared<std::vector<uint64_t>>(
                dict.begin(), dict.end());
            term.dict = widened->data();
            plan->agg_dicts.emplace_back(std::move(widened));
          }
          return Status::Ok();
        }));
    plan->agg_terms.push_back(term);
    return Status::Ok();
  }
  // Plain column: the SIMD gathers read the values directly, so the
  // element type must be scan-supported (32/64-bit). 8/16-bit plain
  // columns are rejected here; the planner routes those to the
  // materialize-then-aggregate path instead.
  FTS_ASSIGN_OR_RETURN(term.type,
                       ScanElementTypeFromDataType(column.scan_type()));
  term.data = column.scan_data();
  plan->agg_terms.push_back(term);
  return Status::Ok();
}

// When every conjunct of a chunk was proved tautological and every term is
// answerable from zone metadata alone (COUNT from the row count, MIN/MAX
// from the bounds), precomputes the chunk's contribution so execution
// skips the chunk's data entirely. SUM needs the actual values, so any SUM
// term disables the shortcut.
void TryAggZoneShortcut(const Chunk& chunk,
                        const std::vector<std::optional<size_t>>& columns,
                        TableScanner::ChunkPlan* plan) {
  if (!plan->stages.empty() || !plan->compressed.empty() ||
      plan->impossible || plan->row_count == 0) {
    return;
  }
  std::vector<AggAccumulator> partials(plan->agg_terms.size());
  for (size_t i = 0; i < plan->agg_terms.size(); ++i) {
    const AggTerm& term = plan->agg_terms[i];
    AggAccumulator& acc = partials[i];
    acc.count = plan->row_count;
    if (term.op == AggOp::kCount) continue;
    if (term.op == AggOp::kSum) return;  // Zone maps hold no sums.
    const ZoneMap* zone = chunk.zone_map(*columns[i]);
    if (zone == nullptr || !zone->valid) return;
    const Value& bound = term.op == AggOp::kMin ? zone->min : zone->max;
    switch (term.domain) {
      case AggDomain::kSigned:
        FoldSigned(term.op, ValueAs<int64_t>(bound), acc);
        break;
      case AggDomain::kUnsigned:
        FoldUnsigned(term.op, ValueAs<uint64_t>(bound), acc);
        break;
      case AggDomain::kFloat:
        FoldFloat(term.op, ValueAs<double>(bound), acc);
        break;
    }
  }
  plan->agg_zone_shortcut = true;
  plan->agg_zone_partials = std::move(partials);
}

// Maps a ScanEngine to its aggregate-pushdown kernel. SISD and Blockwise
// engines (and the scalar fused engine) run the scalar reference fold; the
// JIT engine never reaches this (ValidateEngine rejects it).
FusedAggScanFn AggFnForEngine(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kAvx2Fused128:
      return *GetFusedAggKernel(FusedKernelKind::kAvx2_128);
    case ScanEngine::kAvx512Fused128:
      return *GetFusedAggKernel(FusedKernelKind::kAvx512_128);
    case ScanEngine::kAvx512Fused256:
      return *GetFusedAggKernel(FusedKernelKind::kAvx512_256);
    case ScanEngine::kAvx512Fused512:
      return *GetFusedAggKernel(FusedKernelKind::kAvx512_512);
    default:
      return *GetFusedAggKernel(FusedKernelKind::kScalar);
  }
}

// Maps a fused ScanEngine to its static kernel. Callers have already
// checked availability.
FusedScanFn FusedFnForEngine(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kScalarFused:
      return *GetFusedScanKernel(FusedKernelKind::kScalar);
    case ScanEngine::kAvx2Fused128:
      return *GetFusedScanKernel(FusedKernelKind::kAvx2_128);
    case ScanEngine::kAvx512Fused128:
      return *GetFusedScanKernel(FusedKernelKind::kAvx512_128);
    case ScanEngine::kAvx512Fused256:
      return *GetFusedScanKernel(FusedKernelKind::kAvx512_256);
    case ScanEngine::kAvx512Fused512:
      return *GetFusedScanKernel(FusedKernelKind::kAvx512_512);
    default:
      return nullptr;
  }
}

// Shared entry checks for every execution path.
Status ValidateEngine(ScanEngine engine) {
  if (engine == ScanEngine::kJit) {
    return Status::InvalidArgument(
        "the JIT engine is driven by fts::JitScanEngine (fts/jit)");
  }
  if (!ScanEngineAvailable(engine)) {
    return Status::Unavailable(StrFormat(
        "scan engine %s is not available on this CPU",
        ScanEngineToString(engine)));
  }
  return Status::Ok();
}

// Classic block-at-a-time execution: the first predicate runs vectorized
// over the whole chunk and *materializes* its position list; every further
// predicate iterates that list one row at a time ("breaking out of SIMD
// code", as Menon et al. put it — see Section VI.C). This is the baseline
// strategy the Fused Table Scan's register-resident position lists avoid.
size_t BlockwiseScan(const std::vector<ScanStage>& stages, size_t row_count,
                     uint32_t* out) {
  const FusedKernelKind first_kind = BestAvailableKernel();
  const FusedScanFn first_stage_fn = *GetFusedScanKernel(first_kind);

  PosList current(row_count + kScanOutputSlack);
  size_t count = first_stage_fn(stages.data(), 1, row_count, current.data());

  for (size_t s = 1; s < stages.size(); ++s) {
    size_t kept = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint32_t pos = current[i];
      if (EvaluateStageAtRow(stages[s], pos)) current[kept++] = pos;
    }
    count = kept;
  }
  for (size_t i = 0; i < count; ++i) out[i] = current[i];
  return count;
}

// Process-lifetime accounting for one chunk execution. The fused path of
// ExecuteChunkCount delegates to ExecuteChunk, so only ExecuteChunk and the
// SISD count fast paths call this — each chunk is counted exactly once.
void RecordChunkExecution(ScanEngine engine, size_t rows, size_t matches) {
  const obs::EngineMetrics& metrics = obs::Metrics();
  metrics.rows_scanned_total->Add(rows);
  metrics.rows_emitted_total->Add(matches);
  EngineExecutionCounter(engine)->Increment();
}

// Operand shape of one kernel stage as the cost profile prices it.
cost::EncClass EncClassOf(const ScanStage& stage) {
  if (stage.packed_bits != 0) return cost::EncClass::kPacked;
  switch (stage.type) {
    case ScanElementType::kI64:
    case ScanElementType::kU64:
    case ScanElementType::kF64:
      return cost::EncClass::kPlain64;
    default:
      return cost::EncClass::kPlain32;
  }
}

// Engine whose calibrated constants order the chain. Re-ranking must not
// depend on which engine later runs the chunk (the order would then differ
// between adaptive on/off), so chains are ranked once against the best
// fused kernel this CPU has — the engine the rest_ns ratios of which best
// reflect how the fused chains actually behave.
ScanEngine RankingEngine() {
  switch (BestAvailableKernel()) {
    case FusedKernelKind::kAvx512_512:
      return ScanEngine::kAvx512Fused512;
    case FusedKernelKind::kAvx512_256:
      return ScanEngine::kAvx512Fused256;
    case FusedKernelKind::kAvx512_128:
      return ScanEngine::kAvx512Fused128;
    case FusedKernelKind::kAvx2_128:
      return ScanEngine::kAvx2Fused128;
    case FusedKernelKind::kScalar:
      break;
  }
  return ScanEngine::kScalarFused;
}

// Cost-model inputs of one compressed-domain stage: how many runs/blocks
// the range builder classifies, and (delta only) how many rows sit in
// blocks whose min/max cannot decide the predicate — those get
// prefix-reconstructed at execution.
TableScanner::ChunkPlan::CompressedCostInput CompressedCostOf(
    const BaseColumn& column, const CompressedScanStage& stage) {
  TableScanner::ChunkPlan::CompressedCostInput input;
  DispatchDataType(column.data_type(), [&](auto tag) {
    using T = decltype(tag);
    if (column.encoding() == ColumnEncoding::kRle) {
      input.units = static_cast<const RleColumn<T>&>(column).run_count();
      return;
    }
    if constexpr (std::is_integral_v<T>) {
      const auto& delta = static_cast<const DeltaColumn<T>&>(column);
      input.is_delta = true;
      input.units = delta.blocks().size();
      const T value = ValueAs<T>(stage.value);
      for (const auto& block : delta.blocks()) {
        if (ClassifyZone<T>(block.min, block.max, stage.op, value) ==
            ZoneFate::kMaybe) {
          input.decode_rows += block.rows;
        }
      }
    }
  });
  return input;
}

}  // namespace

StatusOr<TableScanner> TableScanner::Prepare(TablePtr table,
                                             const ScanSpec& spec) {
  return Prepare(std::move(table), spec, PrepareOptions{});
}

StatusOr<TableScanner> TableScanner::Prepare(TablePtr table,
                                             const ScanSpec& spec,
                                             const PrepareOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (spec.predicates.size() > kMaxScanStages) {
    return Status::InvalidArgument(
        StrFormat("scan has %zu predicates; static kernels support up to %zu",
                  spec.predicates.size(), kMaxScanStages));
  }
  // Resolve all column names once.
  std::vector<size_t> column_indexes;
  column_indexes.reserve(spec.predicates.size());
  for (const auto& predicate : spec.predicates) {
    FTS_ASSIGN_OR_RETURN(const size_t index,
                         table->ColumnIndex(predicate.column));
    column_indexes.push_back(index);
  }
  if (spec.aggregates.size() > kMaxAggTerms) {
    return Status::InvalidArgument(
        StrFormat("scan has %zu aggregates; kernels support up to %zu",
                  spec.aggregates.size(), kMaxAggTerms));
  }
  std::vector<std::optional<size_t>> agg_columns;
  agg_columns.reserve(spec.aggregates.size());
  for (const AggregateSpec& aggregate : spec.aggregates) {
    if (aggregate.op == AggOp::kCount && aggregate.column.empty()) {
      agg_columns.emplace_back(std::nullopt);
      continue;
    }
    FTS_ASSIGN_OR_RETURN(const size_t index,
                         table->ColumnIndex(aggregate.column));
    agg_columns.emplace_back(index);
  }

  // Cost-model state for this scan (DESIGN.md §14). FTS_ADAPTIVE=0 turns
  // the whole model off; engine adaptation additionally needs the spec's
  // opt-in. The calibrated profile (first use triggers calibration) is
  // only loaded when engines will actually be picked from it — re-ranking
  // alone runs off the static default table, whose cost *ratios* are what
  // the rank key consumes.
  const bool model_active = cost::AdaptiveEnabled();
  const bool adaptive_engine = spec.adaptive && model_active;
  const cost::CostProfile& profile =
      adaptive_engine ? cost::CalibratedProfile() : cost::DefaultProfile();
  const ScanEngine ranking_engine = RankingEngine();
  size_t chunks_reordered = 0;
  size_t runnable_chunks = 0;
  double est_rows = 0.0;

  std::vector<ChunkPlan> plans;
  plans.reserve(table->chunk_count());
  PruningSummary pruning;
  pruning.chunks_total = table->chunk_count();
  std::array<uint64_t, 6> stage_encodings{};
  for (ChunkId chunk_id = 0; chunk_id < table->chunk_count(); ++chunk_id) {
    const Chunk& chunk = table->chunk(chunk_id);
    ChunkPlan plan;
    plan.row_count = chunk.row_count();
    if (plan.row_count == 0) {
      // A zero-row chunk can never contribute matches: classify it as
      // always-pruned instead of building stages against sentinel-valued
      // (invalid) zone maps.
      plan.impossible = true;
      pruning.chunks_pruned++;
      plans.push_back(std::move(plan));
      continue;
    }
    const uint64_t chunk_bytes_before = pruning.bytes_skipped;
    const size_t chunk_drops_before = pruning.stages_dropped;
    for (size_t p = 0; p < spec.predicates.size(); ++p) {
      const BaseColumn& column = chunk.column(column_indexes[p]);
      stage_encodings[static_cast<size_t>(column.encoding())]++;
      const ZoneMap* zone = options.use_zone_maps
                                ? chunk.zone_map(column_indexes[p])
                                : nullptr;
      ScanStage stage;
      CompressedScanStage compressed_stage;
      bool is_compressed = false;
      bool dropped = false;
      bool impossible = false;
      double selectivity = 0.5;
      FTS_RETURN_IF_ERROR(BuildStage(column, zone, spec.predicates[p],
                                     &stage, &compressed_stage,
                                     &is_compressed, &dropped,
                                     &impossible, &selectivity));
      if (impossible) {
        plan.impossible = true;
        plan.stages.clear();
        plan.compressed.clear();
        // A skipped chunk avoids reading every predicate column, not just
        // the disproving one; replace any dropped-stage bytes already
        // accumulated for this chunk (a subset) and count each distinct
        // column once.
        pruning.chunks_pruned++;
        pruning.bytes_skipped = chunk_bytes_before;
        pruning.stages_dropped = chunk_drops_before;
        for (size_t q = 0; q < column_indexes.size(); ++q) {
          bool counted = false;
          for (size_t r = 0; r < q; ++r) {
            if (column_indexes[r] == column_indexes[q]) counted = true;
          }
          if (!counted) {
            pruning.bytes_skipped +=
                ColumnScanBytes(chunk.column(column_indexes[q]));
          }
        }
        break;
      }
      if (dropped) {
        pruning.stages_dropped++;
        pruning.bytes_skipped +=
            ColumnScanBytes(chunk.column(column_indexes[p]));
        continue;
      }
      if (is_compressed) {
        plan.compressed.push_back(compressed_stage);
        plan.compressed_sel.push_back(selectivity);
        if (model_active) {
          plan.compressed_cost.push_back(
              CompressedCostOf(column, compressed_stage));
        }
      } else {
        plan.stages.push_back(stage);
        plan.stage_sel.push_back(selectivity);
      }
    }
    if (!plan.impossible) {
      // Re-rank the fused chain cheapest-effective-first for this chunk:
      // ascending cost/(1 - selectivity) from the chunk's own zone-map
      // estimates. Result-invariant for a conjunction (every order computes
      // the same match set), so this applies regardless of spec.adaptive.
      // The stable sort makes ties (and chunks without bounds) keep the
      // spec's predicate order — uniform tables reorder nothing.
      if (model_active && plan.stages.size() > 1) {
        std::vector<size_t> order(plan.stages.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return cost::StageRank(profile, ranking_engine,
                                                  EncClassOf(plan.stages[a]),
                                                  plan.stage_sel[a]) <
                                  cost::StageRank(profile, ranking_engine,
                                                  EncClassOf(plan.stages[b]),
                                                  plan.stage_sel[b]);
                         });
        if (!std::is_sorted(order.begin(), order.end())) {
          std::vector<ScanStage> stages;
          std::vector<double> sels;
          stages.reserve(order.size());
          sels.reserve(order.size());
          for (size_t index : order) {
            stages.push_back(plan.stages[index]);
            sels.push_back(plan.stage_sel[index]);
          }
          plan.stages = std::move(stages);
          plan.stage_sel = std::move(sels);
          plan.reordered = true;
          chunks_reordered++;
        }
      }
      if (plan.row_count > 0) {
        double sel = 1.0;
        for (double s : plan.stage_sel) sel *= s;
        for (double s : plan.compressed_sel) sel *= s;
        plan.est_matches = static_cast<double>(plan.row_count) * sel;
        est_rows += plan.est_matches;
        runnable_chunks++;
      }
    }
    if (!spec.aggregates.empty() && !plan.impossible) {
      for (size_t a = 0; a < spec.aggregates.size(); ++a) {
        FTS_RETURN_IF_ERROR(BuildAggTerm(chunk, agg_columns[a],
                                         spec.aggregates[a].op, &plan));
      }
      if (options.use_zone_maps) {
        TryAggZoneShortcut(chunk, agg_columns, &plan);
      }
    }
    plans.push_back(std::move(plan));
  }
  TableScanner scanner(std::move(table), std::move(plans), pruning,
                       spec.aggregates.size(), spec.context,
                       stage_encodings);
  scanner.profile_ = &profile;
  scanner.model_active_ = model_active;
  scanner.adaptive_engine_ = adaptive_engine;
  scanner.chunks_reordered_ = chunks_reordered;
  scanner.runnable_chunks_ = runnable_chunks;
  scanner.est_rows_ = est_rows;
  return scanner;
}

// Bytes a chunk's scratch position list costs against the query's memory
// budget (fts/common/query_context.h).
static uint64_t PosListBytes(size_t row_count) {
  return static_cast<uint64_t>(row_count + kScanOutputSlack) *
         sizeof(ChunkOffset);
}

StatusOr<size_t> TableScanner::ExecuteChunk(ScanEngine engine,
                                            ChunkId chunk_id,
                                            ChunkOffset* out) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  if (chunk_id >= chunk_plans_.size()) {
    return Status::InvalidArgument(
        StrFormat("chunk %u out of range (%zu chunks)", chunk_id,
                  chunk_plans_.size()));
  }
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  if (plan.impossible || plan.row_count == 0) return size_t{0};
  obs::TraceSpan span("scan_chunk", "scan");
  size_t count;
  if (!plan.compressed.empty()) {
    // Compressed-domain chunk: every engine runs the same run/block range
    // path (byte-identical across engines and thread counts); the chosen
    // engine only matters for the chunks the kernels scan directly.
    CompressedScanStats stats;
    count = ExecuteCompressedChunk(plan.compressed, plan.stages,
                                   plan.row_count, out, &stats);
    compressed_stats_->Add(stats);
  } else if (plan.stages.empty()) {
    std::iota(out, out + plan.row_count, ChunkOffset{0});
    count = plan.row_count;
  } else {
    switch (engine) {
      case ScanEngine::kSisdNoVec:
        count = SisdScanNoVecCollect(plan.stages.data(), plan.stages.size(),
                                     plan.row_count, out);
        break;
      case ScanEngine::kSisdAutoVec:
        count = SisdScanAutoVecCollect(plan.stages.data(), plan.stages.size(),
                                       plan.row_count, out);
        break;
      case ScanEngine::kBlockwise:
        count = BlockwiseScan(plan.stages, plan.row_count, out);
        break;
      default:
        count = FusedFnForEngine(engine)(plan.stages.data(),
                                         plan.stages.size(), plan.row_count,
                                         out);
    }
  }
  RecordChunkExecution(engine, plan.row_count, count);
  if (span.active()) {
    span.AddArg("chunk", static_cast<uint64_t>(chunk_id));
    span.AddArg("engine", ScanEngineToString(engine));
    span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
    span.AddArg("matches", static_cast<uint64_t>(count));
  }
  return count;
}

StatusOr<uint64_t> TableScanner::ExecuteChunkCount(ScanEngine engine,
                                                   ChunkId chunk_id) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  if (chunk_id >= chunk_plans_.size()) {
    return Status::InvalidArgument(
        StrFormat("chunk %u out of range (%zu chunks)", chunk_id,
                  chunk_plans_.size()));
  }
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  if (plan.impossible || plan.row_count == 0) return uint64_t{0};
  if (plan.stages.empty() && plan.compressed.empty()) {
    RecordChunkExecution(engine, plan.row_count, plan.row_count);
    return plan.row_count;
  }
  // The SISD engines count without materializing — the paper's Section II
  // baseline loop. Compressed-domain chunks take the materializing path
  // below so every engine shares one range evaluation.
  if (plan.compressed.empty() &&
      (engine == ScanEngine::kSisdNoVec ||
       engine == ScanEngine::kSisdAutoVec)) {
    obs::TraceSpan span("scan_chunk", "scan");
    const uint64_t count =
        engine == ScanEngine::kSisdNoVec
            ? SisdScanNoVecCount(plan.stages.data(), plan.stages.size(),
                                 plan.row_count)
            : SisdScanAutoVecCount(plan.stages.data(), plan.stages.size(),
                                   plan.row_count);
    RecordChunkExecution(engine, plan.row_count, count);
    if (span.active()) {
      span.AddArg("chunk", static_cast<uint64_t>(chunk_id));
      span.AddArg("engine", ScanEngineToString(engine));
      span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
      span.AddArg("matches", count);
    }
    return count;
  }
  ScopedMemoryReservation reservation;
  FTS_RETURN_IF_ERROR(
      reservation.Reserve(context_, PosListBytes(plan.row_count)));
  PosList scratch(plan.row_count + kScanOutputSlack);
  return ExecuteChunk(engine, chunk_id, scratch.data());
}

StatusOr<size_t> TableScanner::ExecuteChunkAggregate(
    ScanEngine engine, ChunkId chunk_id, AggAccumulator* accs) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  if (num_agg_terms_ == 0) {
    return Status::InvalidArgument(
        "scan spec carries no aggregates; use ExecuteChunk");
  }
  if (chunk_id >= chunk_plans_.size()) {
    return Status::InvalidArgument(
        StrFormat("chunk %u out of range (%zu chunks)", chunk_id,
                  chunk_plans_.size()));
  }
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  for (size_t i = 0; i < num_agg_terms_; ++i) accs[i] = AggAccumulator{};
  if (plan.impossible || plan.row_count == 0) return size_t{0};
  if (plan.agg_zone_shortcut) {
    // Answered from zone metadata: no column bytes touched.
    std::copy(plan.agg_zone_partials.begin(), plan.agg_zone_partials.end(),
              accs);
    RecordChunkExecution(engine, 0, plan.row_count);
    return plan.row_count;
  }
  obs::TraceSpan span("scan_chunk_agg", "scan");
  size_t count;
  if (!plan.compressed.empty()) {
    // Compressed-domain conjunction: materialize the candidate positions
    // through the range path, then fold each match with the scalar
    // reference fold (the aggregate columns themselves are
    // kernel-scannable — BuildAggTerm rejects the rest).
    ScopedMemoryReservation reservation;
    FTS_RETURN_IF_ERROR(
        reservation.Reserve(context_, PosListBytes(plan.row_count)));
    PosList positions(plan.row_count + kScanOutputSlack);
    CompressedScanStats stats;
    count = ExecuteCompressedChunk(plan.compressed, plan.stages,
                                   plan.row_count, positions.data(), &stats);
    compressed_stats_->Add(stats);
    for (size_t i = 0; i < count; ++i) {
      for (size_t t = 0; t < plan.agg_terms.size(); ++t) {
        FoldRowScalar(plan.agg_terms[t], positions[i], accs[t]);
      }
    }
  } else {
    count = AggFnForEngine(engine)(
        plan.stages.data(), plan.stages.size(), plan.row_count,
        plan.agg_terms.data(), plan.agg_terms.size(), accs);
  }
  RecordChunkExecution(engine, plan.row_count, count);
  if (span.active()) {
    span.AddArg("chunk", static_cast<uint64_t>(chunk_id));
    span.AddArg("engine", ScanEngineToString(engine));
    span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
    span.AddArg("matches", static_cast<uint64_t>(count));
  }
  return count;
}

StatusOr<TableScanner::AggResult> TableScanner::ExecuteAggregate(
    ScanEngine engine) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  if (num_agg_terms_ == 0) {
    return Status::InvalidArgument(
        "scan spec carries no aggregates; use Execute");
  }
  AggResult result;
  result.accumulators.resize(num_agg_terms_);
  std::vector<AggAccumulator> partial(num_agg_terms_);
  for (ChunkId chunk_id = 0; chunk_id < chunk_plans_.size(); ++chunk_id) {
    FTS_RETURN_IF_ERROR(CheckCancellation(context_));
    const ScanEngine chunk_engine =
        AdaptEngine(EngineChoice{engine, 0}, chunk_id,
                    cost::ScanMode::kAggregate)
            .engine;
    FTS_ASSIGN_OR_RETURN(
        const size_t count,
        ExecuteChunkAggregate(chunk_engine, chunk_id, partial.data()));
    result.matched += count;
    for (size_t i = 0; i < num_agg_terms_; ++i) {
      result.accumulators[i].Merge(partial[i]);
    }
  }
  return result;
}

StatusOr<TableMatches> TableScanner::Execute(ScanEngine engine) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  TableMatches result;
  result.chunks.reserve(chunk_plans_.size());
  for (ChunkId chunk_id = 0; chunk_id < chunk_plans_.size(); ++chunk_id) {
    // Cancellation points sit between chunks, never inside a kernel: a
    // chunk in flight always runs to completion (DESIGN.md §12).
    FTS_RETURN_IF_ERROR(CheckCancellation(context_));
    const ChunkPlan& plan = chunk_plans_[chunk_id];
    ChunkMatches matches;
    matches.chunk_id = chunk_id;
    if (!plan.impossible && plan.row_count > 0) {
      ScopedMemoryReservation reservation;
      FTS_RETURN_IF_ERROR(
          reservation.Reserve(context_, PosListBytes(plan.row_count)));
      PosList positions(plan.row_count + kScanOutputSlack);
      const ScanEngine chunk_engine =
          AdaptEngine(EngineChoice{engine, 0}, chunk_id,
                      cost::ScanMode::kMaterialize)
              .engine;
      FTS_ASSIGN_OR_RETURN(
          const size_t count,
          ExecuteChunk(chunk_engine, chunk_id, positions.data()));
      positions.resize(count);
      matches.positions = std::move(positions);
    }
    result.chunks.push_back(std::move(matches));
  }
  return result;
}

StatusOr<uint64_t> TableScanner::ExecuteCount(ScanEngine engine) const {
  FTS_RETURN_IF_ERROR(ValidateEngine(engine));
  uint64_t total = 0;
  for (ChunkId chunk_id = 0; chunk_id < chunk_plans_.size(); ++chunk_id) {
    FTS_RETURN_IF_ERROR(CheckCancellation(context_));
    const ScanEngine chunk_engine =
        AdaptEngine(EngineChoice{engine, 0}, chunk_id, cost::ScanMode::kCount)
            .engine;
    FTS_ASSIGN_OR_RETURN(const uint64_t count,
                         ExecuteChunkCount(chunk_engine, chunk_id));
    total += count;
  }
  return total;
}

EngineChoice TableScanner::AdaptEngine(const EngineChoice& requested,
                                       ChunkId chunk_id, cost::ScanMode mode,
                                       bool jit_warm) const {
  if (!adaptive_engine_ || profile_ == nullptr ||
      chunk_id >= chunk_plans_.size()) {
    return requested;
  }
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  if (plan.impossible || plan.row_count == 0) return requested;
  AdaptiveStats& stats = *adaptive_stats_;
  if (!plan.compressed.empty() || plan.stages.empty()) {
    // Compressed chunks run the engine-independent range path; stage-free
    // chunks are a pure emit. Nothing to pick, but the chunk still counts
    // toward the engine mix.
    stats.chunk_engines[static_cast<size_t>(requested.engine)].fetch_add(
        1, std::memory_order_relaxed);
    return requested;
  }
  double requested_ns = EstimateChunkNanos(requested.engine, chunk_id, mode);
  if (requested.engine == ScanEngine::kJit && !jit_warm) {
    // Cold signature: a JIT pick pays its share of one compile spread over
    // the scan's runnable chunks (each chunk decides independently, so the
    // per-chunk share is the fair accounting).
    requested_ns +=
        profile_->jit_compile_millis * 1e6 /
        static_cast<double>(std::max<size_t>(size_t{1}, runnable_chunks_));
  }
  // Candidates never upgrade the ISA: the SISD engines always qualify, and
  // a kJit request may fall back to the best static fused kernel (the JIT
  // targets the same instruction set the fused kernels use).
  ScanEngine candidates[3];
  size_t num_candidates = 0;
  if (requested.engine == ScanEngine::kJit) {
    candidates[num_candidates++] = RankingEngine();
  }
  candidates[num_candidates++] = ScanEngine::kSisdAutoVec;
  candidates[num_candidates++] = ScanEngine::kSisdNoVec;
  EngineChoice best = requested;
  double best_ns = requested_ns;
  for (size_t i = 0; i < num_candidates; ++i) {
    if (!ScanEngineAvailable(candidates[i])) continue;
    const double ns = EstimateChunkNanos(candidates[i], chunk_id, mode);
    if (ns < best_ns) {
      best = EngineChoice{candidates[i], 0};
      best_ns = ns;
    }
  }
  // Hysteresis: stay on the requested engine unless the winner is
  // predicted at least 1.25x faster — estimates carry error, and the
  // requested engine is usually the globally sensible one.
  if (!(best == requested) && requested_ns < best_ns * 1.25) {
    best = requested;
  }
  if (!(best == requested)) {
    stats.engine_switches.fetch_add(1, std::memory_order_relaxed);
  }
  stats.chunk_engines[static_cast<size_t>(best.engine)].fetch_add(
      1, std::memory_order_relaxed);
  return best;
}

double TableScanner::EstimateChunkNanos(ScanEngine engine, ChunkId chunk_id,
                                        cost::ScanMode mode) const {
  if (profile_ == nullptr || chunk_id >= chunk_plans_.size()) return 0.0;
  const ChunkPlan& plan = chunk_plans_[chunk_id];
  if (plan.impossible || plan.row_count == 0) return 0.0;
  const double rows = static_cast<double>(plan.row_count);
  const cost::EngineCostConstants& sisd =
      profile_->For(ScanEngine::kSisdAutoVec);
  if (!plan.compressed.empty()) {
    // Range path: classify every run / block once, prefix-reconstruct the
    // undecided delta blocks, then refine the surviving candidates with
    // the kernel stages row-wise (the compressed executor evaluates those
    // scalar, so SISD constants price them) and emit the matches.
    double ns = 0.0;
    double prefix = 1.0;
    for (size_t i = 0; i < plan.compressed.size(); ++i) {
      if (i < plan.compressed_cost.size()) {
        const ChunkPlan::CompressedCostInput& input = plan.compressed_cost[i];
        ns += static_cast<double>(input.units) *
              (input.is_delta ? profile_->delta_block_ns
                              : profile_->rle_run_ns);
        ns += static_cast<double>(input.decode_rows) * profile_->delta_row_ns;
      }
      prefix *= i < plan.compressed_sel.size() ? plan.compressed_sel[i] : 0.5;
    }
    for (size_t s = 0; s < plan.stages.size(); ++s) {
      ns += rows * prefix *
            sisd.rest_ns[static_cast<size_t>(EncClassOf(plan.stages[s]))];
      prefix *= s < plan.stage_sel.size() ? plan.stage_sel[s] : 0.5;
    }
    // Matches leave as `out[count++] = row` range expansion, not as a
    // kernel's match store — priced by its own calibrated constant.
    ns += rows * prefix * profile_->compressed_emit_ns;
    return ns;
  }
  if (plan.stages.empty()) {
    // Every row matches: the chunk is a pure position emit (iota).
    return rows * profile_->compressed_emit_ns;
  }
  std::vector<cost::StageCost> stages;
  stages.reserve(plan.stages.size());
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    stages.push_back(
        {EncClassOf(plan.stages[s]),
         s < plan.stage_sel.size() ? plan.stage_sel[s] : 0.5});
  }
  return cost::ChainCostNs(*profile_, engine, stages, rows, mode);
}

double TableScanner::EstimateScanNanos(ScanEngine engine,
                                       cost::ScanMode mode) const {
  double total = 0.0;
  for (ChunkId chunk_id = 0; chunk_id < chunk_plans_.size(); ++chunk_id) {
    total += EstimateChunkNanos(engine, chunk_id, mode);
  }
  return total;
}

void FillPruningReport(const TableScanner& scanner, ExecutionReport* report) {
  const TableScanner::PruningSummary& pruning = scanner.pruning();
  report->chunks_total = pruning.chunks_total;
  report->chunks_pruned = pruning.chunks_pruned;
  report->stages_dropped = pruning.stages_dropped;
  report->bytes_skipped = pruning.bytes_skipped;
  uint64_t rows_scanned = 0;
  for (const TableScanner::ChunkPlan& plan : scanner.chunk_plans()) {
    if (!plan.impossible) rows_scanned += plan.row_count;
  }
  report->rows_scanned = rows_scanned;
  // Each execution path fills its report exactly once per scan, so this is
  // also where pruning lands in the process-lifetime registry.
  const obs::EngineMetrics& metrics = obs::Metrics();
  metrics.scans_total->Increment();
  if (pruning.chunks_pruned > 0) {
    metrics.chunks_pruned_total->Add(pruning.chunks_pruned);
  }
  if (pruning.stages_dropped > 0) {
    metrics.stages_dropped_total->Add(pruning.stages_dropped);
  }
}

void FillCompressedReport(const TableScanner& scanner,
                          ExecutionReport* report) {
  const std::array<uint64_t, 6>& mix = scanner.stage_encodings();
  for (size_t e = 0; e < mix.size(); ++e) {
    report->stage_encodings[e] = mix[e];
  }
  const AtomicCompressedStats& stats = *scanner.compressed_stats();
  report->rle_runs_classified =
      stats.rle_runs_classified.load(std::memory_order_relaxed);
  report->rle_runs_skipped =
      stats.rle_runs_skipped.load(std::memory_order_relaxed);
  report->delta_blocks_pruned =
      stats.delta_blocks_pruned.load(std::memory_order_relaxed);
  report->delta_blocks_decoded =
      stats.delta_blocks_decoded.load(std::memory_order_relaxed);
}

void FillAdaptiveReport(const TableScanner& scanner,
                        ExecutionReport* report) {
  report->model_active = scanner.model_active();
  report->adaptive_engines = scanner.adaptive();
  report->chunks_reordered = scanner.chunks_reordered();
  report->est_rows = scanner.est_rows();
  const TableScanner::AdaptiveStats& stats = *scanner.adaptive_stats();
  report->adaptive_engine_switches =
      stats.engine_switches.load(std::memory_order_relaxed);
  for (size_t e = 0; e < cost::kNumEngines; ++e) {
    report->adaptive_chunk_engines[e] =
        stats.chunk_engines[e].load(std::memory_order_relaxed);
  }
}

StatusOr<TableMatches> ExecuteScan(TablePtr table, const ScanSpec& spec,
                                   ScanEngine engine) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  return scanner.Execute(engine);
}

StatusOr<uint64_t> ExecuteScanCount(TablePtr table, const ScanSpec& spec,
                                    ScanEngine engine) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(std::move(table), spec));
  return scanner.ExecuteCount(engine);
}

}  // namespace fts
