#ifndef FTS_SCAN_PROJECTION_GATHER_H_
#define FTS_SCAN_PROJECTION_GATHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/simd/dispatch.h"
#include "fts/simd/gather_spec.h"
#include "fts/storage/column.h"
#include "fts/storage/columnar_result.h"
#include "fts/storage/pos_list.h"
#include "fts/storage/table.h"

namespace fts {

// Accounting for one projection's gather work, aggregated across chunks
// and columns. `rows_by_encoding[e]` counts output cells materialized
// from columns of ColumnEncoding e (a 3-column projection over one chunk
// with n survivors adds 3*n cells split by each column's encoding);
// `kernel_rows` / `typed_rows` split the same total by path — SIMD batch
// kernel vs the typed run/block-aware loops (RLE, delta, narrow
// elements). EXPLAIN ANALYZE renders this under the Project stage.
struct GatherStats {
  uint64_t rows_by_encoding[6] = {0, 0, 0, 0, 0, 0};
  uint64_t kernel_rows = 0;
  uint64_t typed_rows = 0;
  uint64_t delta_blocks_decoded = 0;

  void Merge(const GatherStats& o) {
    for (int e = 0; e < 6; ++e) rows_by_encoding[e] += o.rows_by_encoding[e];
    kernel_rows += o.kernel_rows;
    typed_rows += o.typed_rows;
    delta_blocks_decoded += o.delta_blocks_decoded;
  }
};

// Late-materialization projector: turns per-chunk survivor position lists
// into dense typed column vectors (ColumnarResult) without boxing a
// single Value. Prepared once per query; GatherChunk is then called per
// chunk — serially or from morsel workers, since every call writes a
// disjoint row slice of the output buffers.
//
// Per column-chunk, Prepare resolves one of:
//   - a SIMD batch-gather kernel term (plain/dictionary/bit-packed/FoR
//     columns with 4- or 8-byte elements) executed by the GatherFn the
//     caller selected from the degradation ladder;
//   - a typed scalar loop for 1/2-byte elements (still unboxed);
//   - a run-aware tandem walk for RLE (ascending positions advance a run
//     cursor — no per-row binary search);
//   - a block-aware walk for delta (decode only blocks that contain
//     survivors, skip the rest).
class ProjectionGatherer {
 public:
  // `columns` are table column indexes, in output order. Never fails for
  // valid indexes; returns a gatherer whose output schema mirrors the
  // projected columns' declared types.
  static StatusOr<ProjectionGatherer> Prepare(TablePtr table,
                                              std::vector<size_t> columns);

  // Declares the output columns (projection names + declared types) on
  // `out`. Caller then calls out->SetRowCount(total_matches) and hands
  // out disjoint slices to GatherChunk.
  void InitResult(const std::vector<std::string>& names,
                  ColumnarResult* out) const;

  // Materializes the `n` ascending survivor offsets of `chunk_id` into
  // rows [dst_offset, dst_offset + n) of `out`. `fn` is the batch-gather
  // kernel for kernel-eligible columns (from GetGatherKernel); the typed
  // paths ignore it. Thread-safe across disjoint (chunk, slice) pairs.
  void GatherChunk(GatherFn fn, ChunkId chunk_id,
                   const ChunkOffset* positions, size_t n,
                   ColumnarResult* out, size_t dst_offset,
                   GatherStats* stats) const;

  // Gathers a single column (by output position) for the top-K ORDER BY
  // path: sort keys first, remaining columns only for the selected rows.
  void GatherChunkColumn(GatherFn fn, ChunkId chunk_id, size_t out_column,
                         const ChunkOffset* positions, size_t n,
                         ColumnarResult* out, size_t dst_offset,
                         GatherStats* stats) const;

  size_t column_count() const { return columns_.size(); }
  DataType output_type(size_t c) const { return output_types_[c]; }

  // True when every projected column of every chunk runs the SIMD kernel
  // path (the precondition for fused JIT scan+gather).
  bool AllKernelEligible() const;

  // The kernel term for (chunk, output column); only meaningful when the
  // column-chunk resolved to the kernel path.
  bool KernelTermFor(ChunkId chunk_id, size_t out_column,
                     GatherTerm* term) const;

  // Accounts `n` survivor rows of `chunk_id` gathered through a fused
  // external kernel (the JIT gather operator) into `stats`: one cell per
  // projected column, split by the columns' encodings, all credited to
  // the kernel path.
  void CreditKernelGather(ChunkId chunk_id, size_t n,
                          GatherStats* stats) const;

 private:
  enum class Path : uint8_t { kKernel, kTyped, kRle, kDelta };

  struct ColumnChunkPlan {
    Path path = Path::kTyped;
    GatherTerm term;                      // kKernel only.
    const BaseColumn* column = nullptr;   // Owned by the table's chunk.
    ColumnEncoding encoding = ColumnEncoding::kPlain;
  };

  ProjectionGatherer() = default;

  TablePtr table_;  // Keeps every chunk (and thus column data) alive.
  std::vector<size_t> columns_;
  std::vector<DataType> output_types_;
  // chunk-major: plans_[chunk_id * columns_.size() + c].
  std::vector<ColumnChunkPlan> plans_;
};

}  // namespace fts

#endif  // FTS_SCAN_PROJECTION_GATHER_H_
