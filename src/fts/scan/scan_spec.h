#ifndef FTS_SCAN_SCAN_SPEC_H_
#define FTS_SCAN_SCAN_SPEC_H_

#include <string>
#include <vector>

#include "fts/common/query_context.h"
#include "fts/simd/agg_spec.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/value.h"

namespace fts {

// One predicate of a conjunctive scan: `column op value`.
struct PredicateSpec {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;

  // E.g. "a = 5".
  std::string ToString() const;
};

// One aggregate pushed down into the scan loop: `op(column)`. COUNT takes
// no column (empty string). AVG is lowered to SUM + COUNT before this
// layer (fts/plan/translator.cc).
struct AggregateSpec {
  AggOp op = AggOp::kCount;
  std::string column;

  // E.g. "SUM(v)".
  std::string ToString() const;
};

// A conjunctive multi-predicate scan specification — the workload class
// the Fused Table Scan targets (SELECT ... WHERE p1 AND p2 AND ...).
struct ScanSpec {
  std::vector<PredicateSpec> predicates;

  // Aggregates folded inside the kernel loop (aggregate pushdown). When
  // non-empty, the Execute*Aggregate entry points are usable; the
  // position-materializing entry points ignore this field.
  std::vector<AggregateSpec> aggregates;

  // Execution hint: worker threads for the morsel-driven parallel path
  // (fts/exec/parallel_scan.h). 0 = resolve from the FTS_THREADS
  // environment variable (defaulting to single-threaded); 1 = force the
  // single-threaded path; N > 1 = N workers. Output is byte-identical
  // regardless of the value; this only affects scheduling.
  int threads = 0;

  // Query lifecycle state (deadline, cancellation, memory budget) the scan
  // should honor at chunk/morsel boundaries. Null = no lifecycle limits.
  // Borrowed, not owned: the Database::Query call (or test) that created
  // the context keeps it alive for the duration of the scan.
  QueryContext* context = nullptr;

  // Allow the calibrated cost model to pick the engine per chunk
  // (DESIGN.md §14). Off by default: an explicitly requested engine is a
  // pin, and direct API callers (tests, benches) rely on that. The
  // Database layer turns this on when the caller left the engine to the
  // system; FTS_ADAPTIVE=0 overrides it everywhere. Per-chunk chain
  // re-ranking is independent of this flag (it is result- and
  // engine-invariant, gated only by FTS_ADAPTIVE).
  bool adaptive = false;

  std::string ToString() const;
};

}  // namespace fts

#endif  // FTS_SCAN_SCAN_SPEC_H_
