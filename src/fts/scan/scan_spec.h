#ifndef FTS_SCAN_SCAN_SPEC_H_
#define FTS_SCAN_SCAN_SPEC_H_

#include <string>
#include <vector>

#include "fts/storage/compare_op.h"
#include "fts/storage/value.h"

namespace fts {

// One predicate of a conjunctive scan: `column op value`.
struct PredicateSpec {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;

  // E.g. "a = 5".
  std::string ToString() const;
};

// A conjunctive multi-predicate scan specification — the workload class
// the Fused Table Scan targets (SELECT ... WHERE p1 AND p2 AND ...).
struct ScanSpec {
  std::vector<PredicateSpec> predicates;

  // Execution hint: worker threads for the morsel-driven parallel path
  // (fts/exec/parallel_scan.h). 0 = resolve from the FTS_THREADS
  // environment variable (defaulting to single-threaded); 1 = force the
  // single-threaded path; N > 1 = N workers. Output is byte-identical
  // regardless of the value; this only affects scheduling.
  int threads = 0;

  std::string ToString() const;
};

}  // namespace fts

#endif  // FTS_SCAN_SCAN_SPEC_H_
