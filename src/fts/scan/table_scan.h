#ifndef FTS_SCAN_TABLE_SCAN_H_
#define FTS_SCAN_TABLE_SCAN_H_

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "fts/common/status.h"
#include "fts/cost/cost_model.h"
#include "fts/cost/cost_profile.h"
#include "fts/scan/compressed_scan.h"
#include "fts/scan/scan_engine.h"
#include "fts/scan/scan_spec.h"
#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"
#include "fts/storage/pos_list.h"
#include "fts/storage/table.h"

namespace fts {

// Executable form of a conjunctive scan over one table. Prepare() resolves
// column names, casts search values to column types, and rewrites
// predicates on dictionary-encoded columns into code-space predicates
// (fts/storage/dictionary_column.h). Execute() then runs any ScanEngine
// over the prepared per-chunk stage arrays.
//
// The prepared scanner borrows the table's column data; the table must
// outlive it (it holds a TablePtr, so normal shared_ptr usage is safe).
class TableScanner {
 public:
  // Per-chunk prepared state.
  struct ChunkPlan {
    // Kernel stages for this chunk, after dropping always-true predicates.
    // Empty + compressed empty + !impossible => every row matches.
    // When the cost model is active (FTS_ADAPTIVE, default on) the stages
    // are re-ranked cheapest-effective-first per chunk — ascending
    // cost/(1 - selectivity) from this chunk's zone-map estimates — which
    // is result-invariant for a conjunction.
    std::vector<ScanStage> stages;
    // Estimated per-stage selectivities, parallel to `stages` (and kept
    // in re-ranked order). From zone-map/code-space bounds under the
    // uniform assumption; 0.5 when no bounds exist.
    std::vector<double> stage_sel;
    // Estimated selectivities of the compressed-domain stages, parallel
    // to `compressed`.
    std::vector<double> compressed_sel;
    // Cost-model inputs for the compressed stages (parallel to
    // `compressed`, filled only while the model is active): the run/block
    // unit count the range path touches, and for delta stages the rows in
    // blocks whose min/max cannot decide the predicate (those get
    // prefix-reconstructed).
    struct CompressedCostInput {
      uint64_t units = 0;
      uint64_t decode_rows = 0;
      bool is_delta = false;
    };
    std::vector<CompressedCostInput> compressed_cost;
    // Expected matches of the whole conjunction (independence assumption;
    // 0 for impossible chunks).
    double est_matches = 0.0;
    // True when re-ranking changed this chunk's stage order relative to
    // the spec's predicate order.
    bool reordered = false;
    // Predicates over RLE/delta columns, evaluated in the compressed
    // domain (fts/scan/compressed_scan.h). When non-empty, every engine
    // routes the chunk through ExecuteCompressedChunk: the compressed
    // stages produce candidate ranges and `stages` refines them row-wise.
    std::vector<CompressedScanStage> compressed;
    // Some predicate can never match in this chunk.
    bool impossible = false;
    size_t row_count = 0;

    // Aggregate pushdown (populated only when the spec carries
    // aggregates). `agg_terms` parallels ScanSpec::aggregates; dictionary
    // and bit-packed terms point `dict` into `agg_dicts`-owned widened
    // decode tables (shared so ChunkPlan copies stay valid).
    std::vector<AggTerm> agg_terms;
    std::vector<std::shared_ptr<const void>> agg_dicts;
    // Every conjunct proved tautological and every term answerable from
    // the zone maps alone: ExecuteChunkAggregate copies
    // `agg_zone_partials` without touching the chunk's data. SUM terms
    // always force a scan (zone maps hold no sums).
    bool agg_zone_shortcut = false;
    std::vector<AggAccumulator> agg_zone_partials;
  };

  // Result of an aggregate-pushdown execution: one partial accumulator per
  // ScanSpec aggregate (already merged across chunks for the whole-table
  // entry point) plus the conjunction's match count.
  struct AggResult {
    std::vector<AggAccumulator> accumulators;
    uint64_t matched = 0;
  };

  struct PrepareOptions {
    // Consult chunk zone maps (fts/storage/zone_map.h) while planning:
    // disproved conjuncts mark the chunk impossible, tautological conjuncts
    // are dropped from its fused chain. Off only for apples-to-apples
    // benchmarking of the unpruned scan (bench/fig9_zone_pruning.cc).
    bool use_zone_maps = true;
  };

  // What zone maps and dictionary translation proved during Prepare().
  // `bytes_skipped` estimates the predicate-column bytes the pruned chunks
  // and dropped stages would otherwise have read.
  struct PruningSummary {
    size_t chunks_total = 0;
    size_t chunks_pruned = 0;
    size_t stages_dropped = 0;
    uint64_t bytes_skipped = 0;
  };

  static StatusOr<TableScanner> Prepare(TablePtr table, const ScanSpec& spec);
  static StatusOr<TableScanner> Prepare(TablePtr table, const ScanSpec& spec,
                                        const PrepareOptions& options);

  // Runs the scan and materializes matching positions per chunk.
  // Fails when `engine` is not available on this CPU or is kJit (the JIT
  // engine lives in fts/jit and has its own entry point).
  StatusOr<TableMatches> Execute(ScanEngine engine) const;

  // Count-only execution. For the SISD engines this skips position
  // materialization entirely — the paper's naive COUNT(*) loop; fused
  // engines count their materialized position lists, which is exactly the
  // paper's comparison setup.
  StatusOr<uint64_t> ExecuteCount(ScanEngine engine) const;

  // Runs one chunk's plan — the morsel primitive the parallel executor
  // (fts/exec/parallel_scan.h) schedules. `out` must have capacity for
  // row_count + kScanOutputSlack positions; returns the match count.
  // Impossible chunks return 0; predicate-free chunks emit every row.
  StatusOr<size_t> ExecuteChunk(ScanEngine engine, ChunkId chunk_id,
                                ChunkOffset* out) const;

  // Count-only morsel primitive. SISD engines count without materializing;
  // the others materialize into a scratch list and return its size.
  StatusOr<uint64_t> ExecuteChunkCount(ScanEngine engine,
                                       ChunkId chunk_id) const;

  // Aggregate-pushdown morsel primitive: evaluates the chunk's conjunction
  // and folds the spec's aggregates inside the kernel loop — no position
  // list is materialized. `accs` must hold spec.aggregates.size() slots;
  // they are reset to fresh accumulators before folding. Returns the match
  // count. Zone-shortcut chunks (see ChunkPlan) are answered without
  // touching column data; impossible chunks contribute nothing. Requires
  // Prepare() to have seen a spec with aggregates. SISD/Blockwise engines
  // run the scalar reference fold.
  StatusOr<size_t> ExecuteChunkAggregate(ScanEngine engine, ChunkId chunk_id,
                                         AggAccumulator* accs) const;

  // Whole-table aggregate pushdown: runs every chunk through
  // ExecuteChunkAggregate and merges partials in chunk order (the
  // deterministic merge order the parallel executor reproduces).
  StatusOr<AggResult> ExecuteAggregate(ScanEngine engine) const;

  // Number of aggregate terms the prepared spec carries (0 = the spec had
  // no aggregates and the Execute*Aggregate entry points will fail).
  size_t num_agg_terms() const { return num_agg_terms_; }

  const std::vector<ChunkPlan>& chunk_plans() const { return chunk_plans_; }
  const PruningSummary& pruning() const { return pruning_; }
  const TablePtr& table() const { return table_; }

  // Per-stage encoding mix over all prepared chunk stages (indexed by
  // ColumnEncoding; includes dropped/disproved stages' columns so the mix
  // reflects what the query touches, not what survived pruning).
  const std::array<uint64_t, 6>& stage_encodings() const {
    return stage_encodings_;
  }
  // True when any chunk plan carries compressed-domain stages.
  bool has_compressed_stages() const { return has_compressed_stages_; }
  // Run/block counters accumulated across this scanner's chunk executions
  // (shared_ptr: chunk executions run concurrently on the morsel path and
  // the scanner itself is moved around by value via StatusOr).
  const std::shared_ptr<AtomicCompressedStats>& compressed_stats() const {
    return compressed_stats_;
  }

  // The query lifecycle context captured from the spec at Prepare() (null
  // when the spec carried none). Whole-table execution loops check it at
  // chunk boundaries and account scratch buffers against its memory
  // budget; the parallel executor reads it for its morsel boundaries.
  QueryContext* context() const { return context_; }

  // ---- Calibrated cost model (fts/cost, DESIGN.md §14) ----

  // Execution-time adaptive accounting, shared across the concurrent
  // morsel executions of one scan (same ownership story as
  // AtomicCompressedStats).
  struct AdaptiveStats {
    std::atomic<uint64_t> engine_switches{0};
    // Chunks executed per engine while engine adaptation was active,
    // indexed by static_cast<size_t>(ScanEngine).
    std::array<std::atomic<uint64_t>, cost::kNumEngines> chunk_engines{};
  };

  // True when FTS_ADAPTIVE left the model on at Prepare (chains were
  // re-rank-eligible and estimates were computed).
  bool model_active() const { return model_active_; }
  // True when per-chunk engine adaptation is allowed (spec.adaptive and
  // the model is active).
  bool adaptive() const { return adaptive_engine_; }
  size_t chunks_reordered() const { return chunks_reordered_; }
  // Model-estimated total matches across non-pruned chunks.
  double est_rows() const { return est_rows_; }
  const std::shared_ptr<AdaptiveStats>& adaptive_stats() const {
    return adaptive_stats_;
  }

  // Picks the engine for one chunk: the cheapest candidate at or below
  // `requested` (never an ISA upgrade), keeping `requested` unless a
  // candidate is predicted at least 1.25x faster. Returns `requested`
  // unchanged when adaptation is off, the chunk runs in the compressed
  // domain (engine-independent there), or the chunk has no stages.
  // `jit_warm` tells the model the chunk's chain signature is already
  // compiled, zeroing the amortized compile cost a kJit request
  // otherwise pays. Records the decision in adaptive_stats().
  EngineChoice AdaptEngine(const EngineChoice& requested, ChunkId chunk_id,
                           cost::ScanMode mode, bool jit_warm = false) const;

  // Predicted execution cost of one chunk / the whole scan on `engine`,
  // from the calibrated constants and the per-chunk estimates. Compressed
  // chunks price the run/block range path; kJit adds nothing for compile
  // (callers amortize it themselves if relevant).
  double EstimateChunkNanos(ScanEngine engine, ChunkId chunk_id,
                            cost::ScanMode mode) const;
  double EstimateScanNanos(ScanEngine engine, cost::ScanMode mode) const;

 private:
  TableScanner(TablePtr table, std::vector<ChunkPlan> chunk_plans,
               PruningSummary pruning, size_t num_agg_terms,
               QueryContext* context,
               std::array<uint64_t, 6> stage_encodings)
      : table_(std::move(table)),
        chunk_plans_(std::move(chunk_plans)),
        pruning_(pruning),
        num_agg_terms_(num_agg_terms),
        context_(context),
        stage_encodings_(stage_encodings) {
    for (const ChunkPlan& plan : chunk_plans_) {
      if (!plan.compressed.empty()) has_compressed_stages_ = true;
    }
  }

  TablePtr table_;
  std::vector<ChunkPlan> chunk_plans_;
  PruningSummary pruning_;
  size_t num_agg_terms_ = 0;
  QueryContext* context_ = nullptr;
  std::array<uint64_t, 6> stage_encodings_{};
  bool has_compressed_stages_ = false;
  std::shared_ptr<AtomicCompressedStats> compressed_stats_ =
      std::make_shared<AtomicCompressedStats>();
  // Cost model state (set by Prepare). `profile_` points at one of the
  // process-lifetime profiles in fts/cost — the calibrated one when
  // engine adaptation is on, the static default table otherwise.
  const cost::CostProfile* profile_ = nullptr;
  bool model_active_ = false;
  bool adaptive_engine_ = false;
  size_t chunks_reordered_ = 0;
  size_t runnable_chunks_ = 0;
  double est_rows_ = 0.0;
  std::shared_ptr<AdaptiveStats> adaptive_stats_ =
      std::make_shared<AdaptiveStats>();
};

// Copies the scanner's PruningSummary into the report's zone-map fields.
// Every execution path (serial ladder, JIT, morsel-parallel) calls this so
// pruning is observable uniformly.
void FillPruningReport(const TableScanner& scanner, ExecutionReport* report);

// Copies the scanner's per-stage encoding mix and accumulated
// compressed-domain counters into the report. Assignment semantics
// (idempotent), so paths that fill reports at multiple points stay
// consistent; called wherever FillPruningReport is, plus at the end of
// executions so run/block counters reflect the finished scan.
void FillCompressedReport(const TableScanner& scanner,
                          ExecutionReport* report);

// Copies the scanner's cost-model state (model on/off, chunks re-ranked,
// estimated rows, per-chunk engine mix, switch count) into the report.
// Assignment semantics like FillCompressedReport; called wherever
// FillPruningReport is, plus at end of execution so the engine-mix
// counters reflect the finished scan.
void FillAdaptiveReport(const TableScanner& scanner,
                        ExecutionReport* report);

// Convenience wrapper: Prepare + Execute.
StatusOr<TableMatches> ExecuteScan(TablePtr table, const ScanSpec& spec,
                                   ScanEngine engine);

// Convenience wrapper: Prepare + ExecuteCount.
StatusOr<uint64_t> ExecuteScanCount(TablePtr table, const ScanSpec& spec,
                                    ScanEngine engine);

}  // namespace fts

#endif  // FTS_SCAN_TABLE_SCAN_H_
