#include "fts/scan/scan_spec.h"

#include "fts/common/string_util.h"

namespace fts {

std::string PredicateSpec::ToString() const {
  return StrFormat("%s %s %s", column.c_str(), CompareOpToString(op),
                   ValueToString(value).c_str());
}

std::string AggregateSpec::ToString() const {
  if (op == AggOp::kCount && column.empty()) return "COUNT(*)";
  return StrFormat("%s(%s)", AggOpToString(op), column.c_str());
}

std::string ScanSpec::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(predicates.size());
  for (const auto& predicate : predicates) {
    parts.push_back(predicate.ToString());
  }
  return Join(parts, " AND ");
}

}  // namespace fts
