#include "fts/scan/compressed_scan.h"

#include <algorithm>
#include <type_traits>

#include "fts/common/macros.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/zone_map.h"

namespace fts {
namespace {

// Appends [start, end), coalescing with the previous range when adjacent
// or overlapping (stage builders emit ascending starts).
void AppendRange(std::vector<RowRange>* ranges, uint32_t start,
                 uint32_t end) {
  if (start >= end) return;
  if (!ranges->empty() && ranges->back().second >= start) {
    ranges->back().second = std::max(ranges->back().second, end);
    return;
  }
  ranges->emplace_back(start, end);
}

template <typename T>
void RleStageRanges(const RleColumn<T>& column, CompareOp op, T value,
                    std::vector<RowRange>* ranges,
                    CompressedScanStats* stats) {
  const std::vector<T>& run_values = column.run_values();
  const auto& run_ends = column.run_ends();
  uint32_t start = 0;
  for (size_t i = 0; i < run_values.size(); ++i) {
    const uint32_t end = run_ends[i];
    if (EvaluateCompare(op, run_values[i], value)) {
      AppendRange(ranges, start, end);
    } else {
      stats->rle_runs_skipped++;
    }
    start = end;
  }
  stats->rle_runs_classified += run_values.size();
}

template <typename T>
void DeltaStageRanges(const DeltaColumn<T>& column, CompareOp op, T value,
                      std::vector<RowRange>* ranges,
                      CompressedScanStats* stats) {
  T scratch[kDeltaBlockRows];
  uint32_t start = 0;
  for (size_t b = 0; b < column.blocks().size(); ++b) {
    const auto& meta = column.blocks()[b];
    const uint32_t end = start + meta.rows;
    switch (ClassifyZone<T>(meta.min, meta.max, op, value)) {
      case ZoneFate::kAll:
        AppendRange(ranges, start, end);
        stats->delta_blocks_pruned++;
        break;
      case ZoneFate::kNone:
        stats->delta_blocks_pruned++;
        break;
      case ZoneFate::kMaybe: {
        // Undecided: prefix-reconstruct the block and test row-wise.
        const size_t rows = column.DecodeBlock(b, scratch);
        stats->delta_blocks_decoded++;
        for (size_t i = 0; i < rows; ++i) {
          if (EvaluateCompare(op, scratch[i], value)) {
            AppendRange(ranges, start + static_cast<uint32_t>(i),
                        start + static_cast<uint32_t>(i) + 1);
          }
        }
        break;
      }
    }
    start = end;
  }
}

}  // namespace

std::vector<RowRange> BuildCompressedStageRanges(
    const CompressedScanStage& stage, CompressedScanStats* stats) {
  std::vector<RowRange> ranges;
  const BaseColumn& column = *stage.column;
  DispatchDataType(column.data_type(), [&](auto tag) {
    using T = decltype(tag);
    const T value = ValueAs<T>(stage.value);
    switch (column.encoding()) {
      case ColumnEncoding::kRle:
        RleStageRanges(static_cast<const RleColumn<T>&>(column), stage.op,
                       value, &ranges, stats);
        return;
      case ColumnEncoding::kDelta:
        if constexpr (std::is_integral_v<T>) {
          DeltaStageRanges(static_cast<const DeltaColumn<T>&>(column),
                           stage.op, value, &ranges, stats);
          return;
        }
        break;
      default:
        break;
    }
    FTS_CHECK_MSG(false, "compressed stage over a non-compressed column");
  });
  return ranges;
}

bool EvaluateCompressedStageAtRow(const CompressedScanStage& stage,
                                  uint32_t row) {
  bool match = false;
  const BaseColumn& column = *stage.column;
  DispatchDataType(column.data_type(), [&](auto tag) {
    using T = decltype(tag);
    const T value = ValueAs<T>(stage.value);
    switch (column.encoding()) {
      case ColumnEncoding::kRle:
        match = EvaluateCompare(
            stage.op, static_cast<const RleColumn<T>&>(column).ValueAt(row),
            value);
        return;
      case ColumnEncoding::kDelta:
        if constexpr (std::is_integral_v<T>) {
          match = EvaluateCompare(
              stage.op,
              static_cast<const DeltaColumn<T>&>(column).ValueAt(row), value);
          return;
        }
        break;
      default:
        break;
    }
    FTS_CHECK_MSG(false, "compressed stage over a non-compressed column");
  });
  return match;
}

std::vector<RowRange> IntersectRanges(const std::vector<RowRange>& a,
                                      const std::vector<RowRange>& b) {
  std::vector<RowRange> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t start = std::max(a[i].first, b[j].first);
    const uint32_t end = std::min(a[i].second, b[j].second);
    if (start < end) out.emplace_back(start, end);
    if (a[i].second <= b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

size_t ExecuteCompressedChunk(
    const std::vector<CompressedScanStage>& compressed,
    const std::vector<ScanStage>& kernel_stages, size_t row_count,
    uint32_t* out, CompressedScanStats* stats) {
  FTS_DCHECK(!compressed.empty());
  (void)row_count;
  std::vector<RowRange> candidates =
      BuildCompressedStageRanges(compressed[0], stats);
  for (size_t s = 1; s < compressed.size() && !candidates.empty(); ++s) {
    candidates = IntersectRanges(
        candidates, BuildCompressedStageRanges(compressed[s], stats));
  }
  size_t count = 0;
  if (kernel_stages.empty()) {
    for (const RowRange& range : candidates) {
      for (uint32_t row = range.first; row < range.second; ++row) {
        out[count++] = row;
      }
    }
    return count;
  }
  // Refine the sparse candidates through the chunk's kernel stages with
  // the scalar ground-truth evaluator — identical semantics to every
  // SIMD kernel, so the result matches a decode-then-scan run bit for
  // bit.
  for (const RowRange& range : candidates) {
    for (uint32_t row = range.first; row < range.second; ++row) {
      bool match = true;
      for (const ScanStage& stage : kernel_stages) {
        if (!EvaluateStageAtRow(stage, row)) {
          match = false;
          break;
        }
      }
      if (match) out[count++] = row;
    }
  }
  return count;
}

}  // namespace fts
