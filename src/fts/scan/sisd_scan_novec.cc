// "SISD (no vec)": the tuple-at-a-time baseline with compiler
// auto-vectorization disabled (see CMakeLists.txt for the flags).
#define FTS_SISD_PREFIX NoVec
#include "fts/scan/sisd_scan_impl.inc.h"
