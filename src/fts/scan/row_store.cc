#include "fts/scan/row_store.h"

#include "fts/common/string_util.h"

namespace fts {
namespace {

// Reads a typed value at `ptr` and widens it to double for comparison.
// Row-store cells are unaligned within the packed row, hence memcpy.
template <typename T>
T ReadCell(const uint8_t* ptr) {
  T value;
  __builtin_memcpy(&value, ptr, sizeof(T));
  return value;
}

}  // namespace

RowStore::RowStore(std::vector<ColumnDefinition> schema)
    : schema_(std::move(schema)) {
  FTS_CHECK(!schema_.empty());
  offsets_.reserve(schema_.size());
  for (const ColumnDefinition& def : schema_) {
    offsets_.push_back(row_bytes_);
    row_bytes_ += DataTypeSize(def.type);
  }
}

Status RowStore::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu columns",
                  values.size(), schema_.size()));
  }
  std::vector<Value> casted(values.size());
  for (size_t c = 0; c < values.size(); ++c) {
    FTS_ASSIGN_OR_RETURN(casted[c], CastValue(values[c], schema_[c].type));
  }
  const size_t base = buffer_.size();
  buffer_.resize(base + row_bytes_);
  for (size_t c = 0; c < casted.size(); ++c) {
    DispatchDataType(schema_[c].type, [&](auto tag) {
      using T = decltype(tag);
      const T value = ValueAs<T>(casted[c]);
      __builtin_memcpy(buffer_.data() + base + offsets_[c], &value,
                       sizeof(T));
    });
  }
  ++row_count_;
  return Status::Ok();
}

Status RowStore::AppendColumnsAsRows(
    const std::vector<const BaseColumn*>& columns) {
  if (columns.size() != schema_.size()) {
    return Status::InvalidArgument("column count does not match schema");
  }
  const size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (const BaseColumn* column : columns) {
    if (column == nullptr || column->size() != rows) {
      return Status::InvalidArgument("ragged or null input columns");
    }
  }
  std::vector<Value> row(schema_.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      row[c] = columns[c]->GetValue(r);
    }
    FTS_RETURN_IF_ERROR(AppendRow(row));
  }
  return Status::Ok();
}

StatusOr<size_t> RowStore::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c].name == name) return c;
  }
  return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
}

Value RowStore::GetValue(size_t row, size_t column) const {
  FTS_CHECK(row < row_count_ && column < schema_.size());
  const uint8_t* cell =
      buffer_.data() + row * row_bytes_ + offsets_[column];
  return DispatchDataType(schema_[column].type, [&](auto tag) -> Value {
    using T = decltype(tag);
    return ReadCell<T>(cell);
  });
}

StatusOr<std::vector<RowStore::PreparedPredicate>> RowStore::Prepare(
    const ScanSpec& spec) const {
  std::vector<PreparedPredicate> prepared;
  prepared.reserve(spec.predicates.size());
  for (const PredicateSpec& predicate : spec.predicates) {
    FTS_ASSIGN_OR_RETURN(const size_t column,
                         ColumnIndex(predicate.column));
    PreparedPredicate p;
    p.offset = offsets_[column];
    p.type = schema_[column].type;
    p.op = predicate.op;
    FTS_ASSIGN_OR_RETURN(p.value, CastValue(predicate.value, p.type));
    prepared.push_back(std::move(p));
  }
  return prepared;
}

bool RowStore::RowMatches(
    size_t row, const std::vector<PreparedPredicate>& predicates) const {
  const uint8_t* base = buffer_.data() + row * row_bytes_;
  for (const PreparedPredicate& p : predicates) {
    const bool match = DispatchDataType(p.type, [&](auto tag) {
      using T = decltype(tag);
      return EvaluateCompare(p.op, ReadCell<T>(base + p.offset),
                             ValueAs<T>(p.value));
    });
    if (!match) return false;  // Short-circuit, as in the SISD baseline.
  }
  return true;
}

StatusOr<std::vector<uint32_t>> RowStore::Scan(const ScanSpec& spec) const {
  FTS_ASSIGN_OR_RETURN(const auto predicates, Prepare(spec));
  std::vector<uint32_t> matches;
  for (size_t row = 0; row < row_count_; ++row) {
    if (RowMatches(row, predicates)) {
      matches.push_back(static_cast<uint32_t>(row));
    }
  }
  return matches;
}

StatusOr<uint64_t> RowStore::ScanCount(const ScanSpec& spec) const {
  FTS_ASSIGN_OR_RETURN(const auto predicates, Prepare(spec));
  uint64_t count = 0;
  for (size_t row = 0; row < row_count_; ++row) {
    count += RowMatches(row, predicates) ? 1 : 0;
  }
  return count;
}

}  // namespace fts
