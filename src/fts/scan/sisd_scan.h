#ifndef FTS_SCAN_SISD_SCAN_H_
#define FTS_SCAN_SISD_SCAN_H_

#include "fts/simd/scan_stage.h"

namespace fts {

// The paper's data-centric tuple-at-a-time baseline (Section II):
//
//   for (pos_t i = 0; i < col_a.size(); ++i)
//     if (col_a[i] == 5 && col_b[i] == 2) ++total_results;
//
// Two build flavors of the *same source* (sisd_scan_impl.inc.h):
//   - NoVec:   compiled with -fno-tree-vectorize -fno-slp-vectorize
//              ("SISD (no vec)" in Fig. 5)
//   - AutoVec: compiled with plain -O3
//              ("SISD (auto vec)" in Fig. 5)
//
// Chains whose stages share one element type and one comparator run through
// a fully-typed, compile-time-specialized loop (mirroring what a
// data-centric JIT would emit); heterogeneous chains use a generic loop.

size_t SisdScanNoVecCount(const ScanStage* stages, size_t num_stages,
                          size_t row_count);
size_t SisdScanNoVecCollect(const ScanStage* stages, size_t num_stages,
                            size_t row_count, uint32_t* out);

size_t SisdScanAutoVecCount(const ScanStage* stages, size_t num_stages,
                            size_t row_count);
size_t SisdScanAutoVecCollect(const ScanStage* stages, size_t num_stages,
                              size_t row_count, uint32_t* out);

}  // namespace fts

#endif  // FTS_SCAN_SISD_SCAN_H_
