#ifndef FTS_SCAN_SCAN_ENGINE_H_
#define FTS_SCAN_SCAN_ENGINE_H_

#include <string>

#include "fts/common/status.h"

namespace fts {

// Every scan implementation the repository can execute. The first six are
// the implementations compared in the paper's Fig. 5; kBlockwise is the
// classic block-at-a-time operator with materialized intermediate position
// lists (the strategy the Fused Table Scan improves upon, Section I);
// kJit is the runtime-generated operator from Section V.
enum class ScanEngine : uint8_t {
  kSisdNoVec = 0,    // "SISD (no vec)"
  kSisdAutoVec,      // "SISD (auto vec)"
  kScalarFused,      // Portable fused fallback (not in the paper).
  kAvx2Fused128,     // "AVX2 Fused (128)"
  kAvx512Fused128,   // "AVX-512 Fused (128)"
  kAvx512Fused256,   // "AVX-512 Fused (256)"
  kAvx512Fused512,   // "AVX-512 Fused (512)"
  kBlockwise,        // Vectorized scan with materialized position lists.
  kJit,              // JIT-generated fused operator (fts/jit).
};

const char* ScanEngineToString(ScanEngine engine);

// Parses names like "avx512-512", "sisd-novec", "jit" (see .cc for the
// full list). Used by example binaries and bench harnesses.
StatusOr<ScanEngine> ParseScanEngine(const std::string& name);

// True when the current CPU can execute `engine` (kJit also requires a
// working host compiler, which this check does not verify).
bool ScanEngineAvailable(ScanEngine engine);

}  // namespace fts

#endif  // FTS_SCAN_SCAN_ENGINE_H_
