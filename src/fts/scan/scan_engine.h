#ifndef FTS_SCAN_SCAN_ENGINE_H_
#define FTS_SCAN_SCAN_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fts/common/status.h"

namespace fts {

// Every scan implementation the repository can execute. The first six are
// the implementations compared in the paper's Fig. 5; kBlockwise is the
// classic block-at-a-time operator with materialized intermediate position
// lists (the strategy the Fused Table Scan improves upon, Section I);
// kJit is the runtime-generated operator from Section V.
enum class ScanEngine : uint8_t {
  kSisdNoVec = 0,    // "SISD (no vec)"
  kSisdAutoVec,      // "SISD (auto vec)"
  kScalarFused,      // Portable fused fallback (not in the paper).
  kAvx2Fused128,     // "AVX2 Fused (128)"
  kAvx512Fused128,   // "AVX-512 Fused (128)"
  kAvx512Fused256,   // "AVX-512 Fused (256)"
  kAvx512Fused512,   // "AVX-512 Fused (512)"
  kBlockwise,        // Vectorized scan with materialized position lists.
  kJit,              // JIT-generated fused operator (fts/jit).
};

const char* ScanEngineToString(ScanEngine engine);

// Short machine-friendly label ("sisd-novec", "avx512-512", "jit", ...);
// the same spelling ParseScanEngine accepts and metric labels use.
const char* ScanEngineLabel(ScanEngine engine);

// Parses names like "avx512-512", "sisd-novec", "jit" (see .cc for the
// full list). Used by example binaries and bench harnesses.
StatusOr<ScanEngine> ParseScanEngine(const std::string& name);

// True when the current CPU can execute `engine` (kJit also requires a
// working host compiler, which this check does not verify).
bool ScanEngineAvailable(ScanEngine engine);

// What the executor does when the requested scan engine fails at runtime
// (missing JIT compiler, compile error/timeout, dlopen failure, CPU without
// the required ISA): fail the query, or demote along DegradationLadder()
// until an engine succeeds. The SISD engines cannot fail, so a ladder walk
// always terminates with a correct scan.
enum class FallbackPolicy : uint8_t {
  kStrict = 0,  // Surface the requested engine's error to the caller.
  kLadder,      // Demote rung by rung; record each demotion.
};

const char* FallbackPolicyToString(FallbackPolicy policy);

// One concrete way to run a scan: an engine plus, for kJit, the register
// width the generated code targets.
struct EngineChoice {
  ScanEngine engine = ScanEngine::kSisdNoVec;
  int jit_register_bits = 0;  // Non-zero only for engine == kJit.

  std::string ToString() const;
  friend bool operator==(const EngineChoice& a,
                         const EngineChoice& b) = default;
};

// One rung tried during execution. `status` is OK for the rung that ran
// and carries the demotion reason for every rung that was skipped over.
struct EngineAttempt {
  EngineChoice choice;
  Status status;
};

// Where a scan's cycle/branch counters came from. kHardware means a real
// PMU read via perf_event_open; kSimulated means the branch-predictor
// simulator replayed the scan's branch stream (fts/perf/branch_predictor.h);
// kUnavailable means neither ran (the default for untraced queries when
// the PMU is inaccessible — the simulator is O(rows) and only runs when
// counter collection is explicitly requested).
enum class CounterSource : uint8_t {
  kUnavailable = 0,
  kHardware,
  kSimulated,
};

const char* CounterSourceToString(CounterSource source);

// Per-scan microarchitectural counters with their provenance. Populated by
// the plan executor (EXPLAIN ANALYZE, or any query when the PMU opens).
//
// Coverage labeling (DESIGN.md §15): the numbers are only meaningful
// together with the scope they were measured over. A parallel query is
// measured per worker per morsel; a serial query per plan stage on the
// calling thread; the simulator fallback replays only the first scan
// step. `coverage` says which, `partial` flags any measurement that does
// NOT cover every executed scan region, and the morsel/thread counts make
// the parallel coverage auditable.
struct ScanCounters {
  CounterSource source = CounterSource::kUnavailable;
  // Which PMU events or which simulator produced the numbers, e.g.
  // "perf_event_open" or "gshare(14)".
  std::string detail;
  // Human-readable scope, e.g. "12/12 morsels on 4 workers",
  // "serial scan + 1 refine step", "first scan step only".
  std::string coverage;
  // True when some executed scan work was not measured (e.g. a morsel
  // whose PMU read failed, or the simulated first-step-only fallback on a
  // multi-step plan). EXPLAIN ANALYZE renders partial numbers as such.
  bool partial = false;
  // Parallel-path coverage accounting (0 on serial paths).
  uint64_t morsels_covered = 0;
  uint64_t morsels_measurable = 0;
  int threads_covered = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t branches = 0;
  uint64_t branch_misses = 0;

  std::string ToString() const;
};

// Counter totals attributed to one engine choice across the morsels (or
// serial stages) it executed. Lets EXPLAIN ANALYZE separate e.g. the
// cycles/row of JIT morsels from the chunks the cost model demoted to a
// SISD rung within the same query.
struct EngineCounters {
  EngineChoice choice;
  uint64_t regions = 0;  // Morsels (parallel) or stages (serial) measured.
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t branches = 0;
  uint64_t branch_misses = 0;
};

// Wall time and row movement of one plan stage (scan step, refine step,
// aggregation), for EXPLAIN ANALYZE rendering.
struct StageReport {
  std::string label;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  double millis = 0.0;
  // Planner/cost-model row estimate for this stage's output, so EXPLAIN
  // ANALYZE can show estimated vs actual per stage. `has_estimate` is
  // false when no statistics were available to estimate from.
  bool has_estimate = false;
  double est_rows_out = 0.0;
  // Hardware counters attributed to this stage, summed across the threads
  // that executed it. `counters_valid` is false when the stage ran without
  // PMU coverage (host without counters, or collection off).
  bool counters_valid = false;
  uint64_t cycles = 0;
  uint64_t branch_misses = 0;
};

// Which engine a scan actually executed and why. Every QueryResult carries
// one, so degradations are observable instead of silent.
//
// The morsel-driven parallel path (fts/exec/parallel_scan.h) walks the
// degradation ladder independently per morsel (= chunk), so one chunk's
// JIT compile failure demotes only that chunk. `executed` is then the
// deepest rung any morsel ran, `attempts` is that morsel's ladder trail,
// and `morsel_choices` records every morsel's decision in chunk order.
struct ExecutionReport {
  EngineChoice requested;
  EngineChoice executed;
  // True when `executed` differs from `requested` (any demotion happened).
  bool degraded = false;
  // Every rung tried, in order; the last entry is the one that ran.
  std::vector<EngineAttempt> attempts;
  // Worker threads that executed the scan (1 = single-threaded path).
  int worker_count = 1;
  // Morsels (chunk-granular work units) the scan was split into. 0 for the
  // single-threaded path, which runs chunks inline without a scheduler.
  size_t morsel_count = 0;
  // Engine that ran each morsel, in chunk order. Empty unless the parallel
  // path executed. Byte-identical output is guaranteed regardless of the
  // per-morsel choices (all rungs compute the same positions).
  std::vector<EngineChoice> morsel_choices;
  // Zone-map accounting (fts/storage/zone_map.h), filled from the prepared
  // scanner's PruningSummary by every execution path. `chunks_pruned`
  // counts chunks proven matchless before execution (zone-map bounds or
  // dictionary translation); `stages_dropped` counts per-chunk tautological
  // conjuncts removed from fused chains; `bytes_skipped` estimates the
  // column bytes those prunes avoided reading.
  size_t chunks_total = 0;
  size_t chunks_pruned = 0;
  size_t stages_dropped = 0;
  uint64_t bytes_skipped = 0;
  // Rows actually evaluated (pruned chunks excluded) and rows that matched
  // every predicate. Filled by the plan executor.
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  // Compressed-domain execution (fts/scan/compressed_scan.h).
  // `stage_encodings[e]` counts prepared predicate stages whose column
  // carries ColumnEncoding e, summed over chunks (the per-stage encoding
  // mix EXPLAIN ANALYZE prints). The run/block counters attribute the
  // compressed paths: RLE runs classified once vs. runs whose whole
  // position range was skipped, delta blocks answered from block min/max
  // vs. blocks that had to be prefix-reconstructed.
  uint64_t stage_encodings[6] = {0, 0, 0, 0, 0, 0};
  uint64_t rle_runs_classified = 0;
  uint64_t rle_runs_skipped = 0;
  uint64_t delta_blocks_pruned = 0;
  uint64_t delta_blocks_decoded = 0;
  // Late-materialization projection (fts/scan/projection_gather.h).
  // `gather_engine` labels the batch-gather kernel that materialized the
  // projection ("avx512-512", "avx2-128", "scalar", or "reference" for the
  // tuple-at-a-time row materializer the SISD engines keep).
  // `gather_rows[e]` counts output cells gathered from source columns with
  // ColumnEncoding e; the kernel/typed split separates cells produced by
  // the SIMD gather kernels from the typed narrow-width/run/block loops.
  // `gather_delta_blocks` counts delta blocks the gather had to
  // prefix-reconstruct (blocks without survivors are never decoded).
  // `project_est_millis` is the cost model's predicted Project-stage wall
  // time (emit-constant pricing of the gathered cells); 0 when the model
  // was off or the reference path ran.
  std::string gather_engine;
  uint64_t gather_rows[6] = {0, 0, 0, 0, 0, 0};
  uint64_t gather_kernel_rows = 0;
  uint64_t gather_typed_rows = 0;
  uint64_t gather_delta_blocks = 0;
  double project_est_millis = 0.0;
  // Aggregate pushdown: true when the plan folded its aggregates inside
  // the scan kernels instead of materializing a position list;
  // `rows_folded` counts the matched rows folded into accumulators
  // (zone-shortcut chunks contribute without being scanned).
  bool aggregate_pushdown = false;
  uint64_t rows_folded = 0;
  // JIT attribution: wall time spent compiling inside this query (0 when
  // every kernel came from the cache) and cache hit/miss counts across the
  // query's chunk executions.
  double jit_compile_millis = 0.0;
  uint64_t jit_cache_hits = 0;
  uint64_t jit_cache_misses = 0;
  // Query lifecycle (fts/common/query_context.h). `deadline_millis` is the
  // budget the query was armed with (0 = none); `deadline_hit` / `cancelled`
  // report how it ended. Morsel accounting shows the deterministic partial
  // abort: completed morsels ran to their boundary, aborted morsels were
  // discarded without running. `queue_wait_millis` is the time spent in the
  // admission controller's run queue before execution began.
  int64_t deadline_millis = 0;
  bool deadline_hit = false;
  bool cancelled = false;
  size_t morsels_completed = 0;
  size_t morsels_aborted = 0;
  double queue_wait_millis = 0.0;
  // Calibrated cost model (fts/cost, DESIGN.md §14). `model_active` is
  // true when FTS_ADAPTIVE left the model on (per-chunk chain re-ranking
  // eligible); `adaptive_engines` additionally means the model was free
  // to pick the engine per chunk. `chunks_reordered` counts chunks whose
  // fused chain ran in a different order than the spec's predicate
  // order; `adaptive_engine_switches` counts chunks executed on a
  // different engine than requested by the model's choice (not by
  // degradation); `adaptive_chunk_engines[e]` is the per-engine chunk mix
  // while adaptation was active. `est_rows` is the model's predicted
  // match count for the scan.
  bool model_active = false;
  bool adaptive_engines = false;
  size_t chunks_reordered = 0;
  uint64_t adaptive_engine_switches = 0;
  uint64_t adaptive_chunk_engines[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  double est_rows = 0.0;
  // Wall time of the scan stages alone (excludes parse/plan/aggregate).
  double scan_millis = 0.0;
  // Per-stage breakdown for EXPLAIN ANALYZE; one entry per executed plan
  // stage in execution order.
  std::vector<StageReport> stages;
  // Whole-query microarchitectural counters with coverage labeling. On the
  // parallel path these aggregate per-worker per-morsel PMU reads; on the
  // serial path, per-stage reads on the calling thread.
  ScanCounters counters;
  // Counter totals split by the engine that executed each measured region,
  // in first-seen order. Empty without hardware coverage.
  std::vector<EngineCounters> engine_counters;

  // Accumulates one measured region's counters into the entry for
  // `choice`, creating it on first sight.
  void AttributeEngineCounters(const EngineChoice& choice, uint64_t cycles,
                               uint64_t instructions, uint64_t branches,
                               uint64_t branch_misses);

  void RecordFailure(const EngineChoice& choice, const Status& status) {
    attempts.push_back({choice, status});
  }
  void RecordSuccess(const EngineChoice& choice) {
    attempts.push_back({choice, Status::Ok()});
    executed = choice;
    degraded = !(choice == requested);
  }

  // Multi-line human-readable rendering (one line per attempt).
  std::string ToString() const;
};

// The ordered fallback chain starting at `requested`:
//   JIT-512 -> JIT-256 -> JIT-128 -> AVX-512 fused -> AVX2 fused ->
//   scalar fused -> SISD.
// Rungs are NOT filtered by CPU capability — an unavailable rung fails
// with kUnavailable when tried, so the demotion reason lands in the
// ExecutionReport instead of vanishing. `jit_register_bits` seeds the JIT
// rungs when `requested` is kJit (narrower widths follow).
std::vector<EngineChoice> DegradationLadder(ScanEngine requested,
                                            int jit_register_bits);

namespace obs {
class Counter;
}  // namespace obs

// Global per-engine execution counter
// (`fts_engine_executions_total{engine="..."}` in the metrics registry).
// Lives here rather than in fts/obs because obs cannot see the ScanEngine
// enum without an upward dependency. Pointers are resolved once and
// cached, so hot paths pay one array index plus a striped atomic add.
obs::Counter* EngineExecutionCounter(ScanEngine engine);

}  // namespace fts

#endif  // FTS_SCAN_SCAN_ENGINE_H_
