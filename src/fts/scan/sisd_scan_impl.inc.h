// Shared implementation of the SISD baseline, included by exactly two
// translation units that differ only in compile flags and entry-point
// prefix:
//   sisd_scan_novec.cc   (FTS_SISD_PREFIX=NoVec,   -fno-tree-vectorize)
//   sisd_scan_autovec.cc (FTS_SISD_PREFIX=AutoVec, plain -O3)
//
// Not a self-contained header on purpose (.inc.h); it requires
// FTS_SISD_PREFIX to be defined by the including TU.

#include <cstdint>
#include <utility>

#include "fts/common/macros.h"
#include "fts/scan/sisd_scan.h"

#ifndef FTS_SISD_PREFIX
#error "FTS_SISD_PREFIX must be defined before including sisd_scan_impl.inc.h"
#endif

#define FTS_SISD_CONCAT_(a, b, c) a##b##c
#define FTS_SISD_CONCAT(a, b, c) FTS_SISD_CONCAT_(a, b, c)
#define FTS_SISD_FN(name) FTS_SISD_CONCAT(SisdScan, FTS_SISD_PREFIX, name)

namespace fts {
namespace {

// Fully-specialized tuple-at-a-time loop: element type, comparator, and
// chain length are compile-time; search values and column pointers are
// runtime. This matches the code shape a data-centric JIT (HyPer-style)
// emits for a conjunctive predicate chain, including the short-circuit &&
// whose branches Section II analyzes.
template <typename T, CompareOp kOp, size_t kN>
struct TightSisdLoop {
  template <size_t... Is>
  static inline bool MatchRow(const T* const* cols, const T* vals, size_t i,
                              std::index_sequence<Is...>) {
    return (EvaluateCompare(kOp, cols[Is][i], vals[Is]) && ...);
  }

  static size_t Count(const T* const* cols, const T* vals,
                      size_t row_count) {
    size_t matches = 0;
    for (size_t i = 0; i < row_count; ++i) {
      if (MatchRow(cols, vals, i, std::make_index_sequence<kN>{})) {
        ++matches;
      }
    }
    return matches;
  }

  static size_t Collect(const T* const* cols, const T* vals,
                        size_t row_count, uint32_t* out) {
    size_t matches = 0;
    for (size_t i = 0; i < row_count; ++i) {
      if (MatchRow(cols, vals, i, std::make_index_sequence<kN>{})) {
        out[matches++] = static_cast<uint32_t>(i);
      }
    }
    return matches;
  }
};

// Generic fallback for heterogeneous chains (mixed types or operators).
size_t GenericCount(const ScanStage* stages, size_t num_stages,
                    size_t row_count) {
  size_t matches = 0;
  for (size_t i = 0; i < row_count; ++i) {
    bool all = true;
    for (size_t s = 0; s < num_stages; ++s) {
      if (!EvaluateStageAtRow(stages[s], i)) {
        all = false;
        break;
      }
    }
    matches += all ? 1 : 0;
  }
  return matches;
}

size_t GenericCollect(const ScanStage* stages, size_t num_stages,
                      size_t row_count, uint32_t* out) {
  size_t matches = 0;
  for (size_t i = 0; i < row_count; ++i) {
    bool all = true;
    for (size_t s = 0; s < num_stages; ++s) {
      if (!EvaluateStageAtRow(stages[s], i)) {
        all = false;
        break;
      }
    }
    if (all) out[matches++] = static_cast<uint32_t>(i);
  }
  return matches;
}

template <typename T>
T StageValueAs(const ScanStage& stage);
template <>
inline int32_t StageValueAs<int32_t>(const ScanStage& stage) {
  return stage.value.i32;
}
template <>
inline uint32_t StageValueAs<uint32_t>(const ScanStage& stage) {
  return stage.value.u32;
}
template <>
inline float StageValueAs<float>(const ScanStage& stage) {
  return stage.value.f32;
}
template <>
inline int64_t StageValueAs<int64_t>(const ScanStage& stage) {
  return stage.value.i64;
}
template <>
inline uint64_t StageValueAs<uint64_t>(const ScanStage& stage) {
  return stage.value.u64;
}
template <>
inline double StageValueAs<double>(const ScanStage& stage) {
  return stage.value.f64;
}

// Dispatches a homogeneous chain to the TightSisdLoop instantiation for
// (T, op, N). kCollect selects the positions variant.
template <typename T, bool kCollect>
size_t DispatchTight(const ScanStage* stages, size_t num_stages,
                     size_t row_count, uint32_t* out) {
  const T* cols[kMaxScanStages];
  T vals[kMaxScanStages];
  for (size_t s = 0; s < num_stages; ++s) {
    cols[s] = static_cast<const T*>(stages[s].data);
    vals[s] = StageValueAs<T>(stages[s]);
  }
  const CompareOp op = stages[0].op;

  auto run = [&]<CompareOp kOp>() -> size_t {
    auto run_n = [&]<size_t kN>() -> size_t {
      if constexpr (kCollect) {
        return TightSisdLoop<T, kOp, kN>::Collect(cols, vals, row_count,
                                                  out);
      } else {
        return TightSisdLoop<T, kOp, kN>::Count(cols, vals, row_count);
      }
    };
    switch (num_stages) {
      case 1:
        return run_n.template operator()<1>();
      case 2:
        return run_n.template operator()<2>();
      case 3:
        return run_n.template operator()<3>();
      case 4:
        return run_n.template operator()<4>();
      case 5:
        return run_n.template operator()<5>();
      case 6:
        return run_n.template operator()<6>();
      case 7:
        return run_n.template operator()<7>();
      case 8:
        return run_n.template operator()<8>();
      default:
        return ~size_t{0};  // Not reachable; guarded by caller.
    }
  };
  switch (op) {
    case CompareOp::kEq:
      return run.template operator()<CompareOp::kEq>();
    case CompareOp::kNe:
      return run.template operator()<CompareOp::kNe>();
    case CompareOp::kLt:
      return run.template operator()<CompareOp::kLt>();
    case CompareOp::kLe:
      return run.template operator()<CompareOp::kLe>();
    case CompareOp::kGt:
      return run.template operator()<CompareOp::kGt>();
    case CompareOp::kGe:
      return run.template operator()<CompareOp::kGe>();
  }
  __builtin_unreachable();
}

// True when all stages share one element type and one comparator, which is
// the case for every experiment in the paper. Bit-packed stages always go
// through the generic loop (their decode is not a typed array access).
bool IsHomogeneous(const ScanStage* stages, size_t num_stages) {
  if (num_stages == 0 || num_stages > kMaxScanStages) return false;
  if (stages[0].packed_bits != 0) return false;
  for (size_t s = 1; s < num_stages; ++s) {
    if (stages[s].type != stages[0].type) return false;
    if (stages[s].op != stages[0].op) return false;
    if (stages[s].packed_bits != 0) return false;
  }
  return true;
}

template <bool kCollect>
size_t SisdScanImpl(const ScanStage* stages, size_t num_stages,
                    size_t row_count, uint32_t* out) {
  FTS_CHECK(num_stages >= 1);
  if (IsHomogeneous(stages, num_stages)) {
    switch (stages[0].type) {
      case ScanElementType::kI32:
        return DispatchTight<int32_t, kCollect>(stages, num_stages,
                                                row_count, out);
      case ScanElementType::kU32:
        return DispatchTight<uint32_t, kCollect>(stages, num_stages,
                                                 row_count, out);
      case ScanElementType::kF32:
        return DispatchTight<float, kCollect>(stages, num_stages, row_count,
                                              out);
      case ScanElementType::kI64:
        return DispatchTight<int64_t, kCollect>(stages, num_stages,
                                                row_count, out);
      case ScanElementType::kU64:
        return DispatchTight<uint64_t, kCollect>(stages, num_stages,
                                                 row_count, out);
      case ScanElementType::kF64:
        return DispatchTight<double, kCollect>(stages, num_stages,
                                               row_count, out);
    }
  }
  if constexpr (kCollect) {
    return GenericCollect(stages, num_stages, row_count, out);
  } else {
    return GenericCount(stages, num_stages, row_count);
  }
}

}  // namespace

size_t FTS_SISD_FN(Count)(const ScanStage* stages, size_t num_stages,
                          size_t row_count) {
  return SisdScanImpl<false>(stages, num_stages, row_count, nullptr);
}

size_t FTS_SISD_FN(Collect)(const ScanStage* stages, size_t num_stages,
                            size_t row_count, uint32_t* out) {
  return SisdScanImpl<true>(stages, num_stages, row_count, out);
}

}  // namespace fts

#undef FTS_SISD_FN
#undef FTS_SISD_CONCAT
#undef FTS_SISD_CONCAT_
