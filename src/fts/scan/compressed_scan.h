#ifndef FTS_SCAN_COMPRESSED_SCAN_H_
#define FTS_SCAN_COMPRESSED_SCAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "fts/simd/scan_stage.h"
#include "fts/storage/column.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/value.h"

namespace fts {

// One predicate evaluated in the compressed domain — a conjunct whose
// column is RLE or delta encoded, where per-row kernel evaluation would
// first have to decode. Instead each stage produces the exact set of
// qualifying rows as sorted, coalesced position ranges:
//
//   RLE:   classify every run value once; a qualifying run contributes its
//          whole [start, end) range, so work is O(runs), not O(rows).
//   delta: classify each block's min/max; kAll blocks contribute their
//          range and kNone blocks are skipped without touching the packed
//          stream; only undecided blocks are prefix-reconstructed (into a
//          stack buffer) and tested row-wise.
//
// Stage range lists are intersected, then any remaining kernel stages of
// the same chunk refine the candidates row-wise via EvaluateStageAtRow.
// Every engine routes through this same code for such chunks, so results
// are byte-identical across SISD/AVX2/AVX-512/threads by construction
// (the JIT additionally compiles all-RLE chains, emitting the same
// run-classification logic — fts/jit/code_generator.cc).
struct CompressedScanStage {
  const BaseColumn* column = nullptr;
  CompareOp op = CompareOp::kEq;
  Value value;  // Already cast to the column's data type by Prepare().
};

// Half-open row range [first, second).
using RowRange = std::pair<uint32_t, uint32_t>;

// Work counters for one chunk execution (plain fields — accumulate into
// AtomicCompressedStats for cross-thread totals).
struct CompressedScanStats {
  uint64_t rle_runs_classified = 0;
  uint64_t rle_runs_skipped = 0;  // Runs whose whole range was disproved.
  uint64_t delta_blocks_pruned = 0;   // Blocks answered from min/max.
  uint64_t delta_blocks_decoded = 0;  // Blocks prefix-reconstructed.
};

// Shared accumulator owned by a prepared TableScanner: chunk executions
// run concurrently on the morsel path, so totals are atomic.
struct AtomicCompressedStats {
  std::atomic<uint64_t> rle_runs_classified{0};
  std::atomic<uint64_t> rle_runs_skipped{0};
  std::atomic<uint64_t> delta_blocks_pruned{0};
  std::atomic<uint64_t> delta_blocks_decoded{0};

  void Add(const CompressedScanStats& stats) {
    rle_runs_classified.fetch_add(stats.rle_runs_classified,
                                  std::memory_order_relaxed);
    rle_runs_skipped.fetch_add(stats.rle_runs_skipped,
                               std::memory_order_relaxed);
    delta_blocks_pruned.fetch_add(stats.delta_blocks_pruned,
                                  std::memory_order_relaxed);
    delta_blocks_decoded.fetch_add(stats.delta_blocks_decoded,
                                   std::memory_order_relaxed);
  }
};

// Exact qualifying ranges for one compressed stage, ascending and
// coalesced. `row_count` is the chunk's row count (= column size).
std::vector<RowRange> BuildCompressedStageRanges(
    const CompressedScanStage& stage, CompressedScanStats* stats);

// Decoded-value evaluation of one compressed stage at a single row — the
// tuple-at-a-time path non-fused plans use when refining an existing
// position list (fts/plan/physical_plan.cc). Semantically identical to
// membership in BuildCompressedStageRanges' output.
bool EvaluateCompressedStageAtRow(const CompressedScanStage& stage,
                                  uint32_t row);

// Sorted-coalesced range intersection (two-pointer merge).
std::vector<RowRange> IntersectRanges(const std::vector<RowRange>& a,
                                      const std::vector<RowRange>& b);

// Full compressed-domain chunk execution: intersects the compressed
// stages' ranges, refines surviving candidates through the chunk's kernel
// stages (scalar, one row at a time — candidates are already sparse), and
// writes matching positions ascending into `out` (capacity row_count +
// kScanOutputSlack). Returns the match count. `compressed` must be
// non-empty.
size_t ExecuteCompressedChunk(
    const std::vector<CompressedScanStage>& compressed,
    const std::vector<ScanStage>& kernel_stages, size_t row_count,
    uint32_t* out, CompressedScanStats* stats);

}  // namespace fts

#endif  // FTS_SCAN_COMPRESSED_SCAN_H_
