#include "fts/scan/scan_engine.h"

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"

namespace fts {

const char* ScanEngineToString(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kSisdNoVec:
      return "SISD (no vec)";
    case ScanEngine::kSisdAutoVec:
      return "SISD (auto vec)";
    case ScanEngine::kScalarFused:
      return "Scalar Fused";
    case ScanEngine::kAvx2Fused128:
      return "AVX2 Fused (128)";
    case ScanEngine::kAvx512Fused128:
      return "AVX-512 Fused (128)";
    case ScanEngine::kAvx512Fused256:
      return "AVX-512 Fused (256)";
    case ScanEngine::kAvx512Fused512:
      return "AVX-512 Fused (512)";
    case ScanEngine::kBlockwise:
      return "Blockwise (materializing)";
    case ScanEngine::kJit:
      return "JIT Fused";
  }
  return "?";
}

StatusOr<ScanEngine> ParseScanEngine(const std::string& name) {
  const std::string lowered = ToLower(name);
  if (lowered == "sisd-novec" || lowered == "sisd") {
    return ScanEngine::kSisdNoVec;
  }
  if (lowered == "sisd-autovec") return ScanEngine::kSisdAutoVec;
  if (lowered == "scalar-fused" || lowered == "scalar") {
    return ScanEngine::kScalarFused;
  }
  if (lowered == "avx2-128" || lowered == "avx2") {
    return ScanEngine::kAvx2Fused128;
  }
  if (lowered == "avx512-128") return ScanEngine::kAvx512Fused128;
  if (lowered == "avx512-256") return ScanEngine::kAvx512Fused256;
  if (lowered == "avx512-512" || lowered == "avx512") {
    return ScanEngine::kAvx512Fused512;
  }
  if (lowered == "blockwise") return ScanEngine::kBlockwise;
  if (lowered == "jit") return ScanEngine::kJit;
  return Status::InvalidArgument(StrFormat(
      "unknown scan engine '%s' (expected one of: sisd-novec, "
      "sisd-autovec, scalar-fused, avx2-128, avx512-128, avx512-256, "
      "avx512-512, blockwise, jit)",
      name.c_str()));
}

bool ScanEngineAvailable(ScanEngine engine) {
  const CpuFeatures& cpu = GetCpuFeatures();
  switch (engine) {
    case ScanEngine::kSisdNoVec:
    case ScanEngine::kSisdAutoVec:
    case ScanEngine::kScalarFused:
    case ScanEngine::kBlockwise:
      return true;
    case ScanEngine::kAvx2Fused128:
      return cpu.avx2;
    case ScanEngine::kAvx512Fused128:
    case ScanEngine::kAvx512Fused256:
    case ScanEngine::kAvx512Fused512:
      return cpu.HasFusedScanAvx512();
    case ScanEngine::kJit:
      return cpu.HasFusedScanAvx512();  // Generated code uses AVX-512.
  }
  return false;
}

}  // namespace fts
