#include "fts/scan/scan_engine.h"

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/obs/metrics.h"

namespace fts {

const char* ScanEngineToString(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kSisdNoVec:
      return "SISD (no vec)";
    case ScanEngine::kSisdAutoVec:
      return "SISD (auto vec)";
    case ScanEngine::kScalarFused:
      return "Scalar Fused";
    case ScanEngine::kAvx2Fused128:
      return "AVX2 Fused (128)";
    case ScanEngine::kAvx512Fused128:
      return "AVX-512 Fused (128)";
    case ScanEngine::kAvx512Fused256:
      return "AVX-512 Fused (256)";
    case ScanEngine::kAvx512Fused512:
      return "AVX-512 Fused (512)";
    case ScanEngine::kBlockwise:
      return "Blockwise (materializing)";
    case ScanEngine::kJit:
      return "JIT Fused";
  }
  return "?";
}

StatusOr<ScanEngine> ParseScanEngine(const std::string& name) {
  const std::string lowered = ToLower(name);
  if (lowered == "sisd-novec" || lowered == "sisd") {
    return ScanEngine::kSisdNoVec;
  }
  if (lowered == "sisd-autovec") return ScanEngine::kSisdAutoVec;
  if (lowered == "scalar-fused" || lowered == "scalar") {
    return ScanEngine::kScalarFused;
  }
  if (lowered == "avx2-128" || lowered == "avx2") {
    return ScanEngine::kAvx2Fused128;
  }
  if (lowered == "avx512-128") return ScanEngine::kAvx512Fused128;
  if (lowered == "avx512-256") return ScanEngine::kAvx512Fused256;
  if (lowered == "avx512-512" || lowered == "avx512") {
    return ScanEngine::kAvx512Fused512;
  }
  if (lowered == "blockwise") return ScanEngine::kBlockwise;
  if (lowered == "jit") return ScanEngine::kJit;
  return Status::InvalidArgument(StrFormat(
      "unknown scan engine '%s' (expected one of: sisd-novec, "
      "sisd-autovec, scalar-fused, avx2-128, avx512-128, avx512-256, "
      "avx512-512, blockwise, jit)",
      name.c_str()));
}

bool ScanEngineAvailable(ScanEngine engine) {
  const CpuFeatures& cpu = GetCpuFeatures();
  switch (engine) {
    case ScanEngine::kSisdNoVec:
    case ScanEngine::kSisdAutoVec:
    case ScanEngine::kScalarFused:
    case ScanEngine::kBlockwise:
      return true;
    case ScanEngine::kAvx2Fused128:
      return cpu.avx2;
    case ScanEngine::kAvx512Fused128:
    case ScanEngine::kAvx512Fused256:
    case ScanEngine::kAvx512Fused512:
      return cpu.HasFusedScanAvx512();
    case ScanEngine::kJit:
      return cpu.HasFusedScanAvx512();  // Generated code uses AVX-512.
  }
  return false;
}

const char* CounterSourceToString(CounterSource source) {
  switch (source) {
    case CounterSource::kUnavailable:
      return "unavailable";
    case CounterSource::kHardware:
      return "hardware";
    case CounterSource::kSimulated:
      return "simulated";
  }
  return "?";
}

std::string ScanCounters::ToString() const {
  if (source == CounterSource::kUnavailable) return "counters: unavailable";
  std::string out = StrFormat("counters (%s", CounterSourceToString(source));
  if (!detail.empty()) out += ", " + detail;
  if (!coverage.empty()) out += ", covers " + coverage;
  if (partial) out += ", PARTIAL";
  out += "):";
  if (cycles > 0) {
    out += StrFormat(" cycles=%llu", static_cast<unsigned long long>(cycles));
  }
  if (instructions > 0) {
    out += StrFormat(" instructions=%llu",
                     static_cast<unsigned long long>(instructions));
  }
  out += StrFormat(" branches=%llu branch_misses=%llu",
                   static_cast<unsigned long long>(branches),
                   static_cast<unsigned long long>(branch_misses));
  if (branches > 0) {
    out += StrFormat(" (%.2f%% missed)",
                     100.0 * static_cast<double>(branch_misses) /
                         static_cast<double>(branches));
  }
  return out;
}

// The per-engine name used in the metrics label: the short parseable
// spelling from ParseScanEngine, not the display name.
const char* ScanEngineLabel(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kSisdNoVec:
      return "sisd-novec";
    case ScanEngine::kSisdAutoVec:
      return "sisd-autovec";
    case ScanEngine::kScalarFused:
      return "scalar-fused";
    case ScanEngine::kAvx2Fused128:
      return "avx2-128";
    case ScanEngine::kAvx512Fused128:
      return "avx512-128";
    case ScanEngine::kAvx512Fused256:
      return "avx512-256";
    case ScanEngine::kAvx512Fused512:
      return "avx512-512";
    case ScanEngine::kBlockwise:
      return "blockwise";
    case ScanEngine::kJit:
      return "jit";
  }
  return "unknown";
}

obs::Counter* EngineExecutionCounter(ScanEngine engine) {
  // One-time resolution of all nine counters; after that a lookup is a
  // bounds check and an array index.
  static obs::Counter* const* counters = [] {
    static obs::Counter* table[9];
    for (int i = 0; i < 9; ++i) {
      const auto e = static_cast<ScanEngine>(i);
      table[i] = obs::MetricsRegistry::Global().GetCounter(
          StrFormat("fts_engine_executions_total{engine=\"%s\"}",
                    ScanEngineLabel(e)),
          "Chunk executions per scan engine");
    }
    return table;
  }();
  const auto index = static_cast<size_t>(engine);
  return counters[index < 9 ? index : 0];
}

const char* FallbackPolicyToString(FallbackPolicy policy) {
  switch (policy) {
    case FallbackPolicy::kStrict:
      return "strict";
    case FallbackPolicy::kLadder:
      return "ladder";
  }
  return "?";
}

std::string EngineChoice::ToString() const {
  if (engine == ScanEngine::kJit && jit_register_bits != 0) {
    return StrFormat("%s (%d-bit)", ScanEngineToString(engine),
                     jit_register_bits);
  }
  return ScanEngineToString(engine);
}

std::string ExecutionReport::ToString() const {
  if (attempts.empty()) return "no scan engine executed";
  std::string out = StrFormat(
      "requested=%s executed=%s%s", requested.ToString().c_str(),
      executed.ToString().c_str(), degraded ? " [degraded]" : "");
  if (morsel_count > 0) {
    out += StrFormat(" workers=%d morsels=%zu", worker_count, morsel_count);
    size_t demoted = 0;
    for (const EngineChoice& choice : morsel_choices) {
      if (!(choice == requested)) ++demoted;
    }
    if (demoted > 0) out += StrFormat(" (%zu demoted)", demoted);
  }
  if (chunks_pruned > 0 || stages_dropped > 0) {
    out += StrFormat(" pruned=%zu/%zu chunks", chunks_pruned, chunks_total);
    if (stages_dropped > 0) {
      out += StrFormat(" dropped=%zu stages", stages_dropped);
    }
    out += StrFormat(" (~%llu bytes skipped)",
                     static_cast<unsigned long long>(bytes_skipped));
  }
  if (rows_scanned > 0) {
    out += StrFormat(" rows=%llu matched=%llu",
                     static_cast<unsigned long long>(rows_scanned),
                     static_cast<unsigned long long>(rows_matched));
  }
  if (jit_cache_hits + jit_cache_misses > 0) {
    out += StrFormat(" jit_cache=%llu/%llu hit",
                     static_cast<unsigned long long>(jit_cache_hits),
                     static_cast<unsigned long long>(
                         jit_cache_hits + jit_cache_misses));
    if (jit_compile_millis > 0.0) {
      out += StrFormat(" compile=%.2fms", jit_compile_millis);
    }
  }
  if (counters.source != CounterSource::kUnavailable) {
    out += "\n  " + counters.ToString();
  }
  for (const EngineCounters& ec : engine_counters) {
    out += StrFormat(
        "\n  %s: regions=%llu cycles=%llu branch_misses=%llu",
        ec.choice.ToString().c_str(),
        static_cast<unsigned long long>(ec.regions),
        static_cast<unsigned long long>(ec.cycles),
        static_cast<unsigned long long>(ec.branch_misses));
  }
  for (const EngineAttempt& attempt : attempts) {
    out += StrFormat("\n  %s: %s", attempt.choice.ToString().c_str(),
                     attempt.status.ToString().c_str());
  }
  return out;
}

void ExecutionReport::AttributeEngineCounters(const EngineChoice& choice,
                                              uint64_t cycles,
                                              uint64_t instructions,
                                              uint64_t branches,
                                              uint64_t branch_misses) {
  for (EngineCounters& ec : engine_counters) {
    if (ec.choice == choice) {
      ++ec.regions;
      ec.cycles += cycles;
      ec.instructions += instructions;
      ec.branches += branches;
      ec.branch_misses += branch_misses;
      return;
    }
  }
  engine_counters.push_back(
      {choice, 1, cycles, instructions, branches, branch_misses});
}

std::vector<EngineChoice> DegradationLadder(ScanEngine requested,
                                            int jit_register_bits) {
  std::vector<EngineChoice> rungs;
  const auto add = [&rungs](ScanEngine engine, int bits = 0) {
    const EngineChoice choice{engine, bits};
    for (const EngineChoice& existing : rungs) {
      if (existing == choice) return;
    }
    rungs.push_back(choice);
  };
  // The static tail below the requested engine. Falls through so that each
  // starting rung inherits everything beneath it.
  const auto add_static_tail = [&add](ScanEngine from) {
    switch (from) {
      case ScanEngine::kAvx512Fused512:
      case ScanEngine::kAvx512Fused256:
      case ScanEngine::kAvx512Fused128:
        add(from);
        add(ScanEngine::kAvx2Fused128);
        add(ScanEngine::kScalarFused);
        add(ScanEngine::kSisdNoVec);
        break;
      case ScanEngine::kAvx2Fused128:
        add(ScanEngine::kAvx2Fused128);
        add(ScanEngine::kScalarFused);
        add(ScanEngine::kSisdNoVec);
        break;
      case ScanEngine::kBlockwise:
        add(ScanEngine::kBlockwise);
        add(ScanEngine::kScalarFused);
        add(ScanEngine::kSisdNoVec);
        break;
      case ScanEngine::kScalarFused:
        add(ScanEngine::kScalarFused);
        add(ScanEngine::kSisdNoVec);
        break;
      case ScanEngine::kSisdAutoVec:
        add(ScanEngine::kSisdAutoVec);
        add(ScanEngine::kSisdNoVec);
        break;
      case ScanEngine::kSisdNoVec:
        add(ScanEngine::kSisdNoVec);
        break;
      case ScanEngine::kJit:
        break;  // Handled by the caller.
    }
  };

  if (requested == ScanEngine::kJit) {
    const int start_bits = jit_register_bits == 0 ? 512 : jit_register_bits;
    for (const int bits : {512, 256, 128}) {
      if (bits <= start_bits) add(ScanEngine::kJit, bits);
    }
    add_static_tail(ScanEngine::kAvx512Fused512);
  } else {
    add_static_tail(requested);
  }
  return rungs;
}

}  // namespace fts
