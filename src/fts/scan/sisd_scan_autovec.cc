// "SISD (auto vec)": the identical source built with the project's normal
// -O3, letting the compiler auto-vectorize where it can (Section IV).
#define FTS_SISD_PREFIX AutoVec
#include "fts/scan/sisd_scan_impl.inc.h"
