#ifndef FTS_SCAN_ROW_STORE_H_
#define FTS_SCAN_ROW_STORE_H_

#include <string>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/status.h"
#include "fts/scan/scan_spec.h"
#include "fts/storage/table.h"

namespace fts {

// Row-major (N-ary / NSM) table: every row's values are stored
// contiguously. This is the counterpart in the "row versus column store
// debate for main memory databases" the paper's introduction cites as the
// reason fast unindexed scans matter. A multi-predicate scan over a row
// store touches every byte of every row that reaches the first predicate
// evaluation — the memory behaviour the column-major fused scan avoids.
class RowStore {
 public:
  explicit RowStore(std::vector<ColumnDefinition> schema);

  // Appends one row; values must match the schema arity and be exactly
  // representable in the column types.
  Status AppendRow(const std::vector<Value>& values);

  // Bulk-appends from per-column arrays (convenience for benchmarks that
  // build row and column variants of the same data).
  Status AppendColumnsAsRows(
      const std::vector<const BaseColumn*>& columns);

  size_t row_count() const { return row_count_; }
  size_t row_bytes() const { return row_bytes_; }
  const std::vector<ColumnDefinition>& schema() const { return schema_; }

  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  // Boxed cell access.
  Value GetValue(size_t row, size_t column) const;

  // Tuple-at-a-time conjunctive scan with short-circuit evaluation — the
  // natural access path of a row store. Returns matching row ids.
  StatusOr<std::vector<uint32_t>> Scan(const ScanSpec& spec) const;

  // Count-only variant.
  StatusOr<uint64_t> ScanCount(const ScanSpec& spec) const;

  // Raw row buffer (for the benchmarks' bytes-touched accounting).
  const uint8_t* data() const { return buffer_.data(); }

 private:
  struct PreparedPredicate {
    size_t offset = 0;     // Byte offset within a row.
    DataType type = DataType::kInt32;
    CompareOp op = CompareOp::kEq;
    Value value;           // Cast to the column type.
  };

  StatusOr<std::vector<PreparedPredicate>> Prepare(
      const ScanSpec& spec) const;
  bool RowMatches(size_t row,
                  const std::vector<PreparedPredicate>& predicates) const;

  std::vector<ColumnDefinition> schema_;
  std::vector<size_t> offsets_;  // Byte offset of each column in a row.
  size_t row_bytes_ = 0;
  size_t row_count_ = 0;
  AlignedVector<uint8_t> buffer_;
};

}  // namespace fts

#endif  // FTS_SCAN_ROW_STORE_H_
