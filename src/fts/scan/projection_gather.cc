#include "fts/scan/projection_gather.h"

#include <optional>
#include <type_traits>

#include "fts/storage/bitpacked_column.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

// Kernel element tag for a 4- or 8-byte declared type; nullopt for the
// narrow types the kernels do not cover (they take the typed loop).
std::optional<ScanElementType> KernelElementFor(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return ScanElementType::kI32;
    case DataType::kUInt32:
      return ScanElementType::kU32;
    case DataType::kFloat32:
      return ScanElementType::kF32;
    case DataType::kInt64:
      return ScanElementType::kI64;
    case DataType::kUInt64:
      return ScanElementType::kU64;
    case DataType::kFloat64:
      return ScanElementType::kF64;
    default:
      return std::nullopt;
  }
}

// Raw two's-complement bits of a FoR base, sign-extended to 64 bits so
// the kernels' wraparound add is exact at every element width.
template <typename T>
uint64_t ForBaseBits(T base) {
  if constexpr (std::is_signed_v<T>) {
    return static_cast<uint64_t>(static_cast<int64_t>(base));
  } else {
    return static_cast<uint64_t>(base);
  }
}

// Typed unboxed per-row loop for the encodings/widths outside the kernel
// contract. Still never constructs a Value.
template <typename T>
void GatherTyped(const BaseColumn& column, const ChunkOffset* positions,
                 size_t n, T* dst) {
  switch (column.encoding()) {
    case ColumnEncoding::kPlain: {
      const T* src = static_cast<const ValueColumn<T>&>(column).data();
      for (size_t i = 0; i < n; ++i) dst[i] = src[positions[i]];
      return;
    }
    case ColumnEncoding::kDictionary: {
      const auto& dict_column =
          static_cast<const DictionaryColumn<T>&>(column);
      const T* dict = dict_column.dictionary().data();
      const uint32_t* codes = dict_column.codes().data();
      for (size_t i = 0; i < n; ++i) dst[i] = dict[codes[positions[i]]];
      return;
    }
    case ColumnEncoding::kBitPacked: {
      const auto& packed = static_cast<const BitPackedColumn<T>&>(column);
      const T* dict = packed.dictionary().data();
      for (size_t i = 0; i < n; ++i) {
        dst[i] = dict[packed.CodeAt(positions[i])];
      }
      return;
    }
    case ColumnEncoding::kFor: {
      if constexpr (std::is_integral_v<T>) {
        const auto& for_column = static_cast<const ForColumn<T>&>(column);
        for (size_t i = 0; i < n; ++i) {
          dst[i] = for_column.ValueAt(positions[i]);
        }
        return;
      }
      break;
    }
    case ColumnEncoding::kRle:
    case ColumnEncoding::kDelta:
      break;  // Handled by the dedicated run/block walks.
  }
  FTS_CHECK_MSG(false, "unreachable typed-gather encoding");
}

// RLE: ascending positions advance a run cursor in tandem with the
// cumulative run ends — O(survivors + runs touched), no binary search,
// and runs without survivors are skipped by the inner advance.
template <typename T>
void GatherRle(const RleColumn<T>& column, const ChunkOffset* positions,
               size_t n, T* dst) {
  const AlignedVector<uint32_t>& ends = column.run_ends();
  const std::vector<T>& values = column.run_values();
  size_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    const ChunkOffset pos = positions[i];
    while (ends[run] <= pos) ++run;
    dst[i] = values[run];
  }
}

// Delta: decode only the blocks that contain survivors; blocks without a
// survivor are never prefix-reconstructed.
template <typename T>
uint64_t GatherDelta(const DeltaColumn<T>& column,
                     const ChunkOffset* positions, size_t n, T* dst) {
  T buffer[kDeltaBlockRows];
  uint64_t blocks_decoded = 0;
  size_t i = 0;
  while (i < n) {
    const size_t block = positions[i] / kDeltaBlockRows;
    column.DecodeBlock(block, buffer);
    ++blocks_decoded;
    const uint64_t block_start =
        static_cast<uint64_t>(block) * kDeltaBlockRows;
    const uint64_t block_end = block_start + kDeltaBlockRows;
    do {
      dst[i] = buffer[positions[i] - block_start];
      ++i;
    } while (i < n && positions[i] < block_end);
  }
  return blocks_decoded;
}

}  // namespace

StatusOr<ProjectionGatherer> ProjectionGatherer::Prepare(
    TablePtr table, std::vector<size_t> columns) {
  FTS_CHECK(table != nullptr);
  ProjectionGatherer gatherer;
  gatherer.table_ = std::move(table);
  gatherer.columns_ = std::move(columns);
  gatherer.output_types_.reserve(gatherer.columns_.size());
  for (const size_t column : gatherer.columns_) {
    if (column >= gatherer.table_->column_count()) {
      return Status::InvalidArgument("projected column index out of range");
    }
    gatherer.output_types_.push_back(
        gatherer.table_->column_definition(column).type);
  }
  const size_t chunk_count = gatherer.table_->chunk_count();
  const size_t width = gatherer.columns_.size();
  gatherer.plans_.resize(chunk_count * width);
  for (size_t chunk_id = 0; chunk_id < chunk_count; ++chunk_id) {
    const Chunk& chunk = gatherer.table_->chunk(
        static_cast<ChunkId>(chunk_id));
    for (size_t c = 0; c < width; ++c) {
      ColumnChunkPlan& plan = gatherer.plans_[chunk_id * width + c];
      const BaseColumn& column = chunk.column(gatherer.columns_[c]);
      plan.column = &column;
      plan.encoding = column.encoding();
      const std::optional<ScanElementType> element =
          KernelElementFor(column.data_type());
      switch (plan.encoding) {
        case ColumnEncoding::kRle:
          plan.path = Path::kRle;
          break;
        case ColumnEncoding::kDelta:
          plan.path = Path::kDelta;
          break;
        case ColumnEncoding::kPlain:
          if (!element.has_value()) {
            plan.path = Path::kTyped;
            break;
          }
          plan.path = Path::kKernel;
          plan.term.data = column.scan_data();
          plan.term.type = *element;
          break;
        case ColumnEncoding::kDictionary:
        case ColumnEncoding::kBitPacked: {
          if (!element.has_value()) {
            plan.path = Path::kTyped;
            break;
          }
          plan.path = Path::kKernel;
          plan.term.data = column.scan_data();
          plan.term.type = *element;
          plan.term.packed_bits = column.packed_bit_width();
          // The sorted dictionary of T is element-width entries, indexed
          // by code — exactly the kernels' translate-table contract.
          DispatchDataType(column.data_type(), [&](auto tag) {
            using T = decltype(tag);
            if constexpr (sizeof(T) >= 4) {
              if (plan.encoding == ColumnEncoding::kDictionary) {
                plan.term.dict = static_cast<const DictionaryColumn<T>&>(
                                     column)
                                     .dictionary()
                                     .data();
              } else {
                plan.term.dict =
                    static_cast<const BitPackedColumn<T>&>(column)
                        .dictionary()
                        .data();
              }
            }
          });
          break;
        }
        case ColumnEncoding::kFor: {
          if (!element.has_value()) {
            plan.path = Path::kTyped;
            break;
          }
          plan.path = Path::kKernel;
          plan.term.data = column.scan_data();
          plan.term.type = *element;
          plan.term.packed_bits = column.packed_bit_width();
          DispatchDataType(column.data_type(), [&](auto tag) {
            using T = decltype(tag);
            if constexpr (std::is_integral_v<T> && sizeof(T) >= 4) {
              plan.term.base_bits = ForBaseBits(
                  static_cast<const ForColumn<T>&>(column).base());
            }
          });
          break;
        }
      }
    }
  }
  return gatherer;
}

void ProjectionGatherer::InitResult(const std::vector<std::string>& names,
                                    ColumnarResult* out) const {
  FTS_CHECK(names.size() == columns_.size());
  out->Clear();
  for (size_t c = 0; c < columns_.size(); ++c) {
    out->AddColumn(names[c], output_types_[c]);
  }
}

void ProjectionGatherer::GatherChunkColumn(
    GatherFn fn, ChunkId chunk_id, size_t out_column,
    const ChunkOffset* positions, size_t n, ColumnarResult* out,
    size_t dst_offset, GatherStats* stats) const {
  if (n == 0) return;
  const ColumnChunkPlan& plan =
      plans_[static_cast<size_t>(chunk_id) * columns_.size() + out_column];
  void* dst = out->MutableData(out_column, dst_offset);
  stats->rows_by_encoding[static_cast<size_t>(plan.encoding)] += n;
  switch (plan.path) {
    case Path::kKernel:
      fn(plan.term, positions, n, dst);
      stats->kernel_rows += n;
      return;
    case Path::kTyped:
      DispatchDataType(output_types_[out_column], [&](auto tag) {
        using T = decltype(tag);
        GatherTyped<T>(*plan.column, positions, n, static_cast<T*>(dst));
      });
      stats->typed_rows += n;
      return;
    case Path::kRle:
      DispatchDataType(output_types_[out_column], [&](auto tag) {
        using T = decltype(tag);
        GatherRle<T>(static_cast<const RleColumn<T>&>(*plan.column),
                     positions, n, static_cast<T*>(dst));
      });
      stats->typed_rows += n;
      return;
    case Path::kDelta:
      DispatchDataType(output_types_[out_column], [&](auto tag) {
        using T = decltype(tag);
        if constexpr (std::is_integral_v<T>) {
          stats->delta_blocks_decoded += GatherDelta<T>(
              static_cast<const DeltaColumn<T>&>(*plan.column), positions,
              n, static_cast<T*>(dst));
        }
      });
      stats->typed_rows += n;
      return;
  }
}

void ProjectionGatherer::GatherChunk(GatherFn fn, ChunkId chunk_id,
                                     const ChunkOffset* positions, size_t n,
                                     ColumnarResult* out, size_t dst_offset,
                                     GatherStats* stats) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    GatherChunkColumn(fn, chunk_id, c, positions, n, out, dst_offset,
                      stats);
  }
}

bool ProjectionGatherer::AllKernelEligible() const {
  for (const ColumnChunkPlan& plan : plans_) {
    if (plan.path != Path::kKernel) return false;
  }
  return !plans_.empty();
}

bool ProjectionGatherer::KernelTermFor(ChunkId chunk_id, size_t out_column,
                                       GatherTerm* term) const {
  const ColumnChunkPlan& plan =
      plans_[static_cast<size_t>(chunk_id) * columns_.size() + out_column];
  if (plan.path != Path::kKernel) return false;
  *term = plan.term;
  return true;
}

void ProjectionGatherer::CreditKernelGather(ChunkId chunk_id, size_t n,
                                            GatherStats* stats) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnChunkPlan& plan =
        plans_[static_cast<size_t>(chunk_id) * columns_.size() + c];
    stats->rows_by_encoding[static_cast<size_t>(plan.encoding)] += n;
    stats->kernel_rows += n;
  }
}

}  // namespace fts
