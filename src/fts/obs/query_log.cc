#include "fts/obs/query_log.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "fts/common/env.h"
#include "fts/obs/json_writer.h"
#include "fts/obs/metrics.h"

namespace fts::obs {

std::string SqlDigest(const std::string& sql) {
  static constexpr size_t kMaxDigest = 160;
  std::string out;
  out.reserve(std::min(sql.size(), kMaxDigest));
  size_t i = 0;
  bool last_space = true;  // Swallow leading whitespace.
  while (i < sql.size() && out.size() < kMaxDigest) {
    const char c = sql[i];
    if (c == '\'' || c == '"') {
      // String literal: skip to the closing quote (no escape handling —
      // the dialect has none) and emit one placeholder.
      const char quote = c;
      ++i;
      while (i < sql.size() && sql[i] != quote) ++i;
      if (i < sql.size()) ++i;
      out += '?';
      last_space = false;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        (out.empty() ||
         !std::isalnum(static_cast<unsigned char>(out.back())))) {
      // Numeric literal (not an identifier tail like "c0"): swallow the
      // whole number, sign handled naturally since '-' passes through.
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E')) {
        ++i;
      }
      out += '?';
      last_space = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space) out += ' ';
      last_space = true;
      ++i;
      continue;
    }
    out += c;
    last_space = false;
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool ObsEnabled() { return GetEnvBool("FTS_OBS", true); }

QueryLog::QueryLog(size_t capacity, double slow_threshold_ms,
                   std::string slow_log_path)
    : slots_(capacity == 0 ? 1 : capacity),
      slow_threshold_ms_(slow_threshold_ms),
      slow_log_path_(std::move(slow_log_path)) {}

void QueryLog::Record(QueryLogEntry entry) {
  entry.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry.wall_unix_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  Slot& slot = slots_[entry.id % slots_.size()];
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.used = true;
    slot.entry = entry;
  }
  MaybeLogSlow(entry);
}

std::vector<QueryLogEntry> QueryLog::Snapshot(size_t max_entries) const {
  std::vector<QueryLogEntry> entries;
  entries.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.used) entries.push_back(slot.entry);
  }
  // Newest first. Ids are unique, so the order is total even when writers
  // raced the copy above.
  std::sort(entries.begin(), entries.end(),
            [](const QueryLogEntry& a, const QueryLogEntry& b) {
              return a.id > b.id;
            });
  if (max_entries > 0 && entries.size() > max_entries) {
    entries.resize(max_entries);
  }
  return entries;
}

std::string QueryLogEntryToJson(const QueryLogEntry& entry) {
  JsonWriter json;
  json.BeginObject();
  json.Key("id").Number(entry.id);
  json.Key("wall_unix_micros").Number(entry.wall_unix_micros);
  json.Key("digest").String(entry.digest);
  json.Key("status").String(entry.status);
  json.Key("engine").String(entry.engine);
  json.Key("counter_source").String(entry.counter_source);
  json.Key("total_millis").Number(entry.total_millis);
  json.Key("scan_millis").Number(entry.scan_millis);
  json.Key("jit_compile_millis").Number(entry.jit_compile_millis);
  json.Key("queue_wait_millis").Number(entry.queue_wait_millis);
  json.Key("rows_scanned").Number(entry.rows_scanned);
  json.Key("rows_matched").Number(entry.rows_matched);
  json.Key("workers").Number(entry.worker_count);
  json.Key("morsels").Number(entry.morsel_count);
  json.Key("chunks_total").Number(entry.chunks_total);
  json.Key("chunks_pruned").Number(entry.chunks_pruned);
  json.Key("degraded").Bool(entry.degraded);
  json.Key("aggregate_pushdown").Bool(entry.aggregate_pushdown);
  json.Key("model_active").Bool(entry.model_active);
  json.Key("est_error_permille").Number(entry.est_error_permille);
  json.EndObject();
  return json.str();
}

std::string QueryLog::RenderJson(size_t max_entries) const {
  const std::vector<QueryLogEntry> entries = Snapshot(max_entries);
  JsonWriter json;
  json.BeginArray();
  for (const QueryLogEntry& entry : entries) {
    json.Raw(QueryLogEntryToJson(entry));
  }
  json.EndArray();
  return json.str();
}

void QueryLog::MaybeLogSlow(const QueryLogEntry& entry) {
  if (slow_threshold_ms_ < 0.0 || entry.total_millis < slow_threshold_ms_) {
    return;
  }
  Metrics().slow_queries_total->Increment();
  if (slow_log_path_.empty()) return;
  const std::string line = QueryLogEntryToJson(entry) + "\n";
  // One JSON line per slow query, appended under a mutex so concurrent
  // writers never interleave lines. Slow queries are rare by definition;
  // the lock is not a hot path.
  std::lock_guard<std::mutex> lock(slow_log_mutex_);
  FILE* file = std::fopen(slow_log_path_.c_str(), "a");
  if (file == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file);
  std::fclose(file);
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = [] {
    const int64_t capacity = GetEnvInt64("FTS_QUERY_LOG_SIZE", 256);
    // FTS_SLOW_QUERY_MS unset disables the slow-query log; any value >= 0
    // enables it (0 logs every query — the CI smoke uses that).
    const std::string slow = GetEnvString("FTS_SLOW_QUERY_MS", "");
    const double threshold =
        slow.empty() ? -1.0
                     : static_cast<double>(GetEnvInt64("FTS_SLOW_QUERY_MS", 0));
    return new QueryLog(
        capacity <= 0 ? 256 : static_cast<size_t>(capacity), threshold,
        GetEnvString("FTS_SLOW_QUERY_LOG", "fts_slow_query.log"));
  }();
  return *log;
}

}  // namespace fts::obs
