#include "fts/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

#include "fts/obs/json_writer.h"

namespace fts::obs {

size_t Counter::StripeIndex() noexcept {
  // Hash the thread id once per thread; consecutive worker threads land on
  // distinct stripes with high probability (16 stripes vs the pool's
  // typical 4-32 workers).
  thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripe;
}

void Histogram::Record(uint64_t value) noexcept {
  const size_t bucket = static_cast<size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

uint64_t Histogram::Sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

uint64_t Histogram::BucketCount(size_t bucket) const noexcept {
  return bucket < kBuckets ? buckets_[bucket].load(std::memory_order_relaxed)
                           : 0;
}

uint64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 1;
  if (bucket >= 64) return ~uint64_t{0};
  return uint64_t{1} << bucket;
}

double Histogram::Percentile(double p) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, 1-based.
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double hi = static_cast<double>(BucketUpperBound(b));
      const double within =
          std::clamp((rank - static_cast<double>(seen)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + (hi - lo) * within;
    }
    seen += in_bucket;
  }
  return static_cast<double>(BucketUpperBound(kBuckets - 1));
}

void Histogram::Reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help,
                                    std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = std::move(fn);
  if (!help.empty()) help_[name] = help;
}

namespace {

// Splits "name{labels}" so histogram suffixes can be inserted before the
// label block, per the Prometheus exposition format.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char buf[160];
  // HELP/TYPE name the metric family (label-less base); labelled series of
  // the same family share one header. counters_ is an ordered map, so the
  // series of a family are contiguous.
  std::string last_family;
  for (const auto& [name, counter] : counters_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != last_family) {
      if (const auto help = help_.find(name); help != help_.end()) {
        out += "# HELP " + base + " " + help->second + "\n";
      }
      out += "# TYPE " + base + " counter\n";
      last_family = base;
    }
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(counter->Value()));
    out += name + " " + buf + "\n";
  }
  last_family.clear();
  for (const auto& [name, gauge] : gauges_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != last_family) {
      if (const auto help = help_.find(name); help != help_.end()) {
        out += "# HELP " + base + " " + help->second + "\n";
      }
      out += "# TYPE " + base + " gauge\n";
      last_family = base;
    }
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(gauge()));
    out += name + " " + buf + "\n";
  }
  last_family.clear();
  for (const auto& [name, hist] : histograms_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != last_family) {
      if (const auto help = help_.find(name); help != help_.end()) {
        out += "# HELP " + base + " " + help->second + "\n";
      }
      out += "# TYPE " + base + " histogram\n";
      last_family = base;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      const uint64_t in_bucket = hist->BucketCount(b);
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    base.c_str(),
                    static_cast<unsigned long long>(
                        Histogram::BucketUpperBound(b)),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %llu\n",
                  base.c_str(),
                  static_cast<unsigned long long>(hist->Count()));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %llu\n%s_count %llu\n",
                  base.c_str(), static_cast<unsigned long long>(hist->Sum()),
                  base.c_str(), static_cast<unsigned long long>(hist->Count()));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Number(counter->Value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Number(gauge());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Number(hist->Count());
    json.Key("sum").Number(hist->Sum());
    json.Key("p50").Number(hist->Percentile(50));
    json.Key("p90").Number(hist->Percentile(90));
    json.Key("p99").Number(hist->Percentile(99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

namespace {

// Reads one numeric field ("VmRSS", "Threads", ...) from
// /proc/self/status. 0 when the file or field is missing (non-Linux or
// restricted /proc) — a gauge that reads 0 beats one that errors.
uint64_t ProcSelfStatusField(const char* field) {
  FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t value = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    std::sscanf(line + field_len + 1, "%llu",
                reinterpret_cast<unsigned long long*>(&value));
    break;
  }
  std::fclose(file);
  return value;
}

// Process-level gauges (RSS, uptime, live threads). Registered when the
// global registry is created so every exposition carries them, whether or
// not a query ever ran. The uptime epoch is the registry's creation —
// effectively process start, since the first metric touch creates it.
void RegisterProcessGauges(MetricsRegistry* registry) {
  static const auto start = std::chrono::steady_clock::now();
  registry->RegisterGauge("fts_process_rss_kbytes",
                          "Resident set size from /proc/self/status, in kB",
                          [] { return ProcSelfStatusField("VmRSS"); });
  registry->RegisterGauge("fts_process_threads",
                          "Live threads from /proc/self/status",
                          [] { return ProcSelfStatusField("Threads"); });
  registry->RegisterGauge(
      "fts_process_uptime_seconds",
      "Seconds since the metrics registry was created", [] {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      });
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* created = new MetricsRegistry();
    RegisterProcessGauges(created);
    return created;
  }();
  return *registry;
}

const EngineMetrics& Metrics() {
  static const EngineMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->queries_total =
        reg.GetCounter("fts_queries_total", "SQL queries executed");
    m->scans_total =
        reg.GetCounter("fts_scans_total", "Table scan operations executed");
    m->rows_scanned_total = reg.GetCounter(
        "fts_rows_scanned_total", "Rows evaluated by scan kernels");
    m->rows_emitted_total = reg.GetCounter(
        "fts_rows_emitted_total", "Rows matching all scan predicates");
    m->chunks_pruned_total = reg.GetCounter(
        "fts_chunks_pruned_total", "Chunks skipped via zone-map pruning");
    m->stages_dropped_total = reg.GetCounter(
        "fts_stages_dropped_total",
        "Predicate stages dropped as tautological per chunk");
    m->morsels_total =
        reg.GetCounter("fts_morsels_total", "Morsels dispatched to workers");
    m->morsels_stolen_total = reg.GetCounter(
        "fts_morsels_stolen_total", "Tasks stolen from another worker's deque");
    m->jit_cache_hits_total =
        reg.GetCounter("fts_jit_cache_hits_total", "JIT cache hits");
    m->jit_cache_misses_total = reg.GetCounter(
        "fts_jit_cache_misses_total", "JIT cache misses (compiles started)");
    m->jit_cache_negative_hits_total = reg.GetCounter(
        "fts_jit_cache_negative_hits_total",
        "JIT cache hits on poisoned (known-failing) entries");
    m->jit_compile_failures_total = reg.GetCounter(
        "fts_jit_compile_failures_total", "JIT compilations that failed");
    m->degradation_events_total = reg.GetCounter(
        "fts_degradation_events_total",
        "Scans that fell back below the requested engine");
    m->rows_ingested_total =
        reg.GetCounter("fts_rows_ingested_total", "Rows appended at ingest");
    m->chunks_built_total = reg.GetCounter(
        "fts_chunks_built_total", "Chunks sealed by the table builder");
    m->queries_cancelled_total = reg.GetCounter(
        "fts_queries_cancelled_total",
        "Queries that returned QueryCanceled (explicit cancel)");
    m->queries_deadline_exceeded_total = reg.GetCounter(
        "fts_queries_deadline_exceeded_total",
        "Queries that returned DeadlineExceeded");
    m->admission_rejected_total = reg.GetCounter(
        "fts_admission_rejected_total",
        "Queries rejected because the admission queue was full");
    m->morsels_aborted_total = reg.GetCounter(
        "fts_morsels_aborted_total",
        "Morsels discarded at a cancellation boundary without running");
    m->jit_compiles_killed_total = reg.GetCounter(
        "fts_jit_compiles_killed_total",
        "In-flight compiler processes killed by cancellation or deadline");
    m->jit_compiles_skipped_budget_total = reg.GetCounter(
        "fts_jit_compiles_skipped_budget_total",
        "JIT compiles skipped because the remaining deadline budget was "
        "below the compile floor (ladder demoted)");
    m->jit_compile_micros = reg.GetHistogram(
        "fts_jit_compile_micros", "JIT compile latency in microseconds");
    m->query_micros = reg.GetHistogram(
        "fts_query_micros", "End-to-end SQL query latency in microseconds");
    m->admission_queue_wait_micros = reg.GetHistogram(
        "fts_admission_queue_wait_micros",
        "Time admitted queries spent waiting in the admission queue");
    m->scan_cycles_total = reg.GetCounter(
        "fts_scan_cycles_total",
        "CPU cycles attributed to scan regions (hardware PMU reads)");
    m->scan_instructions_total = reg.GetCounter(
        "fts_scan_instructions_total",
        "Instructions retired in scan regions (hardware PMU reads)");
    m->scan_branches_total = reg.GetCounter(
        "fts_scan_branches_total",
        "Branches retired in scan regions (hardware PMU reads)");
    m->scan_branch_misses_total = reg.GetCounter(
        "fts_scan_branch_misses_total",
        "Branch mispredictions in scan regions (hardware PMU reads)");
    m->slow_queries_total = reg.GetCounter(
        "fts_slow_queries_total",
        "Queries over the FTS_SLOW_QUERY_MS threshold");
    return m;
  }();
  return *metrics;
}

}  // namespace fts::obs
