#ifndef FTS_OBS_JSON_WRITER_H_
#define FTS_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fts::obs {

// Escapes `text` for inclusion inside a JSON string literal (quotes not
// included). Control characters become \u00XX sequences.
std::string JsonEscape(std::string_view text);

// Minimal streaming JSON writer shared by every exposition path in the
// repository: the Chrome-trace exporter, the metrics-registry JSON dump,
// and the benches' BENCH lines. Emits compact JSON (no whitespace) with
// commas managed automatically; the caller is responsible for balanced
// Begin/End calls (checked in debug builds via the container stack).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object key; must be followed by exactly one value (or container).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(int value) { return Number(static_cast<int64_t>(value)); }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-rendered JSON (e.g. a cached args fragment) as one value.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  // Emits the separating comma unless this is the first element of the
  // enclosing container (or the value completing a key).
  void BeforeValue();

  std::string out_;
  std::vector<bool> first_in_container_;
  bool after_key_ = false;
};

}  // namespace fts::obs

#endif  // FTS_OBS_JSON_WRITER_H_
