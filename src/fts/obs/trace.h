#ifndef FTS_OBS_TRACE_H_
#define FTS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fts/common/status.h"

namespace fts::obs {

// Per-query tracing as scoped spans (parse, optimize, translate, JIT
// compile, per-morsel scan execution) with worker-thread attribution,
// exportable as Chrome-trace JSON (chrome://tracing / Perfetto).
//
// Cost model: when no sink is attached — the steady state — starting a
// span is two pointer stores, one relaxed atomic load, and a branch; no
// clock read, no allocation. The enabled flag is a second, independent
// gate so the overhead-guard test can compare "tracing compiled in but
// off" against "on but unattached".

// One completed span. `name`/`category` are string literals by contract
// (spans are created at fixed instrumentation points), so events store the
// pointers; `args_json` carries optional pre-rendered details.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_rank = 0;
  std::string args_json;  // Empty, or a JSON object fragment like {"rows":5}.
};

// Collects events from all threads for one traced window. Attach with
// AttachTraceSink; spans record into it on destruction.
class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void Record(TraceEvent event);

  std::vector<TraceEvent> events() const;
  size_t size() const;

  // Chrome trace event format: {"traceEvents":[...]}. Emits one complete
  // ("ph":"X") event per span plus "M" thread_name metadata records so
  // Perfetto shows one named track per worker.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

// --- Global attachment (two gates) ---------------------------------------

// Master switch, default true. Turning it off makes spans no-op even with
// a sink attached; it exists so the overhead guard can measure the
// unattached fast path against a fully disabled baseline.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

// At most one sink is active at a time. Attach does not take ownership;
// the caller must detach before destroying the sink. Returns the
// previously attached sink (nullptr if none).
TraceSink* AttachTraceSink(TraceSink* sink);
TraceSink* DetachTraceSink();
TraceSink* ActiveTraceSink();

// --- Thread identity ------------------------------------------------------

// Small dense id for the calling thread (0 for the first thread that asks,
// then 1, 2, ...), stable for the thread's lifetime. Used as the Chrome
// trace `tid` so each worker gets its own track.
uint32_t CurrentThreadRank();

// Associates a human-readable label ("worker 3", "main") with the calling
// thread's rank; exported as Chrome "M"/thread_name metadata.
void SetCurrentThreadLabel(const std::string& label);

// Snapshot of rank -> label for all labelled threads.
std::vector<std::pair<uint32_t, std::string>> ThreadLabels();

// --- RAII span ------------------------------------------------------------

// Monotonic clock reading in nanoseconds (exposed for tests).
uint64_t MonotonicNanos();

// Scoped span. Captures the active sink at construction; if tracing is off
// or no sink is attached, every member is a no-op (no clock read, no
// allocation). The sink captured at construction is used at destruction,
// so a span straddling a detach still records into the sink that was
// active when it started — the sink must outlive in-flight spans (the
// shell detaches only between queries; tests join their threads first).
class TraceSpan {
 public:
  // `name` and `category` must be string literals (or otherwise outlive
  // the sink's export).
  TraceSpan(const char* name, const char* category)
      : name_(name), category_(category) {
    if (!TracingEnabled()) return;
    sink_ = ActiveTraceSink();
    if (sink_ == nullptr) return;
    start_ns_ = MonotonicNanos();
  }
  ~TraceSpan() { Finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return sink_ != nullptr; }

  // Attach a key/value to the span's args. No-ops when inactive.
  void AddArg(std::string_view key, uint64_t value);
  void AddArg(std::string_view key, std::string_view value);

  // Ends the span and records it (the destructor then does nothing).
  void Finish();

 private:
  const char* name_;
  const char* category_;
  TraceSink* sink_ = nullptr;
  uint64_t start_ns_ = 0;
  std::string args_json_;
};

}  // namespace fts::obs

#endif  // FTS_OBS_TRACE_H_
