#ifndef FTS_OBS_METRICS_H_
#define FTS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace fts::obs {

// Process-lifetime metrics for the query engine. Hot-path recording is a
// single relaxed atomic add on a cache-line-private stripe — no locks, no
// allocation — so scan kernels, morsel workers, and the JIT cache can
// record unconditionally. Exposition (Prometheus text or JSON) walks the
// registry under a mutex that the hot path never takes.

// Monotonic counter, striped across cache lines to keep concurrent
// increments from different TaskPool workers off one contended line. The
// stripe is picked per thread; Value() sums all stripes (exact, since
// increments are atomic and monotone).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) noexcept {
    stripes_[StripeIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }

  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() noexcept {
    for (Stripe& stripe : stripes_) {
      stripe.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  // Stable per-thread stripe index (thread id hashed once per thread).
  static size_t StripeIndex() noexcept;

  Stripe stripes_[kStripes];
};

// Histogram over base-2 exponential buckets: bucket i counts values v with
// bit_width(v) == i, i.e. [2^(i-1), 2^i). Covers the full uint64 range in
// 64 buckets plus a zero bucket folded into bucket 0. Recording is two
// relaxed atomic adds. Percentiles linearly interpolate inside the bucket,
// so the relative error is bounded by the bucket ratio (2x).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit_width in [0, 64].

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) noexcept;

  uint64_t Count() const noexcept;
  uint64_t Sum() const noexcept;
  uint64_t BucketCount(size_t bucket) const noexcept;

  // Inclusive lower / exclusive upper value bound of `bucket`.
  static uint64_t BucketLowerBound(size_t bucket);
  static uint64_t BucketUpperBound(size_t bucket);

  // Linear-interpolated percentile, p in [0, 100]. 0 when empty.
  double Percentile(double p) const;

  void Reset() noexcept;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Name-keyed registry. Get* registers on first use and returns a stable
// pointer (metrics are never deallocated while the registry lives), so hot
// paths resolve their metric once and keep the pointer. Names follow the
// Prometheus convention (`fts_..._total` for counters); labels are encoded
// in the name string (`fts_engine_executions_total{engine="jit"}`), which
// the text exposition passes through verbatim.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  // Registers a gauge: an instantaneous value sampled by callback at
  // exposition time (process RSS, live threads, cache entry counts).
  // The callback runs under the registry mutex, so it must not call back
  // into the registry (Get*/Register*/Render*) — read your own state and
  // return. Re-registering a name replaces the callback.
  void RegisterGauge(const std::string& name, const std::string& help,
                     std::function<uint64_t()> fn);

  // Prometheus text exposition format (counters, gauges, histogram
  // buckets).
  std::string RenderPrometheus() const;
  // JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string RenderJson() const;

  // Zeroes every registered counter and histogram (tests and the shell's
  // registry reset). Gauges are instantaneous samples; they stay.
  void Reset();

  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<uint64_t()>> gauges_;
  std::map<std::string, std::string> help_;
};

// The engine's predefined metrics, resolved once against the global
// registry. Per-engine execution counters live with the ScanEngine enum
// (fts/scan/scan_engine.h: EngineExecutionCounter) to keep this layer free
// of upward dependencies.
struct EngineMetrics {
  Counter* queries_total;
  Counter* scans_total;
  Counter* rows_scanned_total;
  Counter* rows_emitted_total;
  Counter* chunks_pruned_total;
  Counter* stages_dropped_total;
  Counter* morsels_total;
  Counter* morsels_stolen_total;
  Counter* jit_cache_hits_total;
  Counter* jit_cache_misses_total;
  Counter* jit_cache_negative_hits_total;
  Counter* jit_compile_failures_total;
  Counter* degradation_events_total;
  Counter* rows_ingested_total;
  Counter* chunks_built_total;
  // Query lifecycle (deadlines / cancellation / admission control).
  Counter* queries_cancelled_total;
  Counter* queries_deadline_exceeded_total;
  Counter* admission_rejected_total;
  Counter* morsels_aborted_total;
  Counter* jit_compiles_killed_total;
  Counter* jit_compiles_skipped_budget_total;
  Histogram* jit_compile_micros;
  Histogram* query_micros;
  Histogram* admission_queue_wait_micros;
  // Per-worker PMU attribution totals (hardware-sourced reads only; the
  // gshare simulator never feeds these).
  Counter* scan_cycles_total;
  Counter* scan_instructions_total;
  Counter* scan_branches_total;
  Counter* scan_branch_misses_total;
  // Always-on query statistics (fts/obs/query_log.h).
  Counter* slow_queries_total;
};

// Global instance backed by MetricsRegistry::Global().
const EngineMetrics& Metrics();

}  // namespace fts::obs

#endif  // FTS_OBS_METRICS_H_
