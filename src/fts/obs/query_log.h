#ifndef FTS_OBS_QUERY_LOG_H_
#define FTS_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fts::obs {

// Always-on query statistics (DESIGN.md §15): a fixed-capacity ring of the
// last N executed queries, written on every Database::Query completion
// (success or failure). Recording is lock-cheap — one atomic slot claim
// plus one uncontended per-slot mutex — so it stays on for production
// traffic; FTS_OBS=0 turns it (and the slow-query log) off entirely.
//
// This layer deliberately knows nothing about scan engines or plans: the
// entry carries pre-rendered labels, so obs keeps its no-upward-dependency
// rule. The database layer fills entries from its ExecutionReport.

// One completed query. All strings are small, pre-rendered labels.
struct QueryLogEntry {
  uint64_t id = 0;  // Monotonic sequence number, assigned by Record().
  int64_t wall_unix_micros = 0;  // Completion time, assigned by Record().
  // Normalized SQL shape (literals replaced by '?'), see SqlDigest().
  std::string digest;
  // Terminal outcome: "ok", "cancelled", "deadline", "rejected", "error".
  std::string status;
  std::string engine;          // Executed engine label ("jit", ...).
  std::string counter_source;  // "hardware", "simulated", "unavailable".
  double total_millis = 0.0;
  double scan_millis = 0.0;
  double jit_compile_millis = 0.0;
  double queue_wait_millis = 0.0;
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  int worker_count = 0;
  uint64_t morsel_count = 0;
  uint64_t chunks_total = 0;
  uint64_t chunks_pruned = 0;
  bool degraded = false;
  bool aggregate_pushdown = false;
  bool model_active = false;
  // Cost-model drift: |est - actual| / max(actual, 1) in permille, valid
  // only when `model_active` (the PR 8 model produced an estimate).
  int64_t est_error_permille = 0;
};

// Replaces literals in `sql` with '?' and collapses whitespace, so the log
// groups queries by shape instead of leaking every constant. Output is
// capped at 160 characters.
std::string SqlDigest(const std::string& sql);

// True unless FTS_OBS is set to a falsy value. Read from the environment
// on every call so tests (and operators with a debugger) can flip it at
// runtime; the cost is one getenv per query.
bool ObsEnabled();

class QueryLog {
 public:
  // `slow_threshold_ms` < 0 disables the slow-query log; >= 0 appends a
  // JSON line to `slow_log_path` for every query at least that slow.
  explicit QueryLog(size_t capacity, double slow_threshold_ms = -1.0,
                    std::string slow_log_path = "");

  // Claims the next ring slot and stores `entry` (stamping id and wall
  // time). Thread-safe; concurrent writers never block each other unless
  // they collide on the same slot modulo capacity.
  void Record(QueryLogEntry entry);

  // Queries recorded over the log's lifetime (not capped by capacity).
  uint64_t total_recorded() const {
    return next_id_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

  // The retained entries, newest first, capped at `max_entries`
  // (0 = all retained). Safe against concurrent writers: a slot being
  // overwritten yields either the old or the new entry, never a torn one.
  std::vector<QueryLogEntry> Snapshot(size_t max_entries = 0) const;

  // JSON array of Snapshot(max_entries), newest first.
  std::string RenderJson(size_t max_entries = 0) const;

  // Process-wide instance: capacity from FTS_QUERY_LOG_SIZE (default 256),
  // slow-query config from FTS_SLOW_QUERY_MS / FTS_SLOW_QUERY_LOG
  // (default path fts_slow_query.log; threshold unset = disabled).
  static QueryLog& Global();

 private:
  struct Slot {
    mutable std::mutex mutex;
    bool used = false;
    QueryLogEntry entry;
  };

  void MaybeLogSlow(const QueryLogEntry& entry);

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_id_{0};
  const double slow_threshold_ms_;
  const std::string slow_log_path_;
  std::mutex slow_log_mutex_;
};

// Serializes one entry as a JSON object (the slow-query log line format;
// also used per-element by RenderJson).
std::string QueryLogEntryToJson(const QueryLogEntry& entry);

}  // namespace fts::obs

#endif  // FTS_OBS_QUERY_LOG_H_
