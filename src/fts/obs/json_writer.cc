#include "fts/obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace fts::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_container_.empty()) {
    if (first_in_container_.back()) {
      first_in_container_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  first_in_container_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  first_in_container_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace fts::obs
