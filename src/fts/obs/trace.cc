#include "fts/obs/trace.h"

#include <cstdio>
#include <ctime>

#include "fts/obs/json_writer.h"

namespace fts::obs {

namespace {

std::atomic<bool> g_tracing_enabled{true};
std::atomic<TraceSink*> g_active_sink{nullptr};

std::atomic<uint32_t> g_next_thread_rank{0};

// rank -> label registry. Written rarely (once per labelled thread), read
// only at export time; a plain mutex is fine.
std::mutex& LabelMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

std::vector<std::pair<uint32_t, std::string>>& LabelStore() {
  static auto* labels = new std::vector<std::pair<uint32_t, std::string>>();
  return *labels;
}

}  // namespace

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceSink::ToChromeTraceJson() const {
  const std::vector<TraceEvent> snapshot = events();
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  // Thread-name metadata first, so viewers name tracks before any event
  // references them.
  for (const auto& [rank, label] : ThreadLabels()) {
    json.BeginObject();
    json.Key("ph").String("M");
    json.Key("pid").Number(1);
    json.Key("tid").Number(static_cast<uint64_t>(rank));
    json.Key("name").String("thread_name");
    json.Key("args").BeginObject();
    json.Key("name").String(label);
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& event : snapshot) {
    json.BeginObject();
    json.Key("ph").String("X");
    json.Key("pid").Number(1);
    json.Key("tid").Number(static_cast<uint64_t>(event.thread_rank));
    json.Key("name").String(event.name);
    json.Key("cat").String(event.category);
    // Chrome trace timestamps are microseconds; keep sub-µs precision as
    // fractional values.
    json.Key("ts").Number(static_cast<double>(event.start_ns) / 1000.0);
    json.Key("dur").Number(static_cast<double>(event.duration_ns) / 1000.0);
    if (!event.args_json.empty()) {
      json.Key("args").Raw(event.args_json);
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit").String("ms");
  json.EndObject();
  return json.str();
}

Status TraceSink::WriteChromeTrace(const std::string& path) const {
  const std::string payload = ToChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), file);
  const int close_rc = std::fclose(file);
  if (written != payload.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

TraceSink* AttachTraceSink(TraceSink* sink) {
  return g_active_sink.exchange(sink, std::memory_order_acq_rel);
}

TraceSink* DetachTraceSink() {
  return g_active_sink.exchange(nullptr, std::memory_order_acq_rel);
}

TraceSink* ActiveTraceSink() {
  return g_active_sink.load(std::memory_order_acquire);
}

uint32_t CurrentThreadRank() {
  thread_local const uint32_t rank =
      g_next_thread_rank.fetch_add(1, std::memory_order_relaxed);
  return rank;
}

void SetCurrentThreadLabel(const std::string& label) {
  const uint32_t rank = CurrentThreadRank();
  std::lock_guard<std::mutex> lock(LabelMutex());
  auto& labels = LabelStore();
  for (auto& [stored_rank, stored_label] : labels) {
    if (stored_rank == rank) {
      stored_label = label;
      return;
    }
  }
  labels.emplace_back(rank, label);
}

std::vector<std::pair<uint32_t, std::string>> ThreadLabels() {
  std::lock_guard<std::mutex> lock(LabelMutex());
  return LabelStore();
}

uint64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

void TraceSpan::AddArg(std::string_view key, uint64_t value) {
  if (sink_ == nullptr) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%llu",
                static_cast<int>(key.size()), key.data(),
                static_cast<unsigned long long>(value));
  args_json_ += args_json_.empty() ? "" : ",";
  args_json_ += buf;
}

void TraceSpan::AddArg(std::string_view key, std::string_view value) {
  if (sink_ == nullptr) return;
  args_json_ += args_json_.empty() ? "" : ",";
  args_json_ += '"';
  args_json_ += JsonEscape(key);
  args_json_ += "\":\"";
  args_json_ += JsonEscape(value);
  args_json_ += '"';
}

void TraceSpan::Finish() {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.duration_ns = MonotonicNanos() - start_ns_;
  event.thread_rank = CurrentThreadRank();
  if (!args_json_.empty()) {
    event.args_json = "{" + args_json_ + "}";
  }
  sink_->Record(std::move(event));
  sink_ = nullptr;
}

}  // namespace fts::obs
