#ifndef FTS_PERF_BRANCH_PREDICTOR_H_
#define FTS_PERF_BRANCH_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fts/simd/scan_stage.h"

namespace fts {

// Software branch-predictor models. The paper measures hardware branch
// mispredictions (PAPI_BR_MSP) on a Skylake-SP; this VM exposes no PMU, so
// Figures 1 and 6 are reproduced by replaying the *exact conditional-branch
// trace* each scan implementation executes through these models (see
// DESIGN.md, substitution table). The misprediction counts are a function
// of the outcome stream, which is identical to the hardware run.

struct BranchStats {
  uint64_t branches = 0;
  uint64_t mispredictions = 0;

  double MispredictionRate() const {
    return branches == 0
               ? 0.0
               : static_cast<double>(mispredictions) /
                     static_cast<double>(branches);
  }
};

// A branch predictor consuming (branch site, outcome) pairs.
class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  // Records one dynamic branch: `site` identifies the static branch
  // instruction (a stand-in for the PC), `taken` is the actual outcome.
  // Returns true when the prediction was correct.
  virtual bool PredictAndUpdate(uint32_t site, bool taken) = 0;

  virtual const char* name() const = 0;

  const BranchStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BranchStats{}; }

 protected:
  void Record(bool correct) {
    ++stats_.branches;
    stats_.mispredictions += correct ? 0 : 1;
  }

  BranchStats stats_;
};

// Predicts a fixed direction. Models the paper's observation that at
// 0.00001 % selectivity "the branch prediction that assumes a non-match is
// almost always right".
class StaticPredictor final : public BranchPredictor {
 public:
  explicit StaticPredictor(bool predict_taken)
      : predict_taken_(predict_taken) {}
  bool PredictAndUpdate(uint32_t site, bool taken) override;
  const char* name() const override { return "static"; }

 private:
  bool predict_taken_;
};

// Classic bimodal predictor: a table of 2-bit saturating counters indexed
// by branch site.
class BimodalPredictor final : public BranchPredictor {
 public:
  explicit BimodalPredictor(int table_bits = 12);
  bool PredictAndUpdate(uint32_t site, bool taken) override;
  const char* name() const override { return "bimodal"; }

 private:
  std::vector<uint8_t> counters_;
  uint32_t index_mask_;
};

// Gshare: 2-bit counters indexed by (site XOR global history). Captures
// the history correlation a modern TAGE-like predictor would exploit; the
// closest simple model to the Skylake frontend the paper measured.
class GsharePredictor final : public BranchPredictor {
 public:
  explicit GsharePredictor(int table_bits = 14, int history_bits = 12);
  bool PredictAndUpdate(uint32_t site, bool taken) override;
  const char* name() const override { return "gshare"; }

 private:
  std::vector<uint8_t> counters_;
  uint32_t index_mask_;
  uint32_t history_mask_;
  uint32_t history_ = 0;
};

// Factory by name ("static-taken", "static-nottaken", "bimodal", "gshare").
std::unique_ptr<BranchPredictor> MakeBranchPredictor(const std::string& name);

// ---------------------------------------------------------------------------
// Branch-trace replay: walks the control flow of each scan implementation
// and feeds every conditional branch into `predictor`. The replays mirror
// the decision points of the real implementations instruction-class for
// instruction-class (see the .cc for the mapping).

// Tuple-at-a-time SISD loop with short-circuit && (Section II).
BranchStats ReplaySisdScanBranches(const ScanStage* stages,
                                   size_t num_stages, size_t row_count,
                                   BranchPredictor& predictor);

// Fused Table Scan at register width `lanes` (4/8/16): branch sites are
// the per-block "any match?" test, the accumulator-overflow test, and the
// accumulator-full test (Section IV: "The Fused Table Scan still requires
// some branching, for example when checking if new matches can be appended
// to the current position list").
BranchStats ReplayFusedScanBranches(const ScanStage* stages,
                                    size_t num_stages, size_t row_count,
                                    int lanes, BranchPredictor& predictor);

}  // namespace fts

#endif  // FTS_PERF_BRANCH_PREDICTOR_H_
