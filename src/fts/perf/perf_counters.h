#ifndef FTS_PERF_PERF_COUNTERS_H_
#define FTS_PERF_PERF_COUNTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fts/common/status.h"

namespace fts {

// Thin wrapper over Linux perf_event_open for self-profiling, mirroring
// the paper's PAPI usage (PAPI_BR_MSP etc.). On hosts without a PMU
// (typical VMs, including this project's reference environment) Open()
// returns kUnavailable and callers fall back to the software simulators in
// branch_predictor.h / prefetcher.h — the benches report which source was
// used.
enum class HwEvent : uint8_t {
  kCycles = 0,
  kInstructions,
  kBranches,
  kBranchMisses,     // PAPI_BR_MSP equivalent.
  kCacheReferences,
  kCacheMisses,
};

const char* HwEventToString(HwEvent event);

class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;
  PerfCounterGroup(PerfCounterGroup&& other) noexcept;
  PerfCounterGroup& operator=(PerfCounterGroup&& other) noexcept;

  // Opens counters for `events` on the calling thread. All-or-nothing.
  static StatusOr<PerfCounterGroup> Open(const std::vector<HwEvent>& events);

  Status Start();
  Status Stop();

  // Counter values in the order passed to Open(); valid after Stop().
  StatusOr<std::vector<uint64_t>> Read() const;

 private:
  std::vector<int> fds_;
  std::vector<HwEvent> events_;
};

// True when hardware counters can be opened on this host (cached probe).
bool HardwareCountersAvailable();

}  // namespace fts

#endif  // FTS_PERF_PERF_COUNTERS_H_
