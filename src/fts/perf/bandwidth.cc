#include "fts/perf/bandwidth.h"

#include "fts/common/timer.h"

namespace fts {

size_t StridedCompareCount(const int32_t* data, size_t size, int32_t value,
                           size_t stride) {
  size_t matches = 0;
  for (size_t i = 0; i < size; i += stride) {
    if (data[i] == value) ++matches;
  }
  return matches;
}

BandwidthSample MeasureStridedScan(const int32_t* data, size_t size,
                                   int32_t value, size_t stride) {
  Stopwatch stopwatch;
  const size_t matches = StridedCompareCount(data, size, value, stride);
  DoNotOptimizeAway(matches);
  BandwidthSample sample;
  sample.seconds = stopwatch.ElapsedSeconds();
  if (sample.seconds <= 0.0) return sample;
  // Every cache line of the array is transferred regardless of stride
  // (strides here are < 16 values = one 64-byte line of int32).
  const double bytes = static_cast<double>(size) * sizeof(int32_t);
  sample.gb_per_second = bytes / sample.seconds / 1e9;
  const double compared =
      static_cast<double>((size + stride - 1) / stride);
  sample.values_per_microsecond = compared / (sample.seconds * 1e6);
  return sample;
}

double MeasurePeakReadBandwidthGbs(const int32_t* data, size_t size) {
  Stopwatch stopwatch;
  // Wide unrolled summation: enough independent chains to saturate the
  // load ports; the compiler may vectorize this TU's loops? No — this TU
  // is built with vectorization disabled, so use 8 scalar chains, which
  // on modern cores still gets within ~10-20% of streaming bandwidth for
  // memory-resident arrays.
  int64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0, s5 = 0, s6 = 0, s7 = 0;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    s0 += data[i];
    s1 += data[i + 1];
    s2 += data[i + 2];
    s3 += data[i + 3];
    s4 += data[i + 4];
    s5 += data[i + 5];
    s6 += data[i + 6];
    s7 += data[i + 7];
  }
  for (; i < size; ++i) s0 += data[i];
  const int64_t total = s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7;
  DoNotOptimizeAway(total);
  const double seconds = stopwatch.ElapsedSeconds();
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(size) * sizeof(int32_t) / seconds / 1e9;
}

}  // namespace fts
