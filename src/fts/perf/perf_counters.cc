#include "fts/perf/perf_counters.h"

#include <linux/perf_event.h>
#include <string.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>

#include "fts/common/string_util.h"

namespace fts {
namespace {

uint64_t EventConfig(HwEvent event) {
  switch (event) {
    case HwEvent::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
    case HwEvent::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case HwEvent::kBranches:
      return PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
    case HwEvent::kBranchMisses:
      return PERF_COUNT_HW_BRANCH_MISSES;
    case HwEvent::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case HwEvent::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
  }
  __builtin_unreachable();
}

int OpenEventFd(HwEvent event) {
  perf_event_attr attr;
  memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = EventConfig(event);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace

const char* HwEventToString(HwEvent event) {
  switch (event) {
    case HwEvent::kCycles:
      return "cycles";
    case HwEvent::kInstructions:
      return "instructions";
    case HwEvent::kBranches:
      return "branches";
    case HwEvent::kBranchMisses:
      return "branch-misses";
    case HwEvent::kCacheReferences:
      return "cache-references";
    case HwEvent::kCacheMisses:
      return "cache-misses";
  }
  return "?";
}

PerfCounterGroup::~PerfCounterGroup() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

PerfCounterGroup::PerfCounterGroup(PerfCounterGroup&& other) noexcept
    : fds_(std::move(other.fds_)), events_(std::move(other.events_)) {
  other.fds_.clear();
}

PerfCounterGroup& PerfCounterGroup::operator=(
    PerfCounterGroup&& other) noexcept {
  if (this == &other) return *this;
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
  fds_ = std::move(other.fds_);
  events_ = std::move(other.events_);
  other.fds_.clear();
  return *this;
}

StatusOr<PerfCounterGroup> PerfCounterGroup::Open(
    const std::vector<HwEvent>& events) {
  if (events.empty()) {
    return Status::InvalidArgument("no events requested");
  }
  PerfCounterGroup group;
  group.events_ = events;
  for (const HwEvent event : events) {
    const int fd = OpenEventFd(event);
    if (fd < 0) {
      return Status::Unavailable(StrFormat(
          "perf_event_open(%s) failed: %s (PMU not exposed on this host?)",
          HwEventToString(event), strerror(errno)));
    }
    group.fds_.push_back(fd);
  }
  return group;
}

Status PerfCounterGroup::Start() {
  for (const int fd : fds_) {
    if (ioctl(fd, PERF_EVENT_IOC_RESET, 0) != 0 ||
        ioctl(fd, PERF_EVENT_IOC_ENABLE, 0) != 0) {
      return Status::Internal(strerror(errno));
    }
  }
  return Status::Ok();
}

Status PerfCounterGroup::Stop() {
  for (const int fd : fds_) {
    if (ioctl(fd, PERF_EVENT_IOC_DISABLE, 0) != 0) {
      return Status::Internal(strerror(errno));
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<uint64_t>> PerfCounterGroup::Read() const {
  std::vector<uint64_t> values;
  values.reserve(fds_.size());
  for (const int fd : fds_) {
    uint64_t value = 0;
    if (read(fd, &value, sizeof(value)) != sizeof(value)) {
      return Status::Internal(strerror(errno));
    }
    values.push_back(value);
  }
  return values;
}

bool HardwareCountersAvailable() {
  static const bool kAvailable = [] {
    auto group = PerfCounterGroup::Open({HwEvent::kBranchMisses});
    return group.ok();
  }();
  return kAvailable;
}

}  // namespace fts
