#ifndef FTS_PERF_COUNTER_ATTRIBUTION_H_
#define FTS_PERF_COUNTER_ATTRIBUTION_H_

#include <cstdint>
#include <optional>

#include "fts/perf/perf_counters.h"

namespace fts {

// Per-thread PMU attribution for scan execution (DESIGN.md §15).
//
// perf_event_open counters are bound to the opening thread, so a group
// armed on the query's calling thread sees nothing of the work TaskPool
// workers do — exactly the blind spot the old first-step-only counter
// scope had on parallel queries. The scheme here instead gives every
// executing thread its own lazily opened counter group (worker threads
// own theirs for the thread's lifetime; fds are opened once, then each
// measured region is reset+enable / disable+read), and the executor
// aggregates the per-region deltas per stage and per engine with explicit
// coverage accounting: the report says how many morsels on how many
// threads the numbers actually cover instead of presenting a partial
// measurement as whole-query truth.

// Counter deltas from one measured region on one thread. `valid` is false
// when the PMU was unavailable or any syscall failed — callers must treat
// the region as UNMEASURED, not as zero.
struct CounterDelta {
  bool valid = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t branches = 0;
  uint64_t branch_misses = 0;

  void Accumulate(const CounterDelta& other) {
    if (!other.valid) return;
    valid = true;
    cycles += other.cycles;
    instructions += other.instructions;
    branches += other.branches;
    branch_misses += other.branch_misses;
  }
};

// The calling thread's cached counter group (cycles, instructions,
// branches, branch misses). Opened on first use and kept for the thread's
// lifetime, so steady-state measurement is two ioctls and a read — no
// perf_event_open per region. Never throws, never fails loudly: on hosts
// without a PMU available() is false and Start/StopAndRead are no-ops.
class ThreadCounters {
 public:
  static ThreadCounters& ForCurrentThread();

  bool available() const { return group_.has_value(); }

  // Resets and enables the group. Returns false (and arms nothing) when
  // the PMU is unavailable; a failed Start never poisons the thread.
  bool Start();

  // Disables and reads the group armed by the last successful Start().
  // Returns an invalid delta when Start() failed or a read fails.
  CounterDelta StopAndRead();

 private:
  ThreadCounters();

  std::optional<PerfCounterGroup> group_;
  bool armed_ = false;
};

// RAII measured region on the calling thread. When `enabled` is false
// (the steady state: counters are only collected under EXPLAIN ANALYZE)
// construction is a single branch. Finish() returns the delta exactly
// once; the destructor disarms a region that was never finished.
class CounterRegion {
 public:
  explicit CounterRegion(bool enabled) {
    if (!enabled) return;
    started_ = ThreadCounters::ForCurrentThread().Start();
  }
  ~CounterRegion() {
    if (started_) ThreadCounters::ForCurrentThread().StopAndRead();
  }

  CounterRegion(const CounterRegion&) = delete;
  CounterRegion& operator=(const CounterRegion&) = delete;

  // Ends the region and returns its delta (invalid when the region never
  // armed). Idempotent: second calls return an invalid delta.
  CounterDelta Finish() {
    if (!started_) return {};
    started_ = false;
    return ThreadCounters::ForCurrentThread().StopAndRead();
  }

 private:
  bool started_ = false;
};

}  // namespace fts

#endif  // FTS_PERF_COUNTER_ATTRIBUTION_H_
