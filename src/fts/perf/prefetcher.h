#ifndef FTS_PERF_PREFETCHER_H_
#define FTS_PERF_PREFETCHER_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "fts/simd/scan_stage.h"

namespace fts {

// Software model of an L2 stream prefetcher (Skylake's "streamer"),
// substituting for the l2_lines_out.useless_hwpf counter the paper reads
// (Fig. 1): cache lines fetched by the prefetcher but evicted before any
// demand access. See DESIGN.md for the substitution rationale.

struct PrefetchStats {
  uint64_t demand_accesses = 0;   // Demand line accesses observed.
  uint64_t prefetches_issued = 0; // Lines the prefetcher pulled in.
  uint64_t useful_prefetches = 0; // Prefetched lines later demanded.
  // Prefetched lines never demanded before eviction / end of run.
  uint64_t useless_prefetches = 0;
};

// Configuration loosely matching Skylake-SP's L2 streamer.
struct StreamPrefetcherConfig {
  int max_streams = 16;        // Concurrently tracked access streams.
  int prefetch_degree = 2;     // Lines fetched ahead per trigger.
  int prefetch_distance = 4;   // How far ahead of the demand stream.
  int buffer_lines = 1024;     // Prefetched-line working set before LRU
                               // eviction (stand-in for L2 capacity share).
  int64_t line_bytes = 64;
};

// Feed demand accesses via Access(); the model detects ascending streams
// (two hits in adjacent/close lines), issues prefetches ahead of them, and
// classifies each prefetched line as useful (a demand access consumed it)
// or useless (evicted or left over at Finish()).
class StreamPrefetcherSim {
 public:
  explicit StreamPrefetcherSim(
      const StreamPrefetcherConfig& config = StreamPrefetcherConfig());

  void Access(uint64_t address);

  // Classifies all still-outstanding prefetched lines as useless and
  // returns the final statistics.
  PrefetchStats Finish();

  const PrefetchStats& stats() const { return stats_; }

 private:
  struct Stream {
    uint64_t last_line = 0;
    int confidence = 0;
    uint64_t last_use_tick = 0;
    bool valid = false;
  };

  void IssuePrefetch(uint64_t line);

  StreamPrefetcherConfig config_;
  PrefetchStats stats_;
  std::vector<Stream> streams_;
  // Prefetched lines awaiting a demand access: O(1) membership via the
  // set; FIFO eviction order via the deque (entries already consumed by a
  // demand access are skipped lazily when popped).
  std::unordered_set<uint64_t> outstanding_;
  std::deque<uint64_t> fifo_;
  uint64_t tick_ = 0;
};

// Replays the memory-access trace of the short-circuiting SISD scan: the
// first column is touched on every row; column s > 0 only on rows that
// survived predicates 0..s-1. The prefetcher therefore trains on the
// later columns' gappy streams and speculatively pulls lines whose rows
// never qualify — the useless prefetches of Fig. 1.
PrefetchStats ReplaySisdScanAccesses(const ScanStage* stages,
                                     size_t num_stages, size_t row_count,
                                     StreamPrefetcherSim& prefetcher);

// Replays the fused scan's access trace: sequential over the first column;
// later columns touched only by gathers at surviving positions.
PrefetchStats ReplayFusedScanAccesses(const ScanStage* stages,
                                      size_t num_stages, size_t row_count,
                                      int lanes,
                                      StreamPrefetcherSim& prefetcher);

}  // namespace fts

#endif  // FTS_PERF_PREFETCHER_H_
