#include "fts/perf/prefetcher.h"

#include <deque>
#include <unordered_set>

#include "fts/common/macros.h"

namespace fts {
namespace {

// Synthetic, non-overlapping address space per column: column s's row i
// lives at ((s + 1) << 40) + i * elem_size. The model only needs relative
// line structure, not real pointers.
inline uint64_t ColumnAddress(size_t column, size_t row, size_t elem_size) {
  return ((static_cast<uint64_t>(column) + 1) << 40) +
         static_cast<uint64_t>(row) * elem_size;
}

}  // namespace

StreamPrefetcherSim::StreamPrefetcherSim(
    const StreamPrefetcherConfig& config)
    : config_(config) {
  FTS_CHECK(config_.max_streams > 0);
  FTS_CHECK(config_.line_bytes > 0);
  streams_.resize(static_cast<size_t>(config_.max_streams));
}

void StreamPrefetcherSim::IssuePrefetch(uint64_t line) {
  if (!outstanding_.insert(line).second) return;  // Already in flight.
  fifo_.push_back(line);
  ++stats_.prefetches_issued;
  // Eviction beyond the buffer capacity: evicted-unconsumed lines are the
  // useless prefetches (l2_lines_out.useless_hwpf semantics). Consumed
  // lines linger in the FIFO and are skipped here.
  while (outstanding_.size() > static_cast<size_t>(config_.buffer_lines)) {
    const uint64_t victim = fifo_.front();
    fifo_.pop_front();
    if (outstanding_.erase(victim) > 0) ++stats_.useless_prefetches;
  }
}

void StreamPrefetcherSim::Access(uint64_t address) {
  ++tick_;
  ++stats_.demand_accesses;
  const uint64_t line = address / static_cast<uint64_t>(config_.line_bytes);

  // Consume a matching outstanding prefetch.
  if (outstanding_.erase(line) > 0) ++stats_.useful_prefetches;

  // Stream detection: look for a tracked stream this access extends.
  Stream* matched = nullptr;
  for (Stream& stream : streams_) {
    if (!stream.valid) continue;
    if (line == stream.last_line) {
      // Same line (e.g. consecutive values within one cache line): keep
      // the stream warm but do not retrain or prefetch.
      stream.last_use_tick = tick_;
      return;
    }
    if (line > stream.last_line && line - stream.last_line <= 2) {
      matched = &stream;
      break;
    }
  }

  if (matched != nullptr) {
    matched->confidence = std::min(matched->confidence + 1, 4);
    matched->last_line = line;
    matched->last_use_tick = tick_;
    if (matched->confidence >= 2) {
      for (int d = 1; d <= config_.prefetch_degree; ++d) {
        IssuePrefetch(line + static_cast<uint64_t>(config_.prefetch_distance)
                      + static_cast<uint64_t>(d) - 1);
      }
    }
    return;
  }

  // Allocate a stream: reuse an invalid slot or evict the LRU one.
  Stream* victim = &streams_[0];
  for (Stream& stream : streams_) {
    if (!stream.valid) {
      victim = &stream;
      break;
    }
    if (stream.last_use_tick < victim->last_use_tick) victim = &stream;
  }
  victim->valid = true;
  victim->last_line = line;
  victim->confidence = 0;
  victim->last_use_tick = tick_;
}

PrefetchStats StreamPrefetcherSim::Finish() {
  stats_.useless_prefetches += outstanding_.size();
  outstanding_.clear();
  fifo_.clear();
  return stats_;
}

PrefetchStats ReplaySisdScanAccesses(const ScanStage* stages,
                                     size_t num_stages, size_t row_count,
                                     StreamPrefetcherSim& prefetcher) {
  for (size_t i = 0; i < row_count; ++i) {
    for (size_t s = 0; s < num_stages; ++s) {
      // Short-circuit &&: column s is only read when predicates 0..s-1
      // matched row i. The prefetcher nevertheless runs ahead on the
      // later columns' streams — those speculative lines go to waste
      // whenever the next qualifying row is far away.
      prefetcher.Access(
          ColumnAddress(s, i, ScanElementSize(stages[s].type)));
      if (!EvaluateStageAtRow(stages[s], i)) break;
    }
  }
  return prefetcher.Finish();
}

PrefetchStats ReplayFusedScanAccesses(const ScanStage* stages,
                                      size_t num_stages, size_t row_count,
                                      int lanes,
                                      StreamPrefetcherSim& prefetcher) {
  FTS_CHECK(lanes > 0);
  // Block-cascaded access model: the first column is read densely block by
  // block (one access per element); later columns only at gathered,
  // surviving positions.
  std::vector<uint32_t> survivors;
  std::vector<uint32_t> next;
  const size_t blocks = (row_count + lanes - 1) / static_cast<size_t>(lanes);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t start = b * static_cast<size_t>(lanes);
    const size_t end = std::min(row_count, start + lanes);
    survivors.clear();
    for (size_t i = start; i < end; ++i) {
      prefetcher.Access(
          ColumnAddress(0, i, ScanElementSize(stages[0].type)));
      if (EvaluateStageAtRow(stages[0], i)) {
        survivors.push_back(static_cast<uint32_t>(i));
      }
    }
    for (size_t s = 1; s < num_stages && !survivors.empty(); ++s) {
      next.clear();
      for (const uint32_t pos : survivors) {
        prefetcher.Access(
            ColumnAddress(s, pos, ScanElementSize(stages[s].type)));
        if (EvaluateStageAtRow(stages[s], pos)) next.push_back(pos);
      }
      survivors.swap(next);
    }
  }
  return prefetcher.Finish();
}

}  // namespace fts
