#ifndef FTS_PERF_CACHE_SIM_H_
#define FTS_PERF_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "fts/simd/scan_stage.h"

namespace fts {

// Set-associative LRU cache-hierarchy model. Complements the branch and
// prefetch simulators: the paper's testbed analysis is cache-centric
// (32 KB L1d / 1 MB L2 / 38.5 MB L3, flushed between runs), and this VM's
// PMU is hidden, so cache behaviour of the scan access traces is modelled
// instead of measured. Misses per level expose how much of each scan is
// bandwidth- versus compute-bound.

struct CacheLevelConfig {
  const char* name = "L?";
  int64_t size_bytes = 0;
  int ways = 8;
};

struct CacheLevelStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;

  double MissRate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class CacheHierarchySim {
 public:
  // Defaults mirror the paper's Xeon Platinum 8180 (per core: 32 KB L1d,
  // 1 MB L2; 38.5 MB shared L3).
  static std::vector<CacheLevelConfig> PaperTestbedConfig();

  explicit CacheHierarchySim(
      std::vector<CacheLevelConfig> levels = PaperTestbedConfig(),
      int64_t line_bytes = 64);

  // One demand access. Probes L1 -> L2 -> L3; a miss in all levels counts
  // as a memory access; the line is filled into every level (inclusive).
  void Access(uint64_t address);

  const std::vector<CacheLevelStats>& stats() const { return stats_; }
  const std::vector<CacheLevelConfig>& levels() const { return configs_; }
  uint64_t memory_accesses() const { return memory_accesses_; }

  // Bytes fetched from memory (misses in the last level x line size).
  uint64_t MemoryTrafficBytes() const {
    return memory_accesses_ * static_cast<uint64_t>(line_bytes_);
  }

  void Reset();

 private:
  struct Level {
    uint64_t set_mask = 0;
    int ways = 0;
    // tags[set * ways + way]; 0 = invalid (tags are line+1).
    std::vector<uint64_t> tags;
    std::vector<uint64_t> last_use;
  };

  bool ProbeAndFill(Level& level, CacheLevelStats& stats, uint64_t line);

  std::vector<CacheLevelConfig> configs_;
  std::vector<Level> levels_;
  std::vector<CacheLevelStats> stats_;
  uint64_t memory_accesses_ = 0;
  int64_t line_bytes_;
  uint64_t tick_ = 0;
};

// Replays the short-circuiting SISD scan's memory accesses through the
// hierarchy (column s is touched only for rows surviving predicates
// 0..s-1). Synthetic per-column address spaces as in prefetcher.h.
void ReplaySisdScanCacheAccesses(const ScanStage* stages, size_t num_stages,
                                 size_t row_count, CacheHierarchySim& cache);

// Replays the fused scan's block/gather access pattern.
void ReplayFusedScanCacheAccesses(const ScanStage* stages,
                                  size_t num_stages, size_t row_count,
                                  int lanes, CacheHierarchySim& cache);

}  // namespace fts

#endif  // FTS_PERF_CACHE_SIM_H_
