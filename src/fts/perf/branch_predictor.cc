#include "fts/perf/branch_predictor.h"

#include "fts/common/macros.h"

namespace fts {

bool StaticPredictor::PredictAndUpdate(uint32_t site, bool taken) {
  const bool correct = (taken == predict_taken_);
  Record(correct);
  return correct;
}

BimodalPredictor::BimodalPredictor(int table_bits) {
  FTS_CHECK(table_bits >= 1 && table_bits <= 24);
  counters_.assign(size_t{1} << table_bits, 1);  // Weakly not-taken.
  index_mask_ = static_cast<uint32_t>(counters_.size() - 1);
}

bool BimodalPredictor::PredictAndUpdate(uint32_t site, bool taken) {
  uint8_t& counter = counters_[site & index_mask_];
  const bool predicted = counter >= 2;
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  const bool correct = (predicted == taken);
  Record(correct);
  return correct;
}

GsharePredictor::GsharePredictor(int table_bits, int history_bits) {
  FTS_CHECK(table_bits >= 1 && table_bits <= 24);
  FTS_CHECK(history_bits >= 1 && history_bits <= 24);
  counters_.assign(size_t{1} << table_bits, 1);
  index_mask_ = static_cast<uint32_t>(counters_.size() - 1);
  history_mask_ = (1u << history_bits) - 1;
}

bool GsharePredictor::PredictAndUpdate(uint32_t site, bool taken) {
  const uint32_t index = (site ^ history_) & index_mask_;
  uint8_t& counter = counters_[index];
  const bool predicted = counter >= 2;
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  const bool correct = (predicted == taken);
  Record(correct);
  return correct;
}

std::unique_ptr<BranchPredictor> MakeBranchPredictor(
    const std::string& name) {
  if (name == "static-taken") return std::make_unique<StaticPredictor>(true);
  if (name == "static-nottaken") {
    return std::make_unique<StaticPredictor>(false);
  }
  if (name == "bimodal") return std::make_unique<BimodalPredictor>();
  if (name == "gshare") return std::make_unique<GsharePredictor>();
  return nullptr;
}

BranchStats ReplaySisdScanBranches(const ScanStage* stages,
                                   size_t num_stages, size_t row_count,
                                   BranchPredictor& predictor) {
  predictor.ResetStats();
  // Branch sites: one Jcc per predicate in the && chain. (The loop's own
  // back-edge branch is perfectly predicted on any real frontend and is
  // omitted from all replays equally.)
  for (size_t i = 0; i < row_count; ++i) {
    for (size_t s = 0; s < num_stages; ++s) {
      const bool match = EvaluateStageAtRow(stages[s], i);
      predictor.PredictAndUpdate(static_cast<uint32_t>(s), match);
      if (!match) break;  // Short-circuit: later compares never execute.
    }
  }
  return predictor.stats();
}

BranchStats ReplayFusedScanBranches(const ScanStage* stages,
                                    size_t num_stages, size_t row_count,
                                    int lanes, BranchPredictor& predictor) {
  FTS_CHECK(lanes == 4 || lanes == 8 || lanes == 16);
  FTS_CHECK(num_stages >= 1 && num_stages <= kMaxScanStages);
  predictor.ResetStats();

  // Scalar re-enactment of FusedChain's control flow (kernels_avx512.cc).
  // Branch sites, per stage s:
  //   site 4s + 0: "m != 0" after the block / gather compare
  //   site 4s + 1: "count + n > kW" overflow flush in Push
  //   site 4s + 2: "count == kW" full flush in Push
  const int kW = lanes;
  std::vector<std::vector<uint32_t>> acc(num_stages);
  for (auto& a : acc) a.reserve(kW);

  // Forward declaration via std::function-free recursion: small explicit
  // stack of (stage, positions) work items would obscure the branch order;
  // use plain recursion like the kernel does.
  struct Replayer {
    const ScanStage* stages;
    size_t num_stages;
    int kW;
    BranchPredictor& predictor;
    std::vector<std::vector<uint32_t>>& acc;
    size_t out_count = 0;

    void Push(size_t s, const std::vector<uint32_t>& positions) {
      if (positions.empty()) return;
      const bool overflow =
          acc[s].size() + positions.size() > static_cast<size_t>(kW);
      predictor.PredictAndUpdate(static_cast<uint32_t>(4 * s + 1), overflow);
      if (overflow) Flush(s);
      acc[s].insert(acc[s].end(), positions.begin(), positions.end());
      const bool full = acc[s].size() == static_cast<size_t>(kW);
      predictor.PredictAndUpdate(static_cast<uint32_t>(4 * s + 2), full);
      if (full) Flush(s);
    }

    void Flush(size_t s) {
      std::vector<uint32_t> positions;
      positions.swap(acc[s]);
      if (positions.empty()) return;
      std::vector<uint32_t> survivors;
      for (const uint32_t pos : positions) {
        if (EvaluateStageAtRow(stages[s], pos)) survivors.push_back(pos);
      }
      const bool any = !survivors.empty();
      predictor.PredictAndUpdate(static_cast<uint32_t>(4 * s + 0), any);
      if (!any) return;
      if (s + 1 == num_stages) {
        out_count += survivors.size();
        return;
      }
      Push(s + 1, survivors);
    }
  };
  Replayer replayer{stages, num_stages, kW, predictor, acc};

  const size_t blocks = (row_count + kW - 1) / kW;
  for (size_t b = 0; b < blocks; ++b) {
    const size_t start = b * static_cast<size_t>(kW);
    const size_t end = std::min(row_count, start + kW);
    std::vector<uint32_t> matched;
    for (size_t i = start; i < end; ++i) {
      if (EvaluateStageAtRow(stages[0], i)) {
        matched.push_back(static_cast<uint32_t>(i));
      }
    }
    const bool any = !matched.empty();
    predictor.PredictAndUpdate(0, any);
    if (!any) continue;
    if (num_stages == 1) continue;  // Compress-store, no further branches.
    replayer.Push(1, matched);
  }
  for (size_t s = 1; s < num_stages; ++s) replayer.Flush(s);
  return predictor.stats();
}

}  // namespace fts
