#include "fts/perf/counter_attribution.h"

namespace fts {

ThreadCounters::ThreadCounters() {
  if (!HardwareCountersAvailable()) return;
  StatusOr<PerfCounterGroup> opened = PerfCounterGroup::Open(
      {HwEvent::kCycles, HwEvent::kInstructions, HwEvent::kBranches,
       HwEvent::kBranchMisses});
  if (opened.ok()) group_.emplace(std::move(opened).value());
}

ThreadCounters& ThreadCounters::ForCurrentThread() {
  // One group per thread for the thread's lifetime; the fds close when the
  // thread exits. Workers are pool threads, so in practice this is a small
  // fixed set of groups opened once per process.
  thread_local ThreadCounters counters;
  return counters;
}

bool ThreadCounters::Start() {
  if (!group_.has_value()) return false;
  if (!group_->Start().ok()) return false;
  armed_ = true;
  return true;
}

CounterDelta ThreadCounters::StopAndRead() {
  CounterDelta delta;
  if (!armed_ || !group_.has_value()) return delta;
  armed_ = false;
  if (!group_->Stop().ok()) return delta;
  const StatusOr<std::vector<uint64_t>> values = group_->Read();
  if (!values.ok() || values->size() != 4) return delta;
  delta.valid = true;
  delta.cycles = (*values)[0];
  delta.instructions = (*values)[1];
  delta.branches = (*values)[2];
  delta.branch_misses = (*values)[3];
  return delta;
}

}  // namespace fts
