#ifndef FTS_PERF_BANDWIDTH_H_
#define FTS_PERF_BANDWIDTH_H_

#include <cstddef>
#include <cstdint>

namespace fts {

// Helpers for Fig. 2: a naive SISD scan that only compares every
// `stride`-th value. All cache lines are still transferred, so measuring
// runtime against bytes-touched exposes how far the one-comparison-per-
// cycle scan sits below the available memory bandwidth.
//
// Compiled with auto-vectorization disabled (the experiment characterizes
// the *scalar* scan; see CMakeLists.txt).

// Counts matches of data[i] == value for i = 0, stride, 2*stride, ...
// Returns the number of matches; the caller times the call.
size_t StridedCompareCount(const int32_t* data, size_t size, int32_t value,
                           size_t stride);

// Result of one bandwidth measurement.
struct BandwidthSample {
  double seconds = 0.0;
  double gb_per_second = 0.0;      // Cache lines transferred / time.
  double values_per_microsecond = 0.0;  // Values actually compared / time.
};

// Times StridedCompareCount over `data` and derives Fig. 2's two series.
BandwidthSample MeasureStridedScan(const int32_t* data, size_t size,
                                   int32_t value, size_t stride);

// Peak sequential read bandwidth estimate (16-byte-unrolled summation),
// the "available bandwidth" reference line.
double MeasurePeakReadBandwidthGbs(const int32_t* data, size_t size);

}  // namespace fts

#endif  // FTS_PERF_BANDWIDTH_H_
