#include "fts/perf/cache_sim.h"

#include <bit>

#include "fts/common/macros.h"

namespace fts {
namespace {

inline uint64_t ColumnAddress(size_t column, size_t row, size_t elem_size) {
  return ((static_cast<uint64_t>(column) + 1) << 40) +
         static_cast<uint64_t>(row) * elem_size;
}

}  // namespace

std::vector<CacheLevelConfig> CacheHierarchySim::PaperTestbedConfig() {
  return {{"L1d", 32 * 1024, 8},
          {"L2", 1024 * 1024, 16},
          {"L3", 38LL * 1024 * 1024 + 512 * 1024, 11}};
}

CacheHierarchySim::CacheHierarchySim(std::vector<CacheLevelConfig> levels,
                                     int64_t line_bytes)
    : configs_(std::move(levels)), line_bytes_(line_bytes) {
  FTS_CHECK(!configs_.empty());
  FTS_CHECK(line_bytes_ > 0 &&
            (line_bytes_ & (line_bytes_ - 1)) == 0);
  for (const CacheLevelConfig& config : configs_) {
    FTS_CHECK(config.ways > 0);
    const int64_t lines = config.size_bytes / line_bytes_;
    FTS_CHECK(lines >= config.ways);
    // Round the set count down to a power of two for mask indexing.
    uint64_t sets = static_cast<uint64_t>(lines / config.ways);
    sets = uint64_t{1} << (63 - std::countl_zero(sets));
    Level level;
    level.set_mask = sets - 1;
    level.ways = config.ways;
    level.tags.assign(sets * static_cast<uint64_t>(config.ways), 0);
    level.last_use.assign(sets * static_cast<uint64_t>(config.ways), 0);
    levels_.push_back(std::move(level));
  }
  stats_.resize(configs_.size());
}

bool CacheHierarchySim::ProbeAndFill(Level& level, CacheLevelStats& stats,
                                     uint64_t line) {
  ++stats.accesses;
  const uint64_t set = line & level.set_mask;
  const uint64_t base = set * static_cast<uint64_t>(level.ways);
  const uint64_t tag = line + 1;  // 0 marks an invalid way.

  uint64_t victim = base;
  for (int way = 0; way < level.ways; ++way) {
    const uint64_t slot = base + static_cast<uint64_t>(way);
    if (level.tags[slot] == tag) {
      ++stats.hits;
      level.last_use[slot] = tick_;
      return true;
    }
    if (level.last_use[slot] < level.last_use[victim] ||
        level.tags[slot] == 0) {
      victim = slot;
      if (level.tags[slot] == 0) break;  // Prefer invalid ways outright.
    }
  }
  ++stats.misses;
  level.tags[victim] = tag;
  level.last_use[victim] = tick_;
  return false;
}

void CacheHierarchySim::Access(uint64_t address) {
  ++tick_;
  const uint64_t line = address / static_cast<uint64_t>(line_bytes_);
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (ProbeAndFill(levels_[i], stats_[i], line)) return;
  }
  ++memory_accesses_;
}

void CacheHierarchySim::Reset() {
  for (Level& level : levels_) {
    std::fill(level.tags.begin(), level.tags.end(), 0);
    std::fill(level.last_use.begin(), level.last_use.end(), 0);
  }
  std::fill(stats_.begin(), stats_.end(), CacheLevelStats{});
  memory_accesses_ = 0;
  tick_ = 0;
}

void ReplaySisdScanCacheAccesses(const ScanStage* stages, size_t num_stages,
                                 size_t row_count,
                                 CacheHierarchySim& cache) {
  for (size_t i = 0; i < row_count; ++i) {
    for (size_t s = 0; s < num_stages; ++s) {
      cache.Access(ColumnAddress(s, i, ScanElementSize(stages[s].type)));
      if (!EvaluateStageAtRow(stages[s], i)) break;
    }
  }
}

void ReplayFusedScanCacheAccesses(const ScanStage* stages,
                                  size_t num_stages, size_t row_count,
                                  int lanes, CacheHierarchySim& cache) {
  FTS_CHECK(lanes > 0);
  std::vector<uint32_t> survivors;
  std::vector<uint32_t> next;
  const size_t blocks =
      (row_count + lanes - 1) / static_cast<size_t>(lanes);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t start = b * static_cast<size_t>(lanes);
    const size_t end = std::min(row_count, start + lanes);
    survivors.clear();
    for (size_t i = start; i < end; ++i) {
      cache.Access(ColumnAddress(0, i, ScanElementSize(stages[0].type)));
      if (EvaluateStageAtRow(stages[0], i)) {
        survivors.push_back(static_cast<uint32_t>(i));
      }
    }
    for (size_t s = 1; s < num_stages && !survivors.empty(); ++s) {
      next.clear();
      for (const uint32_t pos : survivors) {
        cache.Access(ColumnAddress(s, pos, ScanElementSize(stages[s].type)));
        if (EvaluateStageAtRow(stages[s], pos)) next.push_back(pos);
      }
      survivors.swap(next);
    }
  }
}

}  // namespace fts
