#ifndef FTS_COST_CALIBRATE_SISD_H_
#define FTS_COST_CALIBRATE_SISD_H_

#include <cstddef>
#include <cstdint>

#include "fts/simd/scan_stage.h"

namespace fts {

// Calibration twins of the SISD baselines: the exact loop body of
// fts/scan/sisd_scan_impl.inc.h compiled into this library under the same
// per-TU flags (cost/calibrate_sisd_novec.cc disables auto-vectorization,
// cost/calibrate_sisd_autovec.cc is plain -O3). fts_cost sits below
// fts_scan in the link order, so it measures its own instantiations of
// the shared implementation instead of linking the engine entry points —
// identical codegen, no dependency cycle.
size_t SisdScanCostNoVecCount(const ScanStage* stages, size_t num_stages,
                              size_t row_count);
size_t SisdScanCostNoVecCollect(const ScanStage* stages, size_t num_stages,
                                size_t row_count, uint32_t* out);
size_t SisdScanCostAutoVecCount(const ScanStage* stages, size_t num_stages,
                                size_t row_count);
size_t SisdScanCostAutoVecCollect(const ScanStage* stages,
                                  size_t num_stages, size_t row_count,
                                  uint32_t* out);

}  // namespace fts

#endif  // FTS_COST_CALIBRATE_SISD_H_
