#ifndef FTS_COST_COST_PROFILE_H_
#define FTS_COST_COST_PROFILE_H_

#include <array>
#include <cstdint>
#include <string>

#include "fts/common/status.h"
#include "fts/scan/scan_engine.h"

namespace fts {
namespace cost {

// Encoding classes the calibrated per-row constants are indexed by. The
// kernels see only three operand shapes: 32-bit fixed-size elements
// (plain i32/u32/f32 and unpacked dictionary code vectors), 64-bit
// fixed-size elements, and bit-packed code streams (bit-packed,
// frame-of-reference). RLE and delta stages never reach the kernels; they
// carry their own run/block constants below.
enum class EncClass : uint8_t {
  kPlain32 = 0,
  kPlain64,
  kPacked,
};
inline constexpr size_t kNumEncClasses = 3;

const char* EncClassName(EncClass enc);

// Calibrated per-row constants for one ScanEngine. The chain cost model
// (cost_model.h) is
//
//   cost = rows * first_ns[enc_0]
//        + sum_{i>0} rows * prefix_sel_i * rest_ns[enc_i]
//        + matches * emit_ns
//
// where prefix_sel_i is the product of the selectivities of stages
// 0..i-1. `first_ns` is the full-width pass every chain pays for its
// first stage; `rest_ns` is the per-surviving-row cost of each later
// stage (the fused kernels gather survivors, the SISD loops short-circuit
// — both are linear in rows reaching the stage); `emit_ns` is the cost of
// materializing one match position. The SISD count path skips
// materialization entirely, which the model credits (ScanMode::kCount).
struct EngineCostConstants {
  bool available = false;
  std::array<double, kNumEncClasses> first_ns{};
  std::array<double, kNumEncClasses> rest_ns{};
  double emit_ns = 0.0;
};

inline constexpr size_t kNumEngines = 9;  // ScanEngine enumerator count.

// The calibrated throughput profile: per-engine per-encoding-class scan
// constants plus the compressed-domain and JIT constants. Produced either
// by Defaults() (static, ballpark numbers — good enough for chain
// ranking) or Calibrate() (measured on this machine — required for
// engine adaptation and time prediction). Serialized to a versioned
// key-value text file keyed by the calibrating CPU's feature string, so a
// stale or foreign profile is detected and re-measured.
struct CostProfile {
  static constexpr int kVersion = 1;

  int version = kVersion;
  std::string cpu;        // GetCpuFeatures().ToString() at calibration.
  bool calibrated = false;

  // Indexed by static_cast<size_t>(ScanEngine). kJit's constants are
  // derived from the best fused engine via jit_speed_factor at
  // finalization; kBlockwise is never an adaptation candidate and stays
  // unavailable.
  std::array<EngineCostConstants, kNumEngines> engines{};

  // Compressed-domain constants (engine-independent: every engine runs
  // the same range path).
  double rle_run_ns = 4.0;      // Classify one run + extend ranges.
  double delta_block_ns = 12.0; // Classify one block from its min/max.
  double delta_row_ns = 3.0;    // Prefix-reconstruct + compare one row.
  double compressed_emit_ns = 0.5;  // Append one position from a range.

  // JIT model: generated code runs at (best fused cost) * factor, and a
  // cold chain signature pays one external-compiler invocation that the
  // per-chunk decision amortizes over the chunks sharing the signature.
  double jit_speed_factor = 0.85;
  double jit_compile_millis = 150.0;

  const EngineCostConstants& For(ScanEngine engine) const {
    return engines[static_cast<size_t>(engine)];
  }

  // Versioned key-value text round-trip. Parse fails on a version or
  // malformed-line mismatch; callers treat a cpu-string mismatch as a
  // stale profile and recalibrate.
  std::string Serialize() const;
  static StatusOr<CostProfile> Parse(const std::string& text);

  // Static ballpark constants: no measurement, every engine the CPU
  // supports marked available. Used when only chain ranking is needed.
  static CostProfile Defaults();

  // Measures the constants on this machine with synthetic-column runs
  // sized past L2 (memory-bound, like real scans). FTS_CALIBRATE_FAST=1
  // shrinks rows/reps (CI smoke); expect ~1-3s full, ~20ms fast.
  static CostProfile Calibrate();
};

// Process-wide profiles. DefaultProfile() is the static table;
// CalibratedProfile() loads FTS_COST_PROFILE (when set) if its version
// and CPU string match, else calibrates and (best-effort) rewrites the
// file. Both are computed once and cached for the process lifetime.
const CostProfile& DefaultProfile();
const CostProfile& CalibratedProfile();

// FTS_ADAPTIVE kill switch (default on): gates chain re-ranking and
// per-chunk engine adaptation everywhere. Re-read on every call (it is
// consulted once per Prepare) so the determinism fuzzers can toggle it
// within one process.
bool AdaptiveEnabled();

}  // namespace cost
}  // namespace fts

#endif  // FTS_COST_COST_PROFILE_H_
