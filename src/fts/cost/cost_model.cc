#include "fts/cost/cost_model.h"

#include <algorithm>

namespace fts {
namespace cost {

double StageRank(const CostProfile& profile, ScanEngine ranking_engine,
                 EncClass enc, double selectivity) {
  const EngineCostConstants& e = profile.For(ranking_engine);
  const double per_row = e.available
                             ? e.rest_ns[static_cast<size_t>(enc)]
                             : 1.0;
  const double ineffectiveness = std::max(1e-9, 1.0 - selectivity);
  return per_row / ineffectiveness;
}

double ChainCostNs(const CostProfile& profile, ScanEngine engine,
                   const std::vector<StageCost>& stages, double rows,
                   ScanMode mode) {
  const EngineCostConstants& e = profile.For(engine);
  if (!e.available || stages.empty()) return 0.0;
  double cost = rows * e.first_ns[static_cast<size_t>(stages[0].enc)];
  double prefix_sel = stages[0].selectivity;
  for (size_t i = 1; i < stages.size(); ++i) {
    cost += rows * prefix_sel * e.rest_ns[static_cast<size_t>(stages[i].enc)];
    prefix_sel *= stages[i].selectivity;
  }
  const bool sisd = engine == ScanEngine::kSisdNoVec ||
                    engine == ScanEngine::kSisdAutoVec;
  // The SISD count fast path never materializes positions; every other
  // engine (and every materializing mode) pays emit per match. The
  // aggregate kernels fold instead of emitting, at comparable per-match
  // cost, so the emit constant stands in for the fold.
  const bool emits = !(sisd && mode == ScanMode::kCount);
  if (emits) cost += rows * prefix_sel * e.emit_ns;
  return cost;
}

double GatherCostNs(const CostProfile& profile, ScanEngine engine,
                    const uint64_t cells_by_encoding[6]) {
  const EngineCostConstants& e = profile.For(engine);
  // An engine without calibrated constants (SISD reference, blockwise)
  // falls back to the scalar-fused emit constant — the gather kernels run
  // regardless of which engine produced the positions.
  double emit = e.available ? e.emit_ns : 0.0;
  if (emit <= 0.0) emit = profile.For(ScanEngine::kScalarFused).emit_ns;
  const double kernel_cells =
      static_cast<double>(cells_by_encoding[0] + cells_by_encoding[1] +
                          cells_by_encoding[2] + cells_by_encoding[4]);
  return kernel_cells * emit +
         static_cast<double>(cells_by_encoding[3]) *
             profile.compressed_emit_ns +
         static_cast<double>(cells_by_encoding[5]) * profile.delta_row_ns;
}

}  // namespace cost
}  // namespace fts
