// "SISD (no vec)" calibration twin — built with auto-vectorization off
// (see cost/CMakeLists.txt), mirroring scan/sisd_scan_novec.cc.
#include "fts/cost/calibrate_sisd.h"

#define FTS_SISD_PREFIX CostNoVec
#include "fts/scan/sisd_scan_impl.inc.h"
