#ifndef FTS_COST_COST_MODEL_H_
#define FTS_COST_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "fts/cost/cost_profile.h"
#include "fts/storage/compare_op.h"

namespace fts {
namespace cost {

// What the scan does with each match — selects the emit term of the chain
// cost. kCount credits the SISD engines' no-materialization count loop;
// kAggregate approximates the masked fold as one emit-sized op per match.
enum class ScanMode : uint8_t {
  kMaterialize = 0,
  kCount,
  kAggregate,
};

// One conjunct as the cost model sees it: the operand shape the kernels
// read and the estimated fraction of rows (reaching it) that pass.
struct StageCost {
  EncClass enc = EncClass::kPlain32;
  double selectivity = 0.5;
};

// Selectivity of `x op value` for x uniform over [min, max] (inclusive).
// The uniform assumption is the same one TableStatistics makes at the
// table level; here the bounds are a single chunk's zone map, which is
// what makes per-chunk re-ranking see skew that table statistics cannot.
// Integral domains treat kEq as one value out of (max - min + 1).
template <typename T>
double EstimateUniformSelectivity(T min, T max, CompareOp op, T value) {
  if (max < min) return 0.5;  // Degenerate bounds: estimate nothing.
  const double lo = static_cast<double>(min);
  const double hi = static_cast<double>(max);
  const double v = static_cast<double>(value);
  // Integral domains count (max - min + 1) distinct values; continuous
  // domains have no "+1" and give kEq a nominal sliver.
  const double width = std::is_floating_point_v<T>
                           ? std::max(hi - lo, 1e-300)
                           : hi - lo + 1.0;
  if constexpr (std::is_floating_point_v<T>) {
    auto clampf = [](double s) {
      return s < 0.0 ? 0.0 : (s > 1.0 ? 1.0 : s);
    };
    switch (op) {
      case CompareOp::kEq:
        return (v < lo || v > hi) ? 0.0 : 0.001;
      case CompareOp::kNe:
        return (v < lo || v > hi) ? 1.0 : 0.999;
      case CompareOp::kLt:
      case CompareOp::kLe:
        return clampf((v - lo) / width);
      case CompareOp::kGt:
      case CompareOp::kGe:
        return clampf((hi - v) / width);
    }
    __builtin_unreachable();
  }
  auto clamp01 = [](double s) { return s < 0.0 ? 0.0 : (s > 1.0 ? 1.0 : s); };
  switch (op) {
    case CompareOp::kEq:
      if (v < lo || v > hi) return 0.0;
      return clamp01(1.0 / width);
    case CompareOp::kNe:
      if (v < lo || v > hi) return 1.0;
      return clamp01(1.0 - 1.0 / width);
    case CompareOp::kLt:
      return clamp01((v - lo) / width);
    case CompareOp::kLe:
      return clamp01((v - lo + 1.0) / width);
    case CompareOp::kGt:
      return clamp01((hi - v) / width);
    case CompareOp::kGe:
      return clamp01((hi - v + 1.0) / width);
  }
  __builtin_unreachable();
}

// Rank key for cheapest-effective-first chain ordering. For independent
// conjuncts the expected chain cost is minimized by ascending
// cost_i / (1 - sel_i) (the classic predicate-ordering result); `cost_i`
// is the per-row cost of evaluating the stage on the ranking engine.
// Stages that filter nothing (sel -> 1) rank last regardless of cost.
double StageRank(const CostProfile& profile, ScanEngine ranking_engine,
                 EncClass enc, double selectivity);

// Expected nanoseconds for one chunk's kernel chain on `engine`:
//
//   rows * first_ns[enc_0]
//   + sum_{i>0} rows * prefix_sel_i * rest_ns[enc_i]
//   + rows * chain_sel * emit(mode)
//
// `stages` must be in execution order. kCount zeroes the emit term for
// the SISD engines (their count loop materializes nothing); every other
// engine materializes positions regardless of mode.
double ChainCostNs(const CostProfile& profile, ScanEngine engine,
                   const std::vector<StageCost>& stages, double rows,
                   ScanMode mode);

// Expected nanoseconds to batch-gather a late-materialized projection.
// `cells_by_encoding[e]` counts output cells whose source column carries
// ColumnEncoding e (same index space as ExecutionReport::stage_encodings:
// 0=plain, 1=dictionary, 2=bit-packed, 3=RLE, 4=FoR, 5=delta). The kernel
// encodings (plain/dict/packed/FoR) are priced with the engine's per-match
// emit constant — a gathered cell is the same position-indexed load+store
// the scan's emit path performs — and the compressed encodings reuse the
// engine-independent compressed-domain constants: RLE cells cost one
// range-append each, delta cells one prefix-reconstructed row each.
double GatherCostNs(const CostProfile& profile, ScanEngine engine,
                    const uint64_t cells_by_encoding[6]);

// Expected matches of a conjunction with the given per-stage
// selectivities (independence assumption).
inline double ChainSelectivity(const std::vector<StageCost>& stages) {
  double sel = 1.0;
  for (const StageCost& stage : stages) sel *= stage.selectivity;
  return sel;
}

}  // namespace cost
}  // namespace fts

#endif  // FTS_COST_COST_MODEL_H_
