#include "fts/cost/cost_profile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/cpu_info.h"
#include "fts/common/env.h"
#include "fts/common/string_util.h"
#include "fts/obs/trace.h"
#include "fts/cost/calibrate_sisd.h"
#include "fts/simd/dispatch.h"
#include "fts/simd/scan_stage.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/delta_column.h"

namespace fts {
namespace cost {
namespace {

// Serialization names per ScanEngine index. Local table (not
// ScanEngineToString) so fts_cost needs no fts_scan symbols.
constexpr const char* kEngineNames[kNumEngines] = {
    "sisd-novec", "sisd-autovec", "scalar-fused",
    "avx2-128",   "avx512-128",   "avx512-256",
    "avx512-512", "blockwise",    "jit",
};

constexpr const char* kEncNames[kNumEncClasses] = {"p32", "p64", "packed"};

double NowNanos() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimum ns/unit over `reps` timed runs of `fn` (one untimed warmup).
// The minimum filters scheduler noise, which only ever adds time.
template <typename Fn>
double MeasureNsPerUnit(size_t units, int reps, const Fn& fn) {
  volatile size_t sink = fn();
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowNanos();
    sink = sink + fn();
    const double t1 = NowNanos();
    best = std::min(best, (t1 - t0) / static_cast<double>(units));
  }
  (void)sink;
  return best;
}

uint32_t Lcg(uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  // Finalize with an avalanche mix: the raw low LCG bits are periodic, and
  // `raw % pow2` data would let the branch predictor learn the comparison
  // outcomes — measuring branchy loops far below their cost on real data.
  uint32_t z = state;
  z ^= z >> 16;
  z *= 0x7feb352du;
  z ^= z >> 15;
  z *= 0x846ca68bu;
  z ^= z >> 16;
  return z;
}

// One synthetic single-column workload per encoding class: the data
// buffer, plus a stage constructor for a target selectivity under kLt.
struct ClassFixture {
  AlignedVector<uint32_t> plain32;
  AlignedVector<uint64_t> plain64;
  std::shared_ptr<BitPackedColumn<int32_t>> packed;
  size_t rows = 0;

  // `selectivity` in [0, 1]; values are uniform in [0, kDomain).
  static constexpr uint32_t kDomain = 1000;

  ScanStage StageFor(EncClass enc, double selectivity) const {
    ScanStage stage;
    stage.op = CompareOp::kLt;
    switch (enc) {
      case EncClass::kPlain32:
        stage.data = plain32.data();
        stage.type = ScanElementType::kU32;
        stage.value.u32 = static_cast<uint32_t>(selectivity * kDomain);
        break;
      case EncClass::kPlain64:
        stage.data = plain64.data();
        stage.type = ScanElementType::kU64;
        stage.value.u64 = static_cast<uint64_t>(selectivity * kDomain);
        break;
      case EncClass::kPacked: {
        stage.data = packed->scan_data();
        stage.type = ScanElementType::kU32;
        stage.packed_bits = static_cast<uint8_t>(packed->packed_bit_width());
        const auto codes = static_cast<uint32_t>(packed->dictionary().size());
        stage.value.u32 = static_cast<uint32_t>(selectivity * codes);
        stage.encoding = static_cast<uint8_t>(ColumnEncoding::kBitPacked);
        break;
      }
    }
    return stage;
  }

  static ClassFixture Build(size_t rows) {
    ClassFixture f;
    f.rows = rows;
    f.plain32.resize(rows);
    f.plain64.resize(rows);
    AlignedVector<int32_t> raw(rows);
    uint32_t state = 0x5eed5eedu;
    for (size_t i = 0; i < rows; ++i) {
      const uint32_t v = Lcg(state) % kDomain;
      f.plain32[i] = v;
      f.plain64[i] = v;
      raw[i] = static_cast<int32_t>(Lcg(state) % 512);
    }
    f.packed = std::make_shared<BitPackedColumn<int32_t>>(
        BitPackedColumn<int32_t>::FromValues(raw));
    return f;
  }
};

// A scan runner measured during calibration: collect (materializing)
// entry point shared by the fused kernels and the SISD twins, plus the
// count-only twin the SISD engines additionally expose.
using CollectFn = size_t (*)(const ScanStage*, size_t, size_t, uint32_t*);
using CountFn = size_t (*)(const ScanStage*, size_t, size_t);

CountFn CountFnFor(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kSisdNoVec:
      return &SisdScanCostNoVecCount;
    case ScanEngine::kSisdAutoVec:
      return &SisdScanCostAutoVecCount;
    default:
      return nullptr;  // Fused kernels materialize unconditionally.
  }
}

CollectFn CollectFnFor(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kSisdNoVec:
      return &SisdScanCostNoVecCollect;
    case ScanEngine::kSisdAutoVec:
      return &SisdScanCostAutoVecCollect;
    case ScanEngine::kScalarFused: {
      auto fn = GetFusedScanKernel(FusedKernelKind::kScalar);
      return fn.ok() ? *fn : nullptr;
    }
    case ScanEngine::kAvx2Fused128: {
      auto fn = GetFusedScanKernel(FusedKernelKind::kAvx2_128);
      return fn.ok() ? *fn : nullptr;
    }
    case ScanEngine::kAvx512Fused128: {
      auto fn = GetFusedScanKernel(FusedKernelKind::kAvx512_128);
      return fn.ok() ? *fn : nullptr;
    }
    case ScanEngine::kAvx512Fused256: {
      auto fn = GetFusedScanKernel(FusedKernelKind::kAvx512_256);
      return fn.ok() ? *fn : nullptr;
    }
    case ScanEngine::kAvx512Fused512: {
      auto fn = GetFusedScanKernel(FusedKernelKind::kAvx512_512);
      return fn.ok() ? *fn : nullptr;
    }
    default:
      return nullptr;  // kBlockwise / kJit are modeled, not measured.
  }
}

// Solves the three-point system described in cost_profile.h for one
// (engine, class): t(sel) = first + sel * emit for a single stage, and a
// two-stage chain with a pass-all first stage adds one full-width rest
// term. `emit` is shared across classes (output side), so it is passed in
// for every class after kPlain32.
struct ClassConstants {
  double first_ns = 0.0;
  double rest_ns = 0.0;
  double emit_ns = 0.0;
};

ClassConstants MeasureClass(CollectFn fn, CountFn count_fn,
                            const ClassFixture& fixture, EncClass enc,
                            int reps, double shared_emit) {
  const size_t rows = fixture.rows;
  const ScanStage half = fixture.StageFor(enc, 0.5);
  const ScanStage full = fixture.StageFor(enc, 1.0);

  // One warm output buffer across runs: the constants price the kernel
  // itself. (Execute also provisions a fresh PosList per chunk; that cost
  // is allocator- and size-dependent, so it is deliberately left out of
  // the per-row constants rather than folded in as noise.)
  AlignedVector<uint32_t> out(rows + kScanOutputSlack);
  const auto collect = [&](const ScanStage* stages, size_t n) {
    return fn(stages, n, rows, out.data());
  };
  const double t_half =
      MeasureNsPerUnit(rows, reps, [&] { return collect(&half, 1); });
  const double t_full =
      MeasureNsPerUnit(rows, reps, [&] { return collect(&full, 1); });
  const ScanStage two[2] = {full, half};
  const double t_two =
      MeasureNsPerUnit(rows, reps, [&] { return collect(two, 2); });

  ClassConstants c;
  if (shared_emit >= 0.0) {
    c.emit_ns = shared_emit;
  } else if (count_fn != nullptr) {
    // Branchy SISD loops run *slower* at sel=0.5 than sel=1.0 (the
    // mispredicts swamp the store), so the half-vs-full slope clamps to
    // zero. The count twin is the same loop minus the output store:
    // collect-minus-count at full selectivity isolates the emit cost on
    // two branch-free runs.
    const double t_count = MeasureNsPerUnit(rows, reps, [&] {
      return count_fn(&full, 1, rows);
    });
    c.emit_ns = std::max(0.02, t_full - t_count);
  } else {
    c.emit_ns = std::max(0.0, (t_full - t_half) / 0.5);
  }
  c.first_ns = std::max(0.05, t_half - 0.5 * c.emit_ns);
  c.rest_ns = std::max(0.02, t_two - c.first_ns - 0.5 * c.emit_ns);
  return c;
}

// After per-engine measurement, derive the JIT row model from the best
// measured fused engine (the generated code uses the same instruction
// pattern minus the interpretation overhead).
void FinalizeDerived(CostProfile* profile) {
  static constexpr ScanEngine kFusedPreference[] = {
      ScanEngine::kAvx512Fused512, ScanEngine::kAvx512Fused256,
      ScanEngine::kAvx512Fused128, ScanEngine::kAvx2Fused128,
      ScanEngine::kScalarFused};
  for (ScanEngine source : kFusedPreference) {
    const EngineCostConstants& best = profile->For(source);
    if (!best.available) continue;
    EngineCostConstants& jit =
        profile->engines[static_cast<size_t>(ScanEngine::kJit)];
    jit.available = true;
    for (size_t e = 0; e < kNumEncClasses; ++e) {
      jit.first_ns[e] = best.first_ns[e] * profile->jit_speed_factor;
      jit.rest_ns[e] = best.rest_ns[e] * profile->jit_speed_factor;
    }
    jit.emit_ns = best.emit_ns * profile->jit_speed_factor;
    return;
  }
}

void MeasureCompressedConstants(CostProfile* profile, size_t rows,
                                int reps) {
  // RLE: classify one run and account its length — the per-run work of
  // BuildCompressedStageRanges' RLE path.
  const size_t runs = std::max<size_t>(rows / 4, 1024);
  std::vector<uint32_t> run_values(runs);
  std::vector<uint32_t> run_ends(runs);
  uint32_t state = 0xabcd1234u;
  uint32_t end = 0;
  for (size_t r = 0; r < runs; ++r) {
    run_values[r] = Lcg(state) % ClassFixture::kDomain;
    end += 1 + (Lcg(state) % 7);
    run_ends[r] = end;
  }
  profile->rle_run_ns = MeasureNsPerUnit(runs, reps, [&] {
    uint64_t total = 0;
    uint32_t prev = 0;
    for (size_t r = 0; r < runs; ++r) {
      if (EvaluateCompare(CompareOp::kLt, run_values[r],
                          ClassFixture::kDomain / 2)) {
        total += run_ends[r] - prev;
      }
      prev = run_ends[r];
    }
    return static_cast<size_t>(total);
  });

  // Position emission from candidate ranges: the `out[count++] = row`
  // expansion loop every compressed chunk shares (compressed_scan.cc),
  // and what a zone-decided always-true chunk pays per row. Segmented
  // spans with random gaps, not one full iota: real candidate lists stop
  // and restart, which costs loop prologues and boundary mispredicts.
  {
    std::vector<std::pair<uint32_t, uint32_t>> spans;
    size_t emitted = 0;
    constexpr uint32_t kSpan = 512;
    for (uint32_t pos = 0; pos + kSpan <= rows; pos += kSpan) {
      if (Lcg(state) & 1u) {
        spans.emplace_back(pos, pos + kSpan);
        emitted += kSpan;
      }
    }
    if (emitted > 0) {
      AlignedVector<uint32_t> out(rows + kScanOutputSlack);
      profile->compressed_emit_ns = MeasureNsPerUnit(emitted, reps, [&] {
        size_t count = 0;
        for (const auto& span : spans) {
          for (uint32_t row = span.first; row < span.second; ++row) {
            out[count++] = row;
          }
        }
        return count;
      });
    }
  }

  // Delta: block classification from stored min/max, and per-row prefix
  // reconstruction + compare for maybe-blocks.
  AlignedVector<int64_t> values(rows);
  int64_t acc = 0;
  for (size_t i = 0; i < rows; ++i) {
    acc += static_cast<int64_t>(Lcg(state) % 5);
    values[i] = acc;
  }
  auto column = DeltaColumn<int64_t>::TryFromValues(values);
  if (column.has_value()) {
    const auto& blocks = column->blocks();
    const int64_t needle = values[rows / 2];
    profile->delta_block_ns =
        MeasureNsPerUnit(blocks.size(), reps, [&] {
          size_t maybe = 0;
          for (const auto& meta : blocks) {
            maybe += (meta.min < needle && needle <= meta.max) ? 1 : 0;
          }
          return maybe;
        });
    std::vector<int64_t> buf(kDeltaBlockRows);
    profile->delta_row_ns = MeasureNsPerUnit(rows, reps, [&] {
      size_t matches = 0;
      for (size_t b = 0; b < blocks.size(); ++b) {
        const size_t n = column->DecodeBlock(b, buf.data());
        for (size_t i = 0; i < n; ++i) matches += buf[i] < needle ? 1 : 0;
      }
      return matches;
    });
  }
}

}  // namespace

const char* EncClassName(EncClass enc) {
  return kEncNames[static_cast<size_t>(enc)];
}

std::string CostProfile::Serialize() const {
  std::ostringstream out;
  out << "fts-cost-profile v" << version << "\n";
  out << "cpu " << cpu << "\n";
  out << "calibrated " << (calibrated ? 1 : 0) << "\n";
  for (size_t i = 0; i < kNumEngines; ++i) {
    const EngineCostConstants& e = engines[i];
    if (!e.available) continue;
    out << "engine " << kEngineNames[i];
    out << " first";
    for (double v : e.first_ns) out << ' ' << v;
    out << " rest";
    for (double v : e.rest_ns) out << ' ' << v;
    out << " emit " << e.emit_ns << "\n";
  }
  out << "rle_run_ns " << rle_run_ns << "\n";
  out << "delta_block_ns " << delta_block_ns << "\n";
  out << "delta_row_ns " << delta_row_ns << "\n";
  out << "compressed_emit_ns " << compressed_emit_ns << "\n";
  out << "jit_speed_factor " << jit_speed_factor << "\n";
  out << "jit_compile_millis " << jit_compile_millis << "\n";
  return out.str();
}

StatusOr<CostProfile> CostProfile::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("empty cost profile");
  }
  CostProfile profile;
  if (std::sscanf(header.c_str(), "fts-cost-profile v%d",
                  &profile.version) != 1) {
    return Status::InvalidArgument("cost profile missing header line");
  }
  if (profile.version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("cost profile version %d != expected %d", profile.version,
                  kVersion));
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "cpu") {
      std::string rest;
      std::getline(fields, rest);
      profile.cpu = rest.empty() ? rest : rest.substr(1);
    } else if (key == "calibrated") {
      int flag = 0;
      fields >> flag;
      profile.calibrated = flag != 0;
    } else if (key == "engine") {
      std::string name;
      fields >> name;
      size_t index = kNumEngines;
      for (size_t i = 0; i < kNumEngines; ++i) {
        if (name == kEngineNames[i]) index = i;
      }
      if (index == kNumEngines) {
        return Status::InvalidArgument(
            StrFormat("cost profile names unknown engine '%s'",
                      name.c_str()));
      }
      EngineCostConstants& e = profile.engines[index];
      e.available = true;
      std::string tag;
      fields >> tag;  // "first"
      for (double& v : e.first_ns) fields >> v;
      fields >> tag;  // "rest"
      for (double& v : e.rest_ns) fields >> v;
      fields >> tag;  // "emit"
      fields >> e.emit_ns;
      if (!fields) {
        return Status::InvalidArgument(StrFormat(
            "cost profile engine line for '%s' is malformed", name.c_str()));
      }
    } else if (key == "rle_run_ns") {
      fields >> profile.rle_run_ns;
    } else if (key == "delta_block_ns") {
      fields >> profile.delta_block_ns;
    } else if (key == "delta_row_ns") {
      fields >> profile.delta_row_ns;
    } else if (key == "compressed_emit_ns") {
      fields >> profile.compressed_emit_ns;
    } else if (key == "jit_speed_factor") {
      fields >> profile.jit_speed_factor;
    } else if (key == "jit_compile_millis") {
      fields >> profile.jit_compile_millis;
    } else {
      return Status::InvalidArgument(
          StrFormat("cost profile has unknown key '%s'", key.c_str()));
    }
  }
  return profile;
}

CostProfile CostProfile::Defaults() {
  CostProfile profile;
  profile.cpu = GetCpuFeatures().ToString();
  profile.calibrated = false;
  auto set = [&](ScanEngine engine, std::array<double, 3> first,
                 std::array<double, 3> rest, double emit) {
    EngineCostConstants& e = profile.engines[static_cast<size_t>(engine)];
    e.available = true;
    e.first_ns = first;
    e.rest_ns = rest;
    e.emit_ns = emit;
  };
  // Ballpark Skylake-SP numbers (paper Fig. 5 shapes): good enough to
  // rank chains, not to predict wall time.
  set(ScanEngine::kSisdNoVec, {1.6, 1.8, 6.0}, {1.2, 1.4, 5.0}, 0.5);
  set(ScanEngine::kSisdAutoVec, {0.9, 1.1, 6.0}, {0.9, 1.1, 5.0}, 0.5);
  set(ScanEngine::kScalarFused, {1.5, 1.7, 5.5}, {1.7, 1.9, 5.5}, 1.0);
  const CpuFeatures& cpu = GetCpuFeatures();
  if (cpu.avx2) {
    set(ScanEngine::kAvx2Fused128, {0.5, 1.0, 1.5}, {0.9, 1.3, 1.7}, 0.4);
  }
  if (cpu.HasFusedScanAvx512()) {
    set(ScanEngine::kAvx512Fused128, {0.45, 0.9, 1.3}, {0.8, 1.1, 1.5},
        0.35);
    set(ScanEngine::kAvx512Fused256, {0.32, 0.65, 1.0}, {0.65, 0.95, 1.25},
        0.3);
    set(ScanEngine::kAvx512Fused512, {0.22, 0.5, 0.85}, {0.55, 0.85, 1.1},
        0.25);
  }
  FinalizeDerived(&profile);
  return profile;
}

CostProfile CostProfile::Calibrate() {
  // Full calibration streams 8 MiB per plain32 column — past L2 on every
  // target CPU — so the constants reflect the memory-bound regime real
  // scans run in, not an L2-resident toy. Fast mode trades that fidelity
  // for a ~20 ms startup (tests, CI smoke).
  const bool fast = GetEnvBool("FTS_CALIBRATE_FAST", false);
  const size_t rows = fast ? (size_t{1} << 14) : (size_t{1} << 21);
  const int reps = fast ? 2 : 3;

  CostProfile profile;
  profile.cpu = GetCpuFeatures().ToString();
  profile.calibrated = true;

  const ClassFixture fixture = ClassFixture::Build(rows);
  static constexpr ScanEngine kMeasured[] = {
      ScanEngine::kSisdNoVec,     ScanEngine::kSisdAutoVec,
      ScanEngine::kScalarFused,   ScanEngine::kAvx2Fused128,
      ScanEngine::kAvx512Fused128, ScanEngine::kAvx512Fused256,
      ScanEngine::kAvx512Fused512};
  for (ScanEngine engine : kMeasured) {
    CollectFn fn = CollectFnFor(engine);
    if (fn == nullptr) continue;
    EngineCostConstants& e = profile.engines[static_cast<size_t>(engine)];
    e.available = true;
    double shared_emit = -1.0;
    for (size_t c = 0; c < kNumEncClasses; ++c) {
      const ClassConstants constants =
          MeasureClass(fn, CountFnFor(engine), fixture,
                       static_cast<EncClass>(c), reps, shared_emit);
      e.first_ns[c] = constants.first_ns;
      e.rest_ns[c] = constants.rest_ns;
      if (c == 0) {
        e.emit_ns = constants.emit_ns;
        shared_emit = constants.emit_ns;
      }
    }
  }
  MeasureCompressedConstants(&profile, rows, reps);
  FinalizeDerived(&profile);
  return profile;
}

const CostProfile& DefaultProfile() {
  static const CostProfile profile = CostProfile::Defaults();
  return profile;
}

const CostProfile& CalibratedProfile() {
  static const CostProfile profile = [] {
    const std::string path = GetEnvString("FTS_COST_PROFILE", "");
    if (!path.empty()) {
      std::ifstream in(path);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        auto parsed = CostProfile::Parse(text.str());
        if (parsed.ok() && parsed->calibrated &&
            parsed->cpu == GetCpuFeatures().ToString()) {
          return *std::move(parsed);
        }
      }
    }
    // Calibrate on a dedicated, labelled thread so the multi-second
    // microbenchmark shows up as its own named Perfetto track instead of
    // an anonymous stall on whichever query thread asked first. The join
    // keeps the blocking semantics callers rely on.
    CostProfile measured;
    std::thread calibrator([&measured] {
      obs::SetCurrentThreadLabel("cost calibrator");
      obs::TraceSpan span("cost_calibrate", "cost");
      measured = CostProfile::Calibrate();
    });
    calibrator.join();
    if (!path.empty()) {
      std::ofstream out(path, std::ios::trunc);
      if (out) out << measured.Serialize();  // Best effort.
    }
    return measured;
  }();
  return profile;
}

bool AdaptiveEnabled() {
  // Re-read every call (it is consulted once per Prepare): the
  // determinism fuzzers toggle FTS_ADAPTIVE within one process.
  return GetEnvBool("FTS_ADAPTIVE", true);
}

}  // namespace cost
}  // namespace fts
