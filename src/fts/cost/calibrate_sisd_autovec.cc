// "SISD (auto vec)" calibration twin — plain -O3, mirroring
// scan/sisd_scan_autovec.cc.
#include "fts/cost/calibrate_sisd.h"

#define FTS_SISD_PREFIX CostAutoVec
#include "fts/scan/sisd_scan_impl.inc.h"
