#ifndef FTS_PLAN_TRANSLATOR_H_
#define FTS_PLAN_TRANSLATOR_H_

#include "fts/common/status.h"
#include "fts/plan/lqp.h"
#include "fts/plan/physical_plan.h"
#include "fts/scan/scan_engine.h"

namespace fts {

// Execution-engine selection for the translator (Fig. 9: the LQP
// Translator chooses the actual operator implementations; for fused-scan
// chains it "invokes the JIT compiler").
struct TranslatorOptions {
  // Engine used for FusedScanNodes and single predicates.
  ScanEngine engine = ScanEngine::kAvx512Fused512;
  int jit_register_bits = 512;
  // Runtime demotion behavior when the engine fails (see scan_engine.h).
  FallbackPolicy fallback = FallbackPolicy::kLadder;
  // Worker threads for the morsel-driven first scan step (0 = FTS_THREADS
  // env, defaulting to single-threaded).
  int threads = 0;
  // Fold eligible aggregate projections inside the scan kernels (masked
  // SIMD accumulators; no position list). Disabled, every aggregate runs
  // the materialize-then-aggregate path — the bench harness uses this to
  // measure the pushdown speedup.
  bool enable_aggregate_pushdown = true;
  // Query lifecycle context (fts/common/query_context.h); threaded into
  // every ScanStep's spec and the plan itself so deadlines, cancellation
  // and the memory budget reach the scan/JIT/parallel layers. Borrowed —
  // must outlive plan execution.
  QueryContext* context = nullptr;
  // Allow the calibrated cost model to pick the scan engine per chunk
  // (ScanSpec::adaptive, DESIGN.md §14). The Database layer sets this when
  // the caller left QueryOptions::engine unset — an explicit engine is a
  // pin the model must not override.
  bool adaptive = false;
};

// Lowers an (optimized) LQP chain into a PhysicalPlan.
//   - FusedScanNode         -> one multi-predicate ScanStep (`engine`).
//   - PredicateNode         -> one single-predicate ScanStep; the first
//                              runs `engine` over full chunks, later ones
//                              refine position lists (non-fused plans).
//   - Projection/Aggregate  -> the plan's output step.
StatusOr<PhysicalPlan> TranslateLqp(const LqpNodePtr& root,
                                    const TranslatorOptions& options = {});

}  // namespace fts

#endif  // FTS_PLAN_TRANSLATOR_H_
