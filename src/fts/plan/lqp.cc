#include "fts/plan/lqp.h"

#include "fts/common/string_util.h"

namespace fts {

std::string StoredTableNode::Description() const {
  return StrFormat("StoredTable: %s (%llu rows, %zu chunks)", name_.c_str(),
                   static_cast<unsigned long long>(table_->row_count()),
                   table_->chunk_count());
}

std::string PredicateNode::Description() const {
  std::string out = "Predicate: " + predicate_.ToString();
  if (estimated_selectivity_.has_value()) {
    out += StrFormat(" (est. sel %.4g%%)", *estimated_selectivity_ * 100.0);
  }
  return out;
}

std::string FusedScanNode::Description() const {
  std::vector<std::string> parts;
  parts.reserve(predicates_.size());
  for (const auto& predicate : predicates_) {
    parts.push_back(predicate.ToString());
  }
  return "FusedScan: " + Join(parts, " AND ");
}

std::string ProjectionNode::Description() const {
  std::string out =
      select_all_ ? "Projection: *" : ("Projection: " + Join(columns_, ", "));
  if (order_by_.has_value()) {
    out += StrFormat(" ORDER BY %s%s", order_by_->c_str(),
                     order_descending_ ? " DESC" : "");
  }
  if (limit_.has_value()) {
    out += StrFormat(" LIMIT %llu",
                     static_cast<unsigned long long>(*limit_));
  }
  return out;
}

std::string AggregateNode::Description() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const AggregateItem& item : items_) parts.push_back(item.ToString());
  return "Aggregate: " + Join(parts, ", ");
}

std::string EmptyResultNode::Description() const {
  return "EmptyResult: " + reason_;
}

std::string ExplainLqp(const LqpNodePtr& root) {
  std::string out;
  int depth = 0;
  for (LqpNodePtr node = root; node != nullptr; node = node->child()) {
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    out += node->Description();
    out += '\n';
    ++depth;
  }
  return out;
}

StatusOr<LqpNodePtr> BuildLqp(const SelectStatement& statement,
                              const std::string& table_name,
                              TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");

  // Validate column references early for direct error positions.
  for (const auto& predicate : statement.predicates) {
    FTS_RETURN_IF_ERROR(table->ColumnIndex(predicate.column).status());
  }
  for (const auto& item : statement.aggregates) {
    if (item.kind != AggregateKind::kCountStar) {
      FTS_RETURN_IF_ERROR(table->ColumnIndex(item.column).status());
    }
  }
  if (statement.aggregates.empty() && !statement.select_all) {
    for (const auto& column : statement.columns) {
      FTS_RETURN_IF_ERROR(table->ColumnIndex(column).status());
    }
  }
  if (statement.order_by.has_value()) {
    FTS_RETURN_IF_ERROR(table->ColumnIndex(*statement.order_by).status());
  }

  LqpNodePtr chain =
      std::make_shared<StoredTableNode>(table_name, std::move(table));

  // Predicates in query order, first predicate closest to the table.
  for (const auto& predicate : statement.predicates) {
    auto node = std::make_shared<PredicateNode>(predicate);
    node->set_child(std::move(chain));
    chain = std::move(node);
  }

  if (!statement.aggregates.empty()) {
    auto aggregate = std::make_shared<AggregateNode>(statement.aggregates);
    aggregate->set_child(std::move(chain));
    return LqpNodePtr(std::move(aggregate));
  }
  auto projection = std::make_shared<ProjectionNode>(statement.columns,
                                                     statement.select_all);
  if (statement.order_by.has_value()) {
    projection->set_order_by(*statement.order_by,
                             statement.order_descending);
  }
  if (statement.limit.has_value()) projection->set_limit(*statement.limit);
  projection->set_child(std::move(chain));
  return LqpNodePtr(std::move(projection));
}

const StoredTableNode* FindStoredTable(const LqpNodePtr& root) {
  for (LqpNode* node = root.get(); node != nullptr;
       node = node->child().get()) {
    if (node->kind() == LqpNodeKind::kStoredTable) {
      return static_cast<const StoredTableNode*>(node);
    }
  }
  return nullptr;
}

}  // namespace fts
