#ifndef FTS_PLAN_PHYSICAL_PLAN_H_
#define FTS_PLAN_PHYSICAL_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/scan/scan_engine.h"
#include "fts/scan/scan_spec.h"
#include "fts/sql/ast.h"
#include "fts/storage/columnar_result.h"
#include "fts/storage/pos_list.h"
#include "fts/storage/table.h"

namespace fts {

// Result of executing a query.
struct QueryResult {
  std::vector<std::string> column_names;
  // Boxed rows: aggregate outputs, and projections materialized by the
  // tuple-at-a-time reference path (SISD engines, FTS_GATHER=0). Empty for
  // COUNT(*) and for columnar projections.
  std::vector<std::vector<Value>> rows;
  // Late-materialized projection: typed column buffers filled by the SIMD
  // batch-gather pipeline (fts/scan/projection_gather.h). Authoritative
  // when `columnar_valid` is true — `rows` then stays empty and boxed
  // Values are produced on demand at the API/shell boundary (ValueAt).
  ColumnarResult columnar;
  bool columnar_valid = false;
  // COUNT(*) value when the query aggregates.
  std::optional<uint64_t> count;
  // Rows matched by the scan pipeline (== rows.size() for projections).
  uint64_t matched_rows = 0;
  // Which scan engine actually ran and why it was (or was not) demoted
  // from the requested one — see FallbackPolicy in fts/scan/scan_engine.h.
  ExecutionReport execution_report;
  // Non-empty for EXPLAIN / EXPLAIN ANALYZE: the rendered (annotated)
  // plan. ToString() returns it verbatim in that case.
  std::string explain_text;

  // Output rows regardless of representation.
  size_t RowCountOut() const {
    return columnar_valid ? columnar.row_count() : rows.size();
  }
  // Boxed value at (row, column) regardless of representation. This is the
  // deferred-materialization point: columnar results box exactly the cells
  // a consumer actually reads.
  Value ValueAt(size_t row, size_t column) const {
    return columnar_valid ? columnar.ValueAt(row, column)
                          : rows[row][column];
  }

  // Renders a small result table (examples/debugging).
  std::string ToString(size_t max_rows = 20) const;
};

// Executable plan for the supported query family (Fig. 9: the LQP
// Translator turns logical nodes into executable operators). Linear:
// a scan pipeline over one table followed by an output step.
struct PhysicalPlan {
  TablePtr table;
  std::string table_name;

  // One scan step. A step with multiple predicates runs as a single fused
  // operator (static kernels or JIT); SISD plans carry one step per
  // predicate, each refining the previous step's position list — the
  // left-hand, non-fused plan of Fig. 8.
  struct ScanStep {
    ScanSpec spec;
    ScanEngine engine = ScanEngine::kAvx512Fused512;
    int jit_register_bits = 512;  // Only for engine == kJit.
  };
  std::vector<ScanStep> scan_steps;

  // What to do when a scan step's engine fails at runtime (e.g. the JIT
  // compiler is missing): demote along DegradationLadder() or fail.
  FallbackPolicy fallback = FallbackPolicy::kLadder;

  // Worker threads for the first (full-chunk) scan step, executed
  // morsel-driven over chunks when > 1 (fts/exec/parallel_scan.h).
  // 0 = resolve from FTS_THREADS, defaulting to single-threaded; results
  // are byte-identical for every value.
  int threads = 0;

  // Query lifecycle context (fts/common/query_context.h), mirrored into
  // every scan step's spec by the translator. ExecutePlan checks it
  // between plan steps (and the scan layers check it at every chunk /
  // morsel / rung boundary); null runs the plan without lifecycle checks.
  // Borrowed — must outlive execution.
  QueryContext* context = nullptr;

  // Collect per-scan microarchitectural counters into the report: a PMU
  // read (perf_event_open) when the host exposes one, else a
  // branch-predictor-simulator replay of the first scan step. The
  // simulator is O(rows), so this is opt-in (EXPLAIN ANALYZE sets it).
  bool collect_counters = false;

  enum class Output : uint8_t { kCountStar, kAggregate, kProject };
  Output output = Output::kCountStar;
  // Set when the optimizer proved the conjunction contradictory: the plan
  // returns zero rows without scanning.
  bool empty_result = false;
  // Resolved projection column indexes/names (output == kProject).
  std::vector<size_t> projection_indexes;
  std::vector<std::string> projection_names;
  // Aggregate projection (output == kAggregate; kCountStar is the
  // single-COUNT(*) special case with its own fast path).
  std::vector<AggregateItem> aggregate_items;
  // Aggregate pushdown (output == kAggregate, set by the translator for
  // eligible plans): a copy of the single scan step (or a predicate-less
  // step when the query has no WHERE) whose spec.aggregates carry the fold
  // terms, deduplicated by (op, column) with AVG lowered to SUM — every
  // term tracks its own match count, so AVG finalizes as sum/count.
  // `pushdown_bindings[i]` is the term index answering aggregate_items[i].
  // When set, the executor folds aggregates inside the scan kernels and
  // never materializes a position list.
  std::optional<ScanStep> pushdown_step;
  std::vector<int> pushdown_bindings;
  // ORDER BY / LIMIT for projection outputs.
  std::optional<size_t> order_by_index;
  bool order_descending = false;
  std::optional<uint64_t> limit;

  std::string Explain() const;
};

// Runs the plan. The first step scans full chunks; subsequent steps refine
// the surviving position lists tuple-at-a-time.
StatusOr<QueryResult> ExecutePlan(const PhysicalPlan& plan);

// Renders the physical plan annotated with the actuals recorded in
// `result.execution_report`: per-stage rows and wall time, the engine per
// morsel, zone-map pruning, JIT compile/cache status, and — when collected
// — branch-miss/cycle counters with their source labelled. This is the
// body of EXPLAIN ANALYZE output.
std::string RenderExplainAnalyze(const PhysicalPlan& plan,
                                 const QueryResult& result);

}  // namespace fts

#endif  // FTS_PLAN_PHYSICAL_PLAN_H_
