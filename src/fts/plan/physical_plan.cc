#include "fts/plan/physical_plan.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>
#include <optional>

#include "fts/common/query_context.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/cost/cost_model.h"
#include "fts/exec/parallel_project.h"
#include "fts/exec/parallel_scan.h"
#include "fts/exec/task_pool.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/obs/metrics.h"
#include "fts/obs/trace.h"
#include "fts/perf/branch_predictor.h"
#include "fts/perf/counter_attribution.h"
#include "fts/scan/table_scan.h"

namespace fts {
namespace {

// Worker threads for a scan step: the step's spec hint, then the plan
// default, then FTS_THREADS; an unset chain stays single-threaded so
// plain queries keep the serial execution path (and its reports) exactly.
int ResolveStepThreads(const PhysicalPlan& plan,
                       const PhysicalPlan::ScanStep& step) {
  int threads = step.spec.threads != 0 ? step.spec.threads : plan.threads;
  if (threads == 0) threads = TaskPool::ThreadCountFromEnv(1);
  return threads;
}

// The requested rung for the parallel executor. Static engines carry no
// register width (EngineChoice contract).
EngineChoice StepEngineChoice(const PhysicalPlan::ScanStep& step) {
  return {step.engine,
          step.engine == ScanEngine::kJit ? step.jit_register_bits : 0};
}

// Applies `spec` to an existing position list, evaluating predicates
// row-at-a-time at the surviving positions (the materialize-and-refine
// execution of non-fused plans).
StatusOr<TableMatches> RefineMatches(const TablePtr& table,
                                     const ScanSpec& spec,
                                     const TableMatches& previous,
                                     double* est_selectivity) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, spec));
  if (est_selectivity != nullptr) {
    // The refine predicate's whole-table selectivity under the model's
    // zone-map estimates: what fraction of rows reaching this step
    // survive it (independence assumption).
    uint64_t rows = 0;
    for (const TableScanner::ChunkPlan& plan : scanner.chunk_plans()) {
      rows += plan.row_count;
    }
    *est_selectivity =
        rows > 0 ? scanner.est_rows() / static_cast<double>(rows) : 1.0;
  }
  TableMatches refined;
  refined.chunks.reserve(previous.chunks.size());
  for (const ChunkMatches& chunk_matches : previous.chunks) {
    FTS_RETURN_IF_ERROR(CheckCancellation(spec.context));
    const TableScanner::ChunkPlan& plan =
        scanner.chunk_plans()[chunk_matches.chunk_id];
    ChunkMatches out;
    out.chunk_id = chunk_matches.chunk_id;
    if (plan.impossible) {
      refined.chunks.push_back(std::move(out));
      continue;
    }
    if (plan.stages.empty() && plan.compressed.empty()) {
      out.positions = chunk_matches.positions;
      refined.chunks.push_back(std::move(out));
      continue;
    }
    out.positions.reserve(chunk_matches.positions.size());
    for (const uint32_t pos : chunk_matches.positions) {
      bool all = true;
      for (const ScanStage& stage : plan.stages) {
        if (!EvaluateStageAtRow(stage, pos)) {
          all = false;
          break;
        }
      }
      // Predicates on RLE/delta columns live in plan.compressed, not
      // plan.stages — a refine step must evaluate those too or the
      // conjunct is silently dropped.
      for (size_t s = 0; all && s < plan.compressed.size(); ++s) {
        all = EvaluateCompressedStageAtRow(plan.compressed[s], pos);
      }
      if (all) out.positions.push_back(pos);
    }
    refined.chunks.push_back(std::move(out));
  }
  return refined;
}

// Evaluates the aggregate projection over the matched rows. Integer
// columns accumulate in int64/uint64, floats in double; AVG always in
// double. Per SQL semantics, MIN/MAX/AVG over zero matched rows yield
// NULL; SUM stays a typed 0 and COUNT(*) a plain 0.
std::vector<Value> ComputeAggregates(
    const Table& table, const TableMatches& matches,
    const std::vector<AggregateItem>& items) {
  std::vector<Value> results;
  results.reserve(items.size());
  const uint64_t matched = matches.TotalMatches();

  for (const AggregateItem& item : items) {
    if (item.kind == AggregateKind::kCountStar) {
      results.emplace_back(static_cast<uint64_t>(matched));
      continue;
    }
    const size_t column_index = *table.ColumnIndex(item.column);
    const DataType type = table.column_definition(column_index).type;

    // Typed accumulation over the matched positions of every chunk.
    DispatchDataType(type, [&](auto tag) {
      using T = decltype(tag);
      using Acc = std::conditional_t<
          std::is_floating_point_v<T>, double,
          std::conditional_t<std::is_signed_v<T>, int64_t, uint64_t>>;
      Acc sum{};
      double avg_sum = 0.0;
      bool any = false;
      T min_value{};
      T max_value{};
      for (const ChunkMatches& chunk : matches.chunks) {
        const BaseColumn& column =
            table.chunk(chunk.chunk_id).column(column_index);
        for (const uint32_t pos : chunk.positions) {
          const T value = ValueAs<T>(column.GetValue(pos));
          sum += static_cast<Acc>(value);
          avg_sum += static_cast<double>(value);
          if (!any || value < min_value) min_value = value;
          if (!any || value > max_value) max_value = value;
          any = true;
        }
      }
      switch (item.kind) {
        case AggregateKind::kSum:
          results.emplace_back(sum);
          break;
        case AggregateKind::kMin:
          results.push_back(any ? Value(min_value) : NullValue());
          break;
        case AggregateKind::kMax:
          results.push_back(any ? Value(max_value) : NullValue());
          break;
        case AggregateKind::kAvg:
          results.push_back(matched == 0
                                ? NullValue()
                                : Value(avg_sum /
                                        static_cast<double>(matched)));
          break;
        case AggregateKind::kCountStar:
          break;  // Handled above.
      }
    });
  }
  return results;
}

// Folds one serial (calling-thread) measured region into the report's
// whole-query counters. `choice` attributes the region to the engine that
// executed it; null for engine-less regions (refine steps). No-op when the
// region produced no valid delta (PMU absent or a read failed).
void AccumulateSerialCounters(const CounterDelta& delta,
                              const EngineChoice* choice,
                              ExecutionReport* report) {
  if (!delta.valid) return;
  ScanCounters& sc = report->counters;
  sc.source = CounterSource::kHardware;
  sc.detail = "perf_event_open";
  sc.cycles += delta.cycles;
  sc.instructions += delta.instructions;
  sc.branches += delta.branches;
  sc.branch_misses += delta.branch_misses;
  if (choice != nullptr) {
    report->AttributeEngineCounters(*choice, delta.cycles, delta.instructions,
                                    delta.branches, delta.branch_misses);
  }
}

// Runs the plan's first (full-chunk) scan step under the fallback policy,
// demoting along DegradationLadder() when the requested engine fails and
// recording every attempt in `report`. The JIT engine carries its own
// internal ladder (narrow widths before static kernels); static engines
// walk the ladder here. When `collect` is set, the parallel path measures
// per worker per morsel and the serial/JIT paths run inside a counter
// region on the calling thread.
StatusOr<TableMatches> RunFirstStep(const TablePtr& table,
                                    const PhysicalPlan::ScanStep& step,
                                    FallbackPolicy policy, int threads,
                                    bool collect, ExecutionReport* report) {
  if (threads > 1 && table->chunk_count() > 1) {
    // Morsel-driven parallel path: per-chunk morsels on the task pool,
    // per-morsel degradation, byte-identical output (fts/exec).
    FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                         TableScanner::Prepare(table, step.spec));
    ParallelScanOptions options;
    options.requested = StepEngineChoice(step);
    options.fallback = policy;
    options.threads = threads;
    options.collect_counters = collect;
    return ExecuteParallelScan(scanner, options, report);
  }
  if (step.engine == ScanEngine::kJit) {
    JitScanEngine engine(step.jit_register_bits, &GlobalJitCache(), policy);
    CounterRegion region(collect);
    StatusOr<TableMatches> result = engine.Execute(table, step.spec, report);
    if (result.ok()) {
      AccumulateSerialCounters(region.Finish(), &report->executed, report);
    }
    return result;
  }
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, step.spec));
  report->requested = {step.engine, 0};
  FillPruningReport(scanner, report);
  FillCompressedReport(scanner, report);
  FillAdaptiveReport(scanner, report);
  const std::vector<EngineChoice> rungs =
      policy == FallbackPolicy::kLadder
          ? DegradationLadder(step.engine, 0)
          : std::vector<EngineChoice>{{step.engine, 0}};
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    // Per-rung region: a failed rung's work never contaminates the
    // successful rung's attribution.
    CounterRegion region(collect);
    StatusOr<TableMatches> result = scanner.Execute(choice.engine);
    if (result.ok()) {
      AccumulateSerialCounters(region.Finish(), &choice, report);
      report->RecordSuccess(choice);
      // Refresh: counters accumulated during the successful rung.
      FillCompressedReport(scanner, report);
      FillAdaptiveReport(scanner, report);
      return result;
    }
    report->RecordFailure(choice, result.status());
    last = result.status();
  }
  return last;
}

// Count-only twin of RunFirstStep for the COUNT(*) fast path.
StatusOr<uint64_t> RunFirstStepCount(const TablePtr& table,
                                     const PhysicalPlan::ScanStep& step,
                                     FallbackPolicy policy, int threads,
                                     bool collect, ExecutionReport* report) {
  if (threads > 1 && table->chunk_count() > 1) {
    FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                         TableScanner::Prepare(table, step.spec));
    ParallelScanOptions options;
    options.requested = StepEngineChoice(step);
    options.fallback = policy;
    options.threads = threads;
    options.collect_counters = collect;
    return ExecuteParallelScanCount(scanner, options, report);
  }
  if (step.engine == ScanEngine::kJit) {
    JitScanEngine engine(step.jit_register_bits, &GlobalJitCache(), policy);
    CounterRegion region(collect);
    StatusOr<uint64_t> result = engine.ExecuteCount(table, step.spec, report);
    if (result.ok()) {
      AccumulateSerialCounters(region.Finish(), &report->executed, report);
    }
    return result;
  }
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, step.spec));
  report->requested = {step.engine, 0};
  FillPruningReport(scanner, report);
  FillCompressedReport(scanner, report);
  FillAdaptiveReport(scanner, report);
  const std::vector<EngineChoice> rungs =
      policy == FallbackPolicy::kLadder
          ? DegradationLadder(step.engine, 0)
          : std::vector<EngineChoice>{{step.engine, 0}};
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    CounterRegion region(collect);
    StatusOr<uint64_t> result = scanner.ExecuteCount(choice.engine);
    if (result.ok()) {
      AccumulateSerialCounters(region.Finish(), &choice, report);
      report->RecordSuccess(choice);
      // Refresh: counters accumulated during the successful rung.
      FillCompressedReport(scanner, report);
      FillAdaptiveReport(scanner, report);
      return result;
    }
    report->RecordFailure(choice, result.status());
    last = result.status();
  }
  return last;
}

// Aggregate-pushdown twin of RunFirstStep: the scan step's spec carries
// fold terms (spec.aggregates), so every rung computes partial
// accumulators per chunk and merges them in chunk order — no position
// list exists at any point.
StatusOr<TableScanner::AggResult> RunFirstStepAggregate(
    const TablePtr& table, const PhysicalPlan::ScanStep& step,
    FallbackPolicy policy, int threads, bool collect,
    ExecutionReport* report) {
  if (threads > 1 && table->chunk_count() > 1) {
    FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                         TableScanner::Prepare(table, step.spec));
    ParallelScanOptions options;
    options.requested = StepEngineChoice(step);
    options.fallback = policy;
    options.threads = threads;
    options.collect_counters = collect;
    return ExecuteParallelScanAggregate(scanner, options, report);
  }
  if (step.engine == ScanEngine::kJit) {
    JitScanEngine engine(step.jit_register_bits, &GlobalJitCache(), policy);
    CounterRegion region(collect);
    StatusOr<TableScanner::AggResult> result =
        engine.ExecuteAggregate(table, step.spec, report);
    if (result.ok()) {
      AccumulateSerialCounters(region.Finish(), &report->executed, report);
    }
    return result;
  }
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, step.spec));
  report->requested = {step.engine, 0};
  FillPruningReport(scanner, report);
  FillCompressedReport(scanner, report);
  FillAdaptiveReport(scanner, report);
  const std::vector<EngineChoice> rungs =
      policy == FallbackPolicy::kLadder
          ? DegradationLadder(step.engine, 0)
          : std::vector<EngineChoice>{{step.engine, 0}};
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    CounterRegion region(collect);
    StatusOr<TableScanner::AggResult> result =
        scanner.ExecuteAggregate(choice.engine);
    if (result.ok()) {
      AccumulateSerialCounters(region.Finish(), &choice, report);
      report->RecordSuccess(choice);
      // Refresh: counters accumulated during the successful rung.
      FillCompressedReport(scanner, report);
      FillAdaptiveReport(scanner, report);
      return result;
    }
    report->RecordFailure(choice, result.status());
    last = result.status();
  }
  return last;
}

// Turns the merged accumulators into the aggregate projection's output
// row, matching the materialize path's Value types exactly (typed SUM in
// int64/uint64/double, MIN/MAX in the column's own type, AVG in double)
// so the two paths are comparable value-for-value. MIN/MAX/AVG over zero
// matched rows yield NULL; SUM stays a typed 0 and COUNT(*) a plain 0.
StatusOr<std::vector<Value>> FinalizeAggregates(
    const Table& table, const std::vector<AggregateItem>& items,
    const std::vector<int>& bindings, const TableScanner::AggResult& agg) {
  if (bindings.size() != items.size()) {
    return Status::Internal("aggregate pushdown bindings out of sync");
  }
  std::vector<Value> results;
  results.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const AggregateItem& item = items[i];
    const size_t term = static_cast<size_t>(bindings[i]);
    if (term >= agg.accumulators.size()) {
      return Status::Internal("aggregate pushdown bindings out of sync");
    }
    const AggAccumulator& acc = agg.accumulators[term];
    if (item.kind == AggregateKind::kCountStar) {
      results.emplace_back(static_cast<uint64_t>(acc.count));
      continue;
    }
    FTS_ASSIGN_OR_RETURN(const size_t column_index,
                         table.ColumnIndex(item.column));
    const DataType type = table.column_definition(column_index).type;
    DispatchDataType(type, [&](auto tag) {
      using T = decltype(tag);
      constexpr bool kFloat = std::is_floating_point_v<T>;
      constexpr bool kSigned = std::is_signed_v<T> && !kFloat;
      switch (item.kind) {
        case AggregateKind::kSum:
          if constexpr (kFloat) {
            results.emplace_back(acc.sum_double);
          } else if constexpr (kSigned) {
            results.emplace_back(static_cast<int64_t>(acc.sum_bits));
          } else {
            results.emplace_back(static_cast<uint64_t>(acc.sum_bits));
          }
          break;
        case AggregateKind::kMin:
          if (acc.count == 0) {
            results.push_back(NullValue());
          } else if constexpr (kFloat) {
            results.emplace_back(static_cast<T>(acc.min_d));
          } else if constexpr (kSigned) {
            results.emplace_back(static_cast<T>(acc.min_i));
          } else {
            results.emplace_back(static_cast<T>(acc.min_u));
          }
          break;
        case AggregateKind::kMax:
          if (acc.count == 0) {
            results.push_back(NullValue());
          } else if constexpr (kFloat) {
            results.emplace_back(static_cast<T>(acc.max_d));
          } else if constexpr (kSigned) {
            results.emplace_back(static_cast<T>(acc.max_i));
          } else {
            results.emplace_back(static_cast<T>(acc.max_u));
          }
          break;
        case AggregateKind::kAvg: {
          if (acc.count == 0) {
            results.push_back(NullValue());
            break;
          }
          double sum;
          if constexpr (kFloat) {
            sum = acc.sum_double;
          } else if constexpr (kSigned) {
            sum = static_cast<double>(static_cast<int64_t>(acc.sum_bits));
          } else {
            sum = static_cast<double>(acc.sum_bits);
          }
          results.emplace_back(sum / static_cast<double>(acc.count));
          break;
        }
        case AggregateKind::kCountStar:
          break;  // Handled above.
      }
    });
  }
  return results;
}

StatusOr<TableMatches> RunStep(const TablePtr& table,
                               const PhysicalPlan::ScanStep& step,
                               const std::optional<TableMatches>& previous,
                               FallbackPolicy policy, int threads,
                               bool collect, size_t* measured_refines,
                               ExecutionReport* report,
                               double* refine_selectivity) {
  if (!previous.has_value()) {
    return RunFirstStep(table, step, policy, threads, collect, report);
  }
  // Later steps refine position lists tuple-at-a-time; no engine involved
  // — the measured region (always on the calling thread) is attributed to
  // the stage, not an engine.
  CounterRegion region(collect);
  StatusOr<TableMatches> refined =
      RefineMatches(table, step.spec, *previous, refine_selectivity);
  if (refined.ok()) {
    const CounterDelta delta = region.Finish();
    if (delta.valid) {
      AccumulateSerialCounters(delta, nullptr, report);
      if (measured_refines != nullptr) ++*measured_refines;
    }
  }
  return refined;
}

// Operator name used by both Explain() and the ANALYZE renderer.
const char* StepOpName(const PhysicalPlan::ScanStep& step) {
  return (step.spec.predicates.size() > 1 || step.engine == ScanEngine::kJit)
             ? "FusedTableScan"
             : "TableScan";
}

// --- Scan counter collection ----------------------------------------------

// Lanes the fused-branch replay models for the executed engine; 0 selects
// the SISD (tuple-at-a-time) replay. The scalar fused kernel keeps the
// fused control structure at the narrowest width, so it maps to 4 lanes.
int ReplayLanesFor(const EngineChoice& choice) {
  switch (choice.engine) {
    case ScanEngine::kSisdNoVec:
    case ScanEngine::kSisdAutoVec:
    case ScanEngine::kBlockwise:
      return 0;
    case ScanEngine::kScalarFused:
    case ScanEngine::kAvx2Fused128:
    case ScanEngine::kAvx512Fused128:
      return 4;
    case ScanEngine::kAvx512Fused256:
      return 8;
    case ScanEngine::kAvx512Fused512:
      return 16;
    case ScanEngine::kJit:
      return choice.jit_register_bits == 0 ? 16
                                           : choice.jit_register_bits / 32;
  }
  return 0;
}

// Replays the first scan step's branch trace through a gshare predictor
// (the closest simple model to the hardware the paper measured) and fills
// `report->counters` labelled as simulated. O(rows) — only called when the
// plan asked for counters and the PMU was unavailable.
void SimulateScanCounters(const PhysicalPlan& plan, ExecutionReport* report) {
  if (plan.scan_steps.empty()) return;
  const StatusOr<TableScanner> scanner =
      TableScanner::Prepare(plan.table, plan.scan_steps[0].spec);
  if (!scanner.ok()) return;
  GsharePredictor predictor;
  const int lanes = ReplayLanesFor(report->executed);
  uint64_t branches = 0;
  uint64_t misses = 0;
  for (const TableScanner::ChunkPlan& chunk : scanner->chunk_plans()) {
    if (chunk.impossible || chunk.row_count == 0 || chunk.stages.empty()) {
      continue;
    }
    const BranchStats stats =
        lanes == 0
            ? ReplaySisdScanBranches(chunk.stages.data(), chunk.stages.size(),
                                     chunk.row_count, predictor)
            : ReplayFusedScanBranches(chunk.stages.data(),
                                      chunk.stages.size(), chunk.row_count,
                                      lanes, predictor);
    branches += stats.branches;
    misses += stats.mispredictions;
  }
  report->counters.source = CounterSource::kSimulated;
  report->counters.detail =
      lanes == 0 ? std::string("gshare replay, sisd loop")
                 : StrFormat("gshare replay, %d-lane fused", lanes);
  report->counters.branches = branches;
  report->counters.branch_misses = misses;
}

// Composes the human-readable coverage scope for the `Counters:` line and
// flags partial measurements (satellite: partial PMU numbers must say what
// they cover instead of posing as whole-query truth). `measured_refines`
// counts refine steps whose region produced a valid hardware delta.
void LabelCounterCoverage(const PhysicalPlan& plan, size_t measured_refines,
                          ExecutionReport* report) {
  ScanCounters& sc = report->counters;
  if (sc.source == CounterSource::kSimulated) {
    sc.coverage = "first scan step only";
    sc.partial = plan.scan_steps.size() > 1;
    return;
  }
  if (sc.source != CounterSource::kHardware) return;
  std::string scope;
  if (report->morsel_count > 0) {
    scope = StrFormat("%llu/%llu morsels on %d threads",
                      static_cast<unsigned long long>(sc.morsels_covered),
                      static_cast<unsigned long long>(sc.morsels_measurable),
                      sc.threads_covered);
    if (sc.morsels_covered < sc.morsels_measurable) sc.partial = true;
  } else {
    scope = "serial scan";
  }
  const size_t total_refines =
      plan.scan_steps.empty() ? 0 : plan.scan_steps.size() - 1;
  if (total_refines > 0) {
    scope += StrFormat(" + %zu/%zu refine steps", measured_refines,
                       total_refines);
    if (measured_refines < total_refines) sc.partial = true;
  }
  sc.coverage = scope;
}

// Finalizes counter collection once execution is done: when no hardware
// delta landed anywhere, replays the simulator (first scan step only),
// then labels whatever source won with its coverage scope. No-op when the
// plan did not ask for counters.
void FinishCounters(const PhysicalPlan& plan, size_t measured_refines,
                    ExecutionReport* report) {
  if (!plan.collect_counters) return;
  if (report->counters.source == CounterSource::kUnavailable) {
    SimulateScanCounters(plan, report);
  }
  LabelCounterCoverage(plan, measured_refines, report);
  // Surface hardware reads in the metrics registry (simulated numbers stay
  // out — mixing modeled and measured counters in one series would make
  // the series meaningless).
  if (report->counters.source == CounterSource::kHardware) {
    const ScanCounters& sc = report->counters;
    obs::Metrics().scan_cycles_total->Add(sc.cycles);
    obs::Metrics().scan_instructions_total->Add(sc.instructions);
    obs::Metrics().scan_branches_total->Add(sc.branches);
    obs::Metrics().scan_branch_misses_total->Add(sc.branch_misses);
  }
}

// Copies the hardware delta a stage added on top of `cycles_before` /
// `misses_before` into the stage's own counter fields.
void FillStageCounters(const ExecutionReport& report, uint64_t cycles_before,
                       uint64_t misses_before, StageReport* stage) {
  const ScanCounters& sc = report.counters;
  if (sc.source != CounterSource::kHardware) return;
  if (sc.cycles == cycles_before && sc.branch_misses == misses_before) return;
  stage->counters_valid = true;
  stage->cycles = sc.cycles - cycles_before;
  stage->branch_misses = sc.branch_misses - misses_before;
}

// The pushed-down aggregate path: one fused pass folds every term inside
// the scan kernels, the per-chunk partials merge in chunk order, and the
// accumulators finalize straight into the output row. No position list is
// ever materialized.
StatusOr<QueryResult> ExecuteAggregatePushdown(const PhysicalPlan& plan) {
  QueryResult result;
  const PhysicalPlan::ScanStep& step = *plan.pushdown_step;
  ExecutionReport& report = result.execution_report;
  report.aggregate_pushdown = true;
  Stopwatch timer;
  const StatusOr<TableScanner::AggResult> agg =
      RunFirstStepAggregate(plan.table, step, plan.fallback,
                            ResolveStepThreads(plan, step),
                            plan.collect_counters, &report);
  const double millis = timer.ElapsedMillis();
  FTS_RETURN_IF_ERROR(agg.status());
  FinishCounters(plan, 0, &report);
  report.rows_matched = agg->matched;
  report.rows_folded = agg->matched;
  report.scan_millis = millis;
  if (!plan.scan_steps.empty()) {
    StageReport stage{
        StrFormat("%s [%s]", StepOpName(plan.scan_steps[0]),
                  report.executed.ToString().c_str()),
        report.rows_scanned, agg->matched, millis};
    stage.has_estimate = report.model_active;
    stage.est_rows_out = report.est_rows;
    FillStageCounters(report, 0, 0, &stage);
    report.stages.push_back(std::move(stage));
  }
  Stopwatch finalize_timer;
  FTS_ASSIGN_OR_RETURN(
      std::vector<Value> row,
      FinalizeAggregates(*plan.table, plan.aggregate_items,
                         plan.pushdown_bindings, *agg));
  result.rows.push_back(std::move(row));
  for (const AggregateItem& item : plan.aggregate_items) {
    result.column_names.push_back(item.ToString());
  }
  result.matched_rows = agg->matched;
  report.stages.push_back(StageReport{"Aggregate [pushdown]", agg->matched,
                                      1, finalize_timer.ElapsedMillis()});
  return result;
}

// ---- Late-materialization projection (DESIGN.md §16) ----

// FTS_GATHER=0 kill switch: forces the tuple-at-a-time reference
// materializer (the bench baseline arm and the differential oracle).
bool GatherEnabled() {
  const char* env = std::getenv("FTS_GATHER");
  return env == nullptr || std::string(env) != "0";
}

// Batch-gather kernel matched to the scan engine that produced the
// positions. nullopt keeps the boxed row-at-a-time path: the SISD engines
// are the paper's baseline and stay tuple-at-a-time end to end, which is
// also what the differential tests diff the gather pipeline against.
std::optional<FusedKernelKind> GatherKindFor(ScanEngine engine) {
  switch (engine) {
    case ScanEngine::kSisdNoVec:
    case ScanEngine::kSisdAutoVec:
      return std::nullopt;
    case ScanEngine::kScalarFused:
      return FusedKernelKind::kScalar;
    case ScanEngine::kAvx2Fused128:
      return FusedKernelKind::kAvx2_128;
    case ScanEngine::kAvx512Fused128:
      return FusedKernelKind::kAvx512_128;
    case ScanEngine::kAvx512Fused256:
      return FusedKernelKind::kAvx512_256;
    case ScanEngine::kAvx512Fused512:
    case ScanEngine::kJit:
      return FusedKernelKind::kAvx512_512;
    case ScanEngine::kBlockwise:
      return BestAvailableKernel();
  }
  return FusedKernelKind::kScalar;
}

// The tuple-at-a-time reference: boxes every surviving cell through
// Table::GetValue, then sorts/limits the boxed rows. Preserved verbatim
// as the oracle the columnar pipeline must match byte-for-byte.
void ProjectReference(const PhysicalPlan& plan, const TableMatches& matches,
                      QueryResult* result) {
  result->rows.reserve(result->matched_rows);
  for (const ChunkMatches& chunk_matches : matches.chunks) {
    for (const uint32_t pos : chunk_matches.positions) {
      std::vector<Value> row;
      row.reserve(plan.projection_indexes.size());
      for (const size_t column : plan.projection_indexes) {
        row.push_back(plan.table->GetValue(
            column, RowId{chunk_matches.chunk_id, pos}));
      }
      result->rows.push_back(std::move(row));
    }
  }
  if (plan.order_by_index.has_value()) {
    const size_t key = *plan.order_by_index;
    const bool descending = plan.order_descending;
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [key, descending](const std::vector<Value>& a,
                                       const std::vector<Value>& b) {
                       const double lhs = ValueAs<double>(a[key]);
                       const double rhs = ValueAs<double>(b[key]);
                       return descending ? lhs > rhs : lhs < rhs;
                     });
  }
  if (plan.limit.has_value() && result->rows.size() > *plan.limit) {
    result->rows.resize(*plan.limit);
  }
}

// Unboxes one gathered column into sort keys. The double domain matches
// the reference comparator (ValueAs<double>), so ordering is identical.
std::vector<double> KeyDoubles(const ColumnarResult& columnar, size_t key) {
  std::vector<double> keys(columnar.row_count());
  DispatchDataType(columnar.column_type(key), [&](auto tag) {
    using T = decltype(tag);
    const T* data = columnar.TypedData<T>(key);
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<double>(data[i]);
    }
  });
  return keys;
}

// Comparator over (key, original index): the index tiebreak reproduces
// stable_sort order exactly, which keeps every engine/thread-count
// combination byte-identical and makes partial selection legal.
struct KeyOrder {
  const std::vector<double>& keys;
  bool descending;
  bool operator()(uint64_t a, uint64_t b) const {
    const double lhs = keys[a];
    const double rhs = keys[b];
    if (lhs != rhs) return descending ? lhs > rhs : lhs < rhs;
    return a < b;
  }
};

// ORDER BY + LIMIT k < matches: top-K partial selection. Gathers ONLY the
// key column for all n survivors, partial-selects k winners, then gathers
// the remaining cells for just those k rows — n + k*width cells instead
// of the full n*width materialize-then-sort-then-truncate.
Status ProjectTopK(const PhysicalPlan& plan, const TableMatches& matches,
                   const ProjectionGatherer& gatherer,
                   const ParallelProjectOptions& options,
                   QueryResult* result, GatherStats* stats) {
  const size_t key_column = *plan.order_by_index;
  const size_t k = static_cast<size_t>(*plan.limit);

  // Key pre-gather through a single-column gatherer (same kernels, same
  // morsel fan-out, same cancellation points).
  FTS_ASSIGN_OR_RETURN(
      ProjectionGatherer key_gatherer,
      ProjectionGatherer::Prepare(
          plan.table, {plan.projection_indexes[key_column]}));
  ColumnarResult key_result;
  FTS_RETURN_IF_ERROR(ExecuteParallelGather(
      key_gatherer, matches, {plan.projection_names[key_column]}, options,
      &key_result, stats));
  const std::vector<double> keys = KeyDoubles(key_result, 0);

  std::vector<uint64_t> ranks(keys.size());
  std::iota(ranks.begin(), ranks.end(), uint64_t{0});
  std::partial_sort(ranks.begin(), ranks.begin() + k, ranks.end(),
                    KeyOrder{keys, plan.order_descending});
  ranks.resize(k);

  // The winners in ascending global order: the compressed gathers (RLE
  // runs, delta blocks) require ascending positions within a chunk.
  std::vector<uint64_t> ascending(ranks);
  std::sort(ascending.begin(), ascending.end());

  // Slice the ascending winners back into per-chunk position lists.
  TableMatches selected;
  selected.chunks.reserve(matches.chunks.size());
  size_t cursor = 0;
  uint64_t base = 0;
  for (const ChunkMatches& chunk : matches.chunks) {
    ChunkMatches keep;
    keep.chunk_id = chunk.chunk_id;
    const uint64_t end = base + chunk.positions.size();
    while (cursor < ascending.size() && ascending[cursor] < end) {
      keep.positions.push_back(
          chunk.positions[static_cast<size_t>(ascending[cursor] - base)]);
      ++cursor;
    }
    selected.chunks.push_back(std::move(keep));
    base = end;
  }

  // Gather the k winners (ascending order), then permute to rank order.
  FTS_RETURN_IF_ERROR(ExecuteParallelGather(gatherer, selected,
                                            plan.projection_names, options,
                                            &result->columnar, stats));
  std::vector<uint32_t> perm(k);
  for (size_t r = 0; r < k; ++r) {
    perm[r] = static_cast<uint32_t>(
        std::lower_bound(ascending.begin(), ascending.end(), ranks[r]) -
        ascending.begin());
  }
  result->columnar.ApplyPermutation(perm);
  return Status::Ok();
}

// JIT-mirrored projection: every chunk's survivors materialized by the
// generated fused gather operator — all projected columns in one pass
// over the position list, each column's encoding burned into the code
// (fts/jit/code_generator.h). Serial by design: JIT-executed plans run
// chunks serially, and the compiled module is shared across chunks via
// the global cache. Any failure other than cancellation falls back to
// the static kernels in the caller.
Status ProjectJitGather(const PhysicalPlan& plan, const TableMatches& matches,
                        const ProjectionGatherer& gatherer,
                        QueryResult* result, GatherStats* stats) {
  const size_t width = gatherer.column_count();
  ColumnarResult* out = &result->columnar;
  gatherer.InitResult(plan.projection_names, out);

  size_t total_rows = 0;
  for (const ChunkMatches& chunk : matches.chunks) {
    total_rows += chunk.positions.size();
  }
  QueryContext* ctx = plan.context;
  ScopedMemoryReservation reservation;
  if (ctx != nullptr) {
    uint64_t bytes = 0;
    for (size_t c = 0; c < width; ++c) {
      bytes += total_rows * DataTypeSize(gatherer.output_type(c));
    }
    FTS_RETURN_IF_ERROR(reservation.Reserve(ctx, bytes));
  }
  out->SetRowCount(total_rows);

  JitChunkStats jit_stats;
  size_t dst_offset = 0;
  for (const ChunkMatches& chunk : matches.chunks) {
    if (chunk.positions.empty()) continue;
    if (ctx != nullptr) FTS_RETURN_IF_ERROR(ctx->CheckCancelled());
    GatherTerm terms[kMaxGatherTerms];
    void* outs[kMaxGatherTerms];
    for (size_t c = 0; c < width; ++c) {
      if (!gatherer.KernelTermFor(chunk.chunk_id, c, &terms[c])) {
        return Status::InvalidArgument(
            "column-chunk is not kernel-eligible for the JIT gather");
      }
      outs[c] = out->MutableData(c, dst_offset);
    }
    FTS_ASSIGN_OR_RETURN(
        const size_t gathered,
        JitExecuteChunkGather(GlobalJitCache(), terms, width,
                              chunk.positions.data(), chunk.positions.size(),
                              outs, &jit_stats, ctx));
    FTS_CHECK(gathered == chunk.positions.size());
    gatherer.CreditKernelGather(chunk.chunk_id, chunk.positions.size(),
                                stats);
    dst_offset += chunk.positions.size();
  }

  ExecutionReport& report = result->execution_report;
  report.jit_compile_millis += jit_stats.compile_millis;
  report.jit_cache_hits += jit_stats.cache_hits;
  report.jit_cache_misses += jit_stats.cache_misses;
  return Status::Ok();
}

// The columnar projection pipeline: per-chunk SIMD batch-gather into
// typed column buffers, ORDER BY as a gathered-key permutation, LIMIT as
// truncation or top-K selection. Boxing is deferred to QueryResult::
// ValueAt.
Status ProjectColumnar(const PhysicalPlan& plan, const TableMatches& matches,
                       FusedKernelKind kind, QueryResult* result) {
  FTS_ASSIGN_OR_RETURN(
      ProjectionGatherer gatherer,
      ProjectionGatherer::Prepare(plan.table, plan.projection_indexes));

  ParallelProjectOptions options;
  options.kernel = kind;
  options.threads =
      plan.threads != 0 ? plan.threads : TaskPool::ThreadCountFromEnv(1);
  options.context = plan.context;

  GatherStats stats;
  const bool top_k = plan.order_by_index.has_value() &&
                     plan.limit.has_value() &&
                     *plan.limit < result->matched_rows;
  bool jit_gather = false;
  if (top_k) {
    FTS_RETURN_IF_ERROR(
        ProjectTopK(plan, matches, gatherer, options, result, &stats));
  } else {
    // JIT-executed serial plans mirror the projection in generated code:
    // one fused pass over each chunk's positions, compiled per column-
    // shape signature. Eligibility matches the scan's serial execution
    // (morsel-parallel plans keep the static kernels' disjoint-slice
    // fan-out) and requires every column-chunk on the kernel path.
    if (result->execution_report.executed.engine == ScanEngine::kJit &&
        options.threads <= 1 && gatherer.column_count() > 0 &&
        gatherer.column_count() <= kMaxGatherTerms &&
        gatherer.AllKernelEligible()) {
      const Status jit_status =
          ProjectJitGather(plan, matches, gatherer, result, &stats);
      if (jit_status.ok()) {
        jit_gather = true;
      } else if (jit_status.code() == StatusCode::kQueryCanceled ||
                 jit_status.code() == StatusCode::kDeadlineExceeded ||
                 jit_status.code() == StatusCode::kResourceExhausted) {
        return jit_status;
      }
      // Anything else (no usable compiler, poisoned signature, shape the
      // generator rejects) demotes to the static gather kernels below.
    }
    if (!jit_gather) {
      stats = GatherStats{};
      FTS_RETURN_IF_ERROR(ExecuteParallelGather(
          gatherer, matches, plan.projection_names, options,
          &result->columnar, &stats));
    }
    if (plan.order_by_index.has_value()) {
      const std::vector<double> keys =
          KeyDoubles(result->columnar, *plan.order_by_index);
      std::vector<uint64_t> order(keys.size());
      std::iota(order.begin(), order.end(), uint64_t{0});
      std::sort(order.begin(), order.end(),
                KeyOrder{keys, plan.order_descending});
      std::vector<uint32_t> perm(order.begin(), order.end());
      result->columnar.ApplyPermutation(perm);
    }
    if (plan.limit.has_value()) {
      result->columnar.TruncateRows(static_cast<size_t>(*plan.limit));
    }
  }
  result->columnar_valid = true;

  ExecutionReport& report = result->execution_report;
  report.gather_engine = jit_gather ? "jit" : FusedKernelKindToString(kind);
  for (size_t e = 0; e < 6; ++e) {
    report.gather_rows[e] = stats.rows_by_encoding[e];
  }
  report.gather_kernel_rows = stats.kernel_rows;
  report.gather_typed_rows = stats.typed_rows;
  report.gather_delta_blocks = stats.delta_blocks_decoded;
  // Price the gathered cells with the calibrated emit constants — the
  // Project stage's est-vs-actual in EXPLAIN ANALYZE.
  if (report.model_active) {
    const cost::CostProfile& profile = cost::CalibratedProfile();
    report.project_est_millis =
        cost::GatherCostNs(profile, report.executed.engine,
                           report.gather_rows) /
        1e6;
  }
  return Status::Ok();
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  if (!explain_text.empty()) return explain_text;
  std::string out;
  if (count.has_value()) {
    return StrFormat("COUNT(*) = %llu\n",
                     static_cast<unsigned long long>(*count));
  }
  out += Join(column_names, " | ") + "\n";
  const size_t total = RowCountOut();
  const size_t shown = std::min(total, max_rows);
  const size_t width =
      columnar_valid ? columnar.column_count() : column_names.size();
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    cells.reserve(width);
    for (size_t c = 0; c < (columnar_valid ? width : rows[r].size()); ++c) {
      cells.push_back(ValueToString(ValueAt(r, c)));
    }
    out += Join(cells, " | ") + "\n";
  }
  if (total > shown) {
    out += StrFormat("... (%zu more rows)\n", total - shown);
  }
  return out;
}

std::string PhysicalPlan::Explain() const {
  std::string out;
  if (output == Output::kCountStar) {
    out += "CountAggregate\n";
  } else if (output == Output::kAggregate) {
    std::vector<std::string> parts;
    parts.reserve(aggregate_items.size());
    for (const AggregateItem& item : aggregate_items) {
      parts.push_back(item.ToString());
    }
    out += "Aggregate: " + Join(parts, ", ");
    if (pushdown_step.has_value()) out += "  [pushdown]";
    out += "\n";
  } else {
    out += "Project: " + Join(projection_names, ", ") + "\n";
  }
  int depth = 1;
  if (empty_result) {
    out += "  EmptyResult (contradictory predicates)\n";
    out += StrFormat("    GetTable: %s\n", table_name.c_str());
    return out;
  }
  for (size_t i = scan_steps.size(); i-- > 0;) {
    const ScanStep& step = scan_steps[i];
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    out += StrFormat("%s [%s]: %s\n", StepOpName(step),
                     ScanEngineToString(step.engine),
                     step.spec.ToString().c_str());
    ++depth;
  }
  out += std::string(static_cast<size_t>(depth) * 2, ' ');
  out += StrFormat("GetTable: %s\n", table_name.c_str());
  return out;
}

StatusOr<QueryResult> ExecutePlan(const PhysicalPlan& plan) {
  if (plan.table == nullptr) return Status::InvalidArgument("plan has no table");
  FTS_RETURN_IF_ERROR(CheckCancellation(plan.context));

  if (plan.empty_result) {
    TableMatches none;
    none.chunks.resize(plan.table->chunk_count());
    for (ChunkId chunk_id = 0; chunk_id < plan.table->chunk_count();
         ++chunk_id) {
      none.chunks[chunk_id].chunk_id = chunk_id;
    }
    QueryResult result;
    result.matched_rows = 0;
    if (plan.output == PhysicalPlan::Output::kCountStar) {
      result.count = 0;
      result.column_names = {"count"};
    } else if (plan.output == PhysicalPlan::Output::kAggregate) {
      result.rows.push_back(
          ComputeAggregates(*plan.table, none, plan.aggregate_items));
      for (const AggregateItem& item : plan.aggregate_items) {
        result.column_names.push_back(item.ToString());
      }
    } else {
      result.column_names = plan.projection_names;
    }
    return result;
  }

  // Pushed-down aggregates skip position materialization entirely: the
  // scan kernels fold every term under the final predicate mask.
  if (plan.output == PhysicalPlan::Output::kAggregate &&
      plan.pushdown_step.has_value()) {
    return ExecuteAggregatePushdown(plan);
  }

  // COUNT(*) over a single scan step skips position materialization
  // entirely: the SISD engines run their counting loop (the paper's
  // Section II baseline) and the JIT compiles a count-only operator.
  if (plan.output == PhysicalPlan::Output::kCountStar &&
      plan.scan_steps.size() == 1) {
    QueryResult result;
    const PhysicalPlan::ScanStep& step = plan.scan_steps[0];
    ExecutionReport& report = result.execution_report;
    Stopwatch timer;
    const StatusOr<uint64_t> count =
        RunFirstStepCount(plan.table, step, plan.fallback,
                          ResolveStepThreads(plan, step),
                          plan.collect_counters, &report);
    const double millis = timer.ElapsedMillis();
    FTS_RETURN_IF_ERROR(count.status());
    FinishCounters(plan, 0, &report);
    report.rows_matched = *count;
    report.scan_millis = millis;
    StageReport stage{
        StrFormat("%s [%s]", StepOpName(step),
                  report.executed.ToString().c_str()),
        report.rows_scanned, *count, millis};
    stage.has_estimate = report.model_active;
    stage.est_rows_out = report.est_rows;
    FillStageCounters(report, 0, 0, &stage);
    report.stages.push_back(std::move(stage));
    result.matched_rows = *count;
    result.count = *count;
    result.column_names = {"count"};
    return result;
  }

  ExecutionReport report;
  std::optional<TableMatches> matches;
  // Running row estimate through the step chain: the first step's scanner
  // estimate, narrowed by each refine predicate's estimated selectivity.
  double est_rows = 0.0;
  size_t measured_refines = 0;
  for (const PhysicalPlan::ScanStep& step : plan.scan_steps) {
    FTS_RETURN_IF_ERROR(CheckCancellation(plan.context));
    const bool first = !matches.has_value();
    const uint64_t rows_in = first ? 0 : matches->TotalMatches();
    const uint64_t cycles_before = report.counters.cycles;
    const uint64_t misses_before = report.counters.branch_misses;
    Stopwatch timer;
    double refine_selectivity = 1.0;
    FTS_ASSIGN_OR_RETURN(
        TableMatches next,
        RunStep(plan.table, step, matches, plan.fallback,
                ResolveStepThreads(plan, step), plan.collect_counters,
                &measured_refines, &report,
                first ? nullptr : &refine_selectivity));
    const double millis = timer.ElapsedMillis();
    report.scan_millis += millis;
    est_rows = first ? report.est_rows : est_rows * refine_selectivity;
    StageReport stage{
        first ? StrFormat("%s [%s]", StepOpName(step),
                          report.executed.ToString().c_str())
              : StrFormat("Refine: %s", step.spec.ToString().c_str()),
        first ? report.rows_scanned : rows_in, next.TotalMatches(), millis};
    stage.has_estimate = report.model_active;
    stage.est_rows_out = est_rows;
    FillStageCounters(report, cycles_before, misses_before, &stage);
    report.stages.push_back(std::move(stage));
    matches = std::move(next);
  }
  FinishCounters(plan, measured_refines, &report);
  // No scan steps: every row matches.
  if (!matches.has_value()) {
    TableMatches all;
    all.chunks.reserve(plan.table->chunk_count());
    for (ChunkId chunk_id = 0; chunk_id < plan.table->chunk_count();
         ++chunk_id) {
      ChunkMatches chunk_matches;
      chunk_matches.chunk_id = chunk_id;
      chunk_matches.positions.resize(
          plan.table->chunk(chunk_id).row_count());
      std::iota(chunk_matches.positions.begin(),
                chunk_matches.positions.end(), 0u);
      all.chunks.push_back(std::move(chunk_matches));
    }
    matches = std::move(all);
  }

  QueryResult result;
  report.rows_matched = matches->TotalMatches();
  result.execution_report = std::move(report);
  result.matched_rows = result.execution_report.rows_matched;
  if (plan.output == PhysicalPlan::Output::kCountStar) {
    result.count = result.matched_rows;
    result.column_names = {"count"};
    return result;
  }
  if (plan.output == PhysicalPlan::Output::kAggregate) {
    Stopwatch aggregate_timer;
    result.rows.push_back(
        ComputeAggregates(*plan.table, *matches, plan.aggregate_items));
    for (const AggregateItem& item : plan.aggregate_items) {
      result.column_names.push_back(item.ToString());
    }
    result.execution_report.stages.push_back(
        StageReport{"Aggregate", result.matched_rows, 1,
                    aggregate_timer.ElapsedMillis()});
    return result;
  }

  Stopwatch project_timer;
  result.column_names = plan.projection_names;
  // Late materialization: per-chunk SIMD batch-gather into typed column
  // buffers, matched to the scan engine. The SISD engines (and the
  // FTS_GATHER=0 kill switch) keep the tuple-at-a-time reference path.
  const std::optional<FusedKernelKind> gather_kind =
      GatherEnabled()
          ? GatherKindFor(result.execution_report.executed.engine)
          : std::nullopt;
  if (gather_kind.has_value()) {
    FTS_RETURN_IF_ERROR(ProjectColumnar(plan, *matches, *gather_kind,
                                        &result));
  } else {
    ProjectReference(plan, *matches, &result);
    result.execution_report.gather_engine = "reference";
  }
  StageReport project_stage{"Project", result.matched_rows,
                            result.RowCountOut(),
                            project_timer.ElapsedMillis()};
  project_stage.has_estimate = result.execution_report.model_active;
  project_stage.est_rows_out =
      plan.limit.has_value()
          ? std::min(result.execution_report.est_rows,
                     static_cast<double>(*plan.limit))
          : result.execution_report.est_rows;
  result.execution_report.stages.push_back(std::move(project_stage));
  return result;
}

std::string RenderExplainAnalyze(const PhysicalPlan& plan,
                                 const QueryResult& result) {
  const ExecutionReport& report = result.execution_report;
  std::string out;

  // Output node with its actuals (the trailing stage when one exists).
  const StageReport* output_stage = nullptr;
  if (report.stages.size() > plan.scan_steps.size()) {
    output_stage = &report.stages.back();
  }
  if (plan.output == PhysicalPlan::Output::kCountStar) {
    out += StrFormat("CountAggregate  (count=%llu)\n",
                     static_cast<unsigned long long>(
                         result.count.value_or(result.matched_rows)));
  } else if (plan.output == PhysicalPlan::Output::kAggregate) {
    std::vector<std::string> parts;
    parts.reserve(plan.aggregate_items.size());
    for (const AggregateItem& item : plan.aggregate_items) {
      parts.push_back(item.ToString());
    }
    out += "Aggregate: " + Join(parts, ", ");
    if (output_stage != nullptr) {
      out += StrFormat("  (actual rows in=%llu, time=%.3f ms)",
                       static_cast<unsigned long long>(output_stage->rows_in),
                       output_stage->millis);
    }
    out += "\n";
    out += StrFormat("  AggregatePushdown: %s",
                     report.aggregate_pushdown ? "yes" : "no");
    if (report.aggregate_pushdown) {
      out += StrFormat(" (rows folded=%llu)",
                       static_cast<unsigned long long>(report.rows_folded));
    }
    out += "\n";
  } else {
    out += "Project: " + Join(plan.projection_names, ", ");
    if (output_stage != nullptr) {
      out += StrFormat("  (actual rows=%llu, time=%.3f ms)",
                       static_cast<unsigned long long>(output_stage->rows_out),
                       output_stage->millis);
    }
    out += "\n";
    // Late-materialization gather attribution (DESIGN.md §16). Rendered
    // whenever a projection executed — harnesses grep for `Gather:`.
    if (!report.gather_engine.empty()) {
      out += StrFormat("  Gather: engine=%s", report.gather_engine.c_str());
      uint64_t gathered = 0;
      for (size_t e = 0; e < 6; ++e) gathered += report.gather_rows[e];
      if (gathered > 0) {
        std::vector<std::string> parts;
        for (size_t e = 0; e < 6; ++e) {
          if (report.gather_rows[e] == 0) continue;
          parts.push_back(StrFormat(
              "%s x%llu",
              ColumnEncodingName(static_cast<ColumnEncoding>(e)),
              static_cast<unsigned long long>(report.gather_rows[e])));
        }
        out += " cells={" + Join(parts, ", ") + "}";
        out += StrFormat(
            ", kernel=%llu typed=%llu",
            static_cast<unsigned long long>(report.gather_kernel_rows),
            static_cast<unsigned long long>(report.gather_typed_rows));
        if (report.gather_delta_blocks > 0) {
          out += StrFormat(
              ", delta blocks decoded=%llu",
              static_cast<unsigned long long>(report.gather_delta_blocks));
        }
      }
      if (report.project_est_millis > 0.0 && output_stage != nullptr) {
        out += StrFormat(", est=%.3f ms actual=%.3f ms",
                         report.project_est_millis, output_stage->millis);
      }
      out += "\n";
    }
  }

  // Query lifecycle actuals. The `Deadline:` and `QueueWait:` markers are
  // rendered unconditionally — harnesses grep for them.
  if (report.deadline_millis > 0) {
    out += StrFormat("  Deadline: %lld ms%s\n",
                     static_cast<long long>(report.deadline_millis),
                     report.deadline_hit ? " [exceeded]" : "");
  } else {
    out += "  Deadline: none\n";
  }
  out += StrFormat("  QueueWait: %.3f ms\n", report.queue_wait_millis);
  if (report.cancelled || report.morsels_aborted > 0) {
    out += StrFormat(
        "  Cancelled: yes (morsels completed=%zu, aborted=%zu)\n",
        report.morsels_completed, report.morsels_aborted);
  }

  int depth = 1;
  if (plan.empty_result) {
    out += "  EmptyResult (contradictory predicates, nothing scanned)\n";
    out += StrFormat("    GetTable: %s\n", plan.table_name.c_str());
    return out;
  }

  for (size_t i = plan.scan_steps.size(); i-- > 0;) {
    const PhysicalPlan::ScanStep& step = plan.scan_steps[i];
    const std::string indent(static_cast<size_t>(depth) * 2, ' ');
    out += indent;
    out += StrFormat("%s [%s]: %s\n", StepOpName(step),
                     ScanEngineToString(step.engine),
                     step.spec.ToString().c_str());
    if (i < report.stages.size()) {
      const StageReport& stage = report.stages[i];
      out += indent;
      out += StrFormat("  actual: rows in=%llu out=%llu",
                       static_cast<unsigned long long>(stage.rows_in),
                       static_cast<unsigned long long>(stage.rows_out));
      if (stage.has_estimate) {
        out += StrFormat(" (est out=%.0f)", stage.est_rows_out);
      }
      out += StrFormat(", time=%.3f ms", stage.millis);
      if (stage.counters_valid) {
        out += StrFormat(", cycles=%llu, branch_misses=%llu",
                         static_cast<unsigned long long>(stage.cycles),
                         static_cast<unsigned long long>(stage.branch_misses));
      }
      if (i == 0) {
        out += StrFormat(", executed=%s%s",
                         report.executed.ToString().c_str(),
                         report.degraded ? " [degraded]" : "");
      }
      out += "\n";
    }
    if (i == 0) {
      // First (full-chunk) step: morsel/worker attribution and JIT status.
      if (report.morsel_count > 0) {
        out += indent;
        out += StrFormat("  parallel: workers=%d morsels=%zu engines={",
                         report.worker_count, report.morsel_count);
        // Engine mix over morsels, in first-seen order.
        std::vector<std::pair<std::string, size_t>> mix;
        for (const EngineChoice& choice : report.morsel_choices) {
          const std::string name = choice.ToString();
          bool found = false;
          for (auto& [mix_name, mix_count] : mix) {
            if (mix_name == name) {
              ++mix_count;
              found = true;
            }
          }
          if (!found) mix.emplace_back(name, 1);
        }
        std::vector<std::string> parts;
        parts.reserve(mix.size());
        for (const auto& [name, count] : mix) {
          parts.push_back(StrFormat("%s x%zu", name.c_str(), count));
        }
        out += Join(parts, ", ") + "}\n";
      }
      // Calibrated cost model (DESIGN.md §14). Rendered unconditionally —
      // harnesses grep for the `CostModel:` marker.
      out += indent;
      if (!report.model_active) {
        out += "  CostModel: off\n";
      } else {
        out += StrFormat("  CostModel: on%s, chunks reordered=%zu",
                         report.adaptive_engines ? " (adaptive engines)" : "",
                         report.chunks_reordered);
        out += StrFormat(", est rows=%.0f actual=%llu", report.est_rows,
                         static_cast<unsigned long long>(report.rows_matched));
        if (report.adaptive_engines) {
          uint64_t adapted_chunks = 0;
          std::vector<std::string> parts;
          for (size_t e = 0; e < 9; ++e) {
            if (report.adaptive_chunk_engines[e] == 0) continue;
            adapted_chunks += report.adaptive_chunk_engines[e];
            parts.push_back(StrFormat(
                "%s x%llu", ScanEngineToString(static_cast<ScanEngine>(e)),
                static_cast<unsigned long long>(
                    report.adaptive_chunk_engines[e])));
          }
          if (adapted_chunks > 0) {
            out += StrFormat(", switches=%llu, engines={%s}",
                             static_cast<unsigned long long>(
                                 report.adaptive_engine_switches),
                             Join(parts, ", ").c_str());
          }
        }
        out += "\n";
      }
      if (report.jit_cache_hits + report.jit_cache_misses > 0) {
        out += indent;
        out += StrFormat("  jit: cache %llu hit / %llu miss",
                         static_cast<unsigned long long>(report.jit_cache_hits),
                         static_cast<unsigned long long>(
                             report.jit_cache_misses));
        if (report.jit_compile_millis > 0.0) {
          out += StrFormat(", compile=%.3f ms", report.jit_compile_millis);
        }
        out += "\n";
      }
      // Per-stage encoding mix (counted per chunk x predicate during
      // Prepare) plus the compressed-domain work counters.
      uint64_t encoded_stages = 0;
      for (const uint64_t count : report.stage_encodings) {
        encoded_stages += count;
      }
      if (encoded_stages > 0) {
        out += indent;
        out += "  Encodings: ";
        std::vector<std::string> parts;
        for (size_t e = 0; e < 6; ++e) {
          if (report.stage_encodings[e] == 0) continue;
          parts.push_back(StrFormat(
              "%s x%llu",
              ColumnEncodingName(static_cast<ColumnEncoding>(e)),
              static_cast<unsigned long long>(report.stage_encodings[e])));
        }
        out += Join(parts, ", ");
        if (report.rle_runs_classified > 0) {
          out += StrFormat(
              "; rle runs classified=%llu skipped=%llu",
              static_cast<unsigned long long>(report.rle_runs_classified),
              static_cast<unsigned long long>(report.rle_runs_skipped));
        }
        if (report.delta_blocks_pruned + report.delta_blocks_decoded > 0) {
          out += StrFormat(
              "; delta blocks pruned=%llu decoded=%llu",
              static_cast<unsigned long long>(report.delta_blocks_pruned),
              static_cast<unsigned long long>(report.delta_blocks_decoded));
        }
        out += "\n";
      }
    }
    ++depth;
  }

  out += std::string(static_cast<size_t>(depth) * 2, ' ');
  out += StrFormat("GetTable: %s  (chunks=%zu", plan.table_name.c_str(),
                   report.chunks_total);
  if (report.chunks_pruned > 0 || report.stages_dropped > 0) {
    out += StrFormat(", pruned=%zu", report.chunks_pruned);
    if (report.stages_dropped > 0) {
      out += StrFormat(", stages dropped=%zu", report.stages_dropped);
    }
    out += StrFormat(", ~%llu bytes skipped",
                     static_cast<unsigned long long>(report.bytes_skipped));
  }
  out += StrFormat(", rows scanned=%llu)\n",
                   static_cast<unsigned long long>(report.rows_scanned));

  out += report.counters.ToString() + "\n";
  // Per-engine attribution under the Counters: line — which engine burned
  // which cycles when a query mixed engines across morsels or stages.
  for (const EngineCounters& ec : report.engine_counters) {
    out += StrFormat("  %s: regions=%llu cycles=%llu",
                     ec.choice.ToString().c_str(),
                     static_cast<unsigned long long>(ec.regions),
                     static_cast<unsigned long long>(ec.cycles));
    if (ec.instructions > 0 && ec.cycles > 0) {
      out += StrFormat(" ipc=%.2f", static_cast<double>(ec.instructions) /
                                        static_cast<double>(ec.cycles));
    }
    out += StrFormat(" branch_misses=%llu\n",
                     static_cast<unsigned long long>(ec.branch_misses));
  }
  return out;
}

}  // namespace fts
