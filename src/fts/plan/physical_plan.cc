#include "fts/plan/physical_plan.h"

#include <algorithm>
#include <numeric>

#include "fts/common/string_util.h"
#include "fts/exec/parallel_scan.h"
#include "fts/exec/task_pool.h"
#include "fts/jit/jit_scan_engine.h"
#include "fts/scan/table_scan.h"

namespace fts {
namespace {

// Worker threads for a scan step: the step's spec hint, then the plan
// default, then FTS_THREADS; an unset chain stays single-threaded so
// plain queries keep the serial execution path (and its reports) exactly.
int ResolveStepThreads(const PhysicalPlan& plan,
                       const PhysicalPlan::ScanStep& step) {
  int threads = step.spec.threads != 0 ? step.spec.threads : plan.threads;
  if (threads == 0) threads = TaskPool::ThreadCountFromEnv(1);
  return threads;
}

// The requested rung for the parallel executor. Static engines carry no
// register width (EngineChoice contract).
EngineChoice StepEngineChoice(const PhysicalPlan::ScanStep& step) {
  return {step.engine,
          step.engine == ScanEngine::kJit ? step.jit_register_bits : 0};
}

// Applies `spec` to an existing position list, evaluating predicates
// row-at-a-time at the surviving positions (the materialize-and-refine
// execution of non-fused plans).
StatusOr<TableMatches> RefineMatches(const TablePtr& table,
                                     const ScanSpec& spec,
                                     const TableMatches& previous) {
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, spec));
  TableMatches refined;
  refined.chunks.reserve(previous.chunks.size());
  for (const ChunkMatches& chunk_matches : previous.chunks) {
    const TableScanner::ChunkPlan& plan =
        scanner.chunk_plans()[chunk_matches.chunk_id];
    ChunkMatches out;
    out.chunk_id = chunk_matches.chunk_id;
    if (plan.impossible) {
      refined.chunks.push_back(std::move(out));
      continue;
    }
    if (plan.stages.empty()) {
      out.positions = chunk_matches.positions;
      refined.chunks.push_back(std::move(out));
      continue;
    }
    out.positions.reserve(chunk_matches.positions.size());
    for (const uint32_t pos : chunk_matches.positions) {
      bool all = true;
      for (const ScanStage& stage : plan.stages) {
        if (!EvaluateStageAtRow(stage, pos)) {
          all = false;
          break;
        }
      }
      if (all) out.positions.push_back(pos);
    }
    refined.chunks.push_back(std::move(out));
  }
  return refined;
}

// Evaluates the aggregate projection over the matched rows. Integer
// columns accumulate in int64/uint64, floats in double; AVG always in
// double. Empty inputs yield 0 for every aggregate (this engine has no
// NULL; documented divergence from SQL's NULL semantics).
std::vector<Value> ComputeAggregates(
    const Table& table, const TableMatches& matches,
    const std::vector<AggregateItem>& items) {
  std::vector<Value> results;
  results.reserve(items.size());
  const uint64_t matched = matches.TotalMatches();

  for (const AggregateItem& item : items) {
    if (item.kind == AggregateKind::kCountStar) {
      results.emplace_back(static_cast<uint64_t>(matched));
      continue;
    }
    const size_t column_index = *table.ColumnIndex(item.column);
    const DataType type = table.column_definition(column_index).type;

    // Typed accumulation over the matched positions of every chunk.
    DispatchDataType(type, [&](auto tag) {
      using T = decltype(tag);
      using Acc = std::conditional_t<
          std::is_floating_point_v<T>, double,
          std::conditional_t<std::is_signed_v<T>, int64_t, uint64_t>>;
      Acc sum{};
      double avg_sum = 0.0;
      bool any = false;
      T min_value{};
      T max_value{};
      for (const ChunkMatches& chunk : matches.chunks) {
        const BaseColumn& column =
            table.chunk(chunk.chunk_id).column(column_index);
        for (const uint32_t pos : chunk.positions) {
          const T value = ValueAs<T>(column.GetValue(pos));
          sum += static_cast<Acc>(value);
          avg_sum += static_cast<double>(value);
          if (!any || value < min_value) min_value = value;
          if (!any || value > max_value) max_value = value;
          any = true;
        }
      }
      switch (item.kind) {
        case AggregateKind::kSum:
          results.emplace_back(sum);
          break;
        case AggregateKind::kMin:
          results.emplace_back(any ? min_value : T{});
          break;
        case AggregateKind::kMax:
          results.emplace_back(any ? max_value : T{});
          break;
        case AggregateKind::kAvg:
          results.emplace_back(
              matched == 0 ? 0.0 : avg_sum / static_cast<double>(matched));
          break;
        case AggregateKind::kCountStar:
          break;  // Handled above.
      }
    });
  }
  return results;
}

// Runs the plan's first (full-chunk) scan step under the fallback policy,
// demoting along DegradationLadder() when the requested engine fails and
// recording every attempt in `report`. The JIT engine carries its own
// internal ladder (narrow widths before static kernels); static engines
// walk the ladder here.
StatusOr<TableMatches> RunFirstStep(const TablePtr& table,
                                    const PhysicalPlan::ScanStep& step,
                                    FallbackPolicy policy, int threads,
                                    ExecutionReport* report) {
  if (threads > 1 && table->chunk_count() > 1) {
    // Morsel-driven parallel path: per-chunk morsels on the task pool,
    // per-morsel degradation, byte-identical output (fts/exec).
    FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                         TableScanner::Prepare(table, step.spec));
    ParallelScanOptions options;
    options.requested = StepEngineChoice(step);
    options.fallback = policy;
    options.threads = threads;
    return ExecuteParallelScan(scanner, options, report);
  }
  if (step.engine == ScanEngine::kJit) {
    JitScanEngine engine(step.jit_register_bits, &GlobalJitCache(), policy);
    return engine.Execute(table, step.spec, report);
  }
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, step.spec));
  report->requested = {step.engine, 0};
  FillPruningReport(scanner, report);
  const std::vector<EngineChoice> rungs =
      policy == FallbackPolicy::kLadder
          ? DegradationLadder(step.engine, 0)
          : std::vector<EngineChoice>{{step.engine, 0}};
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    StatusOr<TableMatches> result = scanner.Execute(choice.engine);
    if (result.ok()) {
      report->RecordSuccess(choice);
      return result;
    }
    report->RecordFailure(choice, result.status());
    last = result.status();
  }
  return last;
}

// Count-only twin of RunFirstStep for the COUNT(*) fast path.
StatusOr<uint64_t> RunFirstStepCount(const TablePtr& table,
                                     const PhysicalPlan::ScanStep& step,
                                     FallbackPolicy policy, int threads,
                                     ExecutionReport* report) {
  if (threads > 1 && table->chunk_count() > 1) {
    FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                         TableScanner::Prepare(table, step.spec));
    ParallelScanOptions options;
    options.requested = StepEngineChoice(step);
    options.fallback = policy;
    options.threads = threads;
    return ExecuteParallelScanCount(scanner, options, report);
  }
  if (step.engine == ScanEngine::kJit) {
    JitScanEngine engine(step.jit_register_bits, &GlobalJitCache(), policy);
    return engine.ExecuteCount(table, step.spec, report);
  }
  FTS_ASSIGN_OR_RETURN(const TableScanner scanner,
                       TableScanner::Prepare(table, step.spec));
  report->requested = {step.engine, 0};
  FillPruningReport(scanner, report);
  const std::vector<EngineChoice> rungs =
      policy == FallbackPolicy::kLadder
          ? DegradationLadder(step.engine, 0)
          : std::vector<EngineChoice>{{step.engine, 0}};
  Status last = Status::Unavailable("no scan engine could run");
  for (const EngineChoice& choice : rungs) {
    StatusOr<uint64_t> result = scanner.ExecuteCount(choice.engine);
    if (result.ok()) {
      report->RecordSuccess(choice);
      return result;
    }
    report->RecordFailure(choice, result.status());
    last = result.status();
  }
  return last;
}

StatusOr<TableMatches> RunStep(const TablePtr& table,
                               const PhysicalPlan::ScanStep& step,
                               const std::optional<TableMatches>& previous,
                               FallbackPolicy policy, int threads,
                               ExecutionReport* report) {
  if (!previous.has_value()) {
    return RunFirstStep(table, step, policy, threads, report);
  }
  // Later steps refine position lists tuple-at-a-time; no engine involved.
  return RefineMatches(table, step.spec, *previous);
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  if (count.has_value()) {
    return StrFormat("COUNT(*) = %llu\n",
                     static_cast<unsigned long long>(*count));
  }
  out += Join(column_names, " | ") + "\n";
  const size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    cells.reserve(rows[r].size());
    for (const Value& value : rows[r]) cells.push_back(ValueToString(value));
    out += Join(cells, " | ") + "\n";
  }
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - shown);
  }
  return out;
}

std::string PhysicalPlan::Explain() const {
  std::string out;
  if (output == Output::kCountStar) {
    out += "CountAggregate\n";
  } else if (output == Output::kAggregate) {
    std::vector<std::string> parts;
    parts.reserve(aggregate_items.size());
    for (const AggregateItem& item : aggregate_items) {
      parts.push_back(item.ToString());
    }
    out += "Aggregate: " + Join(parts, ", ") + "\n";
  } else {
    out += "Project: " + Join(projection_names, ", ") + "\n";
  }
  int depth = 1;
  if (empty_result) {
    out += "  EmptyResult (contradictory predicates)\n";
    out += StrFormat("    GetTable: %s\n", table_name.c_str());
    return out;
  }
  for (size_t i = scan_steps.size(); i-- > 0;) {
    const ScanStep& step = scan_steps[i];
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    const char* op_name =
        (step.spec.predicates.size() > 1 || step.engine == ScanEngine::kJit)
            ? "FusedTableScan"
            : "TableScan";
    out += StrFormat("%s [%s]: %s\n", op_name,
                     ScanEngineToString(step.engine),
                     step.spec.ToString().c_str());
    ++depth;
  }
  out += std::string(static_cast<size_t>(depth) * 2, ' ');
  out += StrFormat("GetTable: %s\n", table_name.c_str());
  return out;
}

StatusOr<QueryResult> ExecutePlan(const PhysicalPlan& plan) {
  if (plan.table == nullptr) return Status::InvalidArgument("plan has no table");

  if (plan.empty_result) {
    TableMatches none;
    none.chunks.resize(plan.table->chunk_count());
    for (ChunkId chunk_id = 0; chunk_id < plan.table->chunk_count();
         ++chunk_id) {
      none.chunks[chunk_id].chunk_id = chunk_id;
    }
    QueryResult result;
    result.matched_rows = 0;
    if (plan.output == PhysicalPlan::Output::kCountStar) {
      result.count = 0;
      result.column_names = {"count"};
    } else if (plan.output == PhysicalPlan::Output::kAggregate) {
      result.rows.push_back(
          ComputeAggregates(*plan.table, none, plan.aggregate_items));
      for (const AggregateItem& item : plan.aggregate_items) {
        result.column_names.push_back(item.ToString());
      }
    } else {
      result.column_names = plan.projection_names;
    }
    return result;
  }

  // COUNT(*) over a single scan step skips position materialization
  // entirely: the SISD engines run their counting loop (the paper's
  // Section II baseline) and the JIT compiles a count-only operator.
  if (plan.output == PhysicalPlan::Output::kCountStar &&
      plan.scan_steps.size() == 1) {
    QueryResult result;
    const PhysicalPlan::ScanStep& step = plan.scan_steps[0];
    const StatusOr<uint64_t> count =
        RunFirstStepCount(plan.table, step, plan.fallback,
                          ResolveStepThreads(plan, step),
                          &result.execution_report);
    FTS_RETURN_IF_ERROR(count.status());
    result.matched_rows = *count;
    result.count = *count;
    result.column_names = {"count"};
    return result;
  }

  ExecutionReport report;
  std::optional<TableMatches> matches;
  for (const PhysicalPlan::ScanStep& step : plan.scan_steps) {
    FTS_ASSIGN_OR_RETURN(
        TableMatches next,
        RunStep(plan.table, step, matches, plan.fallback,
                ResolveStepThreads(plan, step), &report));
    matches = std::move(next);
  }
  // No scan steps: every row matches.
  if (!matches.has_value()) {
    TableMatches all;
    all.chunks.reserve(plan.table->chunk_count());
    for (ChunkId chunk_id = 0; chunk_id < plan.table->chunk_count();
         ++chunk_id) {
      ChunkMatches chunk_matches;
      chunk_matches.chunk_id = chunk_id;
      chunk_matches.positions.resize(
          plan.table->chunk(chunk_id).row_count());
      std::iota(chunk_matches.positions.begin(),
                chunk_matches.positions.end(), 0u);
      all.chunks.push_back(std::move(chunk_matches));
    }
    matches = std::move(all);
  }

  QueryResult result;
  result.execution_report = std::move(report);
  result.matched_rows = matches->TotalMatches();
  if (plan.output == PhysicalPlan::Output::kCountStar) {
    result.count = result.matched_rows;
    result.column_names = {"count"};
    return result;
  }
  if (plan.output == PhysicalPlan::Output::kAggregate) {
    result.rows.push_back(
        ComputeAggregates(*plan.table, *matches, plan.aggregate_items));
    for (const AggregateItem& item : plan.aggregate_items) {
      result.column_names.push_back(item.ToString());
    }
    return result;
  }

  result.column_names = plan.projection_names;
  result.rows.reserve(result.matched_rows);
  for (const ChunkMatches& chunk_matches : matches->chunks) {
    for (const uint32_t pos : chunk_matches.positions) {
      std::vector<Value> row;
      row.reserve(plan.projection_indexes.size());
      for (const size_t column : plan.projection_indexes) {
        row.push_back(plan.table->GetValue(
            column, RowId{chunk_matches.chunk_id, pos}));
      }
      result.rows.push_back(std::move(row));
    }
  }

  // ORDER BY / LIMIT on the materialized projection.
  if (plan.order_by_index.has_value()) {
    const size_t key = *plan.order_by_index;
    const bool descending = plan.order_descending;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [key, descending](const std::vector<Value>& a,
                                       const std::vector<Value>& b) {
                       const double lhs = ValueAs<double>(a[key]);
                       const double rhs = ValueAs<double>(b[key]);
                       return descending ? lhs > rhs : lhs < rhs;
                     });
  }
  if (plan.limit.has_value() && result.rows.size() > *plan.limit) {
    result.rows.resize(*plan.limit);
  }
  return result;
}

}  // namespace fts
