#include "fts/plan/translator.h"

#include "fts/common/string_util.h"
#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {
namespace {

PredicateSpec ToPredicateSpec(const AstPredicate& predicate) {
  return PredicateSpec{predicate.column, predicate.op, predicate.literal};
}

// Routes an eligible aggregate projection onto the scan: the plan's single
// scan step (or a synthesized predicate-less step when the query has no
// WHERE) gains spec.aggregates, and the executor folds them inside the
// kernel loop without materializing a position list. Ineligible plans are
// left untouched and run materialize-then-aggregate:
//   - multi-step (non-fused) scan chains refine position lists, which the
//     fold kernels never produce;
//   - 8/16-bit plain columns have no fused fold (dictionary chunks widen
//     their decode tables per chunk, but the logical type gates here);
//   - more distinct (op, column) terms than kMaxAggTerms.
void PlanAggregatePushdown(PhysicalPlan* plan,
                           const TranslatorOptions& options) {
  if (plan->output != PhysicalPlan::Output::kAggregate) return;
  if (plan->empty_result || plan->scan_steps.size() > 1) return;

  std::vector<AggregateSpec> terms;
  std::vector<int> bindings;
  const auto term_index = [&terms](AggOp op, const std::string& column) {
    for (size_t i = 0; i < terms.size(); ++i) {
      if (terms[i].op == op && terms[i].column == column) {
        return static_cast<int>(i);
      }
    }
    if (terms.size() == kMaxAggTerms) return -1;
    terms.push_back(AggregateSpec{op, column});
    return static_cast<int>(terms.size()) - 1;
  };

  for (const AggregateItem& item : plan->aggregate_items) {
    if (item.kind == AggregateKind::kCountStar) {
      const int index = term_index(AggOp::kCount, std::string());
      if (index < 0) return;
      bindings.push_back(index);
      continue;
    }
    const StatusOr<size_t> column = plan->table->ColumnIndex(item.column);
    // Unknown columns fall through to the materialize path, which surfaces
    // the error with its usual message.
    if (!column.ok()) return;
    const DataType type = plan->table->column_definition(*column).type;
    if (!ScanElementTypeFromDataType(type).ok()) return;
    // The fold kernels read plain/dictionary/bit-packed operands only
    // (BuildAggTerm rejects the rest per chunk); one RLE/FoR/delta chunk
    // sends the whole query down the materialize path instead of failing
    // mid-scan.
    for (ChunkId chunk = 0; chunk < plan->table->chunk_count(); ++chunk) {
      const ColumnEncoding encoding =
          plan->table->chunk(chunk).column(*column).encoding();
      if (!IsKernelScannable(encoding) ||
          encoding == ColumnEncoding::kFor) {
        return;
      }
    }
    AggOp op = AggOp::kCount;
    switch (item.kind) {
      case AggregateKind::kSum:
      case AggregateKind::kAvg:
        op = AggOp::kSum;
        break;
      case AggregateKind::kMin:
        op = AggOp::kMin;
        break;
      case AggregateKind::kMax:
        op = AggOp::kMax;
        break;
      case AggregateKind::kCountStar:
        return;  // Handled above.
    }
    const int index = term_index(op, item.column);
    if (index < 0) return;
    bindings.push_back(index);
  }

  PhysicalPlan::ScanStep step;
  if (!plan->scan_steps.empty()) {
    step = plan->scan_steps[0];
  } else {
    step.spec.threads = options.threads;
    step.spec.context = options.context;
    step.spec.adaptive = options.adaptive;
    step.engine = options.engine;
    step.jit_register_bits = options.jit_register_bits;
  }
  step.spec.aggregates = std::move(terms);
  plan->pushdown_step = std::move(step);
  plan->pushdown_bindings = std::move(bindings);
}

}  // namespace

StatusOr<PhysicalPlan> TranslateLqp(const LqpNodePtr& root,
                                    const TranslatorOptions& options) {
  if (root == nullptr) return Status::InvalidArgument("null LQP");

  PhysicalPlan plan;
  plan.output = PhysicalPlan::Output::kCountStar;
  plan.fallback = options.fallback;
  plan.threads = options.threads;
  plan.context = options.context;

  bool saw_output = false;
  std::optional<std::string> order_by_name;
  // Collect nodes root-first; scan steps must execute bottom-up, so build
  // the step list in reverse at the end.
  std::vector<PhysicalPlan::ScanStep> steps_root_first;

  for (LqpNode* node = root.get(); node != nullptr;
       node = node->child().get()) {
    switch (node->kind()) {
      case LqpNodeKind::kAggregate: {
        const auto* aggregate = static_cast<const AggregateNode*>(node);
        plan.aggregate_items = aggregate->items();
        const bool pure_count =
            plan.aggregate_items.size() == 1 &&
            plan.aggregate_items[0].kind == AggregateKind::kCountStar;
        plan.output = pure_count ? PhysicalPlan::Output::kCountStar
                                 : PhysicalPlan::Output::kAggregate;
        saw_output = true;
        break;
      }
      case LqpNodeKind::kProjection: {
        const auto* projection = static_cast<const ProjectionNode*>(node);
        plan.output = PhysicalPlan::Output::kProject;
        saw_output = true;
        plan.projection_names = projection->columns();
        // select_all resolved after the table is known.
        if (projection->select_all()) plan.projection_names.clear();
        plan.order_descending = projection->order_descending();
        plan.limit = projection->limit();
        // order_by resolved to an index after the table is known; stash
        // the name in projection_names? No — resolve below via the node.
        if (projection->order_by().has_value()) {
          order_by_name = projection->order_by();
        }
        break;
      }
      case LqpNodeKind::kPredicate: {
        const auto* predicate = static_cast<const PredicateNode*>(node);
        PhysicalPlan::ScanStep step;
        step.spec.predicates = {ToPredicateSpec(predicate->predicate())};
        step.spec.threads = options.threads;
        step.spec.context = options.context;
        step.spec.adaptive = options.adaptive;
        step.engine = options.engine;
        step.jit_register_bits = options.jit_register_bits;
        steps_root_first.push_back(std::move(step));
        break;
      }
      case LqpNodeKind::kFusedScan: {
        const auto* fused = static_cast<const FusedScanNode*>(node);
        PhysicalPlan::ScanStep step;
        step.spec.predicates.reserve(fused->predicates().size());
        for (const AstPredicate& predicate : fused->predicates()) {
          step.spec.predicates.push_back(ToPredicateSpec(predicate));
        }
        step.spec.threads = options.threads;
        step.spec.context = options.context;
        step.spec.adaptive = options.adaptive;
        step.engine = options.engine;
        step.jit_register_bits = options.jit_register_bits;
        steps_root_first.push_back(std::move(step));
        break;
      }
      case LqpNodeKind::kEmptyResult: {
        plan.empty_result = true;
        break;
      }
      case LqpNodeKind::kStoredTable: {
        const auto* stored = static_cast<const StoredTableNode*>(node);
        plan.table = stored->table();
        plan.table_name = stored->name();
        break;
      }
    }
  }

  if (plan.table == nullptr) {
    return Status::InvalidArgument("LQP has no stored table");
  }
  if (!saw_output) {
    return Status::InvalidArgument("LQP has no projection or aggregate");
  }

  // Resolve projection columns.
  if (plan.output == PhysicalPlan::Output::kProject) {
    if (plan.projection_names.empty()) {  // SELECT *
      for (size_t c = 0; c < plan.table->column_count(); ++c) {
        plan.projection_names.push_back(
            plan.table->column_definition(c).name);
      }
    }
    plan.projection_indexes.reserve(plan.projection_names.size());
    for (const std::string& name : plan.projection_names) {
      FTS_ASSIGN_OR_RETURN(const size_t index,
                           plan.table->ColumnIndex(name));
      plan.projection_indexes.push_back(index);
    }
    if (order_by_name.has_value()) {
      // ORDER BY refers to a projected column (the common case); sort by
      // its position within the output row.
      FTS_ASSIGN_OR_RETURN(const size_t table_index,
                           plan.table->ColumnIndex(*order_by_name));
      for (size_t p = 0; p < plan.projection_indexes.size(); ++p) {
        if (plan.projection_indexes[p] == table_index) {
          plan.order_by_index = p;
        }
      }
      if (!plan.order_by_index.has_value()) {
        return Status::InvalidArgument(StrFormat(
            "ORDER BY column '%s' must appear in the projection",
            order_by_name->c_str()));
      }
    }
  }

  plan.scan_steps.assign(steps_root_first.rbegin(),
                         steps_root_first.rend());
  if (options.enable_aggregate_pushdown) {
    PlanAggregatePushdown(&plan, options);
  }
  return plan;
}

}  // namespace fts
