#include "fts/plan/translator.h"

#include "fts/common/string_util.h"

namespace fts {
namespace {

PredicateSpec ToPredicateSpec(const AstPredicate& predicate) {
  return PredicateSpec{predicate.column, predicate.op, predicate.literal};
}

}  // namespace

StatusOr<PhysicalPlan> TranslateLqp(const LqpNodePtr& root,
                                    const TranslatorOptions& options) {
  if (root == nullptr) return Status::InvalidArgument("null LQP");

  PhysicalPlan plan;
  plan.output = PhysicalPlan::Output::kCountStar;
  plan.fallback = options.fallback;
  plan.threads = options.threads;

  bool saw_output = false;
  std::optional<std::string> order_by_name;
  // Collect nodes root-first; scan steps must execute bottom-up, so build
  // the step list in reverse at the end.
  std::vector<PhysicalPlan::ScanStep> steps_root_first;

  for (LqpNode* node = root.get(); node != nullptr;
       node = node->child().get()) {
    switch (node->kind()) {
      case LqpNodeKind::kAggregate: {
        const auto* aggregate = static_cast<const AggregateNode*>(node);
        plan.aggregate_items = aggregate->items();
        const bool pure_count =
            plan.aggregate_items.size() == 1 &&
            plan.aggregate_items[0].kind == AggregateKind::kCountStar;
        plan.output = pure_count ? PhysicalPlan::Output::kCountStar
                                 : PhysicalPlan::Output::kAggregate;
        saw_output = true;
        break;
      }
      case LqpNodeKind::kProjection: {
        const auto* projection = static_cast<const ProjectionNode*>(node);
        plan.output = PhysicalPlan::Output::kProject;
        saw_output = true;
        plan.projection_names = projection->columns();
        // select_all resolved after the table is known.
        if (projection->select_all()) plan.projection_names.clear();
        plan.order_descending = projection->order_descending();
        plan.limit = projection->limit();
        // order_by resolved to an index after the table is known; stash
        // the name in projection_names? No — resolve below via the node.
        if (projection->order_by().has_value()) {
          order_by_name = projection->order_by();
        }
        break;
      }
      case LqpNodeKind::kPredicate: {
        const auto* predicate = static_cast<const PredicateNode*>(node);
        PhysicalPlan::ScanStep step;
        step.spec.predicates = {ToPredicateSpec(predicate->predicate())};
        step.spec.threads = options.threads;
        step.engine = options.engine;
        step.jit_register_bits = options.jit_register_bits;
        steps_root_first.push_back(std::move(step));
        break;
      }
      case LqpNodeKind::kFusedScan: {
        const auto* fused = static_cast<const FusedScanNode*>(node);
        PhysicalPlan::ScanStep step;
        step.spec.predicates.reserve(fused->predicates().size());
        for (const AstPredicate& predicate : fused->predicates()) {
          step.spec.predicates.push_back(ToPredicateSpec(predicate));
        }
        step.spec.threads = options.threads;
        step.engine = options.engine;
        step.jit_register_bits = options.jit_register_bits;
        steps_root_first.push_back(std::move(step));
        break;
      }
      case LqpNodeKind::kEmptyResult: {
        plan.empty_result = true;
        break;
      }
      case LqpNodeKind::kStoredTable: {
        const auto* stored = static_cast<const StoredTableNode*>(node);
        plan.table = stored->table();
        plan.table_name = stored->name();
        break;
      }
    }
  }

  if (plan.table == nullptr) {
    return Status::InvalidArgument("LQP has no stored table");
  }
  if (!saw_output) {
    return Status::InvalidArgument("LQP has no projection or aggregate");
  }

  // Resolve projection columns.
  if (plan.output == PhysicalPlan::Output::kProject) {
    if (plan.projection_names.empty()) {  // SELECT *
      for (size_t c = 0; c < plan.table->column_count(); ++c) {
        plan.projection_names.push_back(
            plan.table->column_definition(c).name);
      }
    }
    plan.projection_indexes.reserve(plan.projection_names.size());
    for (const std::string& name : plan.projection_names) {
      FTS_ASSIGN_OR_RETURN(const size_t index,
                           plan.table->ColumnIndex(name));
      plan.projection_indexes.push_back(index);
    }
    if (order_by_name.has_value()) {
      // ORDER BY refers to a projected column (the common case); sort by
      // its position within the output row.
      FTS_ASSIGN_OR_RETURN(const size_t table_index,
                           plan.table->ColumnIndex(*order_by_name));
      for (size_t p = 0; p < plan.projection_indexes.size(); ++p) {
        if (plan.projection_indexes[p] == table_index) {
          plan.order_by_index = p;
        }
      }
      if (!plan.order_by_index.has_value()) {
        return Status::InvalidArgument(StrFormat(
            "ORDER BY column '%s' must appear in the projection",
            order_by_name->c_str()));
      }
    }
  }

  plan.scan_steps.assign(steps_root_first.rbegin(),
                         steps_root_first.rend());
  return plan;
}

}  // namespace fts
