#ifndef FTS_PLAN_LQP_H_
#define FTS_PLAN_LQP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/sql/ast.h"
#include "fts/storage/table.h"

namespace fts {

// Logical query plan nodes (Fig. 9: "The Hyrise optimizer works on logical
// query plans that contain relational algebra operators"). Plans for the
// supported query family are linear chains:
//
//   Aggregate/Projection -> Predicate* | FusedScan -> StoredTable
//
// FusedScanNode is introduced by the optimizer's fusion rule (Fig. 8,
// right side): a chain of predicates tagged for translation into a single
// Fused Table Scan operator.
enum class LqpNodeKind : uint8_t {
  kStoredTable = 0,
  kPredicate,
  kFusedScan,
  kProjection,
  kAggregate,
  // Introduced by the simplification rule when the conjunction is
  // contradictory (e.g. a = 5 AND a = 6): the subtree produces no rows.
  kEmptyResult,
};

class LqpNode;
using LqpNodePtr = std::shared_ptr<LqpNode>;

class LqpNode {
 public:
  explicit LqpNode(LqpNodeKind kind) : kind_(kind) {}
  virtual ~LqpNode() = default;

  LqpNodeKind kind() const { return kind_; }
  const LqpNodePtr& child() const { return child_; }
  void set_child(LqpNodePtr child) { child_ = std::move(child); }

  // One-line description, e.g. "Predicate: a = 5 (est. sel 0.1%)".
  virtual std::string Description() const = 0;

 private:
  LqpNodeKind kind_;
  LqpNodePtr child_;
};

class StoredTableNode final : public LqpNode {
 public:
  StoredTableNode(std::string name, TablePtr table)
      : LqpNode(LqpNodeKind::kStoredTable),
        name_(std::move(name)),
        table_(std::move(table)) {}

  const std::string& name() const { return name_; }
  const TablePtr& table() const { return table_; }
  std::string Description() const override;

 private:
  std::string name_;
  TablePtr table_;
};

class PredicateNode final : public LqpNode {
 public:
  explicit PredicateNode(AstPredicate predicate)
      : LqpNode(LqpNodeKind::kPredicate), predicate_(std::move(predicate)) {}

  const AstPredicate& predicate() const { return predicate_; }

  // Filled by the reordering rule; nullopt before estimation.
  std::optional<double> estimated_selectivity() const {
    return estimated_selectivity_;
  }
  void set_estimated_selectivity(double selectivity) {
    estimated_selectivity_ = selectivity;
  }

  std::string Description() const override;

 private:
  AstPredicate predicate_;
  std::optional<double> estimated_selectivity_;
};

class FusedScanNode final : public LqpNode {
 public:
  explicit FusedScanNode(std::vector<AstPredicate> predicates)
      : LqpNode(LqpNodeKind::kFusedScan),
        predicates_(std::move(predicates)) {}

  const std::vector<AstPredicate>& predicates() const { return predicates_; }
  std::string Description() const override;

 private:
  std::vector<AstPredicate> predicates_;
};

class ProjectionNode final : public LqpNode {
 public:
  ProjectionNode(std::vector<std::string> columns, bool select_all)
      : LqpNode(LqpNodeKind::kProjection),
        columns_(std::move(columns)),
        select_all_(select_all) {}

  const std::vector<std::string>& columns() const { return columns_; }
  bool select_all() const { return select_all_; }

  // Output ordering / truncation (from ORDER BY / LIMIT).
  const std::optional<std::string>& order_by() const { return order_by_; }
  bool order_descending() const { return order_descending_; }
  const std::optional<uint64_t>& limit() const { return limit_; }
  void set_order_by(std::string column, bool descending) {
    order_by_ = std::move(column);
    order_descending_ = descending;
  }
  void set_limit(uint64_t limit) { limit_ = limit; }

  std::string Description() const override;

 private:
  std::vector<std::string> columns_;
  bool select_all_;
  std::optional<std::string> order_by_;
  bool order_descending_ = false;
  std::optional<uint64_t> limit_;
};

class AggregateNode final : public LqpNode {
 public:
  // `items` must be non-empty; COUNT(*) is {kCountStar}.
  explicit AggregateNode(std::vector<AggregateItem> items)
      : LqpNode(LqpNodeKind::kAggregate), items_(std::move(items)) {}

  const std::vector<AggregateItem>& items() const { return items_; }
  std::string Description() const override;

 private:
  std::vector<AggregateItem> items_;
};

class EmptyResultNode final : public LqpNode {
 public:
  explicit EmptyResultNode(std::string reason)
      : LqpNode(LqpNodeKind::kEmptyResult), reason_(std::move(reason)) {}
  const std::string& reason() const { return reason_; }
  std::string Description() const override;

 private:
  std::string reason_;
};

// Renders the chain root-first with indentation (EXPLAIN output).
std::string ExplainLqp(const LqpNodePtr& root);

// Builds the naive (pre-optimization) LQP for a parsed statement against
// `table`. Validates that referenced columns exist.
StatusOr<LqpNodePtr> BuildLqp(const SelectStatement& statement,
                              const std::string& table_name, TablePtr table);

// Finds the StoredTableNode at the bottom of a chain (nullptr if absent).
const StoredTableNode* FindStoredTable(const LqpNodePtr& root);

}  // namespace fts

#endif  // FTS_PLAN_LQP_H_
