#ifndef FTS_PLAN_OPTIMIZER_H_
#define FTS_PLAN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/plan/lqp.h"

namespace fts {

// Rule-based optimizer (Section V: "The rule-based part of the optimizer
// translates the LQP using techniques such as predicate pushdown and
// predicate reordering ... When multiple predicates are identified as a
// chain, they are tagged to be translated as a Fused Table Scan.").
class OptimizerRule {
 public:
  virtual ~OptimizerRule() = default;
  virtual const char* name() const = 0;
  // Rewrites the chain rooted at *root in place (possibly replacing nodes).
  virtual Status Apply(LqpNodePtr* root) = 0;
};

// Moves PredicateNodes below ProjectionNodes so filters run before
// materialization. (Projections in this system never compute new columns,
// so the move is always legal.)
class PredicatePushdownRule final : public OptimizerRule {
 public:
  const char* name() const override { return "PredicatePushdown"; }
  Status Apply(LqpNodePtr* root) override;
};

// Orders adjacent PredicateNodes by estimated selectivity, most selective
// first, using TableStatistics of the underlying stored table. Annotates
// each node with its estimate.
class PredicateReorderingRule final : public OptimizerRule {
 public:
  const char* name() const override { return "PredicateReordering"; }
  Status Apply(LqpNodePtr* root) override;
};

// Cleans up predicate conjunctions before fusion:
//   - removes exact duplicates (a = 5 AND a = 5),
//   - removes predicates subsumed by a tighter one on the same column
//     (a < 5 AND a < 9  =>  a < 5),
//   - detects contradictions (a = 5 AND a = 6, a = 5 AND a < 3,
//     a > 9 AND a <= 2) and replaces the chain with an EmptyResultNode.
// Values are compared in the double domain (exact for the integral
// magnitudes this engine stores).
class PredicateSimplificationRule final : public OptimizerRule {
 public:
  const char* name() const override { return "PredicateSimplification"; }
  Status Apply(LqpNodePtr* root) override;
};

// Collapses maximal chains of >= `min_chain_length` PredicateNodes into a
// FusedScanNode (Fig. 8, right side).
class FusedScanFusionRule final : public OptimizerRule {
 public:
  explicit FusedScanFusionRule(size_t min_chain_length = 2)
      : min_chain_length_(min_chain_length) {}
  const char* name() const override { return "FusedScanFusion"; }
  Status Apply(LqpNodePtr* root) override;

 private:
  size_t min_chain_length_;
};

struct OptimizerOptions {
  bool enable_pushdown = true;
  bool enable_simplification = true;
  bool enable_reordering = true;
  // Fusion is enabled when the target execution engine can run a fused
  // operator; the Database facade wires this from its engine setting.
  bool enable_fusion = true;
  size_t fusion_min_chain_length = 2;
};

// Applies the standard rule sequence to `root`.
Status OptimizeLqp(LqpNodePtr* root, const OptimizerOptions& options = {});

}  // namespace fts

#endif  // FTS_PLAN_OPTIMIZER_H_
