#include "fts/plan/optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "fts/common/macros.h"
#include "fts/common/string_util.h"
#include "fts/storage/table_statistics.h"

namespace fts {
namespace {

// Flattens the linear chain into a root-first vector (the last element is
// the StoredTableNode).
std::vector<LqpNodePtr> FlattenChain(const LqpNodePtr& root) {
  std::vector<LqpNodePtr> nodes;
  for (LqpNodePtr node = root; node != nullptr; node = node->child()) {
    nodes.push_back(node);
  }
  return nodes;
}

// Relinks a root-first vector into a chain and returns the new root.
LqpNodePtr RelinkChain(std::vector<LqpNodePtr> nodes) {
  FTS_CHECK(!nodes.empty());
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    nodes[i]->set_child(nodes[i + 1]);
  }
  nodes.back()->set_child(nullptr);
  return nodes.front();
}

}  // namespace

Status PredicatePushdownRule::Apply(LqpNodePtr* root) {
  std::vector<LqpNodePtr> nodes = FlattenChain(*root);
  // Bubble every PredicateNode below any ProjectionNode beneath it. In the
  // root-first vector this means predicates move toward the back, past
  // projections. Stable to preserve the relative predicate order.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      if (nodes[i]->kind() == LqpNodeKind::kPredicate &&
          nodes[i + 1]->kind() == LqpNodeKind::kProjection) {
        std::swap(nodes[i], nodes[i + 1]);
        changed = true;
      }
    }
  }
  *root = RelinkChain(std::move(nodes));
  return Status::Ok();
}

namespace {

// Interval summary of all predicates on one column, in the double domain.
// Comparisons are exact for every value this engine stores with magnitude
// below 2^53; larger integers disable simplification for their column.
struct ColumnBounds {
  std::optional<double> eq;
  size_t eq_index = 0;
  // (value, inclusive, node index); best = tightest.
  std::optional<std::tuple<double, bool, size_t>> lower;
  std::optional<std::tuple<double, bool, size_t>> upper;
  std::map<double, size_t> nes;  // Distinct != values, first node each.
  bool unsimplifiable = false;   // Values beyond exact double range.
  bool contradiction = false;
};

bool ExactInDouble(const Value& value) {
  const double d = ValueAs<double>(value);
  return std::abs(d) <= 9007199254740992.0;  // 2^53.
}

void Absorb(ColumnBounds& bounds, const AstPredicate& predicate,
            size_t index) {
  if (!ExactInDouble(predicate.literal)) {
    bounds.unsimplifiable = true;
    return;
  }
  const double v = ValueAs<double>(predicate.literal);
  switch (predicate.op) {
    case CompareOp::kEq:
      if (bounds.eq.has_value() && *bounds.eq != v) {
        bounds.contradiction = true;
      } else if (!bounds.eq.has_value()) {
        bounds.eq = v;
        bounds.eq_index = index;
      }
      return;
    case CompareOp::kNe:
      bounds.nes.emplace(v, index);
      return;
    case CompareOp::kGt:
    case CompareOp::kGe: {
      const bool inclusive = predicate.op == CompareOp::kGe;
      if (!bounds.lower.has_value() ||
          v > std::get<0>(*bounds.lower) ||
          (v == std::get<0>(*bounds.lower) && !inclusive &&
           std::get<1>(*bounds.lower))) {
        bounds.lower = {v, inclusive, index};
      }
      return;
    }
    case CompareOp::kLt:
    case CompareOp::kLe: {
      const bool inclusive = predicate.op == CompareOp::kLe;
      if (!bounds.upper.has_value() ||
          v < std::get<0>(*bounds.upper) ||
          (v == std::get<0>(*bounds.upper) && !inclusive &&
           std::get<1>(*bounds.upper))) {
        bounds.upper = {v, inclusive, index};
      }
      return;
    }
  }
}

// Returns the node indexes to keep for this column, or nullopt on
// contradiction.
std::optional<std::set<size_t>> Finalize(ColumnBounds& bounds,
                                         size_t total_nodes_on_column,
                                         const std::vector<size_t>& all) {
  if (bounds.contradiction) return std::nullopt;
  if (bounds.unsimplifiable) {
    // Keep everything untouched.
    return std::set<size_t>(all.begin(), all.end());
  }
  std::set<size_t> keep;
  if (bounds.eq.has_value()) {
    const double eq = *bounds.eq;
    if (bounds.nes.count(eq) > 0) return std::nullopt;
    if (bounds.lower.has_value()) {
      const auto [v, inclusive, index] = *bounds.lower;
      if (eq < v || (eq == v && !inclusive)) return std::nullopt;
    }
    if (bounds.upper.has_value()) {
      const auto [v, inclusive, index] = *bounds.upper;
      if (eq > v || (eq == v && !inclusive)) return std::nullopt;
    }
    // The equality subsumes every other predicate on the column.
    keep.insert(bounds.eq_index);
    return keep;
  }
  if (bounds.lower.has_value() && bounds.upper.has_value()) {
    const auto [lo, lo_inclusive, lo_index] = *bounds.lower;
    const auto [hi, hi_inclusive, hi_index] = *bounds.upper;
    if (lo > hi || (lo == hi && !(lo_inclusive && hi_inclusive))) {
      return std::nullopt;
    }
  }
  if (bounds.lower.has_value()) keep.insert(std::get<2>(*bounds.lower));
  if (bounds.upper.has_value()) keep.insert(std::get<2>(*bounds.upper));
  for (const auto& [v, index] : bounds.nes) {
    // != values provably outside the bounds are redundant.
    if (bounds.lower.has_value()) {
      const auto [lo, lo_inclusive, lo_index] = *bounds.lower;
      if (v < lo || (v == lo && !lo_inclusive)) continue;
    }
    if (bounds.upper.has_value()) {
      const auto [hi, hi_inclusive, hi_index] = *bounds.upper;
      if (v > hi || (v == hi && !hi_inclusive)) continue;
    }
    keep.insert(index);
  }
  (void)total_nodes_on_column;
  return keep;
}

}  // namespace

Status PredicateSimplificationRule::Apply(LqpNodePtr* root) {
  std::vector<LqpNodePtr> nodes = FlattenChain(*root);

  std::vector<LqpNodePtr> rewritten;
  rewritten.reserve(nodes.size());
  size_t i = 0;
  while (i < nodes.size()) {
    if (nodes[i]->kind() != LqpNodeKind::kPredicate) {
      rewritten.push_back(nodes[i]);
      ++i;
      continue;
    }
    size_t j = i;
    while (j < nodes.size() && nodes[j]->kind() == LqpNodeKind::kPredicate) {
      ++j;
    }

    // Summarize the run per column.
    std::map<std::string, ColumnBounds> by_column;
    std::map<std::string, std::vector<size_t>> indexes_by_column;
    std::set<size_t> duplicates;
    std::set<std::string> seen_predicates;
    for (size_t k = i; k < j; ++k) {
      const AstPredicate& predicate =
          static_cast<const PredicateNode*>(nodes[k].get())->predicate();
      // Exact-duplicate elimination is always safe, whatever the values.
      const std::string fingerprint = predicate.ToString();
      if (!seen_predicates.insert(fingerprint).second) {
        duplicates.insert(k);
        continue;
      }
      Absorb(by_column[predicate.column], predicate, k);
      indexes_by_column[predicate.column].push_back(k);
    }

    bool contradiction = false;
    std::string reason;
    std::set<size_t> keep;
    for (auto& [column, bounds] : by_column) {
      const auto kept =
          Finalize(bounds, indexes_by_column[column].size(),
                   indexes_by_column[column]);
      if (!kept.has_value()) {
        contradiction = true;
        reason = StrFormat("contradictory predicates on '%s'",
                           column.c_str());
        break;
      }
      keep.insert(kept->begin(), kept->end());
    }

    if (contradiction) {
      // Replace the whole run with an EmptyResultNode over whatever the
      // run scanned.
      rewritten.push_back(std::make_shared<EmptyResultNode>(reason));
    } else {
      for (size_t k = i; k < j; ++k) {
        if (duplicates.count(k) > 0) continue;
        if (keep.count(k) > 0) rewritten.push_back(nodes[k]);
      }
    }
    i = j;
  }
  *root = RelinkChain(std::move(rewritten));
  return Status::Ok();
}

Status PredicateReorderingRule::Apply(LqpNodePtr* root) {
  const StoredTableNode* stored = FindStoredTable(*root);
  if (stored == nullptr) return Status::Ok();
  const std::shared_ptr<const TableStatistics> statistics_ptr =
      GetCachedStatistics(stored->table());
  const TableStatistics& statistics = *statistics_ptr;

  std::vector<LqpNodePtr> nodes = FlattenChain(*root);

  // Annotate every predicate with its selectivity estimate.
  for (const auto& node : nodes) {
    if (node->kind() != LqpNodeKind::kPredicate) continue;
    auto* predicate_node = static_cast<PredicateNode*>(node.get());
    const auto column_index =
        stored->table()->ColumnIndex(predicate_node->predicate().column);
    FTS_RETURN_IF_ERROR(column_index.status());
    predicate_node->set_estimated_selectivity(statistics.EstimateSelectivity(
        *column_index, predicate_node->predicate().op,
        predicate_node->predicate().literal));
  }

  // Sort each maximal run of adjacent predicates. In the root-first
  // vector, execution order is back to front, so the most selective
  // predicate must end up *last* in the run (closest to the table — it is
  // evaluated first and shrinks the input of the rest; Section V:
  // "predicates are evaluated as early as possible and in the most
  // efficient order").
  size_t i = 0;
  while (i < nodes.size()) {
    if (nodes[i]->kind() != LqpNodeKind::kPredicate) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < nodes.size() && nodes[j]->kind() == LqpNodeKind::kPredicate) {
      ++j;
    }
    std::stable_sort(
        nodes.begin() + static_cast<long>(i),
        nodes.begin() + static_cast<long>(j),
        [](const LqpNodePtr& a, const LqpNodePtr& b) {
          const auto sel_a = static_cast<const PredicateNode*>(a.get())
                                 ->estimated_selectivity();
          const auto sel_b = static_cast<const PredicateNode*>(b.get())
                                 ->estimated_selectivity();
          // Higher selectivity estimate first in root order = evaluated
          // later.
          return sel_a.value_or(1.0) > sel_b.value_or(1.0);
        });
    i = j;
  }
  *root = RelinkChain(std::move(nodes));
  return Status::Ok();
}

Status FusedScanFusionRule::Apply(LqpNodePtr* root) {
  std::vector<LqpNodePtr> nodes = FlattenChain(*root);
  std::vector<LqpNodePtr> rewritten;
  rewritten.reserve(nodes.size());

  size_t i = 0;
  while (i < nodes.size()) {
    if (nodes[i]->kind() != LqpNodeKind::kPredicate) {
      rewritten.push_back(nodes[i]);
      ++i;
      continue;
    }
    size_t j = i;
    while (j < nodes.size() && nodes[j]->kind() == LqpNodeKind::kPredicate) {
      ++j;
    }
    const size_t run = j - i;
    if (run >= min_chain_length_) {
      // Root-first order means nodes[j-1] executes first; the fused
      // operator evaluates predicates in its list order, so reverse.
      std::vector<AstPredicate> predicates;
      predicates.reserve(run);
      for (size_t k = j; k-- > i;) {
        predicates.push_back(
            static_cast<const PredicateNode*>(nodes[k].get())->predicate());
      }
      rewritten.push_back(
          std::make_shared<FusedScanNode>(std::move(predicates)));
    } else {
      for (size_t k = i; k < j; ++k) rewritten.push_back(nodes[k]);
    }
    i = j;
  }
  *root = RelinkChain(std::move(rewritten));
  return Status::Ok();
}

Status OptimizeLqp(LqpNodePtr* root, const OptimizerOptions& options) {
  FTS_CHECK(root != nullptr && *root != nullptr);
  if (options.enable_pushdown) {
    PredicatePushdownRule rule;
    FTS_RETURN_IF_ERROR(rule.Apply(root));
  }
  if (options.enable_simplification) {
    PredicateSimplificationRule rule;
    FTS_RETURN_IF_ERROR(rule.Apply(root));
  }
  if (options.enable_reordering) {
    PredicateReorderingRule rule;
    FTS_RETURN_IF_ERROR(rule.Apply(root));
  }
  if (options.enable_fusion) {
    FusedScanFusionRule rule(options.fusion_min_chain_length);
    FTS_RETURN_IF_ERROR(rule.Apply(root));
  }
  return Status::Ok();
}

}  // namespace fts
