#include "fts/sql/ast.h"

#include "fts/common/string_util.h"

namespace fts {

std::string AstPredicate::ToString() const {
  return StrFormat("%s %s %s", column.c_str(), CompareOpToString(op),
                   ValueToString(literal).c_str());
}

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggregateItem::ToString() const {
  if (kind == AggregateKind::kCountStar) return "COUNT(*)";
  return StrFormat("%s(%s)", AggregateKindToString(kind), column.c_str());
}

std::string SelectStatement::ToString() const {
  std::string out;
  if (explain) out += analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ";
  out += "SELECT ";
  if (!aggregates.empty()) {
    std::vector<std::string> parts;
    parts.reserve(aggregates.size());
    for (const auto& item : aggregates) parts.push_back(item.ToString());
    out += Join(parts, ", ");
  } else if (select_all) {
    out += "*";
  } else {
    out += Join(columns, ", ");
  }
  out += " FROM " + table;
  if (!predicates.empty()) {
    out += " WHERE ";
    std::vector<std::string> parts;
    parts.reserve(predicates.size());
    for (const auto& predicate : predicates) {
      parts.push_back(predicate.ToString());
    }
    out += Join(parts, " AND ");
  }
  if (order_by.has_value()) {
    out += " ORDER BY " + *order_by;
    if (order_descending) out += " DESC";
  }
  if (limit.has_value()) {
    out += StrFormat(" LIMIT %llu",
                     static_cast<unsigned long long>(*limit));
  }
  return out;
}

}  // namespace fts
