#ifndef FTS_SQL_LEXER_H_
#define FTS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/sql/token.h"

namespace fts {

// Tokenizes the supported SQL subset. Keywords are case-insensitive;
// identifiers keep their original case. Fails with a position-annotated
// message on unexpected characters.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace fts

#endif  // FTS_SQL_LEXER_H_
