#include "fts/sql/parser.h"

#include "fts/common/string_util.h"
#include "fts/sql/lexer.h"

namespace fts {
namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> Parse() {
    SelectStatement statement;
    if (Peek().type == TokenType::kExplain) {
      Advance();
      statement.explain = true;
      if (Peek().type == TokenType::kAnalyze) {
        Advance();
        statement.analyze = true;
      }
    }
    FTS_RETURN_IF_ERROR(Expect(TokenType::kSelect));
    FTS_RETURN_IF_ERROR(ParseProjection(&statement));
    FTS_RETURN_IF_ERROR(Expect(TokenType::kFrom));
    FTS_ASSIGN_OR_RETURN(statement.table, ExpectIdentifier());
    if (Peek().type == TokenType::kWhere) {
      Advance();
      FTS_RETURN_IF_ERROR(ParseConjunction(&statement));
    }
    if (Peek().type == TokenType::kOrder) {
      Advance();
      FTS_RETURN_IF_ERROR(Expect(TokenType::kBy));
      FTS_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      statement.order_by = std::move(column);
      if (Peek().type == TokenType::kDesc) {
        Advance();
        statement.order_descending = true;
      } else if (Peek().type == TokenType::kAsc) {
        Advance();
      }
      if (!statement.aggregates.empty()) {
        return Status::InvalidArgument(
            "ORDER BY is not supported with aggregate projections");
      }
    }
    if (Peek().type == TokenType::kLimit) {
      Advance();
      if (Peek().type != TokenType::kNumber) {
        return UnexpectedToken("LIMIT count");
      }
      const Token& token = Advance();
      char* end = nullptr;
      const unsigned long long limit =
          std::strtoull(token.text.c_str(), &end, 10);
      if (end != token.text.c_str() + token.text.size()) {
        return Status::InvalidArgument(
            StrFormat("malformed LIMIT '%s'", token.text.c_str()));
      }
      statement.limit = limit;
    }
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEndOfInput) {
      return UnexpectedToken("end of statement");
    }
    return statement;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }

  Status UnexpectedToken(const std::string& expected) const {
    const Token& token = Peek();
    return Status::InvalidArgument(StrFormat(
        "expected %s at position %zu, found %s%s%s", expected.c_str(),
        token.position, TokenTypeToString(token.type),
        token.text.empty() ? "" : " ", token.text.c_str()));
  }

  Status Expect(TokenType type) {
    if (Peek().type != type) return UnexpectedToken(TokenTypeToString(type));
    Advance();
    return Status::Ok();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return UnexpectedToken("identifier");
    }
    return Advance().text;
  }

  static bool IsAggregateKeyword(TokenType type) {
    return type == TokenType::kCount || type == TokenType::kSum ||
           type == TokenType::kMin || type == TokenType::kMax ||
           type == TokenType::kAvg;
  }

  Status ParseAggregateItem(SelectStatement* statement) {
    const Token& keyword = Advance();
    AggregateItem item;
    switch (keyword.type) {
      case TokenType::kCount:
        item.kind = AggregateKind::kCountStar;
        break;
      case TokenType::kSum:
        item.kind = AggregateKind::kSum;
        break;
      case TokenType::kMin:
        item.kind = AggregateKind::kMin;
        break;
      case TokenType::kMax:
        item.kind = AggregateKind::kMax;
        break;
      case TokenType::kAvg:
        item.kind = AggregateKind::kAvg;
        break;
      default:
        return UnexpectedToken("aggregate function");
    }
    FTS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    if (item.kind == AggregateKind::kCountStar) {
      FTS_RETURN_IF_ERROR(Expect(TokenType::kStar));
    } else {
      FTS_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
    }
    FTS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    statement->aggregates.push_back(std::move(item));
    return Status::Ok();
  }

  Status ParseProjection(SelectStatement* statement) {
    if (IsAggregateKeyword(Peek().type)) {
      while (true) {
        FTS_RETURN_IF_ERROR(ParseAggregateItem(statement));
        if (Peek().type != TokenType::kComma) break;
        Advance();
        if (!IsAggregateKeyword(Peek().type)) {
          return UnexpectedToken(
              "aggregate function (plain columns cannot be mixed with "
              "aggregates without GROUP BY)");
        }
      }
      statement->count_star =
          statement->aggregates.size() == 1 &&
          statement->aggregates[0].kind == AggregateKind::kCountStar;
      return Status::Ok();
    }
    if (Peek().type == TokenType::kStar) {
      Advance();
      statement->select_all = true;
      return Status::Ok();
    }
    while (true) {
      FTS_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      statement->columns.push_back(std::move(column));
      if (Peek().type != TokenType::kComma) return Status::Ok();
      Advance();
    }
  }

  StatusOr<Value> ParseLiteral() {
    bool negative = false;
    if (Peek().type == TokenType::kMinus) {
      Advance();
      negative = true;
    } else if (Peek().type == TokenType::kPlus) {
      Advance();
    }
    if (Peek().type != TokenType::kNumber) {
      return UnexpectedToken("numeric literal");
    }
    const Token& token = Advance();
    FTS_ASSIGN_OR_RETURN(Value value, ParseNumericLiteral(token.text));
    if (!negative) return value;
    return std::visit(
        [](auto v) -> StatusOr<Value> {
          using T = decltype(v);
          if constexpr (std::is_same_v<T, std::monostate>) {
            return Status::InvalidArgument("cannot negate NULL");
          } else if constexpr (std::is_unsigned_v<T>) {
            return Status::InvalidArgument("cannot negate unsigned literal");
          } else {
            return Value(static_cast<T>(-v));
          }
        },
        value);
  }

  Status ParseConjunction(SelectStatement* statement) {
    while (true) {
      FTS_RETURN_IF_ERROR(ParsePredicate(statement));
      if (Peek().type != TokenType::kAnd) return Status::Ok();
      Advance();
    }
  }

  Status ParsePredicate(SelectStatement* statement) {
    FTS_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    const Token& op_token = Peek();
    switch (op_token.type) {
      case TokenType::kBetween: {
        // col BETWEEN lo AND hi  =>  col >= lo AND col <= hi.
        Advance();
        FTS_ASSIGN_OR_RETURN(const Value lo, ParseLiteral());
        FTS_RETURN_IF_ERROR(Expect(TokenType::kAnd));
        FTS_ASSIGN_OR_RETURN(const Value hi, ParseLiteral());
        statement->predicates.push_back({column, CompareOp::kGe, lo});
        statement->predicates.push_back(
            {std::move(column), CompareOp::kLe, hi});
        return Status::Ok();
      }
      case TokenType::kEq:
      case TokenType::kNe:
      case TokenType::kLt:
      case TokenType::kLe:
      case TokenType::kGt:
      case TokenType::kGe: {
        Advance();
        CompareOp op = CompareOp::kEq;
        switch (op_token.type) {
          case TokenType::kEq:
            op = CompareOp::kEq;
            break;
          case TokenType::kNe:
            op = CompareOp::kNe;
            break;
          case TokenType::kLt:
            op = CompareOp::kLt;
            break;
          case TokenType::kLe:
            op = CompareOp::kLe;
            break;
          case TokenType::kGt:
            op = CompareOp::kGt;
            break;
          case TokenType::kGe:
            op = CompareOp::kGe;
            break;
          default:
            break;
        }
        FTS_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
        statement->predicates.push_back(
            {std::move(column), op, std::move(literal)});
        return Status::Ok();
      }
      default:
        return UnexpectedToken("comparison operator or BETWEEN");
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

StatusOr<SelectStatement> ParseSelect(const std::string& sql) {
  FTS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace fts
