#ifndef FTS_SQL_PARSER_H_
#define FTS_SQL_PARSER_H_

#include <string>

#include "fts/common/status.h"
#include "fts/sql/ast.h"

namespace fts {

// Parses the evaluated query family (see SelectStatement). Errors carry
// the byte position and what was expected. Grammar (EBNF):
//
//   select    := SELECT projection FROM identifier [WHERE conjunction] [;]
//   projection:= COUNT ( * ) | * | identifier {, identifier}
//   conjunction := predicate {AND predicate}
//   predicate := identifier compare literal
//              | identifier BETWEEN literal AND literal
//   compare   := = | <> | != | < | <= | > | >=
//   literal   := [+|-] number
StatusOr<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace fts

#endif  // FTS_SQL_PARSER_H_
