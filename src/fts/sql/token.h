#ifndef FTS_SQL_TOKEN_H_
#define FTS_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace fts {

enum class TokenType : uint8_t {
  kIdentifier = 0,
  kNumber,
  kComma,
  kStar,
  kLParen,
  kRParen,
  kSemicolon,
  kEq,        // =
  kNe,        // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kMinus,
  kPlus,
  // Keywords (case-insensitive in the source).
  kSelect,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kFrom,
  kWhere,
  kAnd,
  kBetween,
  kOrder,
  kBy,
  kAsc,
  kDesc,
  kLimit,
  kExplain,
  kAnalyze,
  kEndOfInput,
};

const char* TokenTypeToString(TokenType type);

struct Token {
  TokenType type = TokenType::kEndOfInput;
  std::string text;   // Original spelling (identifier/number).
  size_t position = 0;  // Byte offset in the query, for error messages.
};

}  // namespace fts

#endif  // FTS_SQL_TOKEN_H_
