#ifndef FTS_SQL_AST_H_
#define FTS_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "fts/storage/compare_op.h"
#include "fts/storage/value.h"

namespace fts {

// A single comparison in the WHERE conjunction: `column op literal`.
// BETWEEN lo AND hi is desugared by the parser into (>= lo, <= hi).
struct AstPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;

  std::string ToString() const;
};

// Aggregate functions in the projection. COUNT(*) is the paper's
// benchmark query; SUM is what TPC-H Q6 (the paper's motivating
// multi-predicate query) actually computes.
enum class AggregateKind : uint8_t {
  kCountStar = 0,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggregateKindToString(AggregateKind kind);

struct AggregateItem {
  AggregateKind kind = AggregateKind::kCountStar;
  std::string column;  // Empty for COUNT(*).

  std::string ToString() const;  // E.g. "SUM(l_extendedprice)".
};

// The supported statement form:
//   SELECT COUNT(*) | agg(col)[, agg(col)...] | * | col[, col...]
//   FROM table
//   [WHERE pred AND pred AND ...]
//   [ORDER BY col [ASC|DESC]] [LIMIT n] [;]
struct SelectStatement {
  // EXPLAIN prefix: render the plan instead of (explain) or in addition to
  // (explain + analyze, which executes and annotates with actuals).
  bool explain = false;
  bool analyze = false;
  bool count_star = false;  // True iff aggregates == {COUNT(*)}.
  bool select_all = false;  // SELECT *
  std::vector<std::string> columns;        // Plain projection list.
  std::vector<AggregateItem> aggregates;   // Aggregate projection.
  std::string table;
  std::vector<AstPredicate> predicates;  // Conjunction; empty = no WHERE.
  // ORDER BY / LIMIT (projection queries only).
  std::optional<std::string> order_by;
  bool order_descending = false;
  std::optional<uint64_t> limit;

  std::string ToString() const;
};

}  // namespace fts

#endif  // FTS_SQL_AST_H_
