#include "fts/sql/lexer.h"

#include <cctype>

#include "fts/common/string_util.h"

namespace fts {
namespace {

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

TokenType KeywordOrIdentifier(const std::string& word) {
  const std::string upper = ToUpper(word);
  if (upper == "SELECT") return TokenType::kSelect;
  if (upper == "COUNT") return TokenType::kCount;
  if (upper == "SUM") return TokenType::kSum;
  if (upper == "MIN") return TokenType::kMin;
  if (upper == "MAX") return TokenType::kMax;
  if (upper == "AVG") return TokenType::kAvg;
  if (upper == "FROM") return TokenType::kFrom;
  if (upper == "WHERE") return TokenType::kWhere;
  if (upper == "AND") return TokenType::kAnd;
  if (upper == "BETWEEN") return TokenType::kBetween;
  if (upper == "ORDER") return TokenType::kOrder;
  if (upper == "BY") return TokenType::kBy;
  if (upper == "ASC") return TokenType::kAsc;
  if (upper == "DESC") return TokenType::kDesc;
  if (upper == "LIMIT") return TokenType::kLimit;
  if (upper == "EXPLAIN") return TokenType::kExplain;
  if (upper == "ANALYZE") return TokenType::kAnalyze;
  return TokenType::kIdentifier;
}

}  // namespace

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kNumber:
      return "number";
    case TokenType::kComma:
      return "','";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kSelect:
      return "SELECT";
    case TokenType::kCount:
      return "COUNT";
    case TokenType::kSum:
      return "SUM";
    case TokenType::kMin:
      return "MIN";
    case TokenType::kMax:
      return "MAX";
    case TokenType::kAvg:
      return "AVG";
    case TokenType::kFrom:
      return "FROM";
    case TokenType::kWhere:
      return "WHERE";
    case TokenType::kAnd:
      return "AND";
    case TokenType::kBetween:
      return "BETWEEN";
    case TokenType::kOrder:
      return "ORDER";
    case TokenType::kBy:
      return "BY";
    case TokenType::kAsc:
      return "ASC";
    case TokenType::kDesc:
      return "DESC";
    case TokenType::kLimit:
      return "LIMIT";
    case TokenType::kExplain:
      return "EXPLAIN";
    case TokenType::kAnalyze:
      return "ANALYZE";
    case TokenType::kEndOfInput:
      return "end of input";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentifierStart(c)) {
      size_t end = i + 1;
      while (end < n && IsIdentifierChar(sql[end])) ++end;
      const std::string word = sql.substr(i, end - i);
      tokens.push_back({KeywordOrIdentifier(word), word, start});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t end = i;
      bool seen_exponent = false;
      while (end < n) {
        const char d = sql[end];
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '.') {
          ++end;
          continue;
        }
        if ((d == 'e' || d == 'E') && !seen_exponent) {
          seen_exponent = true;
          ++end;
          if (end < n && (sql[end] == '+' || sql[end] == '-')) ++end;
          continue;
        }
        break;
      }
      tokens.push_back({TokenType::kNumber, sql.substr(i, end - i), start});
      i = end;
      continue;
    }
    switch (c) {
      case ',':
        tokens.push_back({TokenType::kComma, ",", start});
        ++i;
        continue;
      case '*':
        tokens.push_back({TokenType::kStar, "*", start});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenType::kLParen, "(", start});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenType::kRParen, ")", start});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenType::kSemicolon, ";", start});
        ++i;
        continue;
      case '-':
        tokens.push_back({TokenType::kMinus, "-", start});
        ++i;
        continue;
      case '+':
        tokens.push_back({TokenType::kPlus, "+", start});
        ++i;
        continue;
      case '=':
        tokens.push_back({TokenType::kEq, "=", start});
        ++i;
        continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kNe, "!=", start});
          i += 2;
          continue;
        }
        return Status::InvalidArgument(
            StrFormat("unexpected '!' at position %zu", start));
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kLe, "<=", start});
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tokens.push_back({TokenType::kNe, "<>", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kLt, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kGe, ">=", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kGt, ">", start});
          ++i;
        }
        continue;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at position %zu", c,
                      start));
    }
  }
  tokens.push_back({TokenType::kEndOfInput, "", n});
  return tokens;
}

}  // namespace fts
