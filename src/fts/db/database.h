#ifndef FTS_DB_DATABASE_H_
#define FTS_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "fts/common/query_context.h"
#include "fts/common/status.h"
#include "fts/plan/physical_plan.h"
#include "fts/scan/scan_engine.h"
#include "fts/sql/ast.h"
#include "fts/storage/table.h"

namespace fts {

// Top-level facade tying the whole pipeline together (Fig. 9):
//   SQL string -> parser -> LQP -> optimizer -> LQP translator ->
//   physical plan -> executor.
//
// Typical use:
//   Database db;
//   db.RegisterTable("tbl", table);
//   auto result = db.Query("SELECT COUNT(*) FROM tbl WHERE a = 5 AND b = 2");
class Database {
 public:
  struct QueryOptions {
    // Engine for scan operators. Defaults to the fastest fused engine the
    // CPU supports (AVX-512 512-bit on the paper's hardware class).
    std::optional<ScanEngine> engine;
    int jit_register_bits = 512;
    // What happens when the chosen engine fails at runtime (JIT compiler
    // missing/erroring/timing out, dlopen failure, unsupported CPU):
    // kLadder (default) demotes through the degradation ladder —
    // JIT-512 -> JIT-256/128 -> AVX-512 fused -> AVX2 -> scalar fused ->
    // SISD — and records every demotion in QueryResult::execution_report;
    // kStrict fails the query with the engine's error.
    FallbackPolicy fallback = FallbackPolicy::kLadder;
    // Disable individual optimizer passes (for study/ablation).
    bool optimize = true;
    bool reorder_predicates = true;
    // Worker threads for the scan: morsel-driven chunk parallelism via the
    // work-stealing TaskPool (fts/exec). 0 = FTS_THREADS env, defaulting
    // to single-threaded; N > 1 = N workers. Results are byte-identical
    // for every value; QueryResult::execution_report records the worker
    // count and per-morsel engine decisions.
    int threads = 0;
    // Fold eligible aggregate projections inside the scan kernels instead
    // of materializing a position list (see TranslatorOptions). Disable to
    // force the materialize-then-aggregate path.
    bool aggregate_pushdown = true;
    // Wall-clock deadline for the whole query — admission queueing,
    // planning, and execution all count against it. 0 = none. The global
    // TimerWheel flips the context when it expires and the query returns
    // kDeadlineExceeded at its next cancellation point (morsel/chunk/plan
    // step boundary; running SIMD kernels are uninterruptible).
    int64_t deadline_millis = 0;
    // Budget for in-flight scan scratch (per-chunk position lists); the
    // query fails with kResourceExhausted when a reservation would exceed
    // it. 0 = FTS_QUERY_MEMORY_BUDGET_BYTES env, else unlimited.
    uint64_t memory_budget_bytes = 0;
    // External lifecycle context. When set, the deadline/budget fields
    // above are applied to it and the caller may Cancel() it from another
    // thread (or a signal handler) while the query runs — the shell's
    // \cancel and Ctrl-C do exactly that. Null: Query creates its own.
    std::shared_ptr<QueryContext> context;
  };

  Database() = default;

  // Registers an existing table under `name`.
  Status RegisterTable(const std::string& name, TablePtr table);
  Status DropTable(const std::string& name);
  StatusOr<TablePtr> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Parses, plans, optimizes, and executes `sql`. (Overloads instead of a
  // `= {}` default: nested-class default member initializers are not yet
  // parsed when an in-class default argument would need them.)
  //
  // An `EXPLAIN SELECT ...` statement plans without executing and returns
  // the rendered plans in QueryResult::explain_text; `EXPLAIN ANALYZE`
  // executes the query with counter collection enabled and returns the
  // physical plan annotated with actuals (RenderExplainAnalyze).
  StatusOr<QueryResult> Query(const std::string& sql,
                              const QueryOptions& options) const;
  StatusOr<QueryResult> Query(const std::string& sql) const {
    return Query(sql, QueryOptions());
  }

  // Returns the logical plan before/after optimization and the physical
  // plan, as text.
  StatusOr<std::string> Explain(const std::string& sql,
                                const QueryOptions& options) const;
  StatusOr<std::string> Explain(const std::string& sql) const {
    return Explain(sql, QueryOptions());
  }

  // The engine Query() uses when options.engine is unset.
  static ScanEngine DefaultEngine();

 private:
  StatusOr<PhysicalPlan> Plan(const SelectStatement& statement,
                              const QueryOptions& options,
                              QueryContext* context,
                              std::string* explain_text) const;

  std::map<std::string, TablePtr> tables_;
};

}  // namespace fts

#endif  // FTS_DB_DATABASE_H_
