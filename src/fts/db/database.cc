#include "fts/db/database.h"

#include <algorithm>
#include <cmath>

#include "fts/common/cpu_info.h"
#include "fts/common/env.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/exec/admission.h"
#include "fts/exec/timer_wheel.h"
#include "fts/obs/metrics.h"
#include "fts/obs/query_log.h"
#include "fts/obs/trace.h"
#include "fts/plan/lqp.h"
#include "fts/plan/optimizer.h"
#include "fts/plan/translator.h"
#include "fts/sql/parser.h"

namespace fts {
namespace {

// Per-engine cost-model drift histograms for the query log
// (`fts_cost_est_error_permille{engine="..."}`): |est - actual| relative
// error in permille, recorded on every model-active query so dashboards
// see calibration drift before adaptive choices go bad. Resolved once,
// like EngineExecutionCounter.
obs::Histogram* CostEstErrorHistogram(ScanEngine engine) {
  static obs::Histogram* const* histograms = [] {
    static obs::Histogram* table[9];
    for (int i = 0; i < 9; ++i) {
      const auto e = static_cast<ScanEngine>(i);
      table[i] = obs::MetricsRegistry::Global().GetHistogram(
          StrFormat("fts_cost_est_error_permille{engine=\"%s\"}",
                    ScanEngineLabel(e)),
          "Cost-model row-estimate error per executed engine, in permille");
    }
    return table;
  }();
  const auto index = static_cast<size_t>(engine);
  return histograms[index < 9 ? index : 0];
}

// Terminal outcome label for the query log.
const char* QueryStatusLabel(const Status& status) {
  if (status.ok()) return "ok";
  switch (status.code()) {
    case StatusCode::kQueryCanceled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline";
    case StatusCode::kAdmissionRejected:
      return "rejected";
    default:
      return "error";
  }
}

// Records one finished query (success or failure) in the always-on query
// log and feeds the cost-model drift histogram. `report` may be null when
// the query failed before execution produced one.
void RecordQueryStats(const std::string& sql, const Status& status,
                      const ExecutionReport* report, double total_millis) {
  if (!obs::ObsEnabled()) return;
  obs::QueryLogEntry entry;
  entry.digest = obs::SqlDigest(sql);
  entry.status = QueryStatusLabel(status);
  entry.total_millis = total_millis;
  if (report != nullptr) {
    entry.engine = ScanEngineLabel(report->executed.engine);
    entry.counter_source = CounterSourceToString(report->counters.source);
    entry.scan_millis = report->scan_millis;
    entry.jit_compile_millis = report->jit_compile_millis;
    entry.queue_wait_millis = report->queue_wait_millis;
    entry.rows_scanned = report->rows_scanned;
    entry.rows_matched = report->rows_matched;
    entry.worker_count = report->worker_count;
    entry.morsel_count = report->morsel_count;
    entry.chunks_total = report->chunks_total;
    entry.chunks_pruned = report->chunks_pruned;
    entry.degraded = report->degraded;
    entry.aggregate_pushdown = report->aggregate_pushdown;
    entry.model_active = report->model_active;
    if (report->model_active && status.ok()) {
      const double actual = static_cast<double>(report->rows_matched);
      const double error =
          1000.0 * std::abs(report->est_rows - actual) /
          std::max(actual, 1.0);
      entry.est_error_permille = static_cast<int64_t>(error);
      CostEstErrorHistogram(report->executed.engine)
          ->Record(static_cast<uint64_t>(error));
    }
  }
  obs::QueryLog::Global().Record(std::move(entry));
}

}  // namespace

Status Database::RegisterTable(const std::string& name, TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (name.empty()) return Status::InvalidArgument("empty table name");
  const auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("table '%s' already registered", name.c_str()));
  }
  return Status::Ok();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound(StrFormat("no table named '%s'", name.c_str()));
  }
  return Status::Ok();
}

StatusOr<TablePtr> Database::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("no table named '%s'", name.c_str()));
  }
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ScanEngine Database::DefaultEngine() {
  const CpuFeatures& cpu = GetCpuFeatures();
  if (cpu.HasFusedScanAvx512()) return ScanEngine::kAvx512Fused512;
  if (cpu.avx2) return ScanEngine::kAvx2Fused128;
  return ScanEngine::kScalarFused;
}

StatusOr<PhysicalPlan> Database::Plan(const SelectStatement& statement,
                                      const QueryOptions& options,
                                      QueryContext* context,
                                      std::string* explain_text) const {
  FTS_ASSIGN_OR_RETURN(const TablePtr table, GetTable(statement.table));
  LqpNodePtr lqp;
  {
    obs::TraceSpan span("build_lqp", "plan");
    FTS_ASSIGN_OR_RETURN(lqp, BuildLqp(statement, statement.table, table));
  }

  const ScanEngine engine = options.engine.value_or(DefaultEngine());

  if (explain_text != nullptr) {
    *explain_text += "-- Logical plan (unoptimized)\n";
    *explain_text += ExplainLqp(lqp);
  }

  if (options.optimize) {
    obs::TraceSpan span("optimize", "plan");
    OptimizerOptions optimizer_options;
    optimizer_options.enable_reordering = options.reorder_predicates;
    // Fusion only helps engines that execute a whole chain in one
    // operator; the SISD and blockwise baselines keep per-predicate scans
    // (Fig. 8, left).
    optimizer_options.enable_fusion =
        engine != ScanEngine::kSisdNoVec &&
        engine != ScanEngine::kSisdAutoVec &&
        engine != ScanEngine::kBlockwise;
    FTS_RETURN_IF_ERROR(OptimizeLqp(&lqp, optimizer_options));
    if (explain_text != nullptr) {
      *explain_text += "-- Logical plan (optimized)\n";
      *explain_text += ExplainLqp(lqp);
    }
  }

  obs::TraceSpan span("translate", "plan");
  TranslatorOptions translator_options;
  translator_options.engine = engine;
  translator_options.jit_register_bits = options.jit_register_bits;
  translator_options.fallback = options.fallback;
  translator_options.threads = options.threads;
  translator_options.enable_aggregate_pushdown = options.aggregate_pushdown;
  translator_options.context = context;
  // An explicit engine request pins every chunk to it; only when the
  // caller left the choice to the system may the cost model adapt per
  // chunk (FTS_ADAPTIVE=0 still disables it globally).
  translator_options.adaptive = !options.engine.has_value();
  FTS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       TranslateLqp(lqp, translator_options));
  if (explain_text != nullptr) {
    *explain_text += "-- Physical plan\n";
    *explain_text += plan.Explain();
  }
  return plan;
}

StatusOr<QueryResult> Database::Query(const std::string& sql,
                                      const QueryOptions& options) const {
  obs::TraceSpan query_span("query", "db");
  Stopwatch timer;
  obs::Metrics().queries_total->Increment();

  SelectStatement statement;
  {
    obs::TraceSpan span("parse", "sql");
    FTS_ASSIGN_OR_RETURN(statement, ParseSelect(sql));
  }

  if (statement.explain && !statement.analyze) {
    // EXPLAIN: plan only, never execute — no admission slot, no deadline.
    QueryResult result;
    FTS_RETURN_IF_ERROR(
        Plan(statement, options, nullptr, &result.explain_text).status());
    obs::Metrics().query_micros->Record(
        static_cast<uint64_t>(timer.ElapsedMicros()));
    return result;
  }

  // Query lifecycle: one context carries the deadline, cancellation flag
  // and memory budget through every layer below. Callers that want to
  // cancel concurrently pass their own.
  const std::shared_ptr<QueryContext> ctx =
      options.context != nullptr ? options.context : QueryContext::Create();
  if (options.deadline_millis > 0) {
    ctx->SetDeadlineMillis(options.deadline_millis);
  }
  const uint64_t budget =
      options.memory_budget_bytes > 0
          ? options.memory_budget_bytes
          : static_cast<uint64_t>(
                GetEnvInt64("FTS_QUERY_MEMORY_BUDGET_BYTES", 0));
  if (budget > 0) ctx->SetMemoryBudget(budget);

  // Classifies a lifecycle failure into the right counter. Admission
  // rejections are counted by the controller itself.
  const auto count_failure = [](const Status& status) {
    if (status.code() == StatusCode::kQueryCanceled) {
      obs::Metrics().queries_cancelled_total->Increment();
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      obs::Metrics().queries_deadline_exceeded_total->Increment();
    }
  };

  // Admission: take a bounded run-queue slot before planning. Queue time
  // counts against the deadline — a query that waits past it leaves the
  // queue canceled instead of occupying a slot it can no longer use.
  StatusOr<AdmissionController::Ticket> ticket =
      AdmissionController::Global().Admit(ctx.get());
  if (!ticket.ok()) {
    count_failure(ticket.status());
    RecordQueryStats(sql, ticket.status(), nullptr, timer.ElapsedMillis());
    return ticket.status();
  }

  // The deadline fires asynchronously on the global timer wheel (so a
  // query stuck on one uninterruptible kernel still flips the flag in
  // time for the next boundary) and is also checked lazily against the
  // clock at every cancellation point. weak_ptr: the wheel may outlive
  // this query, and Cancel() below may lose the race with the tick
  // thread.
  TimerWheel::TimerId deadline_timer = 0;
  if (ctx->has_deadline()) {
    std::weak_ptr<QueryContext> weak = ctx;
    deadline_timer = TimerWheel::Global().Schedule(
        static_cast<int64_t>(ctx->RemainingMillis()), [weak] {
          if (const std::shared_ptr<QueryContext> locked = weak.lock()) {
            locked->Cancel(StatusCode::kDeadlineExceeded);
          }
        });
  }
  struct TimerGuard {
    TimerWheel::TimerId id;
    ~TimerGuard() {
      if (id != 0) TimerWheel::Global().Cancel(id);
    }
  } timer_guard{deadline_timer};

  StatusOr<PhysicalPlan> planned =
      Plan(statement, options, ctx.get(), nullptr);
  if (!planned.ok()) {
    count_failure(planned.status());
    RecordQueryStats(sql, planned.status(), nullptr, timer.ElapsedMillis());
    return planned.status();
  }
  PhysicalPlan plan = std::move(planned).value();
  if (statement.analyze) plan.collect_counters = true;

  StatusOr<QueryResult> executed = ExecutePlan(plan);
  if (!executed.ok()) {
    count_failure(executed.status());
    RecordQueryStats(sql, executed.status(), nullptr, timer.ElapsedMillis());
    return executed.status();
  }
  QueryResult result = std::move(executed).value();

  ExecutionReport& report = result.execution_report;
  report.deadline_millis = ctx->deadline_millis();
  report.deadline_hit = false;
  report.cancelled = false;
  report.queue_wait_millis =
      static_cast<double>(ctx->queue_wait_micros()) / 1000.0;
  if (report.degraded) {
    obs::Metrics().degradation_events_total->Increment();
  }
  if (statement.analyze) {
    result.explain_text = RenderExplainAnalyze(plan, result);
  }
  obs::Metrics().query_micros->Record(
      static_cast<uint64_t>(timer.ElapsedMicros()));
  RecordQueryStats(sql, Status::Ok(), &report, timer.ElapsedMillis());
  return result;
}

StatusOr<std::string> Database::Explain(const std::string& sql,
                                        const QueryOptions& options) const {
  SelectStatement statement;
  {
    obs::TraceSpan span("parse", "sql");
    FTS_ASSIGN_OR_RETURN(statement, ParseSelect(sql));
  }
  std::string text;
  FTS_RETURN_IF_ERROR(Plan(statement, options, nullptr, &text).status());
  return text;
}

}  // namespace fts
