#include "fts/db/database.h"

#include "fts/common/cpu_info.h"
#include "fts/common/string_util.h"
#include "fts/plan/lqp.h"
#include "fts/plan/optimizer.h"
#include "fts/plan/translator.h"
#include "fts/sql/parser.h"

namespace fts {

Status Database::RegisterTable(const std::string& name, TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (name.empty()) return Status::InvalidArgument("empty table name");
  const auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("table '%s' already registered", name.c_str()));
  }
  return Status::Ok();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound(StrFormat("no table named '%s'", name.c_str()));
  }
  return Status::Ok();
}

StatusOr<TablePtr> Database::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("no table named '%s'", name.c_str()));
  }
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ScanEngine Database::DefaultEngine() {
  const CpuFeatures& cpu = GetCpuFeatures();
  if (cpu.HasFusedScanAvx512()) return ScanEngine::kAvx512Fused512;
  if (cpu.avx2) return ScanEngine::kAvx2Fused128;
  return ScanEngine::kScalarFused;
}

StatusOr<PhysicalPlan> Database::Plan(const std::string& sql,
                                      const QueryOptions& options,
                                      std::string* explain_text) const {
  FTS_ASSIGN_OR_RETURN(const SelectStatement statement, ParseSelect(sql));
  FTS_ASSIGN_OR_RETURN(const TablePtr table, GetTable(statement.table));
  FTS_ASSIGN_OR_RETURN(LqpNodePtr lqp,
                       BuildLqp(statement, statement.table, table));

  const ScanEngine engine = options.engine.value_or(DefaultEngine());

  if (explain_text != nullptr) {
    *explain_text += "-- Logical plan (unoptimized)\n";
    *explain_text += ExplainLqp(lqp);
  }

  if (options.optimize) {
    OptimizerOptions optimizer_options;
    optimizer_options.enable_reordering = options.reorder_predicates;
    // Fusion only helps engines that execute a whole chain in one
    // operator; the SISD and blockwise baselines keep per-predicate scans
    // (Fig. 8, left).
    optimizer_options.enable_fusion =
        engine != ScanEngine::kSisdNoVec &&
        engine != ScanEngine::kSisdAutoVec &&
        engine != ScanEngine::kBlockwise;
    FTS_RETURN_IF_ERROR(OptimizeLqp(&lqp, optimizer_options));
    if (explain_text != nullptr) {
      *explain_text += "-- Logical plan (optimized)\n";
      *explain_text += ExplainLqp(lqp);
    }
  }

  TranslatorOptions translator_options;
  translator_options.engine = engine;
  translator_options.jit_register_bits = options.jit_register_bits;
  translator_options.fallback = options.fallback;
  translator_options.threads = options.threads;
  FTS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       TranslateLqp(lqp, translator_options));
  if (explain_text != nullptr) {
    *explain_text += "-- Physical plan\n";
    *explain_text += plan.Explain();
  }
  return plan;
}

StatusOr<QueryResult> Database::Query(const std::string& sql,
                                      const QueryOptions& options) const {
  FTS_ASSIGN_OR_RETURN(const PhysicalPlan plan, Plan(sql, options, nullptr));
  return ExecutePlan(plan);
}

StatusOr<std::string> Database::Explain(const std::string& sql,
                                        const QueryOptions& options) const {
  std::string text;
  FTS_RETURN_IF_ERROR(Plan(sql, options, &text).status());
  return text;
}

}  // namespace fts
