#include "fts/common/fault_injection.h"

#include <cstdlib>

#include "fts/common/env.h"
#include "fts/common/string_util.h"

namespace fts {

FaultInjection& FaultInjection::Instance() {
  // Never destroyed: fault checks may run during static destruction.
  static FaultInjection& instance = *new FaultInjection();
  return instance;
}

bool FaultInjection::ShouldFail(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end() || it->second.remaining == 0) return false;
  if (it->second.remaining > 0) --it->second.remaining;
  ++it->second.fired;
  return true;
}

void FaultInjection::Arm(const std::string& point, int64_t times) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& state = points_[point];
  state.remaining = times < 0 ? -1 : times;
}

void FaultInjection::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  if (it != points_.end()) it->second.remaining = 0;
}

void FaultInjection::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

void FaultInjection::ReloadFromEnv() {
  const std::string spec = GetEnvString("FTS_FAULT", "");
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  for (const std::string& raw : Split(spec, ',')) {
    const std::string_view entry = Trim(raw);
    if (entry.empty()) continue;
    std::string name(entry);
    int64_t times = -1;
    const size_t colon = name.rfind(':');
    if (colon != std::string::npos) {
      const std::string count_text = name.substr(colon + 1);
      char* end = nullptr;
      const long long parsed = std::strtoll(count_text.c_str(), &end, 10);
      if (end != count_text.c_str() && *end == '\0' && parsed >= 0) {
        times = parsed;
        name.resize(colon);
      }
    }
    points_[name].remaining = times;
  }
}

uint64_t FaultInjection::FireCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

bool FaultInjection::AnyArmed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, state] : points_) {
    if (state.remaining != 0) return true;
  }
  return false;
}

}  // namespace fts
