#include "fts/common/env.h"

#include <cstdlib>

#include "fts/common/string_util.h"

namespace fts {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  int64_t parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  switch (*end) {
    case 'k':
    case 'K':
      parsed *= 1000;
      break;
    case 'm':
    case 'M':
      parsed *= 1000000;
      break;
    case 'g':
    case 'G':
      parsed *= 1000000000;
      break;
    default:
      break;
  }
  return parsed;
}

bool GetEnvBool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string lowered = ToLower(value);
  return lowered == "1" || lowered == "true" || lowered == "yes" ||
         lowered == "on";
}

}  // namespace fts
