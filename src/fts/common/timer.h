#ifndef FTS_COMMON_TIMER_H_
#define FTS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fts {

// Wall-clock stopwatch over std::chrono::steady_clock. Benchmark harnesses
// measure each repetition with a fresh Stopwatch and aggregate medians.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Prevents the compiler from optimizing away a computed value. Same idiom as
// google-benchmark's DoNotOptimize, usable from non-benchmark harnesses.
template <typename T>
inline void DoNotOptimizeAway(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace fts

#endif  // FTS_COMMON_TIMER_H_
