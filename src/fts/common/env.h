#ifndef FTS_COMMON_ENV_H_
#define FTS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace fts {

// Environment-variable helpers used by the benchmark harnesses to scale
// workloads (e.g. FTS_BENCH_MAX_ROWS, FTS_BENCH_FULL) without recompiling.

// Returns the value of `name`, or `fallback` when unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

// Returns the integer value of `name`, or `fallback` when unset or
// unparsable. Accepts optional K/M/G suffixes (decimal multipliers).
int64_t GetEnvInt64(const char* name, int64_t fallback);

// True when `name` is set to a truthy value ("1", "true", "yes", "on").
bool GetEnvBool(const char* name, bool fallback);

}  // namespace fts

#endif  // FTS_COMMON_ENV_H_
