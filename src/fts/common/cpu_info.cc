#include "fts/common/cpu_info.h"

#include <cpuid.h>
#include <immintrin.h>

#include <fstream>
#include <string>

namespace fts {
namespace {

// Reads XCR0 to confirm the OS saves/restores the register state the
// feature needs; CPUID alone is not sufficient.
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures DetectFeatures() {
  CpuFeatures features;

  uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return features;

  // Leaf 1: OSXSAVE + AVX support for XGETBV validity.
  __cpuid(1, eax, ebx, ecx, edx);
  const bool osxsave = (ecx >> 27) & 1;
  if (!osxsave) return features;

  const uint64_t xcr0 = ReadXcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;           // XMM + YMM.
  const bool zmm_enabled = (xcr0 & 0xE6) == 0xE6;         // + opmask, ZMM.

  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  features.bmi2 = (ebx >> 8) & 1;
  features.avx2 = ymm_enabled && ((ebx >> 5) & 1);
  if (zmm_enabled) {
    features.avx512f = (ebx >> 16) & 1;
    features.avx512dq = (ebx >> 17) & 1;
    features.avx512bw = (ebx >> 30) & 1;
    features.avx512vl = (ebx >> 31) & 1;
  }
  return features;
}

int64_t ReadSysfsCacheSize(const char* path, int64_t fallback) {
  std::ifstream in(path);
  if (!in) return fallback;
  std::string text;
  in >> text;
  if (text.empty()) return fallback;
  int64_t multiplier = 1;
  if (text.back() == 'K') {
    multiplier = 1024;
    text.pop_back();
  } else if (text.back() == 'M') {
    multiplier = 1024 * 1024;
    text.pop_back();
  }
  char* end = nullptr;
  const int64_t value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || value <= 0) return fallback;
  return value * multiplier;
}

CacheInfo DetectCacheInfo() {
  CacheInfo info;
  constexpr const char* kBase = "/sys/devices/system/cpu/cpu0/cache";
  info.l1d_bytes =
      ReadSysfsCacheSize((std::string(kBase) + "/index0/size").c_str(),
                         info.l1d_bytes);
  info.l2_bytes = ReadSysfsCacheSize(
      (std::string(kBase) + "/index2/size").c_str(), info.l2_bytes);
  info.l3_bytes = ReadSysfsCacheSize(
      (std::string(kBase) + "/index3/size").c_str(), info.l3_bytes);
  return info;
}

}  // namespace

std::string CpuFeatures::ToString() const {
  std::string out;
  auto append = [&out](bool enabled, const char* name) {
    if (!enabled) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(avx2, "avx2");
  append(avx512f, "avx512f");
  append(avx512bw, "avx512bw");
  append(avx512dq, "avx512dq");
  append(avx512vl, "avx512vl");
  append(bmi2, "bmi2");
  if (out.empty()) out = "(none)";
  return out;
}

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures kFeatures = DetectFeatures();
  return kFeatures;
}

const CacheInfo& GetCacheInfo() {
  static const CacheInfo kInfo = DetectCacheInfo();
  return kInfo;
}

}  // namespace fts
