#ifndef FTS_COMMON_RANDOM_H_
#define FTS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fts {

// SplitMix64: tiny, fast generator used to seed Xoshiro256** and for cheap
// stateless hashing of seeds. Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: the project's deterministic workhorse RNG. All data
// generation and shuffling is seeded explicitly so every experiment is
// reproducible bit-for-bit. Reference: Blackman & Vigna, public domain.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool NextBool() { return (Next() >> 63) != 0; }

  // Fisher-Yates shuffle.
  template <typename T, typename Alloc>
  void Shuffle(std::vector<T, Alloc>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace fts

#endif  // FTS_COMMON_RANDOM_H_
