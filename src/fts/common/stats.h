#ifndef FTS_COMMON_STATS_H_
#define FTS_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace fts {

// Robust summary statistics for benchmark samples. The paper reports the
// median of >= 100 runs; these helpers back that reporting.

// Median of `samples`. Copies and partially sorts; samples must be non-empty.
double Median(std::vector<double> samples);

// Linear-interpolated percentile, p in [0, 100]. samples must be non-empty.
double Percentile(std::vector<double> samples, double p);

double Mean(const std::vector<double>& samples);

// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& samples);

// Streaming mean/min/max/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample variance; 0 for fewer than 2 samples.
  double Variance() const;
  double StdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fts

#endif  // FTS_COMMON_STATS_H_
