#include "fts/common/stats.h"

#include <algorithm>
#include <cmath>

#include "fts/common/macros.h"

namespace fts {

double Median(std::vector<double> samples) {
  FTS_CHECK(!samples.empty());
  const size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  const double upper = samples[mid];
  if (samples.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(samples.begin(), samples.begin() + mid);
  return (lower + upper) / 2.0;
}

double Percentile(std::vector<double> samples, double p) {
  FTS_CHECK(!samples.empty());
  FTS_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double StdDev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double mean = Mean(samples);
  double sq = 0.0;
  for (double s : samples) sq += (s - mean) * (s - mean);
  return std::sqrt(sq / static_cast<double>(samples.size() - 1));
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace fts
