#ifndef FTS_COMMON_QUERY_CONTEXT_H_
#define FTS_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "fts/common/status.h"

namespace fts {

// Fault point fired by QueryContext::ReserveMemory. Arming it
// (FTS_FAULT=alloc) makes the next budget-checked scan allocation fail
// with kResourceExhausted exactly as a real budget overflow would,
// exercising the typed-error path without needing a tiny budget.
inline constexpr char kFaultAlloc[] = "alloc";

// Per-query lifecycle state: identity, deadline, cooperative cancellation,
// and a memory budget. One QueryContext is created per Database::Query call
// and threaded by raw pointer through ScanSpec / TranslatorOptions /
// PhysicalPlan / ParallelScanOptions down to the morsel loop and the JIT
// compiler driver. A null context everywhere means "no lifecycle limits"
// and costs nothing, so library layers below the database remain usable
// standalone.
//
// Thread-safety: all mutating entry points are lock-free atomics.
// Cancel() in particular performs only relaxed/release atomic stores and
// is async-signal-safe — fts_shell calls it from a SIGINT handler, and the
// timer wheel calls it from its tick thread while pool workers are
// mid-scan. Status messages are materialized lazily by the *observing*
// thread (CheckCancelled / CancelStatus), never by the canceling one.
//
// Cancellation is cooperative: checks live at morsel/chunk boundaries and
// ladder-rung starts, never inside a SIMD kernel (see DESIGN.md §12). A
// deadline is enforced two ways: the timer wheel flips the cancel flag
// asynchronously when it fires, and CheckCancelled() itself compares
// against the clock, so a query whose deadline passed is caught at the
// next boundary even if the wheel tick is late.
class QueryContext {
 public:
  QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // Convenience for the common shared-ownership pattern: the database
  // keeps the shared_ptr alive for the duration of the query while the
  // timer wheel holds a weak_ptr so a late-firing deadline callback never
  // touches a freed context.
  static std::shared_ptr<QueryContext> Create() {
    return std::make_shared<QueryContext>();
  }

  // Monotonically increasing process-wide query id (1-based).
  uint64_t id() const { return id_; }

  // --- Deadline ------------------------------------------------------

  // Arms a deadline `millis` from now. <= 0 is ignored (no deadline).
  void SetDeadlineMillis(int64_t millis);

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  // The deadline budget this query was armed with (0 when none) — used
  // for report/EXPLAIN surfaces and error messages.
  int64_t deadline_millis() const {
    return deadline_budget_millis_.load(std::memory_order_relaxed);
  }

  // Milliseconds until the deadline fires; +inf when no deadline is set,
  // <= 0 once it has passed. Deadline-aware engine selection (JitCache)
  // compares this against the compile-budget floor.
  double RemainingMillis() const;

  // --- Cancellation --------------------------------------------------

  // Flips the cancel flag. `code` must be kQueryCanceled (explicit
  // cancel: \cancel, SIGINT) or kDeadlineExceeded (deadline fired). The
  // first cancel wins; later calls are no-ops. Async-signal-safe.
  void Cancel(StatusCode code);

  bool cancelled() const {
    return cancel_code_.load(std::memory_order_acquire) != 0;
  }

  // The cancellation point. Returns OK while the query may keep running;
  // otherwise the typed cancel status. Also lazily enforces the deadline
  // (clock check) and the CancelAtCheck test hook. Every caller sits at a
  // morsel/chunk/rung/step boundary — never inside a kernel.
  Status CheckCancelled();

  // The status a cancelled query must return: kDeadlineExceeded or
  // kQueryCanceled with a message naming the query. OK when not cancelled.
  Status CancelStatus() const;

  // Number of cancellation checks executed so far (test observability).
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }

  // Test hook for the cancellation fuzzer: the Nth CheckCancelled call
  // (1-based) cancels the query with kQueryCanceled. This makes "cancel
  // at a random morsel boundary" deterministic per seed instead of racing
  // a timer. 0 disables the hook.
  void CancelAtCheck(uint64_t nth) {
    cancel_at_check_.store(nth, std::memory_order_relaxed);
  }

  // --- Memory budget -------------------------------------------------

  // Caps the bytes the scan path may hold at once. 0 = unlimited.
  void SetMemoryBudget(uint64_t bytes) {
    memory_budget_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t memory_budget() const {
    return memory_budget_.load(std::memory_order_relaxed);
  }

  // Accounts `bytes` against the budget before a scan-path allocation.
  // Over budget (or with the `alloc` fault armed) the reservation is
  // rolled back and a typed kResourceExhausted is returned — the scan
  // fails cleanly instead of the allocator aborting the process.
  Status ReserveMemory(uint64_t bytes);
  void ReleaseMemory(uint64_t bytes);

  uint64_t memory_reserved() const {
    return memory_reserved_.load(std::memory_order_relaxed);
  }
  uint64_t memory_peak() const {
    return memory_peak_.load(std::memory_order_relaxed);
  }

  // --- Admission bookkeeping ----------------------------------------

  // Time the query spent queued in the admission controller, recorded by
  // AdmissionController::Admit and surfaced in ExecutionReport /
  // EXPLAIN ANALYZE.
  void set_queue_wait_micros(int64_t micros) {
    queue_wait_micros_.store(micros, std::memory_order_relaxed);
  }
  int64_t queue_wait_micros() const {
    return queue_wait_micros_.load(std::memory_order_relaxed);
  }

 private:
  // steady_clock nanosecond timestamp of the deadline; 0 = none.
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  const uint64_t id_;
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<int64_t> deadline_budget_millis_{0};
  // 0 = not cancelled, else the StatusCode cast to its underlying int.
  std::atomic<int> cancel_code_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> cancel_at_check_{0};
  std::atomic<uint64_t> memory_budget_{0};
  std::atomic<uint64_t> memory_reserved_{0};
  std::atomic<uint64_t> memory_peak_{0};
  std::atomic<int64_t> queue_wait_micros_{0};
};

// Checks the context's cancel flag if one is present. The `ctx` argument
// of the scan/exec entry points is nullable by design; this keeps call
// sites one line.
inline Status CheckCancellation(QueryContext* ctx) {
  if (ctx == nullptr) return Status::Ok();
  return ctx->CheckCancelled();
}

// RAII reservation against a query's memory budget. A null context
// reserves nothing and always succeeds.
class ScopedMemoryReservation {
 public:
  ScopedMemoryReservation() = default;
  ~ScopedMemoryReservation() { Release(); }

  ScopedMemoryReservation(const ScopedMemoryReservation&) = delete;
  ScopedMemoryReservation& operator=(const ScopedMemoryReservation&) = delete;
  ScopedMemoryReservation(ScopedMemoryReservation&& other) noexcept
      : ctx_(other.ctx_), bytes_(other.bytes_) {
    other.ctx_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedMemoryReservation& operator=(ScopedMemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      ctx_ = other.ctx_;
      bytes_ = other.bytes_;
      other.ctx_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  // Reserves `bytes` against `ctx` (releasing any prior reservation this
  // object held). Returns the typed kResourceExhausted on overflow.
  Status Reserve(QueryContext* ctx, uint64_t bytes);

  void Release();

  uint64_t bytes() const { return bytes_; }

 private:
  QueryContext* ctx_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace fts

#endif  // FTS_COMMON_QUERY_CONTEXT_H_
