#ifndef FTS_COMMON_CPU_INFO_H_
#define FTS_COMMON_CPU_INFO_H_

#include <cstdint>
#include <string>

namespace fts {

// CPU feature flags relevant to the Fused Table Scan kernel dispatch.
// Detected once at startup via CPUID (with XGETBV validation that the OS
// actually saves the wide register state).
struct CpuFeatures {
  bool avx2 = false;
  bool avx512f = false;   // Foundation: 512-bit compare/compress/gather.
  bool avx512bw = false;  // Byte/word masked ops.
  bool avx512dq = false;  // Doubleword/quadword ops.
  bool avx512vl = false;  // 128/256-bit encodings of AVX-512 instructions.
  bool bmi2 = false;

  // True when the full AVX-512 kernel family used by this project
  // (f + bw + dq + vl) is usable.
  bool HasFusedScanAvx512() const {
    return avx512f && avx512bw && avx512dq && avx512vl;
  }

  // Human-readable flag list, e.g. "avx2 avx512f avx512bw ...".
  std::string ToString() const;
};

// Process-wide feature detection. Thread-safe; detection runs once.
const CpuFeatures& GetCpuFeatures();

// Cache geometry used to size benchmark working sets and to model the
// prefetcher. Values are read from sysfs when available, otherwise
// defaults matching the paper's Skylake-SP testbed are used.
struct CacheInfo {
  int64_t l1d_bytes = 32 * 1024;
  int64_t l2_bytes = 1024 * 1024;
  int64_t l3_bytes = 38LL * 1024 * 1024;
  int64_t line_bytes = 64;
};

const CacheInfo& GetCacheInfo();

}  // namespace fts

#endif  // FTS_COMMON_CPU_INFO_H_
