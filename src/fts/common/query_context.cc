#include "fts/common/query_context.h"

#include "fts/common/fault_injection.h"
#include "fts/common/string_util.h"

namespace fts {

namespace {
std::atomic<uint64_t> g_next_query_id{1};
}  // namespace

QueryContext::QueryContext()
    : id_(g_next_query_id.fetch_add(1, std::memory_order_relaxed)) {}

void QueryContext::SetDeadlineMillis(int64_t millis) {
  if (millis <= 0) return;
  deadline_budget_millis_.store(millis, std::memory_order_relaxed);
  deadline_ns_.store(NowNanos() + millis * 1'000'000, std::memory_order_release);
}

double QueryContext::RemainingMillis() const {
  const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
  if (deadline == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(deadline - NowNanos()) / 1e6;
}

void QueryContext::Cancel(StatusCode code) {
  // First cancel wins; a deadline firing after an explicit cancel (or vice
  // versa) must not change the status the query reports. Only atomic ops:
  // fts_shell calls this from a SIGINT handler.
  int expected = 0;
  cancel_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                       std::memory_order_release,
                                       std::memory_order_relaxed);
}

Status QueryContext::CheckCancelled() {
  const uint64_t check = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t cancel_at = cancel_at_check_.load(std::memory_order_relaxed);
  if (FTS_UNLIKELY(cancel_at != 0 && check >= cancel_at)) {
    Cancel(StatusCode::kQueryCanceled);
  }
  if (FTS_UNLIKELY(cancelled())) return CancelStatus();
  // Lazy deadline enforcement: even if the timer wheel tick is late (or
  // the wheel is not running at all), the next boundary catches an
  // expired deadline with one clock read.
  const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
  if (FTS_UNLIKELY(deadline != 0 && NowNanos() >= deadline)) {
    Cancel(StatusCode::kDeadlineExceeded);
    return CancelStatus();
  }
  return Status::Ok();
}

Status QueryContext::CancelStatus() const {
  const int code = cancel_code_.load(std::memory_order_acquire);
  if (code == 0) return Status::Ok();
  if (static_cast<StatusCode>(code) == StatusCode::kDeadlineExceeded) {
    return Status::DeadlineExceeded(
        StrFormat("query %llu exceeded its %lld ms deadline",
                  static_cast<unsigned long long>(id_),
                  static_cast<long long>(deadline_millis())));
  }
  return Status::QueryCanceled(StrFormat(
      "query %llu canceled", static_cast<unsigned long long>(id_)));
}

Status QueryContext::ReserveMemory(uint64_t bytes) {
  if (FTS_UNLIKELY(FaultInjection::Instance().ShouldFail(kFaultAlloc))) {
    return Status::ResourceExhausted(
        StrFormat("query %llu: scan allocation of %llu bytes failed "
                  "(fault injection: %s)",
                  static_cast<unsigned long long>(id_),
                  static_cast<unsigned long long>(bytes), kFaultAlloc));
  }
  const uint64_t budget = memory_budget_.load(std::memory_order_relaxed);
  const uint64_t now =
      memory_reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (FTS_UNLIKELY(budget != 0 && now > budget)) {
    memory_reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(StrFormat(
        "query %llu over memory budget: %llu bytes reserved + %llu "
        "requested > %llu budget",
        static_cast<unsigned long long>(id_),
        static_cast<unsigned long long>(now - bytes),
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(budget)));
  }
  // Track the high-water mark (best effort under concurrency).
  uint64_t peak = memory_peak_.load(std::memory_order_relaxed);
  while (now > peak && !memory_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return Status::Ok();
}

void QueryContext::ReleaseMemory(uint64_t bytes) {
  memory_reserved_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status ScopedMemoryReservation::Reserve(QueryContext* ctx, uint64_t bytes) {
  Release();
  if (ctx == nullptr) return Status::Ok();
  FTS_RETURN_IF_ERROR(ctx->ReserveMemory(bytes));
  ctx_ = ctx;
  bytes_ = bytes;
  return Status::Ok();
}

void ScopedMemoryReservation::Release() {
  if (ctx_ != nullptr) ctx_->ReleaseMemory(bytes_);
  ctx_ = nullptr;
  bytes_ = 0;
}

}  // namespace fts
