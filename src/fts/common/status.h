#ifndef FTS_COMMON_STATUS_H_
#define FTS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "fts/common/macros.h"

namespace fts {

// Error categories for fallible operations. The project does not use C++
// exceptions (Google style); every operation that can fail at runtime for
// reasons outside the programmer's control (parsing, JIT compilation,
// perf-counter setup, I/O) reports through Status / StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kResourceExhausted,
  kDeadlineExceeded,
  kQueryCanceled,
  kAdmissionRejected,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable value describing the outcome of an operation.
// OK statuses carry no message and no allocation.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status QueryCanceled(std::string msg) {
    return Status(StatusCode::kQueryCanceled, std::move(msg));
  }
  static Status AdmissionRejected(std::string msg) {
    return Status(StatusCode::kAdmissionRejected, std::move(msg));
  }

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// StatusOr<T> holds either a value of T or a non-OK Status.
// Accessing the value of a non-OK StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // in functions returning StatusOr<T>, mirroring absl::StatusOr ergonomics.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    FTS_CHECK_MSG(!std::get<Status>(rep_).ok(),
                  "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    FTS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    FTS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    FTS_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagates a non-OK status to the caller. Usable in functions returning
// Status or StatusOr<T> (Status converts implicitly into StatusOr).
#define FTS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::fts::Status fts_status_tmp_ = (expr);         \
    if (FTS_UNLIKELY(!fts_status_tmp_.ok())) {      \
      return fts_status_tmp_;                       \
    }                                               \
  } while (0)

// Evaluates `rexpr` (a StatusOr<T>), propagates errors, otherwise moves the
// value into `lhs`. `lhs` may be a declaration: FTS_ASSIGN_OR_RETURN(auto x, F()).
#define FTS_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  FTS_ASSIGN_OR_RETURN_IMPL_(                                \
      FTS_STATUS_MACRO_CONCAT_(fts_statusor_, __LINE__), lhs, rexpr)

#define FTS_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define FTS_STATUS_MACRO_CONCAT_(x, y) FTS_STATUS_MACRO_CONCAT_INNER_(x, y)
#define FTS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (FTS_UNLIKELY(!statusor.ok())) {                    \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value()

}  // namespace fts

#endif  // FTS_COMMON_STATUS_H_
