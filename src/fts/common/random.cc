#include "fts/common/random.h"

#include "fts/common/macros.h"

namespace fts {

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  FTS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Xoshiro256::NextInRange(int64_t lo, int64_t hi) {
  FTS_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == ~0ULL) return static_cast<int64_t>(Next());
  return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                              NextBounded(span + 1));
}

}  // namespace fts
