#include "fts/common/status.h"

namespace fts {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kQueryCanceled:
      return "QueryCanceled";
    case StatusCode::kAdmissionRejected:
      return "AdmissionRejected";
  }
  return "UnknownStatusCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace fts
