#ifndef FTS_COMMON_FAULT_INJECTION_H_
#define FTS_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace fts {

// Process-wide registry of named fault-injection points.
//
// Production code declares a point by calling ShouldFail("layer.event") at
// the place where the real failure would surface, and returning the same
// error the real failure would produce. Points are armed either from the
// FTS_FAULT environment variable — a comma-separated list of
// `point[:count]` entries, e.g.
//
//   FTS_FAULT=jit.compiler_missing,jit.dlopen_fail:2
//
// — or programmatically by tests (Arm/Disarm/ScopedFault). A point armed
// with a count fires that many times and then exhausts itself; without a
// count it fires until disarmed.
//
// An unarmed point costs one mutex acquisition and one map lookup, which
// is negligible next to the operations the points guard (process spawn,
// dlopen, file I/O). Thread-safe.
class FaultInjection {
 public:
  static FaultInjection& Instance();

  FaultInjection(const FaultInjection&) = delete;
  FaultInjection& operator=(const FaultInjection&) = delete;

  // True when `point` is armed; consumes one firing from a counted arm.
  bool ShouldFail(const std::string& point);

  // Arms `point` to fire `times` times; `times` < 0 = until disarmed.
  void Arm(const std::string& point, int64_t times = -1);

  // Stops `point` from firing. Its fire count is retained.
  void Disarm(const std::string& point);

  // Disarms every point and clears all fire counts.
  void Reset();

  // Reset() + re-parse FTS_FAULT. Called once at first Instance() use;
  // tests call it after changing the environment.
  void ReloadFromEnv();

  // How many times `point` actually fired (armed checks returning true).
  uint64_t FireCount(const std::string& point) const;

  // True when at least one point can still fire. Tests use this to skip
  // assertions that only hold in a fault-free process.
  bool AnyArmed() const;

 private:
  FaultInjection() { ReloadFromEnv(); }

  struct Point {
    int64_t remaining = -1;  // -1 = unlimited; 0 = exhausted/disarmed.
    uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Point> points_;
};

// Arms a fault point for the lifetime of a scope (test helper).
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, int64_t times = -1)
      : point_(std::move(point)) {
    FaultInjection::Instance().Arm(point_, times);
  }
  ~ScopedFault() { FaultInjection::Instance().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

}  // namespace fts

#endif  // FTS_COMMON_FAULT_INJECTION_H_
