#ifndef FTS_COMMON_ALIGNED_BUFFER_H_
#define FTS_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <utility>
#include <vector>

#include "fts/common/macros.h"

namespace fts {

// Cache-line / SIMD-register alignment used for all column storage. 64 bytes
// covers both a cache line and a full ZMM register, so aligned 512-bit loads
// never split a line.
inline constexpr std::size_t kColumnAlignment = 64;

// Minimal STL-compatible allocator returning kColumnAlignment-aligned memory.
// Used by AlignedVector so columns can be scanned with aligned SIMD loads.
//
// Elements are *default-initialized*, not value-initialized: for trivial
// types, `AlignedVector<T> v(n)` leaves the storage uninitialized instead
// of zeroing it. Scan output buffers are sized for the worst case
// (row_count entries) on every scan; zeroing them would cost more than
// the scan itself at low selectivities. Every producer in this codebase
// fully assigns the elements it exposes.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;  // Default-init: no zeroing.
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }

  T* allocate(std::size_t n) {
    FTS_CHECK(n <= std::numeric_limits<std::size_t>::max() / sizeof(T));
    // Round the byte size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + kColumnAlignment - 1) / kColumnAlignment *
            kColumnAlignment;
    void* ptr = std::aligned_alloc(kColumnAlignment, bytes);
    FTS_CHECK_MSG(ptr != nullptr, "aligned allocation failed");
    return static_cast<T*>(ptr);
  }

  void deallocate(T* ptr, std::size_t /*n*/) { std::free(ptr); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

// A std::vector whose backing store is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace fts

#endif  // FTS_COMMON_ALIGNED_BUFFER_H_
