#include "fts/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "fts/common/macros.h"

namespace fts {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(
                          static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  FTS_CHECK(needed >= 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  FTS_CHECK(!from.empty());
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string HumanBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f %s", bytes, kUnits[unit]);
}

std::string HumanRows(uint64_t rows) {
  if (rows % 1000000 == 0 && rows >= 1000000) {
    return StrFormat("%lluM", static_cast<unsigned long long>(rows / 1000000));
  }
  if (rows % 1000 == 0 && rows >= 1000) {
    return StrFormat("%lluK", static_cast<unsigned long long>(rows / 1000));
  }
  return StrFormat("%llu", static_cast<unsigned long long>(rows));
}

}  // namespace fts
