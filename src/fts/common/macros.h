#ifndef FTS_COMMON_MACROS_H_
#define FTS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Branch-prediction hints. Used sparingly, on paths where the predicted
// direction is a documented invariant (e.g., error paths).
#define FTS_LIKELY(x) (__builtin_expect(!!(x), 1))
#define FTS_UNLIKELY(x) (__builtin_expect(!!(x), 0))

// FTS_CHECK aborts the process when `condition` is false. It is active in
// all build modes and is reserved for invariant violations that indicate a
// programming error (not for user-input validation, which returns Status).
#define FTS_CHECK(condition)                                                 \
  do {                                                                       \
    if (FTS_UNLIKELY(!(condition))) {                                        \
      ::std::fprintf(stderr, "FTS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                     __LINE__, #condition);                                  \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

#define FTS_CHECK_MSG(condition, msg)                                        \
  do {                                                                       \
    if (FTS_UNLIKELY(!(condition))) {                                        \
      ::std::fprintf(stderr, "FTS_CHECK failed at %s:%d: %s: %s\n",          \
                     __FILE__, __LINE__, #condition, (msg));                 \
      ::std::abort();                                                        \
    }                                                                        \
  } while (0)

// Debug-only check; compiled out in release builds.
#ifdef NDEBUG
#define FTS_DCHECK(condition) \
  do {                        \
  } while (0)
#else
#define FTS_DCHECK(condition) FTS_CHECK(condition)
#endif

// Marks a class as neither copyable nor movable. Place in the public section.
#define FTS_DISALLOW_COPY_AND_MOVE(TypeName)      \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete;  \
  TypeName(TypeName&&) = delete;                  \
  TypeName& operator=(TypeName&&) = delete

#endif  // FTS_COMMON_MACROS_H_
