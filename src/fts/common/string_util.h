#ifndef FTS_COMMON_STRING_UTIL_H_
#define FTS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fts {

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on every occurrence of `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// ASCII case helpers (SQL keywords are case-insensitive).
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

// Formats a byte count with binary units, e.g. "1.5 MiB".
std::string HumanBytes(double bytes);

// Formats row counts like the paper's axis labels: 1K, 32M, 132M.
std::string HumanRows(uint64_t rows);

}  // namespace fts

#endif  // FTS_COMMON_STRING_UTIL_H_
