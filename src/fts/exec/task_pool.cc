#include "fts/exec/task_pool.h"

#include <algorithm>
#include <exception>

#include "fts/common/env.h"
#include "fts/common/macros.h"
#include "fts/common/string_util.h"
#include "fts/obs/metrics.h"
#include "fts/obs/trace.h"

namespace fts {
namespace {

// Set while a thread is a pool worker (or is running a reentrant
// ParallelFor inline); nested ParallelFor calls then bypass the queues.
thread_local bool tls_inside_worker = false;

// One blocking ParallelFor invocation. Tasks share it; the submitting
// thread waits on `done_cv` until `remaining` hits zero.
struct Batch {
  explicit Batch(size_t count) : remaining(count) {}

  std::atomic<size_t> remaining;
  std::mutex mutex;
  std::condition_variable done_cv;
  // First exception thrown by a body, rethrown in the caller.
  std::exception_ptr error;

  void Finish(std::exception_ptr exception) {
    if (exception != nullptr) {
      std::lock_guard<std::mutex> lock(mutex);
      if (error == nullptr) error = exception;
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }
};

}  // namespace

int TaskPool::ThreadCountFromEnv(int fallback) {
  const int64_t from_env = GetEnvInt64("FTS_THREADS", 0);
  const int64_t chosen = from_env > 0 ? from_env : fallback;
  return static_cast<int>(
      std::clamp<int64_t>(chosen, 1, kMaxTaskPoolThreads));
}

int TaskPool::DefaultThreadCount() {
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return ThreadCountFromEnv(hardware);
}

TaskPool::TaskPool(int threads) {
  const int count = threads <= 0
                        ? DefaultThreadCount()
                        : std::min(threads, kMaxTaskPoolThreads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // A single-thread pool runs everything inline; don't spawn a thread
  // only to hand it every task.
  if (count == 1) return;
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool TaskPool::RunOneTask(size_t self) {
  Task task;
  bool stolen = false;
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (task == nullptr) {
    // Steal from the back of the first non-empty victim deque, starting
    // just past ourselves so load spreads instead of piling on worker 0.
    for (size_t offset = 1; offset < workers_.size() && task == nullptr;
         ++offset) {
      Worker& victim = *workers_[(self + offset) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (task == nullptr) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
    obs::Metrics().morsels_stolen_total->Increment();
  }
  task();
  return true;
}

void TaskPool::WorkerLoop(size_t self) {
  tls_inside_worker = true;
  // Registers this thread's rank + label so trace exports name one track
  // per worker ("pool worker N").
  obs::SetCurrentThreadLabel(StrFormat("pool worker %zu", self));
  for (;;) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void TaskPool::ParallelFor(size_t count,
                           const std::function<void(size_t)>& body) {
  if (count == 0) return;
  // Inline paths: single-thread pool, single task, or reentrant call from
  // inside a worker (queuing would deadlock the blocked parent batch).
  if (workers_.size() <= 1 || count == 1 || tls_inside_worker) {
    const bool was_inside = tls_inside_worker;
    tls_inside_worker = true;
    for (size_t i = 0; i < count; ++i) body(i);
    tls_inside_worker = was_inside;
    return;
  }

  auto batch = std::make_shared<Batch>(count);
  // Publish the count before the tasks become visible so a worker's
  // pending_ decrement can never transiently underflow.
  pending_.fetch_add(count, std::memory_order_acq_rel);
  for (size_t i = 0; i < count; ++i) {
    Worker& target = *workers_[i % workers_.size()];
    std::lock_guard<std::mutex> lock(target.mutex);
    target.tasks.push_back([batch, &body, i] {
      std::exception_ptr error;
      try {
        body(i);
      } catch (...) {
        error = std::current_exception();
      }
      batch->Finish(error);
    });
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&batch] {
    return batch->remaining.load(std::memory_order_acquire) == 0;
  });
  if (batch->error != nullptr) std::rethrow_exception(batch->error);
}

TaskPool& TaskPool::Global() {
  static TaskPool pool;
  return pool;
}

TaskPool::Stats TaskPool::stats() const {
  Stats stats;
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fts
