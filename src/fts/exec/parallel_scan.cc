#include "fts/exec/parallel_scan.h"

#include <algorithm>

#include "fts/jit/jit_scan_engine.h"
#include "fts/obs/metrics.h"
#include "fts/obs/trace.h"
#include "fts/perf/counter_attribution.h"
#include "fts/simd/scan_stage.h"

namespace fts {
namespace {

// What a morsel computes: a materialized position list, a match count, or
// folded aggregate partials (aggregate pushdown).
enum class MorselMode { kMaterialize, kCount, kAggregate };

// Everything one morsel produces. Each task writes only its own slot of a
// preallocated vector, so the scheduler needs no cross-task locking and
// the merge is deterministic by construction.
struct MorselOutcome {
  bool ok = false;
  // Morsel hit a cancellation boundary and was discarded without a rung
  // completing (partial-abort accounting; `error` holds the cancel status).
  bool aborted = false;
  Status error;           // Last rung's failure when !ok.
  EngineChoice executed;  // Rung that ran when ok.
  size_t rung_index = 0;  // Ladder depth of `executed` (0 = requested).
  // `executed` is the cost model's per-chunk pick (DESIGN.md §14), not a
  // ladder rung: the switch is a choice, not a degradation.
  bool adapted = false;
  std::vector<EngineAttempt> attempts;
  PosList positions;  // Materialize mode.
  uint64_t count = 0;  // Count and aggregate modes (the match count).
  std::vector<AggAccumulator> aggs;  // Aggregate mode: per-term partials.
  // JIT cache/compile attribution for this morsel's ladder walk.
  JitChunkStats jit;
  // PMU delta for this morsel's ladder walk on its executing worker
  // (invalid when collection was off or the worker's PMU never opened),
  // plus the worker's trace rank for distinct-thread coverage accounting.
  CounterDelta counters;
  int64_t thread_rank = -1;
};

std::vector<EngineChoice> RungsFor(const ParallelScanOptions& options) {
  if (options.fallback == FallbackPolicy::kLadder) {
    return DegradationLadder(options.requested.engine,
                             options.requested.jit_register_bits);
  }
  return {options.requested};
}

// Walks the ladder for one chunk. Mirrors JitScanEngine::RunLadder, but at
// morsel granularity: a kUnavailable JIT failure (no AVX-512, no usable
// compiler) dooms every JIT width for this morsel, so skip straight to the
// precompiled rungs instead of burning a compile attempt per width.
void RunMorsel(const TableScanner& scanner, JitCache& cache,
               const std::vector<EngineChoice>& rungs, MorselMode mode,
               ChunkId chunk_id, QueryContext* ctx, bool collect_counters,
               MorselOutcome* out) {
  const TableScanner::ChunkPlan& plan = scanner.chunk_plans()[chunk_id];
  // Morsel boundary = cancellation point. A canceled morsel is discarded
  // before any rung runs; its outcome slot records the abort so the merge
  // and the report see the deterministic partial-abort.
  if (ctx != nullptr) {
    const Status cancel = ctx->CheckCancelled();
    if (!cancel.ok()) {
      out->aborted = true;
      out->error = cancel;
      return;
    }
  }
  // The morsel span covers the whole ladder walk; the chunk-execution
  // spans underneath it (scan_chunk) nest inside on the worker's track.
  obs::TraceSpan span("morsel", "exec");
  if (span.active()) {
    span.AddArg("chunk", static_cast<uint64_t>(chunk_id));
    span.AddArg("rows", static_cast<uint64_t>(plan.row_count));
  }
  // Thread-local output list, reused across rungs and moved into the
  // outcome slot on success. Charged against the query's memory budget
  // while the morsel holds it: a budget overflow is a typed morsel
  // failure (kResourceExhausted), not a process abort.
  ScopedMemoryReservation reservation;
  PosList buffer;
  if (mode == MorselMode::kMaterialize) {
    const Status reserved = reservation.Reserve(
        ctx, static_cast<uint64_t>(plan.row_count + kScanOutputSlack) *
                 sizeof(ChunkOffset));
    if (!reserved.ok()) {
      out->error = reserved;
      return;
    }
    buffer.resize(plan.row_count + kScanOutputSlack);
  }
  std::vector<AggAccumulator> aggs;
  if (mode == MorselMode::kAggregate) {
    aggs.resize(scanner.num_agg_terms());
  }

  // Per-morsel engine adaptation (DESIGN.md §14): when the scan opted in,
  // ask the cost model whether this chunk should run on a cheaper engine
  // than the requested rung (near-empty / near-full chunks often should).
  // The model's pick is prepended as an extra rung: if it somehow fails,
  // the walk falls through to the original ladder unchanged.
  std::vector<EngineChoice> walk;
  const std::vector<EngineChoice>* walk_rungs = &rungs;
  bool adapted_first = false;
  if (scanner.adaptive() && !rungs.empty()) {
    const cost::ScanMode cost_mode =
        mode == MorselMode::kCount       ? cost::ScanMode::kCount
        : mode == MorselMode::kAggregate ? cost::ScanMode::kAggregate
                                         : cost::ScanMode::kMaterialize;
    const EngineChoice adapted =
        scanner.AdaptEngine(rungs.front(), chunk_id, cost_mode);
    if (!(adapted == rungs.front())) {
      adapted_first = true;
      walk.reserve(rungs.size() + 1);
      walk.push_back(adapted);
      walk.insert(walk.end(), rungs.begin(), rungs.end());
      walk_rungs = &walk;
    }
  }

  // Measured region = the ladder walk on this worker (kernel work plus
  // any JIT compile a rung triggers; compile wall time stays separately
  // attributed via JitChunkStats). perf_event fds are per-thread, so this
  // region runs on the worker's own cached counter group — the per-worker
  // attribution the old calling-thread-only scope could not see.
  CounterRegion region(collect_counters);
  if (collect_counters) {
    out->thread_rank = static_cast<int64_t>(obs::CurrentThreadRank());
  }
  bool jit_unavailable = false;
  Status jit_unavailable_status;
  for (size_t r = 0; r < walk_rungs->size(); ++r) {
    const EngineChoice& choice = (*walk_rungs)[r];
    // Rung boundary = cancellation point: a deadline firing mid-ladder
    // (e.g. during a JIT compile on an earlier rung) aborts the walk
    // instead of demoting — lower rungs of a dead query cannot help.
    // Checked via cancelled() rather than a rung's status code so the
    // compile-budget floor (kDeadlineExceeded WITHOUT a canceled context)
    // still demotes to a precompiled rung.
    if (ctx != nullptr && ctx->cancelled()) {
      out->aborted = true;
      out->error = ctx->CancelStatus();
      return;
    }
    if (choice.engine == ScanEngine::kJit && jit_unavailable) {
      out->attempts.push_back({choice, jit_unavailable_status});
      continue;
    }

    Status status;
    uint64_t value = 0;
    if (choice.engine == ScanEngine::kJit) {
      const StatusOr<size_t> result =
          mode == MorselMode::kAggregate
              ? JitExecuteChunkAggregate(cache, plan,
                                         choice.jit_register_bits,
                                         aggs.data(), &out->jit, ctx)
              : JitExecuteChunk(cache, plan, choice.jit_register_bits,
                                mode == MorselMode::kCount,
                                mode == MorselMode::kCount ? nullptr
                                                           : buffer.data(),
                                &out->jit, ctx,
                                scanner.compressed_stats().get());
      if (result.ok()) {
        value = *result;
      } else {
        status = result.status();
      }
    } else if (mode == MorselMode::kAggregate) {
      const StatusOr<size_t> result =
          scanner.ExecuteChunkAggregate(choice.engine, chunk_id, aggs.data());
      if (result.ok()) {
        value = *result;
      } else {
        status = result.status();
      }
    } else if (mode == MorselMode::kCount) {
      const StatusOr<uint64_t> result =
          scanner.ExecuteChunkCount(choice.engine, chunk_id);
      if (result.ok()) {
        value = *result;
      } else {
        status = result.status();
      }
    } else {
      const StatusOr<size_t> result =
          scanner.ExecuteChunk(choice.engine, chunk_id, buffer.data());
      if (result.ok()) {
        value = *result;
      } else {
        status = result.status();
      }
    }

    if (status.ok()) {
      if (mode == MorselMode::kMaterialize) {
        buffer.resize(static_cast<size_t>(value));
        out->positions = std::move(buffer);
      } else {
        out->count = value;
        if (mode == MorselMode::kAggregate) out->aggs = std::move(aggs);
      }
      out->attempts.push_back({choice, Status::Ok()});
      out->executed = choice;
      // Ladder depth stays relative to the ORIGINAL rungs so the
      // deepest-rung report logic is unaffected by the prepended pick.
      out->adapted = adapted_first && r == 0;
      out->rung_index = adapted_first ? (r == 0 ? 0 : r - 1) : r;
      out->ok = true;
      out->counters = region.Finish();
      if (span.active()) {
        span.AddArg("engine", choice.ToString());
        span.AddArg("matches", mode == MorselMode::kMaterialize
                                   ? uint64_t{out->positions.size()}
                                   : out->count);
      }
      return;
    }
    out->attempts.push_back({choice, status});
    out->error = status;
    if (choice.engine == ScanEngine::kJit &&
        status.code() == StatusCode::kUnavailable) {
      jit_unavailable = true;
      jit_unavailable_status = status;
    }
  }
}

// Schedules every runnable chunk as one morsel, merges outcomes, and fills
// the report. Chunks the prepared scanner proved impossible (dictionary
// translation or zone-map bounds) and 0-row chunks are excluded BEFORE
// morsel creation, so pruned chunks cost no scheduling, no thread
// hand-off, and no ladder walk — their outcome slots simply stay empty,
// which the merge reads as zero matches. On failure the first failed
// morsel in chunk order decides the returned status (deterministic
// regardless of scheduling).
Status RunMorsels(const TableScanner& scanner,
                  const ParallelScanOptions& options, MorselMode mode,
                  std::vector<MorselOutcome>* outcomes,
                  ExecutionReport* report) {
  ExecutionReport local;
  if (report == nullptr) report = &local;
  report->requested = options.requested;
  FillPruningReport(scanner, report);
  FillCompressedReport(scanner, report);
  FillAdaptiveReport(scanner, report);

  QueryContext* ctx =
      options.context != nullptr ? options.context : scanner.context();
  if (ctx != nullptr) report->deadline_millis = ctx->deadline_millis();

  JitCache& cache =
      options.cache != nullptr ? *options.cache : GlobalJitCache();
  const std::vector<EngineChoice> rungs = RungsFor(options);
  const size_t chunk_count = scanner.chunk_plans().size();

  int threads = options.pool != nullptr ? options.pool->thread_count()
                : options.threads <= 0
                    ? TaskPool::DefaultThreadCount()
                    : std::min(options.threads, kMaxTaskPoolThreads);

  outcomes->clear();
  outcomes->resize(chunk_count);

  std::vector<ChunkId> runnable;
  runnable.reserve(chunk_count);
  for (ChunkId chunk_id = 0; chunk_id < chunk_count; ++chunk_id) {
    const TableScanner::ChunkPlan& plan = scanner.chunk_plans()[chunk_id];
    if (!plan.impossible && plan.row_count > 0) runnable.push_back(chunk_id);
  }
  if (runnable.empty()) {
    report->worker_count = 1;
    report->RecordSuccess(options.requested);
    return Status::Ok();
  }

  const auto run_morsel = [&](size_t index) {
    const ChunkId chunk = runnable[index];
    RunMorsel(scanner, cache, rungs, mode, chunk, ctx,
              options.collect_counters, &(*outcomes)[chunk]);
  };
  if (threads <= 1 || runnable.size() == 1) {
    threads = 1;
    for (size_t i = 0; i < runnable.size(); ++i) {
      run_morsel(i);
      // Undispatched morsels of a canceled scan are discarded here; the
      // pool path reaches the same state by draining aborting morsels.
      if (ctx != nullptr && ctx->cancelled()) break;
    }
  } else if (options.pool != nullptr) {
    options.pool->ParallelFor(runnable.size(), run_morsel);
  } else if (threads == TaskPool::Global().thread_count()) {
    TaskPool::Global().ParallelFor(runnable.size(), run_morsel);
  } else {
    TaskPool scan_pool(threads);
    scan_pool.ParallelFor(runnable.size(), run_morsel);
  }

  report->worker_count = threads;
  report->morsel_count = runnable.size();
  obs::Metrics().morsels_total->Add(runnable.size());
  for (const ChunkId chunk_id : runnable) {
    const MorselOutcome& outcome = (*outcomes)[chunk_id];
    report->jit_compile_millis += outcome.jit.compile_millis;
    report->jit_cache_hits += outcome.jit.cache_hits;
    report->jit_cache_misses += outcome.jit.cache_misses;
  }

  // Partial-abort accounting. A morsel either completed (ran a rung to its
  // boundary), aborted at a cancellation point, or — when the inline loop
  // stopped early — was never dispatched (its slot is untouched: !ok with
  // an OK error), which counts as aborted too.
  const bool cancelled = ctx != nullptr && ctx->cancelled();
  size_t completed = 0;
  size_t aborted = 0;
  for (const ChunkId chunk_id : runnable) {
    const MorselOutcome& outcome = (*outcomes)[chunk_id];
    if (outcome.ok) {
      ++completed;
    } else if (outcome.aborted || (cancelled && outcome.error.ok())) {
      ++aborted;
    }
  }
  report->morsels_completed = completed;
  report->morsels_aborted = aborted;
  if (aborted > 0) obs::Metrics().morsels_aborted_total->Add(aborted);
  if (cancelled) {
    // The context's status — not whichever morsel noticed first — decides
    // the result, so a canceled scan is deterministic regardless of
    // scheduling.
    report->cancelled = true;
    const Status cancel = ctx->CancelStatus();
    report->deadline_hit = cancel.code() == StatusCode::kDeadlineExceeded;
    return cancel;
  }

  for (const ChunkId chunk_id : runnable) {
    const MorselOutcome& outcome = (*outcomes)[chunk_id];
    if (outcome.ok) continue;
    report->attempts = outcome.attempts;
    return outcome.error;
  }

  // The deepest rung any morsel reached defines the scan-level ladder
  // trail; per-morsel decisions stay visible in morsel_choices (one entry
  // per *runnable* chunk, in chunk order — pruned chunks never chose an
  // engine).
  ChunkId deepest = runnable.front();
  report->morsel_choices.reserve(runnable.size());
  for (const ChunkId chunk_id : runnable) {
    const MorselOutcome& outcome = (*outcomes)[chunk_id];
    if (outcome.rung_index > (*outcomes)[deepest].rung_index) {
      deepest = chunk_id;
    }
    report->morsel_choices.push_back(outcome.executed);
  }
  report->attempts = (*outcomes)[deepest].attempts;
  report->executed = (*outcomes)[deepest].executed;
  // Per-worker PMU aggregation with explicit coverage: every completed
  // morsel is measurable; a morsel counts as covered only when its
  // worker's counter group produced a valid delta. Distinct thread ranks
  // make the "N workers" claim auditable.
  if (options.collect_counters) {
    ScanCounters& sc = report->counters;
    std::vector<int64_t> ranks;
    for (const ChunkId chunk_id : runnable) {
      const MorselOutcome& outcome = (*outcomes)[chunk_id];
      if (!outcome.ok) continue;
      ++sc.morsels_measurable;
      if (!outcome.counters.valid) continue;
      ++sc.morsels_covered;
      sc.cycles += outcome.counters.cycles;
      sc.instructions += outcome.counters.instructions;
      sc.branches += outcome.counters.branches;
      sc.branch_misses += outcome.counters.branch_misses;
      report->AttributeEngineCounters(
          outcome.executed, outcome.counters.cycles,
          outcome.counters.instructions, outcome.counters.branches,
          outcome.counters.branch_misses);
      if (outcome.thread_rank >= 0) ranks.push_back(outcome.thread_rank);
    }
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    sc.threads_covered = static_cast<int>(ranks.size());
    if (sc.morsels_covered > 0) {
      sc.source = CounterSource::kHardware;
      sc.detail = "perf_event_open";
      sc.partial = sc.morsels_covered < sc.morsels_measurable;
    }
  }
  // A cost-model engine pick is a choice, not a degradation: only a rung
  // that ran because an earlier one failed counts as degraded.
  report->degraded = !(report->executed == report->requested) &&
                     !(*outcomes)[deepest].adapted;
  // Refresh: run/block counters and adaptive engine-mix counters
  // accumulated across the finished morsels.
  FillCompressedReport(scanner, report);
  FillAdaptiveReport(scanner, report);
  return Status::Ok();
}

}  // namespace

StatusOr<TableMatches> ExecuteParallelScan(const TableScanner& scanner,
                                           const ParallelScanOptions& options,
                                           ExecutionReport* report) {
  std::vector<MorselOutcome> outcomes;
  FTS_RETURN_IF_ERROR(RunMorsels(scanner, options, MorselMode::kMaterialize,
                                 &outcomes, report));
  TableMatches result;
  result.chunks.reserve(outcomes.size());
  for (ChunkId chunk_id = 0; chunk_id < outcomes.size(); ++chunk_id) {
    ChunkMatches matches;
    matches.chunk_id = chunk_id;
    matches.positions = std::move(outcomes[chunk_id].positions);
    result.chunks.push_back(std::move(matches));
  }
  return result;
}

StatusOr<uint64_t> ExecuteParallelScanCount(const TableScanner& scanner,
                                            const ParallelScanOptions& options,
                                            ExecutionReport* report) {
  std::vector<MorselOutcome> outcomes;
  FTS_RETURN_IF_ERROR(
      RunMorsels(scanner, options, MorselMode::kCount, &outcomes, report));
  uint64_t total = 0;
  for (const MorselOutcome& outcome : outcomes) total += outcome.count;
  return total;
}

StatusOr<TableScanner::AggResult> ExecuteParallelScanAggregate(
    const TableScanner& scanner, const ParallelScanOptions& options,
    ExecutionReport* report) {
  if (scanner.num_agg_terms() == 0) {
    return Status::InvalidArgument(
        "scan spec carries no aggregates; use ExecuteParallelScan");
  }
  std::vector<MorselOutcome> outcomes;
  FTS_RETURN_IF_ERROR(RunMorsels(scanner, options, MorselMode::kAggregate,
                                 &outcomes, report));
  // Merge partials in chunk order: combined with each term's fixed
  // fold order inside a chunk, the result is byte-identical for every
  // thread count and scheduling interleave (integer sums are exact mod
  // 2^64; float folds happen in one deterministic sequence per engine).
  TableScanner::AggResult result;
  result.accumulators.resize(scanner.num_agg_terms());
  for (const MorselOutcome& outcome : outcomes) {
    if (outcome.aggs.empty()) continue;  // Pruned or empty chunk.
    result.matched += outcome.count;
    for (size_t i = 0; i < result.accumulators.size(); ++i) {
      result.accumulators[i].Merge(outcome.aggs[i]);
    }
  }
  return result;
}

}  // namespace fts
