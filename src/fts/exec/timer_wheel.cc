#include "fts/exec/timer_wheel.h"

#include <utility>

#include "fts/common/macros.h"
#include "fts/obs/trace.h"

namespace fts {

TimerWheel::TimerWheel(Options options)
    : options_(options), slots_(options.slots == 0 ? 1 : options.slots) {
  FTS_CHECK_MSG(options_.tick_millis > 0, "timer wheel tick must be positive");
  if (options_.start_thread) {
    next_edge_ = Clock::now() + std::chrono::milliseconds(options_.tick_millis);
    thread_ = std::thread([this] { TickLoop(); });
  }
}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Pending timers are dropped, not fired: a wheel being destroyed has no
  // queries left that a deadline could meaningfully cancel.
}

TimerWheel& TimerWheel::Global() {
  // Leaked on purpose: the wheel thread may observe statics during exit
  // otherwise, and process teardown reclaims everything anyway.
  static TimerWheel* wheel = new TimerWheel();
  return *wheel;
}

TimerWheel::TimerId TimerWheel::Schedule(int64_t delay_millis,
                                         std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t ticks;
  if (options_.start_thread) {
    // The next tick edge is usually mid-tick relative to this call, so
    // counting it as a full tick would fire up to one tick early —
    // breaking the never-early contract. Count only the time actually
    // remaining until that edge, then whole ticks past it.
    const auto now = Clock::now();
    const int64_t until_edge_ns =
        std::max<int64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              next_edge_ - now)
                              .count(),
                          0);
    const int64_t delay_ns = std::max<int64_t>(delay_millis, 0) * 1'000'000;
    const int64_t tick_ns = options_.tick_millis * 1'000'000;
    ticks = delay_ns <= until_edge_ns
                ? 1
                : 1 + (delay_ns - until_edge_ns + tick_ns - 1) / tick_ns;
  } else {
    // Manual wheels advance in whole ticks (AdvanceForTest), so the first
    // edge is a full tick away by construction.
    ticks = delay_millis <= 0
                ? 1
                : (delay_millis + options_.tick_millis - 1) /
                      options_.tick_millis;
  }
  return ScheduleLocked(ticks, std::move(fn));
}

TimerWheel::TimerId TimerWheel::ScheduleLocked(int64_t delay_ticks,
                                               std::function<void()> fn) {
  const TimerId id = next_id_++;
  const size_t slot =
      (cursor_ + static_cast<size_t>(delay_ticks)) % slots_.size();
  Entry entry;
  entry.id = id;
  // The cursor advances before each slot is processed, so it first visits
  // `slot` at tick ((delay-1) mod slots) + 1; (delay-1)/slots full
  // revolutions must pass on top of that. Using delay/slots instead would
  // fire exact-multiple delays one revolution late.
  entry.rounds = (static_cast<uint64_t>(delay_ticks) - 1) / slots_.size();
  entry.fn = std::move(fn);
  slots_[slot].push_back(std::move(entry));
  index_[id] = Location{slot, std::prev(slots_[slot].end())};
  ++stats_.scheduled;
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = index_.find(id);
  if (found == index_.end()) return false;
  slots_[found->second.slot].erase(found->second.it);
  index_.erase(found);
  ++stats_.cancelled;
  return true;
}

size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

TimerWheel::Stats TimerWheel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TimerWheel::CollectDueLocked(std::vector<Entry>* due) {
  cursor_ = (cursor_ + 1) % slots_.size();
  Slot& slot = slots_[cursor_];
  for (auto it = slot.begin(); it != slot.end();) {
    if (it->rounds == 0) {
      // Spliced out while holding the lock: from here on Cancel(id)
      // returns false and the callback is committed to run.
      index_.erase(it->id);
      due->push_back(std::move(*it));
      it = slot.erase(it);
      ++stats_.fired;
    } else {
      --it->rounds;
      ++stats_.cascaded;
      ++it;
    }
  }
}

void TimerWheel::AdvanceForTest(int64_t ticks) {
  FTS_CHECK_MSG(!options_.start_thread,
                "AdvanceForTest requires a wheel without a tick thread");
  for (int64_t i = 0; i < ticks; ++i) {
    std::vector<Entry> due;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      CollectDueLocked(&due);
    }
    for (Entry& entry : due) entry.fn();
  }
}

void TimerWheel::TickLoop() {
  obs::SetCurrentThreadLabel("timer wheel");
  const auto tick = std::chrono::milliseconds(options_.tick_millis);
  std::unique_lock<std::mutex> lock(mutex_);
  // Absolute tick edges (next_edge_, shared with Schedule's never-early
  // arithmetic) so callback time does not accumulate as drift.
  while (!stop_) {
    if (cv_.wait_until(lock, next_edge_, [this] { return stop_; })) break;
    next_edge_ += tick;
    std::vector<Entry> due;
    CollectDueLocked(&due);
    if (!due.empty()) {
      lock.unlock();
      for (Entry& entry : due) entry.fn();
      lock.lock();
    }
  }
}

}  // namespace fts
