#include "fts/exec/parallel_project.h"

#include <atomic>
#include <memory>

#include "fts/simd/gather_kernels.h"

namespace fts {

Status ExecuteParallelGather(const ProjectionGatherer& gatherer,
                             const TableMatches& matches,
                             const std::vector<std::string>& names,
                             const ParallelProjectOptions& options,
                             ColumnarResult* out, GatherStats* stats) {
  // Resolve the gather kernel once per query; an unavailable kind demotes
  // straight to the scalar reference (same values, same layout).
  GatherFn fn = &GatherScalar;
  if (StatusOr<GatherFn> kernel = GetGatherKernel(options.kernel);
      kernel.ok()) {
    fn = kernel.value();
  }

  const size_t chunk_count = matches.chunks.size();
  std::vector<size_t> offsets(chunk_count + 1, 0);
  for (size_t i = 0; i < chunk_count; ++i) {
    offsets[i + 1] = offsets[i] + matches.chunks[i].positions.size();
  }
  const size_t total_rows = offsets[chunk_count];

  gatherer.InitResult(names, out);
  QueryContext* ctx = options.context;
  ScopedMemoryReservation reservation;
  if (ctx != nullptr) {
    uint64_t bytes = 0;
    for (size_t c = 0; c < gatherer.column_count(); ++c) {
      bytes += total_rows * DataTypeSize(gatherer.output_type(c));
    }
    if (Status reserve = reservation.Reserve(ctx, bytes); !reserve.ok()) {
      return reserve;
    }
  }
  out->SetRowCount(total_rows);
  if (total_rows == 0) return Status::Ok();

  const auto gather_chunk = [&](size_t i, GatherStats* slot_stats) {
    const ChunkMatches& chunk = matches.chunks[i];
    gatherer.GatherChunk(fn, chunk.chunk_id, chunk.positions.data(),
                         chunk.positions.size(), out, offsets[i],
                         slot_stats);
  };

  const int threads =
      options.threads > 0 ? options.threads : TaskPool::DefaultThreadCount();
  if (threads <= 1 || chunk_count <= 1) {
    for (size_t i = 0; i < chunk_count; ++i) {
      if (ctx != nullptr) {
        if (Status cancel = ctx->CheckCancelled(); !cancel.ok()) {
          out->Clear();
          return cancel;
        }
      }
      gather_chunk(i, stats);
    }
    return Status::Ok();
  }

  // Parallel path: per-morsel stats slots merged after the drain (the
  // counters are additive, but slots keep the workers write-disjoint).
  std::vector<GatherStats> slots(chunk_count);
  std::atomic<bool> stop{false};
  const auto body = [&](size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;
    if (ctx != nullptr && ctx->cancelled()) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    gather_chunk(i, &slots[i]);
  };

  if (options.pool != nullptr) {
    options.pool->ParallelFor(chunk_count, body);
  } else if (TaskPool::Global().thread_count() == threads) {
    TaskPool::Global().ParallelFor(chunk_count, body);
  } else {
    TaskPool local(threads);
    local.ParallelFor(chunk_count, body);
  }

  if (ctx != nullptr) {
    if (Status cancel = ctx->CheckCancelled(); !cancel.ok()) {
      out->Clear();
      return cancel;
    }
  }
  for (const GatherStats& slot : slots) stats->Merge(slot);
  return Status::Ok();
}

}  // namespace fts
