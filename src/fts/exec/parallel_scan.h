#ifndef FTS_EXEC_PARALLEL_SCAN_H_
#define FTS_EXEC_PARALLEL_SCAN_H_

#include "fts/common/status.h"
#include "fts/exec/task_pool.h"
#include "fts/jit/jit_cache.h"
#include "fts/scan/scan_engine.h"
#include "fts/scan/table_scan.h"
#include "fts/storage/pos_list.h"

namespace fts {

// Morsel-driven parallel execution of a prepared scan (Hyrise-style
// chunk-granular parallelism). Each chunk is one morsel; a TaskPool
// worker runs the selected engine rung over its morsels into a
// thread-local PosList, and the per-chunk lists are stitched together in
// chunk order — the output is byte-identical to the single-threaded path
// for every thread count.
//
// Degradation is per-morsel: under FallbackPolicy::kLadder each morsel
// walks DegradationLadder() independently, so one chunk's JIT compile
// failure mid-query demotes only that chunk (the JitCache's single-flight
// and negative caching keep concurrent morsels from stampeding a broken
// toolchain). The ExecutionReport records the worker count, the morsel
// count, and every morsel's executed engine.
struct ParallelScanOptions {
  // Engine to run (any rung, including kJit with its register width).
  EngineChoice requested;
  // kLadder demotes failing morsels rung by rung; kStrict fails the scan
  // on the first morsel whose requested rung fails.
  FallbackPolicy fallback = FallbackPolicy::kLadder;
  // Worker threads: 0 = TaskPool::DefaultThreadCount() (FTS_THREADS env,
  // else hardware concurrency), 1 = run morsels inline on the caller,
  // N > 1 = N workers.
  int threads = 0;
  // Compiled-operator cache for kJit rungs; null = GlobalJitCache().
  JitCache* cache = nullptr;
  // Pool to schedule on; null = TaskPool::Global() when its width matches
  // the resolved thread count, else a scan-local pool.
  TaskPool* pool = nullptr;
  // Query lifecycle context (fts/common/query_context.h); overrides the
  // scanner's captured context when non-null. Cancellation is checked at
  // every morsel boundary and ladder-rung start: a canceled scan stops
  // dispatching new morsels, in-flight morsels run to their boundary (the
  // kernels are uninterruptible), and the pool drains normally — the
  // slot-per-chunk merge then discards cleanly and the scan returns the
  // context's cancel status deterministically.
  QueryContext* context = nullptr;
  // Per-worker PMU attribution (fts/perf/counter_attribution.h): each
  // morsel's ladder walk runs inside a counter region on its executing
  // worker, and the deltas are aggregated into the report's ScanCounters
  // (with morsel/thread coverage accounting) and per-engine totals. Off by
  // default — the steady-state cost of false is one branch per morsel.
  bool collect_counters = false;
};

// Runs the prepared scan morsel-by-morsel and materializes matching
// positions per chunk (same result shape as TableScanner::Execute).
StatusOr<TableMatches> ExecuteParallelScan(const TableScanner& scanner,
                                           const ParallelScanOptions& options,
                                           ExecutionReport* report = nullptr);

// Count-only twin: JIT morsels compile count-only operators, SISD morsels
// run the paper's counting loop, fused morsels count a thread-local list.
StatusOr<uint64_t> ExecuteParallelScanCount(
    const TableScanner& scanner, const ParallelScanOptions& options,
    ExecutionReport* report = nullptr);

// Aggregate-pushdown twin: every morsel folds the spec's aggregates inside
// its kernel loop (JIT morsels compile a specialized aggregate operator)
// and the per-morsel partial accumulators are merged in chunk order — the
// result is byte-identical to the single-threaded path for every thread
// count and worker interleaving. Requires the scanner's spec to carry
// aggregates.
StatusOr<TableScanner::AggResult> ExecuteParallelScanAggregate(
    const TableScanner& scanner, const ParallelScanOptions& options,
    ExecutionReport* report = nullptr);

}  // namespace fts

#endif  // FTS_EXEC_PARALLEL_SCAN_H_
