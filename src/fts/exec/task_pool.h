#ifndef FTS_EXEC_TASK_POOL_H_
#define FTS_EXEC_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fts {

// Upper bound on pool width; FTS_THREADS is clamped to it.
inline constexpr int kMaxTaskPoolThreads = 256;

// Fixed-size work-stealing thread pool — the scheduler under the
// morsel-driven parallel scan (fts/exec/parallel_scan.h).
//
// Structure (Hyrise/TBB-style, sized for chunk-granular morsels):
//   - N worker threads, fixed at construction; no dynamic growth.
//   - One deque per worker. ParallelFor distributes tasks round-robin
//     across the deques; a worker pops its own deque from the front and,
//     when empty, steals from the back of another worker's deque, so
//     skewed morsels (one chunk compiling a JIT operator while others
//     finish instantly) rebalance automatically.
//   - Idle workers sleep on a condition variable; submission wakes them.
//
// ParallelFor blocks the caller until every index has run, which makes
// the pool usable as a drop-in "run these morsels" primitive: no task
// handles, no futures, deterministic completion. Reentrant ParallelFor
// calls from inside a worker run inline (no deadlock, no oversubscription).
class TaskPool {
 public:
  // `threads` <= 0 selects DefaultThreadCount().
  explicit TaskPool(int threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // FTS_THREADS when set and positive (clamped to kMaxTaskPoolThreads),
  // else `fallback`. The env override lets every harness — fts_shell, the
  // benches, ctest — select the pool width without recompiling.
  static int ThreadCountFromEnv(int fallback);

  // Pool width when none is requested: FTS_THREADS, else the hardware
  // concurrency (at least 1).
  static int DefaultThreadCount();

  // Runs body(index) for every index in [0, count); returns when all have
  // completed. Tasks run on the pool's workers while the caller blocks,
  // so a pool of N threads scans with exactly N threads. With a
  // single-thread pool (or when called from inside a pool worker) the
  // body runs inline on the calling thread, index order ascending.
  // A body exception is rethrown in the caller after the batch drains.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // Process-wide pool, built on first use with DefaultThreadCount().
  static TaskPool& Global();

  struct Stats {
    uint64_t executed = 0;  // Tasks run by pool workers.
    uint64_t steals = 0;    // Tasks taken from another worker's deque.
  };
  Stats stats() const;

 private:
  using Task = std::function<void()>;

  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
    std::thread thread;
  };

  void WorkerLoop(size_t self);
  // Pops own deque front, then steals from other deques' backs. Returns
  // false when no task was found anywhere.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace fts

#endif  // FTS_EXEC_TASK_POOL_H_
