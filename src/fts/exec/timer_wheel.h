#ifndef FTS_EXEC_TIMER_WHEEL_H_
#define FTS_EXEC_TIMER_WHEEL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fts {

// A hashed timer wheel: one background tick thread fires every query
// deadline in the process, so N in-flight queries cost N wheel entries
// instead of N sleeping threads.
//
// Classic hashed-wheel design: `slots` buckets of `tick_millis` width
// arranged in a ring. A timer due in D ticks lands in slot
// (cursor + D) % slots with a `rounds` counter of D / slots; each tick
// the cursor advances one slot, decrements the rounds of every entry in
// it (a "cascade" visit), and fires the entries that reached zero. With
// a 1 ms tick and 256 slots, deadlines up to ~256 ms fire without ever
// being revisited; longer ones pay one counter decrement per ~quarter
// second. Timers never fire early; they fire at the first tick edge at
// or after their due time, so worst-case lateness is one tick plus
// scheduler jitter.
//
// Callbacks run on the wheel thread with no lock held. They must be
// cheap and non-blocking — the intended payload is exactly
// `QueryContext::Cancel(kDeadlineExceeded)` (a couple of atomic stores);
// the canceled query notices at its next cancellation point. A slow
// callback delays every other timer behind it.
//
// Cancel(id) wins only while the entry is still in the wheel: once the
// tick thread has spliced an entry out to fire it, Cancel returns false
// and the callback runs (or already ran). Callers that race completion
// against the deadline therefore hold the guarded state via weak_ptr —
// see Database::Query.
class TimerWheel {
 public:
  using TimerId = uint64_t;
  using Clock = std::chrono::steady_clock;

  struct Options {
    int64_t tick_millis = 1;
    size_t slots = 256;
    // false = no tick thread; tests drive time with AdvanceForTest for
    // deterministic expiry-order/cascade/cancel coverage.
    bool start_thread = true;
  };

  struct Stats {
    uint64_t scheduled = 0;
    uint64_t fired = 0;
    uint64_t cancelled = 0;
    // Entries visited by the cursor that still had rounds to serve.
    uint64_t cascaded = 0;
  };

  // Overload instead of a `= Options()` default: nested-class default
  // member initializers are not parsed yet where an in-class default
  // argument would need them (same workaround as Database::Query).
  TimerWheel() : TimerWheel(Options()) {}
  explicit TimerWheel(Options options);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Process-wide wheel used for query deadlines (1 ms tick, 256 slots).
  // Started lazily on first use; never destroyed (intentionally leaked so
  // late cancels during static teardown stay safe).
  static TimerWheel& Global();

  // Schedules `fn` to run `delay_millis` from now (delays <= 0 fire on
  // the next tick). Returns an id usable with Cancel.
  TimerId Schedule(int64_t delay_millis, std::function<void()> fn);

  // Removes a pending timer. True if it was removed before firing; false
  // if it already fired, is mid-fire, or never existed.
  bool Cancel(TimerId id);

  // Timers currently in the wheel.
  size_t pending() const;

  Stats stats() const;

  // Test-only (requires start_thread = false): advances the wheel by
  // `ticks` tick edges, firing due timers synchronously on the caller's
  // thread.
  void AdvanceForTest(int64_t ticks);

 private:
  struct Entry {
    TimerId id = 0;
    uint64_t rounds = 0;  // Cursor passes to survive before firing.
    std::function<void()> fn;
  };
  using Slot = std::list<Entry>;

  struct Location {
    size_t slot = 0;
    Slot::iterator it;
  };

  // Places an entry due in `delay_ticks` relative to the cursor.
  // Requires mutex_ held.
  TimerId ScheduleLocked(int64_t delay_ticks, std::function<void()> fn);

  // Advances one tick and moves due entries onto `due`. Requires mutex_
  // held.
  void CollectDueLocked(std::vector<Entry>* due);

  void TickLoop();

  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::unordered_map<TimerId, Location> index_;
  size_t cursor_ = 0;
  // Next tick edge of the live tick thread; Schedule reads it so a timer
  // placed mid-tick is never counted a full tick it won't get.
  Clock::time_point next_edge_{};
  TimerId next_id_ = 1;
  Stats stats_;
  bool stop_ = false;

  std::thread thread_;
};

}  // namespace fts

#endif  // FTS_EXEC_TIMER_WHEEL_H_
