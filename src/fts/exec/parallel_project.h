#ifndef FTS_EXEC_PARALLEL_PROJECT_H_
#define FTS_EXEC_PARALLEL_PROJECT_H_

#include <string>
#include <vector>

#include "fts/common/query_context.h"
#include "fts/common/status.h"
#include "fts/exec/task_pool.h"
#include "fts/scan/projection_gather.h"
#include "fts/storage/columnar_result.h"
#include "fts/storage/pos_list.h"

namespace fts {

// Morsel-driven batch-gather projection: each chunk's survivor list is
// one gather morsel. The output rows of chunk i start at the prefix sum
// of the earlier chunks' match counts, so every morsel writes a disjoint
// slice of the shared column buffers and assembly is deterministic and
// chunk-ordered by construction — byte-identical for every thread count,
// with no merge step at all.
struct ParallelProjectOptions {
  // Batch-gather kernel for kernel-eligible column-chunks (resolved from
  // the scan's executed engine by the plan executor).
  FusedKernelKind kernel = FusedKernelKind::kScalar;
  // Worker threads: 0 = TaskPool::DefaultThreadCount(), 1 = inline.
  int threads = 0;
  // Pool to schedule on; null = TaskPool::Global() when its width matches
  // the resolved thread count, else a local pool.
  TaskPool* pool = nullptr;
  // Cancellation/memory budget; checked at every gather-morsel boundary.
  QueryContext* context = nullptr;
};

// Gathers every chunk of `matches` through `gatherer` into `out`
// (InitResult + SetRowCount + per-chunk GatherChunk). `stats` receives
// the merged per-encoding gather accounting. On cancellation the partial
// output is cleared and the context's cancel status returned.
Status ExecuteParallelGather(const ProjectionGatherer& gatherer,
                             const TableMatches& matches,
                             const std::vector<std::string>& names,
                             const ParallelProjectOptions& options,
                             ColumnarResult* out, GatherStats* stats);

}  // namespace fts

#endif  // FTS_EXEC_PARALLEL_PROJECT_H_
