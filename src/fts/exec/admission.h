#ifndef FTS_EXEC_ADMISSION_H_
#define FTS_EXEC_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "fts/common/query_context.h"
#include "fts/common/status.h"

namespace fts {

struct AdmissionOptions {
  // Queries allowed to execute at once. <= 0 resolves from
  // FTS_MAX_CONCURRENT_QUERIES (default 64). Admitted queries share the
  // TaskPool; this bounds how many can pile work onto it, it does not
  // reserve threads per query.
  int max_concurrent = 0;
  // Queries allowed to wait for a slot. <= 0 resolves from
  // FTS_QUEUE_DEPTH (default 128). A query arriving with the queue full
  // is rejected immediately with kAdmissionRejected — bounded queue, no
  // unbounded pile-up, callers retry with backoff.
  int queue_depth = 0;
};

// Bounded run-queue in front of the execution stack. Database::Query
// takes a ticket before planning/executing and releases it (RAII) when
// the query finishes, succeeds or not. Waiters are deadline- and
// cancellation-aware: a queued query whose deadline fires (or that is
// canceled) leaves the queue with its cancel status instead of occupying
// a slot it can no longer use.
class AdmissionController {
 public:
  AdmissionController() : AdmissionController(AdmissionOptions()) {}
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Move-only slot holder; releasing (destruction) wakes one waiter.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    Ticket(Ticket&& other) noexcept
        : controller_(other.controller_),
          queue_wait_micros_(other.queue_wait_micros_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        queue_wait_micros_ = other.queue_wait_micros_;
        other.controller_ = nullptr;
      }
      return *this;
    }

    void Release();

    // Time spent queued before the slot was granted (0 when admitted
    // immediately).
    int64_t queue_wait_micros() const { return queue_wait_micros_; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, int64_t queue_wait_micros)
        : controller_(controller), queue_wait_micros_(queue_wait_micros) {}

    AdmissionController* controller_ = nullptr;
    int64_t queue_wait_micros_ = 0;
  };

  // Blocks until a slot is free. Errors: kAdmissionRejected when the wait
  // queue is full on arrival; the context's cancel status when `ctx` is
  // canceled (or its deadline fires) while queued. `ctx` may be null.
  // On success the queue wait is also recorded into `ctx` and the
  // admission queue-wait histogram.
  StatusOr<Ticket> Admit(QueryContext* ctx);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t queued = 0;    // Admissions that had to wait.
    uint64_t rejected = 0;  // Queue-full rejections.
    int running = 0;
    int waiting = 0;
  };
  Stats stats() const;

  int max_concurrent() const { return max_concurrent_; }
  int queue_depth() const { return queue_depth_; }

  // Process-wide controller used by Database::Query, configured from
  // FTS_MAX_CONCURRENT_QUERIES / FTS_QUEUE_DEPTH at first use.
  static AdmissionController& Global();

 private:
  void Release();

  const int max_concurrent_;
  const int queue_depth_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int running_ = 0;
  int waiting_ = 0;
  Stats stats_;
};

}  // namespace fts

#endif  // FTS_EXEC_ADMISSION_H_
