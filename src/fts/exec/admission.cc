#include "fts/exec/admission.h"

#include <algorithm>
#include <chrono>

#include "fts/common/env.h"
#include "fts/common/string_util.h"
#include "fts/obs/metrics.h"

namespace fts {

namespace {
constexpr int kDefaultMaxConcurrent = 64;
constexpr int kDefaultQueueDepth = 128;
}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : max_concurrent_(options.max_concurrent > 0
                          ? options.max_concurrent
                          : std::max<int>(1, static_cast<int>(GetEnvInt64(
                                                 "FTS_MAX_CONCURRENT_QUERIES",
                                                 kDefaultMaxConcurrent)))),
      queue_depth_(options.queue_depth > 0
                       ? options.queue_depth
                       : std::max<int>(0, static_cast<int>(GetEnvInt64(
                                              "FTS_QUEUE_DEPTH",
                                              kDefaultQueueDepth)))) {}

AdmissionController& AdmissionController::Global() {
  static AdmissionController* controller = new AdmissionController();
  return *controller;
}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    QueryContext* ctx) {
  using Clock = std::chrono::steady_clock;
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_ < max_concurrent_) {
    ++running_;
    ++stats_.admitted;
    if (ctx != nullptr) ctx->set_queue_wait_micros(0);
    obs::Metrics().admission_queue_wait_micros->Record(0);
    return Ticket(this, 0);
  }
  if (waiting_ >= queue_depth_) {
    ++stats_.rejected;
    obs::Metrics().admission_rejected_total->Increment();
    return Status::AdmissionRejected(StrFormat(
        "admission queue full: %d running (max %d), %d queued (depth %d)",
        running_, max_concurrent_, waiting_, queue_depth_));
  }
  const auto enqueued = Clock::now();
  ++waiting_;
  ++stats_.queued;
  // Poll in short slices so a queued query notices cancellation or an
  // expiring deadline promptly; CheckCancelled costs one clock read.
  Status cancel = Status::Ok();
  while (running_ >= max_concurrent_) {
    cv_.wait_for(lock, std::chrono::milliseconds(1));
    cancel = CheckCancellation(ctx);
    if (!cancel.ok()) break;
  }
  --waiting_;
  if (!cancel.ok()) {
    // Leaving without a slot: a waiter may have been notified for us.
    cv_.notify_one();
    return cancel;
  }
  ++running_;
  ++stats_.admitted;
  const int64_t waited_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            enqueued)
          .count();
  if (ctx != nullptr) ctx->set_queue_wait_micros(waited_micros);
  obs::Metrics().admission_queue_wait_micros->Record(
      static_cast<uint64_t>(waited_micros));
  return Ticket(this, waited_micros);
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.running = running_;
  snapshot.waiting = waiting_;
  return snapshot;
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release();
  controller_ = nullptr;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
  }
  cv_.notify_one();
}

}  // namespace fts
