#ifndef FTS_STORAGE_TABLE_STATISTICS_H_
#define FTS_STORAGE_TABLE_STATISTICS_H_

#include <vector>

#include "fts/storage/compare_op.h"
#include "fts/storage/table.h"
#include "fts/storage/value.h"

namespace fts {

// One chunk's zone-map bounds for a column, widened to double for the
// selectivity math.
struct ColumnZone {
  double min = 0.0;
  double max = 0.0;
  uint64_t row_count = 0;
};

// Per-column summary statistics used by the optimizer's predicate-reordering
// rule (Section V: "predicate reordering ... make[s] sure that predicates
// are evaluated ... in the most efficient order").
struct ColumnStatistics {
  // Min/max over all rows, widened to double. Exact.
  double min = 0.0;
  double max = 0.0;
  // Estimated number of distinct values. Exact for dictionary columns
  // (dictionary size); sample-based estimate for plain columns.
  double distinct_count = 0.0;
  uint64_t row_count = 0;
  // Per-chunk zone-map bounds, in chunk order — populated only when every
  // chunk of the column carries a valid zone map. EstimateSelectivity then
  // row-weights per-zone estimates instead of prorating over the single
  // global [min, max], which is dramatically tighter on clustered data
  // (a range predicate touching 2 of 16 disjoint chunk ranges estimates
  // ~2/16, not the ~full-range fraction the global bounds suggest).
  std::vector<ColumnZone> zones;
};

// Statistics for every column of a table.
class TableStatistics {
 public:
  // Computes statistics for `table`. Plain columns are sampled
  // (`sample_limit` rows max) for the distinct-count estimate; min/max are
  // exact.
  static TableStatistics Compute(const Table& table,
                                 size_t sample_limit = 1 << 16);

  const ColumnStatistics& column(size_t index) const;
  size_t column_count() const { return columns_.size(); }
  uint64_t row_count() const { return row_count_; }

  // Estimated fraction of rows satisfying (column `op` value), in [0, 1].
  // Uniform-distribution model: equality = 1/distinct, ranges prorated over
  // [min, max].
  double EstimateSelectivity(size_t column_index, CompareOp op,
                             const Value& value) const;

 private:
  std::vector<ColumnStatistics> columns_;
  uint64_t row_count_ = 0;
};

// Process-wide statistics cache. Tables are immutable, so statistics are
// computed once per table and reused by every query (the optimizer's
// reordering rule runs on each planning pass). Entries are keyed by table
// identity and dropped once the table is released.
std::shared_ptr<const TableStatistics> GetCachedStatistics(
    const TablePtr& table);

}  // namespace fts

#endif  // FTS_STORAGE_TABLE_STATISTICS_H_
