#include "fts/storage/table.h"

#include "fts/common/string_util.h"

namespace fts {

Table::Table(std::vector<ColumnDefinition> schema,
             std::vector<std::shared_ptr<const Chunk>> chunks)
    : schema_(std::move(schema)), chunks_(std::move(chunks)) {
  FTS_CHECK(!schema_.empty());
  for (const auto& chunk : chunks_) {
    FTS_CHECK(chunk != nullptr);
    FTS_CHECK(chunk->column_count() == schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      FTS_CHECK_MSG(chunk->column(c).data_type() == schema_[c].type,
                    schema_[c].name.c_str());
    }
    row_count_ += chunk->row_count();
  }
}

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
}

const ColumnDefinition& Table::column_definition(size_t index) const {
  FTS_CHECK(index < schema_.size());
  return schema_[index];
}

const Chunk& Table::chunk(ChunkId id) const {
  FTS_CHECK(id < chunks_.size());
  return *chunks_[id];
}

Value Table::GetValue(size_t column_index, RowId row) const {
  return chunk(row.chunk_id).column(column_index).GetValue(row.offset);
}

}  // namespace fts
