#ifndef FTS_STORAGE_TABLE_H_
#define FTS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/storage/chunk.h"
#include "fts/storage/data_type.h"
#include "fts/storage/pos_list.h"

namespace fts {

// Schema entry for one column.
struct ColumnDefinition {
  std::string name;
  DataType type = DataType::kInt32;

  friend bool operator==(const ColumnDefinition& a,
                         const ColumnDefinition& b) = default;
};

// An immutable column-major table: a schema plus a sequence of chunks.
// Construct through TableBuilder.
class Table {
 public:
  Table(std::vector<ColumnDefinition> schema,
        std::vector<std::shared_ptr<const Chunk>> chunks);

  const std::vector<ColumnDefinition>& schema() const { return schema_; }
  size_t column_count() const { return schema_.size(); }

  // Index of the column named `name`.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;
  const ColumnDefinition& column_definition(size_t index) const;

  size_t chunk_count() const { return chunks_.size(); }
  const Chunk& chunk(ChunkId id) const;

  uint64_t row_count() const { return row_count_; }

  // Boxed cell access for result materialization and tests.
  Value GetValue(size_t column_index, RowId row) const;

 private:
  std::vector<ColumnDefinition> schema_;
  std::vector<std::shared_ptr<const Chunk>> chunks_;
  uint64_t row_count_ = 0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace fts

#endif  // FTS_STORAGE_TABLE_H_
