#include "fts/storage/table_builder.h"

#include "fts/common/string_util.h"
#include "fts/obs/metrics.h"
#include "fts/simd/zone_map_builder.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/delta_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/for_column.h"
#include "fts/storage/rle_column.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

// Every chunk that passes through the builder gets zone maps, so all
// ingest paths (AppendRow, AddChunk, CsvLoader, DataGenerator) produce
// prunable tables without opting in.
std::vector<ZoneMap> BuildZoneMaps(const std::vector<ColumnPtr>& columns) {
  std::vector<ZoneMap> zones;
  zones.reserve(columns.size());
  for (const auto& column : columns) {
    zones.push_back(BuildColumnZoneMap(*column));
  }
  return zones;
}

}  // namespace

TableBuilder::TableBuilder(std::vector<ColumnDefinition> schema,
                           size_t target_chunk_size)
    : schema_(std::move(schema)), target_chunk_size_(target_chunk_size) {
  FTS_CHECK(!schema_.empty());
  FTS_CHECK(target_chunk_size_ > 0);
  encodings_.assign(schema_.size(), ColumnEncoding::kPlain);
  ResetBuffers();
}

void TableBuilder::SetEncoding(size_t column_index, ColumnEncoding encoding) {
  FTS_CHECK(column_index < schema_.size());
  encodings_[column_index] = encoding;
}

void TableBuilder::SetDictionaryEncoded(size_t column_index, bool encoded) {
  SetEncoding(column_index, encoded ? ColumnEncoding::kDictionary
                                    : ColumnEncoding::kPlain);
}

void TableBuilder::SetBitPacked(size_t column_index, bool packed) {
  SetEncoding(column_index, packed ? ColumnEncoding::kBitPacked
                                   : ColumnEncoding::kPlain);
}

void TableBuilder::ResetBuffers() {
  buffers_.clear();
  buffers_.reserve(schema_.size());
  for (const auto& def : schema_) {
    DispatchDataType(def.type, [&](auto tag) {
      using T = decltype(tag);
      buffers_.emplace_back(AlignedVector<T>{});
    });
  }
}

size_t TableBuilder::BufferedRows() const {
  return std::visit([](const auto& buffer) { return buffer.size(); },
                    buffers_.front());
}

Status TableBuilder::AppendRow(const std::vector<Value>& values) {
  if (values.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu columns",
                  values.size(), schema_.size()));
  }
  // Validate all casts before mutating any buffer so a failed row is a
  // no-op.
  std::vector<Value> casted(values.size());
  for (size_t c = 0; c < values.size(); ++c) {
    FTS_ASSIGN_OR_RETURN(casted[c], CastValue(values[c], schema_[c].type));
  }
  for (size_t c = 0; c < casted.size(); ++c) {
    std::visit(
        [&](auto& buffer) {
          using T = typename std::decay_t<decltype(buffer)>::value_type;
          buffer.push_back(ValueAs<T>(casted[c]));
        },
        buffers_[c]);
  }
  if (BufferedRows() >= target_chunk_size_) FlushBufferedChunk();
  return Status::Ok();
}

void TableBuilder::FlushBufferedChunk() {
  if (BufferedRows() == 0) return;
  std::vector<ColumnPtr> columns;
  columns.reserve(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    std::visit(
        [&](auto& buffer) {
          using T = typename std::decay_t<decltype(buffer)>::value_type;
          // Per-chunk encoding choice: FoR/delta encoders report whether
          // this chunk's data fits (and only exist for integral types);
          // a chunk that does not fit falls back to plain.
          switch (encodings_[c]) {
            case ColumnEncoding::kBitPacked:
              columns.push_back(std::make_shared<BitPackedColumn<T>>(
                  BitPackedColumn<T>::FromValues(buffer)));
              return;
            case ColumnEncoding::kDictionary:
              columns.push_back(std::make_shared<DictionaryColumn<T>>(
                  DictionaryColumn<T>::FromValues(buffer)));
              return;
            case ColumnEncoding::kRle:
              columns.push_back(std::make_shared<RleColumn<T>>(
                  RleColumn<T>::FromValues(buffer)));
              return;
            case ColumnEncoding::kFor:
              if constexpr (std::is_integral_v<T>) {
                if (auto encoded = ForColumn<T>::TryFromValues(buffer)) {
                  columns.push_back(std::make_shared<ForColumn<T>>(
                      std::move(*encoded)));
                  return;
                }
              }
              break;
            case ColumnEncoding::kDelta:
              if constexpr (std::is_integral_v<T>) {
                if (auto encoded = DeltaColumn<T>::TryFromValues(buffer)) {
                  columns.push_back(std::make_shared<DeltaColumn<T>>(
                      std::move(*encoded)));
                  return;
                }
              }
              break;
            case ColumnEncoding::kPlain:
              break;
          }
          columns.push_back(
              std::make_shared<ValueColumn<T>>(std::move(buffer)));
        },
        buffers_[c]);
  }
  std::vector<ZoneMap> zones = BuildZoneMaps(columns);
  const size_t rows = columns.front()->size();
  chunks_.push_back(
      std::make_shared<Chunk>(std::move(columns), std::move(zones)));
  const obs::EngineMetrics& metrics = obs::Metrics();
  metrics.rows_ingested_total->Add(rows);
  metrics.chunks_built_total->Increment();
  ResetBuffers();
}

Status TableBuilder::AddChunk(std::vector<ColumnPtr> columns) {
  if (columns.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("chunk has %zu columns, schema has %zu", columns.size(),
                  schema_.size()));
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == nullptr) {
      return Status::InvalidArgument("null column in chunk");
    }
    if (columns[c]->data_type() != schema_[c].type) {
      return Status::InvalidArgument(StrFormat(
          "column %zu has type %s, schema expects %s", c,
          DataTypeToString(columns[c]->data_type()),
          DataTypeToString(schema_[c].type)));
    }
  }
  FlushBufferedChunk();
  std::vector<ZoneMap> zones = BuildZoneMaps(columns);
  const size_t rows = columns.front()->size();
  chunks_.push_back(
      std::make_shared<Chunk>(std::move(columns), std::move(zones)));
  const obs::EngineMetrics& metrics = obs::Metrics();
  metrics.rows_ingested_total->Add(rows);
  metrics.chunks_built_total->Increment();
  return Status::Ok();
}

TablePtr TableBuilder::Build() {
  FlushBufferedChunk();
  auto table = std::make_shared<Table>(schema_, std::move(chunks_));
  chunks_.clear();
  return table;
}

}  // namespace fts
