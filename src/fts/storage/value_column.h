#ifndef FTS_STORAGE_VALUE_COLUMN_H_
#define FTS_STORAGE_VALUE_COLUMN_H_

#include <utility>

#include "fts/common/aligned_buffer.h"
#include "fts/storage/column.h"

namespace fts {

// Plain (unencoded) column: contiguous, 64-byte-aligned array of T.
// This is the layout the paper's Fig. 3 scans directly.
template <typename T>
class ValueColumn final : public BaseColumn {
 public:
  explicit ValueColumn(AlignedVector<T> values)
      : values_(std::move(values)) {}

  size_t size() const override { return values_.size(); }
  DataType data_type() const override { return TypeTraits<T>::kType; }
  ColumnEncoding encoding() const override { return ColumnEncoding::kPlain; }
  const void* scan_data() const override { return values_.data(); }
  DataType scan_type() const override { return TypeTraits<T>::kType; }
  Value GetValue(size_t row) const override { return values_[row]; }

  const AlignedVector<T>& values() const { return values_; }
  const T* data() const { return values_.data(); }

 private:
  AlignedVector<T> values_;
};

}  // namespace fts

#endif  // FTS_STORAGE_VALUE_COLUMN_H_
