#ifndef FTS_STORAGE_TABLE_BUILDER_H_
#define FTS_STORAGE_TABLE_BUILDER_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/status.h"
#include "fts/storage/column.h"
#include "fts/storage/table.h"
#include "fts/storage/value.h"

namespace fts {

// Default number of rows per chunk when appending row-wise.
inline constexpr size_t kDefaultChunkSize = 1 << 20;

// Builds immutable Tables. Two usage modes:
//
//  1. Row-wise: AppendRow() buffers values and cuts chunks at
//     `target_chunk_size` rows. Convenient for examples and tests.
//  2. Column-wise bulk: AddChunk() attaches pre-built columns directly —
//     the zero-copy path used by the benchmark data generator.
//
// Columns can be marked for dictionary or bit-packed encoding; row-wise
// chunks then store a DictionaryColumn / BitPackedColumn instead of a
// ValueColumn.
class TableBuilder {
 public:
  explicit TableBuilder(std::vector<ColumnDefinition> schema,
                        size_t target_chunk_size = kDefaultChunkSize);

  // Requests an encoding for `column_index` in row-wise chunks. The
  // request is per-chunk best-effort: a chunk whose data cannot carry the
  // encoding (bit-packed/FoR needing > kMaxPackedBits, delta diffs wider
  // than kMaxDeltaBits, FoR/delta on float columns) falls back to plain
  // for that chunk only. RLE always succeeds.
  void SetEncoding(size_t column_index, ColumnEncoding encoding);

  // Marks `column_index` to be dictionary-encoded in row-wise chunks.
  void SetDictionaryEncoded(size_t column_index, bool encoded = true);

  // Marks `column_index` to be bit-packed (null-suppressed) in row-wise
  // chunks. Overrides SetDictionaryEncoded for the same column.
  void SetBitPacked(size_t column_index, bool packed = true);

  // Appends one row; `values` must match the schema arity and each value
  // must be exactly representable in the column type.
  Status AppendRow(const std::vector<Value>& values);

  // Attaches a fully-built chunk (bulk path). Column types must match the
  // schema. Any buffered row-wise data is flushed first to preserve order.
  Status AddChunk(std::vector<ColumnPtr> columns);

  // Finalizes and returns the table. The builder is left empty and can be
  // reused for another table with the same schema.
  TablePtr Build();

 private:
  using ColumnBuffer =
      std::variant<AlignedVector<int8_t>, AlignedVector<int16_t>,
                   AlignedVector<int32_t>, AlignedVector<int64_t>,
                   AlignedVector<uint8_t>, AlignedVector<uint16_t>,
                   AlignedVector<uint32_t>, AlignedVector<uint64_t>,
                   AlignedVector<float>, AlignedVector<double>>;

  void ResetBuffers();
  void FlushBufferedChunk();
  size_t BufferedRows() const;

  std::vector<ColumnDefinition> schema_;
  size_t target_chunk_size_;
  std::vector<ColumnEncoding> encodings_;
  std::vector<ColumnBuffer> buffers_;
  std::vector<std::shared_ptr<const Chunk>> chunks_;
};

}  // namespace fts

#endif  // FTS_STORAGE_TABLE_BUILDER_H_
