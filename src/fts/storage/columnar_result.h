#ifndef FTS_STORAGE_COLUMNAR_RESULT_H_
#define FTS_STORAGE_COLUMNAR_RESULT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/storage/data_type.h"
#include "fts/storage/value.h"

namespace fts {

// Late-materialization query result: one dense typed vector per projected
// column instead of boxed `std::vector<Value>` rows. The batch-gather
// kernels write straight into these buffers (DESIGN.md §16); `Value`
// boxing is deferred to the API/shell boundary via ValueAt — a result
// that is only counted, aggregated further, or sliced by LIMIT never
// boxes the rows it drops.
//
// Columns are raw byte buffers tagged with their DataType; the element
// width is DataTypeSize(type). Buffers are 64-byte aligned so the gather
// kernels' masked stores land on full cache lines.
class ColumnarResult {
 public:
  ColumnarResult() = default;

  // Declares a column. Call once per projected column before SetRowCount.
  void AddColumn(std::string name, DataType type) {
    Column column;
    column.name = std::move(name);
    column.type = type;
    column.element_size = DataTypeSize(type);
    columns_.push_back(std::move(column));
  }

  // Sizes every column buffer for `rows` elements (uninitialized — the
  // gatherer fully assigns each slice it hands out).
  void SetRowCount(size_t rows) {
    row_count_ = rows;
    for (Column& column : columns_) {
      column.bytes.resize(rows * column.element_size);
    }
  }

  // Drops all rows past `rows` (LIMIT application after top-K selection).
  void TruncateRows(size_t rows) {
    if (rows >= row_count_) return;
    row_count_ = rows;
    for (Column& column : columns_) {
      column.bytes.resize(rows * column.element_size);
    }
  }

  size_t row_count() const { return row_count_; }
  size_t column_count() const { return columns_.size(); }
  const std::string& column_name(size_t c) const { return columns_[c].name; }
  DataType column_type(size_t c) const { return columns_[c].type; }

  // Raw buffer access for the gather kernels. `MutableData(c, offset)`
  // is the address of row `offset` — per-chunk gathers write disjoint
  // row slices of the same buffer concurrently.
  void* MutableData(size_t c, size_t row_offset = 0) {
    Column& column = columns_[c];
    return column.bytes.data() + row_offset * column.element_size;
  }
  const void* Data(size_t c, size_t row_offset = 0) const {
    const Column& column = columns_[c];
    return column.bytes.data() + row_offset * column.element_size;
  }

  template <typename T>
  const T* TypedData(size_t c) const {
    FTS_DCHECK(TypeTraits<T>::kType == columns_[c].type);
    return reinterpret_cast<const T*>(columns_[c].bytes.data());
  }
  template <typename T>
  T* MutableTypedData(size_t c) {
    FTS_DCHECK(TypeTraits<T>::kType == columns_[c].type);
    return reinterpret_cast<T*>(columns_[c].bytes.data());
  }

  // Boxes one cell — the deferred materialization point. O(1), no state.
  Value ValueAt(size_t row, size_t c) const {
    FTS_DCHECK(row < row_count_ && c < columns_.size());
    const Column& column = columns_[c];
    return DispatchDataType(column.type, [&](auto tag) -> Value {
      using T = decltype(tag);
      T value;
      std::memcpy(&value, column.bytes.data() + row * sizeof(T), sizeof(T));
      return Value(value);
    });
  }

  // Boxes one row (shell rendering, tests).
  std::vector<Value> MaterializeRow(size_t row) const {
    std::vector<Value> out;
    out.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      out.push_back(ValueAt(row, c));
    }
    return out;
  }

  // Reorders every column to `perm` order: row i of the result is row
  // perm[i] of the current contents (ORDER BY without LIMIT; the top-K
  // path gathers directly in output order instead).
  void ApplyPermutation(const std::vector<uint32_t>& perm) {
    FTS_CHECK(perm.size() == row_count_);
    for (Column& column : columns_) {
      AlignedVector<uint8_t> reordered(column.bytes.size());
      const size_t width = column.element_size;
      for (size_t i = 0; i < perm.size(); ++i) {
        std::memcpy(reordered.data() + i * width,
                    column.bytes.data() + static_cast<size_t>(perm[i]) * width,
                    width);
      }
      column.bytes = std::move(reordered);
    }
  }

  void Clear() {
    columns_.clear();
    row_count_ = 0;
  }

 private:
  struct Column {
    std::string name;
    DataType type = DataType::kInt32;
    size_t element_size = 4;
    AlignedVector<uint8_t> bytes;
  };

  std::vector<Column> columns_;
  size_t row_count_ = 0;
};

}  // namespace fts

#endif  // FTS_STORAGE_COLUMNAR_RESULT_H_
