#ifndef FTS_STORAGE_VALUE_H_
#define FTS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "fts/common/status.h"
#include "fts/storage/data_type.h"

namespace fts {

// A dynamically-typed scalar covering exactly the ten supported column
// types, plus SQL NULL (std::monostate, deliberately last so default
// construction still yields int8_t{0}). Used at API boundaries (SQL
// literals, predicate search values, aggregate results); hot loops always
// work on unboxed T. Columns themselves remain NULL-free: NULL is only
// produced by aggregate finalization over zero matched rows (MIN/MAX/AVG
// per SQL semantics).
using Value = std::variant<int8_t, int16_t, int32_t, int64_t, uint8_t,
                           uint16_t, uint32_t, uint64_t, float, double,
                           std::monostate>;

// True when `value` holds SQL NULL.
inline bool IsNull(const Value& value) {
  return std::holds_alternative<std::monostate>(value);
}

// A NULL-holding Value (Value{} default-constructs int8_t, not NULL).
inline Value NullValue() { return Value(std::monostate{}); }

// The DataType tag of the alternative currently held. Aborts on NULL
// (NULL has no column type; callers must check IsNull first).
DataType ValueType(const Value& value);

// Renders the value for plan descriptions and test failure messages.
// NULL renders as "NULL".
std::string ValueToString(const Value& value);

// Numeric cast of `value` to the C++ type `T` (static_cast semantics).
// NULL yields T{} — callers that care must check IsNull first.
template <typename T>
T ValueAs(const Value& value) {
  return std::visit(
      [](auto v) -> T {
        if constexpr (std::is_same_v<decltype(v), std::monostate>) {
          return T{};
        } else {
          return static_cast<T>(v);
        }
      },
      value);
}

// Casts `value` to `target` type, e.g. when a SQL literal "5" meets an
// int64 column. Fails when the value cannot be represented exactly
// (overflow or fractional part lost on an integer target).
StatusOr<Value> CastValue(const Value& value, DataType target);

// Parses a SQL numeric literal into the widest matching type
// (int64 or float64); negative handled by the parser's unary minus.
StatusOr<Value> ParseNumericLiteral(const std::string& text);

}  // namespace fts

#endif  // FTS_STORAGE_VALUE_H_
