#ifndef FTS_STORAGE_VALUE_H_
#define FTS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "fts/common/status.h"
#include "fts/storage/data_type.h"

namespace fts {

// A dynamically-typed scalar covering exactly the ten supported column
// types. Used at API boundaries (SQL literals, predicate search values);
// hot loops always work on unboxed T.
using Value = std::variant<int8_t, int16_t, int32_t, int64_t, uint8_t,
                           uint16_t, uint32_t, uint64_t, float, double>;

// The DataType tag of the alternative currently held.
DataType ValueType(const Value& value);

// Renders the value for plan descriptions and test failure messages.
std::string ValueToString(const Value& value);

// Numeric cast of `value` to the C++ type `T` (static_cast semantics).
template <typename T>
T ValueAs(const Value& value) {
  return std::visit([](auto v) { return static_cast<T>(v); }, value);
}

// Casts `value` to `target` type, e.g. when a SQL literal "5" meets an
// int64 column. Fails when the value cannot be represented exactly
// (overflow or fractional part lost on an integer target).
StatusOr<Value> CastValue(const Value& value, DataType target);

// Parses a SQL numeric literal into the widest matching type
// (int64 or float64); negative handled by the parser's unary minus.
StatusOr<Value> ParseNumericLiteral(const std::string& text);

}  // namespace fts

#endif  // FTS_STORAGE_VALUE_H_
