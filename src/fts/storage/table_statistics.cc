#include "fts/storage/table_statistics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <unordered_set>

#include "fts/common/macros.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/value_column.h"

namespace fts {
namespace {

// Accumulates stats for one column across chunks.
struct Accumulator {
  bool any = false;
  double min = 0.0;
  double max = 0.0;
  std::unordered_set<double> sampled_distinct;
  uint64_t sampled_rows = 0;
  uint64_t exact_distinct_hint = 0;  // From dictionaries; max over chunks.
  bool all_dictionary = true;

  void AddValue(double v) {
    if (!any) {
      min = v;
      max = v;
      any = true;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
  }
};

template <typename T>
void ScanPlainColumn(const ValueColumn<T>& column, size_t sample_limit,
                     Accumulator* acc) {
  const auto& values = column.values();
  for (const T& v : values) acc->AddValue(static_cast<double>(v));
  // Evenly-strided sample for the distinct estimate.
  const size_t n = values.size();
  const size_t stride = std::max<size_t>(1, n / std::max<size_t>(1, sample_limit));
  for (size_t i = 0; i < n; i += stride) {
    acc->sampled_distinct.insert(static_cast<double>(values[i]));
    ++acc->sampled_rows;
  }
  acc->all_dictionary = false;
}

// Dictionary-backed encodings (kDictionary, kBitPacked) expose min/max and
// exact distinct counts straight from the sorted dictionary.
template <typename T>
void ScanSortedDictionary(const std::vector<T>& dict, Accumulator* acc) {
  if (!dict.empty()) {
    acc->AddValue(static_cast<double>(dict.front()));
    acc->AddValue(static_cast<double>(dict.back()));
  }
  acc->exact_distinct_hint =
      std::max<uint64_t>(acc->exact_distinct_hint, dict.size());
}

}  // namespace

TableStatistics TableStatistics::Compute(const Table& table,
                                         size_t sample_limit) {
  TableStatistics stats;
  stats.row_count_ = table.row_count();
  stats.columns_.resize(table.column_count());

  for (size_t c = 0; c < table.column_count(); ++c) {
    Accumulator acc;
    for (ChunkId chunk_id = 0; chunk_id < table.chunk_count(); ++chunk_id) {
      const BaseColumn& column = table.chunk(chunk_id).column(c);
      DispatchDataType(column.data_type(), [&](auto tag) {
        using T = decltype(tag);
        switch (column.encoding()) {
          case ColumnEncoding::kDictionary:
            ScanSortedDictionary(
                static_cast<const DictionaryColumn<T>&>(column)
                    .dictionary(),
                &acc);
            break;
          case ColumnEncoding::kBitPacked:
            ScanSortedDictionary(
                static_cast<const BitPackedColumn<T>&>(column).dictionary(),
                &acc);
            break;
          case ColumnEncoding::kPlain:
            ScanPlainColumn(static_cast<const ValueColumn<T>&>(column),
                            sample_limit, &acc);
            break;
        }
      });
    }
    ColumnStatistics& out = stats.columns_[c];
    out.row_count = table.row_count();
    out.min = acc.min;
    out.max = acc.max;
    // Zone list for the zone-weighted selectivity model; all-or-nothing so
    // the estimate never mixes bounded and unbounded chunks.
    out.zones.reserve(table.chunk_count());
    for (ChunkId chunk_id = 0; chunk_id < table.chunk_count(); ++chunk_id) {
      const ZoneMap* zone = table.chunk(chunk_id).zone_map(c);
      if (zone == nullptr) {
        out.zones.clear();
        break;
      }
      out.zones.push_back({ValueAs<double>(zone->min),
                           ValueAs<double>(zone->max), zone->row_count});
    }
    if (acc.all_dictionary) {
      out.distinct_count = static_cast<double>(acc.exact_distinct_hint);
    } else if (acc.sampled_rows > 0) {
      // Scale the sampled distinct count linearly, capped by the row count.
      // A deliberate simple estimator; good enough for ordering predicates.
      const double scale = static_cast<double>(table.row_count()) /
                           static_cast<double>(acc.sampled_rows);
      out.distinct_count =
          std::min(static_cast<double>(table.row_count()),
                   static_cast<double>(acc.sampled_distinct.size()) *
                       std::sqrt(scale));
    }
    out.distinct_count = std::max(out.distinct_count, 1.0);
  }
  return stats;
}

const ColumnStatistics& TableStatistics::column(size_t index) const {
  FTS_CHECK(index < columns_.size());
  return columns_[index];
}

namespace {

// Uniform-distribution selectivity over one [min, max] interval. The
// distinct count is the column-global estimate; within a zone it only
// feeds the 1/distinct equality terms, where a modest overestimate is
// harmless for predicate ordering.
double SelectivityFromBounds(double min, double max, double distinct,
                             CompareOp op, double v) {
  const double width = max - min;
  auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };

  switch (op) {
    case CompareOp::kEq:
      if (v < min || v > max) return 0.0;
      return clamp01(1.0 / distinct);
    case CompareOp::kNe:
      if (v < min || v > max) return 1.0;
      return clamp01(1.0 - 1.0 / distinct);
    case CompareOp::kLt:
      if (v <= min) return 0.0;
      if (v > max) return 1.0;
      if (width <= 0.0) return 0.0;
      return clamp01((v - min) / width);
    case CompareOp::kLe:
      if (v < min) return 0.0;
      if (v >= max) return 1.0;
      if (width <= 0.0) return 1.0;
      return clamp01((v - min) / width + 1.0 / distinct);
    case CompareOp::kGt:
      if (v >= max) return 0.0;
      if (v < min) return 1.0;
      if (width <= 0.0) return 0.0;
      return clamp01((max - v) / width);
    case CompareOp::kGe:
      if (v > max) return 0.0;
      if (v <= min) return 1.0;
      if (width <= 0.0) return 1.0;
      return clamp01((max - v) / width + 1.0 / distinct);
  }
  __builtin_unreachable();
}

}  // namespace

double TableStatistics::EstimateSelectivity(size_t column_index, CompareOp op,
                                            const Value& value) const {
  const ColumnStatistics& stats = column(column_index);
  if (stats.row_count == 0) return 0.0;
  const double v = ValueAs<double>(value);

  // Zone-weighted model: estimate per chunk from its own bounds and weight
  // by its rows. On clustered data the zones are narrow and disjoint, so
  // chunks the predicate cannot touch contribute exactly 0 — far tighter
  // than prorating over the global [min, max].
  if (!stats.zones.empty()) {
    double matched_rows = 0.0;
    uint64_t total_rows = 0;
    for (const ColumnZone& zone : stats.zones) {
      matched_rows += SelectivityFromBounds(zone.min, zone.max,
                                            stats.distinct_count, op, v) *
                      static_cast<double>(zone.row_count);
      total_rows += zone.row_count;
    }
    if (total_rows > 0) {
      return std::clamp(matched_rows / static_cast<double>(total_rows), 0.0,
                        1.0);
    }
  }
  return SelectivityFromBounds(stats.min, stats.max, stats.distinct_count, op,
                               v);
}

std::shared_ptr<const TableStatistics> GetCachedStatistics(
    const TablePtr& table) {
  FTS_CHECK(table != nullptr);
  struct Entry {
    std::weak_ptr<const Table> guard;
    std::shared_ptr<const TableStatistics> statistics;
  };
  // Function-local static reference, never destroyed (style guide:
  // static storage duration objects must be trivially destructible).
  static std::mutex& mutex = *new std::mutex();
  static std::map<const Table*, Entry>& cache =
      *new std::map<const Table*, Entry>();

  std::lock_guard<std::mutex> lock(mutex);
  // Opportunistically drop entries whose table died (address reuse would
  // otherwise serve stale statistics).
  for (auto it = cache.begin(); it != cache.end();) {
    it = it->second.guard.expired() ? cache.erase(it) : std::next(it);
  }
  const auto it = cache.find(table.get());
  if (it != cache.end()) return it->second.statistics;
  auto statistics =
      std::make_shared<const TableStatistics>(TableStatistics::Compute(*table));
  cache[table.get()] = Entry{table, statistics};
  return statistics;
}

}  // namespace fts
