#ifndef FTS_STORAGE_DATA_TYPE_H_
#define FTS_STORAGE_DATA_TYPE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fts {

// The ten fixed-size value types the paper's Section V enumerates: signed
// and unsigned integers of 1/2/4/8 bytes plus float and double.
enum class DataType : uint8_t {
  kInt8 = 0,
  kInt16,
  kInt32,
  kInt64,
  kUInt8,
  kUInt16,
  kUInt32,
  kUInt64,
  kFloat32,
  kFloat64,
};

inline constexpr int kNumDataTypes = 10;

// Stable lowercase names used by the SQL frontend and the JIT code
// generator, e.g. "int32".
const char* DataTypeToString(DataType type);

// Parses the names produced by DataTypeToString. Aborts on unknown names;
// use TryParseDataType for user input.
DataType DataTypeFromString(const std::string& name);
bool TryParseDataType(const std::string& name, DataType* out);

size_t DataTypeSize(DataType type);
bool DataTypeIsSigned(DataType type);
bool DataTypeIsFloat(DataType type);
bool DataTypeIsInteger(DataType type);

// Maps C++ types to their DataType tag. Specialized for the ten types.
template <typename T>
struct TypeTraits;

template <>
struct TypeTraits<int8_t> {
  static constexpr DataType kType = DataType::kInt8;
  static constexpr const char* kName = "int8";
};
template <>
struct TypeTraits<int16_t> {
  static constexpr DataType kType = DataType::kInt16;
  static constexpr const char* kName = "int16";
};
template <>
struct TypeTraits<int32_t> {
  static constexpr DataType kType = DataType::kInt32;
  static constexpr const char* kName = "int32";
};
template <>
struct TypeTraits<int64_t> {
  static constexpr DataType kType = DataType::kInt64;
  static constexpr const char* kName = "int64";
};
template <>
struct TypeTraits<uint8_t> {
  static constexpr DataType kType = DataType::kUInt8;
  static constexpr const char* kName = "uint8";
};
template <>
struct TypeTraits<uint16_t> {
  static constexpr DataType kType = DataType::kUInt16;
  static constexpr const char* kName = "uint16";
};
template <>
struct TypeTraits<uint32_t> {
  static constexpr DataType kType = DataType::kUInt32;
  static constexpr const char* kName = "uint32";
};
template <>
struct TypeTraits<uint64_t> {
  static constexpr DataType kType = DataType::kUInt64;
  static constexpr const char* kName = "uint64";
};
template <>
struct TypeTraits<float> {
  static constexpr DataType kType = DataType::kFloat32;
  static constexpr const char* kName = "float32";
};
template <>
struct TypeTraits<double> {
  static constexpr DataType kType = DataType::kFloat64;
  static constexpr const char* kName = "float64";
};

// Invokes `fn` with a value of the C++ type corresponding to `type`,
// i.e. fn(T{}). Central dispatch point from runtime DataType tags into
// templated code.
template <typename Fn>
decltype(auto) DispatchDataType(DataType type, Fn&& fn) {
  switch (type) {
    case DataType::kInt8:
      return fn(int8_t{});
    case DataType::kInt16:
      return fn(int16_t{});
    case DataType::kInt32:
      return fn(int32_t{});
    case DataType::kInt64:
      return fn(int64_t{});
    case DataType::kUInt8:
      return fn(uint8_t{});
    case DataType::kUInt16:
      return fn(uint16_t{});
    case DataType::kUInt32:
      return fn(uint32_t{});
    case DataType::kUInt64:
      return fn(uint64_t{});
    case DataType::kFloat32:
      return fn(float{});
    case DataType::kFloat64:
      return fn(double{});
  }
  __builtin_unreachable();
}

}  // namespace fts

#endif  // FTS_STORAGE_DATA_TYPE_H_
