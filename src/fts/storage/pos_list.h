#ifndef FTS_STORAGE_POS_LIST_H_
#define FTS_STORAGE_POS_LIST_H_

#include <cstdint>
#include <vector>

#include "fts/common/aligned_buffer.h"

namespace fts {

// Row offset within a chunk. 32 bits, matching the epi32 position lists the
// fused scan keeps inside AVX registers (Fig. 3 of the paper).
using ChunkOffset = uint32_t;

// Chunk index within a table.
using ChunkId = uint32_t;

// A dense, aligned list of matching chunk offsets — the output of a scan
// over one chunk and the input of the next operator.
using PosList = AlignedVector<ChunkOffset>;

// Fully-qualified row address (Hyrise-style RowID).
struct RowId {
  ChunkId chunk_id = 0;
  ChunkOffset offset = 0;

  friend bool operator==(const RowId& a, const RowId& b) {
    return a.chunk_id == b.chunk_id && a.offset == b.offset;
  }
  friend auto operator<=>(const RowId& a, const RowId& b) = default;
};

// Scan result for one chunk.
struct ChunkMatches {
  ChunkId chunk_id = 0;
  PosList positions;
};

// Scan result for a whole table: per-chunk position lists, in chunk order.
struct TableMatches {
  std::vector<ChunkMatches> chunks;

  // Total number of matching rows across all chunks.
  uint64_t TotalMatches() const {
    uint64_t total = 0;
    for (const auto& chunk : chunks) total += chunk.positions.size();
    return total;
  }
};

}  // namespace fts

#endif  // FTS_STORAGE_POS_LIST_H_
