#ifndef FTS_STORAGE_CHUNK_H_
#define FTS_STORAGE_CHUNK_H_

#include <utility>
#include <vector>

#include "fts/common/macros.h"
#include "fts/storage/column.h"
#include "fts/storage/zone_map.h"

namespace fts {

// One horizontal partition of a table (paper footnote 1: tables "can be
// horizontally partitioned into chunks or morsels"). All columns of a chunk
// have the same row count. Chunks are immutable after construction.
class Chunk {
 public:
  explicit Chunk(std::vector<ColumnPtr> columns)
      : Chunk(std::move(columns), {}) {}

  // Zone maps are per column, parallel to `columns`; pass an empty vector
  // for a chunk without them (scans then simply read every row).
  Chunk(std::vector<ColumnPtr> columns, std::vector<ZoneMap> zone_maps)
      : columns_(std::move(columns)), zone_maps_(std::move(zone_maps)) {
    FTS_CHECK(!columns_.empty());
    FTS_CHECK(zone_maps_.empty() || zone_maps_.size() == columns_.size());
    for (const auto& column : columns_) {
      FTS_CHECK(column != nullptr);
      FTS_CHECK(column->size() == columns_.front()->size());
    }
  }

  size_t row_count() const { return columns_.front()->size(); }
  size_t column_count() const { return columns_.size(); }

  const BaseColumn& column(size_t index) const {
    FTS_CHECK(index < columns_.size());
    return *columns_[index];
  }

  ColumnPtr column_ptr(size_t index) const {
    FTS_CHECK(index < columns_.size());
    return columns_[index];
  }

  // Zone map for one column, or nullptr when the chunk carries none for it
  // (hand-built chunk, or bounds unusable — e.g. NaN in a float column).
  const ZoneMap* zone_map(size_t index) const {
    FTS_CHECK(index < columns_.size());
    if (index >= zone_maps_.size()) return nullptr;
    const ZoneMap& zone = zone_maps_[index];
    return zone.valid ? &zone : nullptr;
  }

 private:
  std::vector<ColumnPtr> columns_;
  std::vector<ZoneMap> zone_maps_;
};

}  // namespace fts

#endif  // FTS_STORAGE_CHUNK_H_
