#ifndef FTS_STORAGE_CHUNK_H_
#define FTS_STORAGE_CHUNK_H_

#include <vector>

#include "fts/common/macros.h"
#include "fts/storage/column.h"

namespace fts {

// One horizontal partition of a table (paper footnote 1: tables "can be
// horizontally partitioned into chunks or morsels"). All columns of a chunk
// have the same row count. Chunks are immutable after construction.
class Chunk {
 public:
  explicit Chunk(std::vector<ColumnPtr> columns)
      : columns_(std::move(columns)) {
    FTS_CHECK(!columns_.empty());
    for (const auto& column : columns_) {
      FTS_CHECK(column != nullptr);
      FTS_CHECK(column->size() == columns_.front()->size());
    }
  }

  size_t row_count() const { return columns_.front()->size(); }
  size_t column_count() const { return columns_.size(); }

  const BaseColumn& column(size_t index) const {
    FTS_CHECK(index < columns_.size());
    return *columns_[index];
  }

  ColumnPtr column_ptr(size_t index) const {
    FTS_CHECK(index < columns_.size());
    return columns_[index];
  }

 private:
  std::vector<ColumnPtr> columns_;
};

}  // namespace fts

#endif  // FTS_STORAGE_CHUNK_H_
