#include "fts/storage/value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "fts/common/macros.h"
#include "fts/common/string_util.h"

namespace fts {
namespace {

// Exact-representability check for a numeric cast from `from` to To.
template <typename To, typename From>
bool RepresentableAs(From from) {
  const To converted = static_cast<To>(from);
  // Round-trip check catches both overflow wraparound and fraction loss.
  // Comparing in long double keeps int64<->double comparisons exact enough
  // for the value ranges used here.
  return static_cast<long double>(converted) ==
         static_cast<long double>(from);
}

}  // namespace

DataType ValueType(const Value& value) {
  FTS_CHECK_MSG(!IsNull(value), "NULL has no DataType");
  return std::visit(
      [](auto v) -> DataType {
        using T = decltype(v);
        if constexpr (std::is_same_v<T, std::monostate>) {
          __builtin_unreachable();  // Guarded by the FTS_CHECK above.
        } else {
          return TypeTraits<T>::kType;
        }
      },
      value);
}

std::string ValueToString(const Value& value) {
  return std::visit(
      [](auto v) -> std::string {
        using T = decltype(v);
        if constexpr (std::is_same_v<T, std::monostate>) {
          return "NULL";
        } else if constexpr (std::is_floating_point_v<T>) {
          return StrFormat("%g", static_cast<double>(v));
        } else if constexpr (std::is_signed_v<T>) {
          return StrFormat("%lld", static_cast<long long>(v));
        } else {
          return StrFormat("%llu", static_cast<unsigned long long>(v));
        }
      },
      value);
}

StatusOr<Value> CastValue(const Value& value, DataType target) {
  return std::visit(
      [&](auto v) -> StatusOr<Value> {
        if constexpr (std::is_same_v<decltype(v), std::monostate>) {
          return Value(v);  // NULL survives any cast unchanged.
        } else {
          return DispatchDataType(
              target, [&](auto target_tag) -> StatusOr<Value> {
                using To = decltype(target_tag);
                if (!RepresentableAs<To>(v)) {
                  return Status::OutOfRange(
                      StrFormat("value %s not representable as %s",
                                ValueToString(Value(v)).c_str(),
                                DataTypeToString(target)));
                }
                return Value(static_cast<To>(v));
              });
        }
      },
      value);
}

StatusOr<Value> ParseNumericLiteral(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty numeric literal");
  }
  const bool looks_float = text.find_first_of(".eE") != std::string::npos;
  errno = 0;
  char* end = nullptr;
  if (!looks_float) {
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (errno == 0 && end == text.c_str() + text.size()) {
      return Value(static_cast<int64_t>(parsed));
    }
    // Fall through: may be out of int64 range or malformed; retry as float.
    errno = 0;
  }
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return Status::InvalidArgument(
        StrFormat("malformed numeric literal '%s'", text.c_str()));
  }
  return Value(parsed);
}

}  // namespace fts
