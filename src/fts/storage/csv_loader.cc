#include "fts/storage/csv_loader.h"

#include <fstream>
#include <sstream>

#include "fts/common/string_util.h"

namespace fts {
namespace {

StatusOr<std::vector<ColumnDefinition>> ParseTypedHeader(
    const std::string& line, char delimiter) {
  std::vector<ColumnDefinition> schema;
  for (const std::string& field : Split(line, delimiter)) {
    const auto parts = Split(std::string(Trim(field)), ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument(StrFormat(
          "header field '%s' is not 'name:type'", field.c_str()));
    }
    ColumnDefinition def;
    def.name = std::string(Trim(parts[0]));
    if (def.name.empty()) {
      return Status::InvalidArgument("empty column name in header");
    }
    if (!TryParseDataType(ToLower(Trim(parts[1])), &def.type)) {
      return Status::InvalidArgument(
          StrFormat("unknown type '%s' for column '%s'", parts[1].c_str(),
                    def.name.c_str()));
    }
    schema.push_back(std::move(def));
  }
  if (schema.empty()) {
    return Status::InvalidArgument("empty CSV header");
  }
  return schema;
}

}  // namespace

StatusOr<TablePtr> LoadCsvFromString(const std::string& text,
                                     const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;

  std::vector<ColumnDefinition> schema = options.schema;
  bool consumed_header = false;
  if (schema.empty()) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("empty CSV input");
    }
    FTS_ASSIGN_OR_RETURN(schema, ParseTypedHeader(line, options.delimiter));
    consumed_header = true;
  }
  if (options.expect_header && !consumed_header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("missing CSV header");
    }
  }

  TableBuilder builder(schema, options.chunk_size);
  for (const std::string& name : options.dictionary_columns) {
    size_t index = schema.size();
    for (size_t c = 0; c < schema.size(); ++c) {
      if (schema[c].name == name) index = c;
    }
    if (index == schema.size()) {
      return Status::NotFound(
          StrFormat("dictionary column '%s' not in schema", name.c_str()));
    }
    builder.SetDictionaryEncoded(index);
  }
  for (const std::string& name : options.bitpacked_columns) {
    size_t index = schema.size();
    for (size_t c = 0; c < schema.size(); ++c) {
      if (schema[c].name == name) index = c;
    }
    if (index == schema.size()) {
      return Status::NotFound(
          StrFormat("bit-packed column '%s' not in schema", name.c_str()));
    }
    builder.SetBitPacked(index);
  }

  size_t line_number = consumed_header || options.expect_header ? 1 : 0;
  std::vector<Value> row(schema.size());
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = Split(std::string(trimmed), options.delimiter);
    if (fields.size() != schema.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, schema has %zu columns",
                    line_number, fields.size(), schema.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      auto parsed = ParseNumericLiteral(std::string(Trim(fields[c])));
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu, column '%s': %s", line_number,
                      schema[c].name.c_str(),
                      parsed.status().message().c_str()));
      }
      auto casted = CastValue(*parsed, schema[c].type);
      if (!casted.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu, column '%s': %s", line_number,
                      schema[c].name.c_str(),
                      casted.status().message().c_str()));
      }
      row[c] = *casted;
    }
    FTS_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  return builder.Build();
}

StatusOr<TablePtr> LoadCsvFile(const std::string& path,
                               const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvFromString(buffer.str(), options);
}

}  // namespace fts
