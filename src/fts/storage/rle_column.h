#ifndef FTS_STORAGE_RLE_COLUMN_H_
#define FTS_STORAGE_RLE_COLUMN_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/storage/column.h"

namespace fts {

// Run-length-encoded column: the distinct run values plus the cumulative
// run end positions (run i covers rows [run_ends[i-1], run_ends[i])); the
// last entry equals the row count. Predicates are evaluated once per run
// in the compressed domain (fts/scan/compressed_scan.h): a qualifying run
// emits its whole position range without ever materializing the values,
// which is where run-granular evaluation beats even the fused SIMD scan
// on clustered data.
template <typename T>
class RleColumn final : public BaseColumn {
 public:
  // Encoding never fails: worst case (no repeats) stores one run per row.
  static RleColumn FromValues(const AlignedVector<T>& values) {
    std::vector<T> run_values;
    AlignedVector<uint32_t> run_ends;
    size_t i = 0;
    while (i < values.size()) {
      const T value = values[i];
      size_t end = i + 1;
      while (end < values.size() && values[end] == value) ++end;
      run_values.push_back(value);
      run_ends.push_back(static_cast<uint32_t>(end));
      i = end;
    }
    return RleColumn(std::move(run_values), std::move(run_ends),
                     values.size());
  }

  RleColumn(std::vector<T> run_values, AlignedVector<uint32_t> run_ends,
            size_t rows)
      : run_values_(std::move(run_values)),
        run_ends_(std::move(run_ends)),
        rows_(rows) {
    FTS_CHECK(run_values_.size() == run_ends_.size());
    FTS_CHECK(run_ends_.empty() || run_ends_.back() == rows_);
    FTS_CHECK(rows_ <= static_cast<size_t>(UINT32_MAX));
  }

  size_t size() const override { return rows_; }
  DataType data_type() const override { return TypeTraits<T>::kType; }
  ColumnEncoding encoding() const override { return ColumnEncoding::kRle; }
  // Run values, run_count() elements — NOT row-indexed. The fused kernels
  // never read this; the compressed-domain range builder and the zone-map
  // builder reduce over the run values directly.
  const void* scan_data() const override { return run_values_.data(); }
  DataType scan_type() const override { return TypeTraits<T>::kType; }
  Value GetValue(size_t row) const override { return ValueAt(row); }

  // Decoded value of `row` (binary search over the cumulative ends).
  T ValueAt(size_t row) const {
    FTS_DCHECK(row < rows_);
    const auto it = std::upper_bound(run_ends_.begin(), run_ends_.end(),
                                     static_cast<uint32_t>(row));
    return run_values_[static_cast<size_t>(it - run_ends_.begin())];
  }

  size_t run_count() const { return run_values_.size(); }
  const std::vector<T>& run_values() const { return run_values_; }
  const AlignedVector<uint32_t>& run_ends() const { return run_ends_; }

  // Start row of run `i` (the previous run's end, or 0).
  uint32_t RunStart(size_t i) const {
    return i == 0 ? 0 : run_ends_[i - 1];
  }

 private:
  std::vector<T> run_values_;
  AlignedVector<uint32_t> run_ends_;
  size_t rows_;
};

}  // namespace fts

#endif  // FTS_STORAGE_RLE_COLUMN_H_
