#include "fts/storage/data_type.h"

#include "fts/common/macros.h"

namespace fts {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt8:
      return "int8";
    case DataType::kInt16:
      return "int16";
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kUInt8:
      return "uint8";
    case DataType::kUInt16:
      return "uint16";
    case DataType::kUInt32:
      return "uint32";
    case DataType::kUInt64:
      return "uint64";
    case DataType::kFloat32:
      return "float32";
    case DataType::kFloat64:
      return "float64";
  }
  return "unknown";
}

bool TryParseDataType(const std::string& name, DataType* out) {
  for (int i = 0; i < kNumDataTypes; ++i) {
    const DataType type = static_cast<DataType>(i);
    if (name == DataTypeToString(type)) {
      *out = type;
      return true;
    }
  }
  // Common SQL aliases.
  if (name == "int" || name == "integer") {
    *out = DataType::kInt32;
    return true;
  }
  if (name == "bigint") {
    *out = DataType::kInt64;
    return true;
  }
  if (name == "smallint") {
    *out = DataType::kInt16;
    return true;
  }
  if (name == "tinyint") {
    *out = DataType::kInt8;
    return true;
  }
  if (name == "float" || name == "real") {
    *out = DataType::kFloat32;
    return true;
  }
  if (name == "double") {
    *out = DataType::kFloat64;
    return true;
  }
  return false;
}

DataType DataTypeFromString(const std::string& name) {
  DataType type{};
  FTS_CHECK_MSG(TryParseDataType(name, &type), name.c_str());
  return type;
}

size_t DataTypeSize(DataType type) {
  switch (type) {
    case DataType::kInt8:
    case DataType::kUInt8:
      return 1;
    case DataType::kInt16:
    case DataType::kUInt16:
      return 2;
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat32:
      return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kFloat64:
      return 8;
  }
  return 0;
}

bool DataTypeIsSigned(DataType type) {
  switch (type) {
    case DataType::kInt8:
    case DataType::kInt16:
    case DataType::kInt32:
    case DataType::kInt64:
    case DataType::kFloat32:
    case DataType::kFloat64:
      return true;
    default:
      return false;
  }
}

bool DataTypeIsFloat(DataType type) {
  return type == DataType::kFloat32 || type == DataType::kFloat64;
}

bool DataTypeIsInteger(DataType type) { return !DataTypeIsFloat(type); }

}  // namespace fts
