#ifndef FTS_STORAGE_FOR_COLUMN_H_
#define FTS_STORAGE_FOR_COLUMN_H_

#include <algorithm>
#include <bit>
#include <optional>
#include <type_traits>
#include <utility>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/storage/bitpacked_column.h"
#include "fts/storage/column.h"

namespace fts {

// Frame-of-reference column: a per-chunk base (the chunk minimum) plus
// bit-packed unsigned deltas in the BitPackedColumn byte layout. The scan
// never decodes: BuildStage rebases the comparison literal into the delta
// domain (literal - base, with out-of-range literals resolved from the
// zone map), after which every engine — scalar, AVX2, AVX-512, and the
// JIT — runs its existing packed-code path unchanged. This is the FoR
// half of the compressed-domain tentpole (DESIGN.md §13).
template <typename T>
class ForColumn final : public BaseColumn {
  static_assert(std::is_integral_v<T>,
                "frame-of-reference encodes integral columns only");

 public:
  // Returns nullopt when the value range needs more than kMaxPackedBits
  // delta bits (e.g. an INT64_MIN..INT64_MAX column) — the builder then
  // falls back to a plain column for this chunk.
  static std::optional<ForColumn> TryFromValues(
      const AlignedVector<T>& values) {
    T base = values.empty() ? T{0} : values[0];
    for (const T& value : values) base = std::min(base, value);
    uint64_t max_delta = 0;
    for (const T& value : values) {
      max_delta = std::max(max_delta, DeltaOf(value, base));
    }
    const int bits = max_delta == 0
                         ? 1
                         : static_cast<int>(std::bit_width(max_delta));
    if (bits > kMaxPackedBits) return std::nullopt;
    AlignedVector<uint8_t> packed(
        BitPackedColumn<T>::PackedBytes(values.size(), bits) +
            kBitPackedSlackBytes,
        0);
    size_t row = 0;
    for (const T& value : values) {
      BitPackedColumn<T>::WriteCode(packed.data(), row++, bits,
                                    DeltaOf(value, base));
    }
    return ForColumn(base, max_delta, std::move(packed), values.size(),
                     bits);
  }

  ForColumn(T base, uint64_t max_delta, AlignedVector<uint8_t> packed,
            size_t rows, int bits)
      : base_(base),
        max_delta_(max_delta),
        packed_(std::move(packed)),
        rows_(rows),
        bits_(bits) {
    FTS_CHECK(bits_ >= 1 && bits_ <= kMaxPackedBits);
    FTS_CHECK(packed_.size() >=
              BitPackedColumn<T>::PackedBytes(rows_, bits_) +
                  kBitPackedSlackBytes);
  }

  size_t size() const override { return rows_; }
  DataType data_type() const override { return TypeTraits<T>::kType; }
  ColumnEncoding encoding() const override { return ColumnEncoding::kFor; }
  // Scans read the packed delta stream exactly like a bit-packed column:
  // logical scan elements are uint32 deltas of packed_bit_width() bits.
  const void* scan_data() const override { return packed_.data(); }
  DataType scan_type() const override { return DataType::kUInt32; }
  uint8_t packed_bit_width() const override {
    return static_cast<uint8_t>(bits_);
  }
  Value GetValue(size_t row) const override { return ValueAt(row); }

  T ValueAt(size_t row) const {
    FTS_DCHECK(row < rows_);
    return static_cast<T>(
        static_cast<uint64_t>(base_) +
        BitPackedColumn<T>::ExtractCode(packed_.data(), row, bits_));
  }

  T base() const { return base_; }
  // Largest stored delta; base + max_delta is the chunk maximum.
  uint64_t max_delta() const { return max_delta_; }
  int bit_width() const { return bits_; }
  size_t packed_bytes() const {
    return BitPackedColumn<T>::PackedBytes(rows_, bits_);
  }

  // Exact difference value - base as an unsigned delta (two's-complement
  // wraparound subtraction; well-defined for value >= base).
  static uint64_t DeltaOf(T value, T base) {
    return static_cast<uint64_t>(value) - static_cast<uint64_t>(base);
  }

 private:
  T base_;
  uint64_t max_delta_;
  AlignedVector<uint8_t> packed_;
  size_t rows_;
  int bits_;
};

}  // namespace fts

#endif  // FTS_STORAGE_FOR_COLUMN_H_
