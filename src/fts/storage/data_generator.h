#ifndef FTS_STORAGE_DATA_GENERATOR_H_
#define FTS_STORAGE_DATA_GENERATOR_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/common/random.h"
#include "fts/storage/table.h"

namespace fts {

// Deterministic workload generation for the paper's experiments. All
// functions take explicit RNGs/seeds; the same seed reproduces the same
// table bit-for-bit.

// Produces a 0/1 mask of `rows` entries with *exactly* `matches` ones,
// uniformly distributed, in O(rows) using sequential hypergeometric
// sampling (each row is a match with probability remaining_matches /
// remaining_rows). The paper's selectivity grids go down to 0.0001 %, where
// Bernoulli sampling would miss the target count by large relative error.
std::vector<uint8_t> ExactSelectivityMask(size_t rows, size_t matches,
                                          Xoshiro256& rng);

// Number of matching rows for a fractional selectivity in [0, 1]:
// round(rows * selectivity), clamped to [0, rows]; selects at least 1 row
// when selectivity > 0 and rows > 0 so tiny grids stay non-degenerate.
size_t MatchCountForSelectivity(size_t rows, double selectivity);

// Uniform value in [lo, hi] (inclusive) for any supported column type.
template <typename T>
T UniformValue(T lo, T hi, Xoshiro256& rng) {
  FTS_DCHECK(lo <= hi);
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(lo + (hi - lo) * rng.NextDouble());
  } else if constexpr (std::is_signed_v<T>) {
    return static_cast<T>(rng.NextInRange(lo, hi));
  } else {
    const uint64_t span = static_cast<uint64_t>(hi) - lo;
    if (span == ~0ULL) return static_cast<T>(rng.Next());
    return static_cast<T>(static_cast<uint64_t>(lo) +
                          rng.NextBounded(span + 1));
  }
}

// Fills a column where mask[i] != 0 receives `match_value` and other rows
// receive uniform values in [non_match_min, non_match_max] excluding
// `match_value`.
template <typename T>
AlignedVector<T> FillFromMask(const std::vector<uint8_t>& mask,
                              T match_value, T non_match_min,
                              T non_match_max, Xoshiro256& rng) {
  AlignedVector<T> values;
  values.reserve(mask.size());
  for (const uint8_t is_match : mask) {
    if (is_match != 0) {
      values.push_back(match_value);
      continue;
    }
    T v = UniformValue(non_match_min, non_match_max, rng);
    while (v == match_value) {
      v = UniformValue(non_match_min, non_match_max, rng);
    }
    values.push_back(v);
  }
  return values;
}

// Uniform random column in [lo, hi] inclusive.
template <typename T>
AlignedVector<T> GenerateUniformColumn(size_t rows, T lo, T hi,
                                       Xoshiro256& rng) {
  AlignedVector<T> values;
  values.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    values.push_back(UniformValue(lo, hi, rng));
  }
  return values;
}

// A generated multi-column scan table plus the ground truth the
// benchmarks/tests verify against.
struct GeneratedScanTable {
  TablePtr table;
  // Search value of predicate i (predicate i is: column "c<i>" = value).
  std::vector<int32_t> search_values;
  // Number of rows surviving predicates 0..i (prefix conjunction).
  std::vector<uint64_t> stage_matches;
  // Row-level survivor mask after all predicates (for oracle checks).
  std::vector<uint8_t> final_mask;
};

// Options for MakeScanTable.
struct ScanTableOptions {
  size_t rows = 0;
  // selectivities[0] is the fraction of all rows matching predicate 0;
  // selectivities[i>0] is the fraction of *surviving* rows matching
  // predicate i (the paper's Fig. 7 convention: "1 % of all rows qualify
  // and for following predicates 50 % of the remaining rows match").
  // Rows already disqualified match predicate i independently with the
  // same probability, which preserves realistic branch behaviour for the
  // scalar baseline.
  std::vector<double> selectivities;
  uint64_t seed = 42;
  size_t chunk_size = 0;  // 0 = single chunk.
  bool dictionary_encode = false;
};

// Builds an int32 table with columns c0..c(N-1) following `options`.
GeneratedScanTable MakeScanTable(const ScanTableOptions& options);

}  // namespace fts

#endif  // FTS_STORAGE_DATA_GENERATOR_H_
