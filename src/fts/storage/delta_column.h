#ifndef FTS_STORAGE_DELTA_COLUMN_H_
#define FTS_STORAGE_DELTA_COLUMN_H_

#include <algorithm>
#include <bit>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/storage/column.h"

namespace fts {

// Rows per delta block: small enough that a maybe-block decode stays in
// L1, large enough that per-block metadata is negligible.
inline constexpr size_t kDeltaBlockRows = 1024;

// Widest supported zigzag diff. Any width <= 56 is extractable from an
// 8-byte window at byte granularity (bit shift < 8, so shift + bits <= 63).
inline constexpr int kMaxDeltaBits = 56;

// Delta-encoded column for append-ordered data (timestamps, sequence
// numbers): rows are cut into kDeltaBlockRows blocks; each block stores
// its first value raw plus zigzag-encoded consecutive differences at the
// block's minimal bit width, and carries its own min/max. Scans answer
// from the block min/max whenever they can (emit the whole block or skip
// it) and prefix-reconstruct only the undecided blocks
// (fts/scan/compressed_scan.h) — on sorted data that is almost never.
template <typename T>
class DeltaColumn final : public BaseColumn {
  static_assert(std::is_integral_v<T>,
                "delta encoding covers integral columns only");

 public:
  struct BlockMeta {
    T base = T{0};  // First value of the block, stored raw.
    T min = T{0};
    T max = T{0};
    uint64_t packed_byte_offset = 0;
    uint32_t rows = 0;
    uint8_t bits = 0;  // Zigzag diff width; 0 only for 1-row blocks.
  };

  // Returns nullopt when any block's diffs need more than kMaxDeltaBits
  // bits — the builder then falls back to a plain column for this chunk.
  static std::optional<DeltaColumn> TryFromValues(
      const AlignedVector<T>& values) {
    std::vector<BlockMeta> blocks;
    AlignedVector<uint8_t> packed;
    uint64_t bit_cursor = 0;  // Absolute bit position in `packed`.
    for (size_t start = 0; start < values.size();
         start += kDeltaBlockRows) {
      const size_t rows = std::min(kDeltaBlockRows, values.size() - start);
      BlockMeta meta;
      meta.base = values[start];
      meta.min = values[start];
      meta.max = values[start];
      uint64_t max_zz = 0;
      for (size_t i = 1; i < rows; ++i) {
        const T value = values[start + i];
        meta.min = std::min(meta.min, value);
        meta.max = std::max(meta.max, value);
        max_zz = std::max(max_zz, ZigZag(values[start + i - 1], value));
      }
      const int bits =
          max_zz == 0 ? (rows > 1 ? 1 : 0)
                      : static_cast<int>(std::bit_width(max_zz));
      if (bits > kMaxDeltaBits) return std::nullopt;
      // Blocks start byte-aligned so each decodes independently.
      bit_cursor = (bit_cursor + 7) & ~uint64_t{7};
      meta.packed_byte_offset = bit_cursor >> 3;
      meta.rows = static_cast<uint32_t>(rows);
      meta.bits = static_cast<uint8_t>(bits);
      const uint64_t block_bits =
          static_cast<uint64_t>(rows - 1) * static_cast<uint64_t>(bits);
      packed.resize((bit_cursor + block_bits + 7) / 8 + 8, 0);
      for (size_t i = 1; i < rows; ++i) {
        WriteWide(packed.data(),
                  meta.packed_byte_offset * 8 +
                      static_cast<uint64_t>(i - 1) * bits,
                  bits, ZigZag(values[start + i - 1], values[start + i]));
      }
      bit_cursor += block_bits;
      blocks.push_back(meta);
    }
    packed.resize(packed.size() + 8, 0);  // Slack for 8-byte window loads.
    return DeltaColumn(std::move(blocks), std::move(packed), values.size());
  }

  DeltaColumn(std::vector<BlockMeta> blocks, AlignedVector<uint8_t> packed,
              size_t rows)
      : blocks_(std::move(blocks)),
        packed_(std::move(packed)),
        rows_(rows) {
    FTS_CHECK(blocks_.size() == (rows_ + kDeltaBlockRows - 1) /
                                    kDeltaBlockRows);
  }

  size_t size() const override { return rows_; }
  DataType data_type() const override { return TypeTraits<T>::kType; }
  ColumnEncoding encoding() const override {
    return ColumnEncoding::kDelta;
  }
  // The packed zigzag stream — never kernel-scanned; the compressed-domain
  // range builder goes through the block metadata instead.
  const void* scan_data() const override { return packed_.data(); }
  DataType scan_type() const override { return TypeTraits<T>::kType; }
  Value GetValue(size_t row) const override { return ValueAt(row); }

  // O(row % kDeltaBlockRows) prefix reconstruction — materialization and
  // test use only; scans decode whole blocks via DecodeBlock.
  T ValueAt(size_t row) const {
    FTS_DCHECK(row < rows_);
    const size_t block = row / kDeltaBlockRows;
    const BlockMeta& meta = blocks_[block];
    uint64_t value = static_cast<uint64_t>(meta.base);
    const size_t in_block = row - block * kDeltaBlockRows;
    for (size_t i = 0; i < in_block; ++i) {
      value += UnZigZag(ExtractWide(
          packed_.data(),
          meta.packed_byte_offset * 8 + static_cast<uint64_t>(i) * meta.bits,
          meta.bits));
    }
    return static_cast<T>(value);
  }

  // Reconstructs block `block_index` into `out` (capacity >= block rows);
  // returns the row count. The scan's maybe-block path.
  size_t DecodeBlock(size_t block_index, T* out) const {
    const BlockMeta& meta = blocks_[block_index];
    uint64_t value = static_cast<uint64_t>(meta.base);
    out[0] = meta.base;
    for (size_t i = 1; i < meta.rows; ++i) {
      value += UnZigZag(ExtractWide(
          packed_.data(),
          meta.packed_byte_offset * 8 +
              static_cast<uint64_t>(i - 1) * meta.bits,
          meta.bits));
      out[i] = static_cast<T>(value);
    }
    return meta.rows;
  }

  const std::vector<BlockMeta>& blocks() const { return blocks_; }
  size_t packed_bytes() const { return packed_.size(); }

  // Zigzag-encoded wraparound difference next - prev: small magnitudes of
  // either sign pack into few bits.
  static uint64_t ZigZag(T prev, T next) {
    const uint64_t diff =
        static_cast<uint64_t>(next) - static_cast<uint64_t>(prev);
    const int64_t s = static_cast<int64_t>(diff);
    return (static_cast<uint64_t>(s) << 1) ^
           static_cast<uint64_t>(s >> 63);
  }

  static uint64_t UnZigZag(uint64_t zz) {
    return (zz >> 1) ^ (~(zz & 1) + 1);
  }

  // 64-bit analogues of BitPackedColumn's window primitives, for widths
  // up to kMaxDeltaBits. `bit_offset` is absolute within `packed`.
  static uint64_t ExtractWide(const uint8_t* packed, uint64_t bit_offset,
                              int bits) {
    if (bits == 0) return 0;
    const uint64_t byte_offset = bit_offset >> 3;
    const int shift = static_cast<int>(bit_offset & 7);
    uint64_t window;
    __builtin_memcpy(&window, packed + byte_offset, sizeof(window));
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    return (window >> shift) & mask;
  }

  static void WriteWide(uint8_t* packed, uint64_t bit_offset, int bits,
                        uint64_t value) {
    if (bits == 0) return;
    const uint64_t byte_offset = bit_offset >> 3;
    const int shift = static_cast<int>(bit_offset & 7);
    uint64_t window;
    __builtin_memcpy(&window, packed + byte_offset, sizeof(window));
    const uint64_t mask = ((uint64_t{1} << bits) - 1) << shift;
    window = (window & ~mask) | ((value << shift) & mask);
    __builtin_memcpy(packed + byte_offset, &window, sizeof(window));
  }

 private:
  std::vector<BlockMeta> blocks_;
  AlignedVector<uint8_t> packed_;
  size_t rows_;
};

}  // namespace fts

#endif  // FTS_STORAGE_DELTA_COLUMN_H_
