#ifndef FTS_STORAGE_COMPARE_OP_H_
#define FTS_STORAGE_COMPARE_OP_H_

#include <cstdint>

namespace fts {

// The six comparison operators from Section V of the paper. The numeric
// values match the _MM_CMPINT_* immediates used by AVX-512's
// _mm512_cmp_ep{i,u}32_mask, so kernels can pass the enum straight through:
//   EQ=0, LT=1, LE=2, NE=4, GE=5, GT=6.
enum class CompareOp : uint8_t {
  kEq = 0,
  kLt = 1,
  kLe = 2,
  kNe = 4,
  kGe = 5,
  kGt = 6,
};

inline constexpr CompareOp kAllCompareOps[] = {
    CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
    CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};

// SQL spelling: "=", "<>", "<", "<=", ">", ">=".
const char* CompareOpToString(CompareOp op);

// Logical negation: Eq<->Ne, Lt<->Ge, Le<->Gt.
CompareOp NegateCompareOp(CompareOp op);

// Operand swap: a op b  ==  b Flip(op) a.
CompareOp FlipCompareOp(CompareOp op);

// Scalar reference semantics. Every SIMD kernel is tested against this.
template <typename T>
inline bool EvaluateCompare(CompareOp op, T lhs, T rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  __builtin_unreachable();
}

}  // namespace fts

#endif  // FTS_STORAGE_COMPARE_OP_H_
