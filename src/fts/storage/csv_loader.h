#ifndef FTS_STORAGE_CSV_LOADER_H_
#define FTS_STORAGE_CSV_LOADER_H_

#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/storage/table.h"
#include "fts/storage/table_builder.h"

namespace fts {

// CSV ingestion for the example applications and the SQL shell. Numeric
// fields only (the engine stores the ten fixed-size types).
struct CsvOptions {
  char delimiter = ',';
  // When empty, the first line must be a typed header "name:type,..."
  // with types from DataTypeToString (or SQL aliases like "int").
  // When set, a header line (names only or typed) is still consumed if
  // `expect_header` is true.
  std::vector<ColumnDefinition> schema;
  bool expect_header = true;
  size_t chunk_size = kDefaultChunkSize;
  // Columns to dictionary-encode / bit-pack, by name.
  std::vector<std::string> dictionary_columns;
  std::vector<std::string> bitpacked_columns;
};

// Parses CSV text into a table.
StatusOr<TablePtr> LoadCsvFromString(const std::string& text,
                                     const CsvOptions& options);

// Reads and parses a CSV file.
StatusOr<TablePtr> LoadCsvFile(const std::string& path,
                               const CsvOptions& options);

}  // namespace fts

#endif  // FTS_STORAGE_CSV_LOADER_H_
