#ifndef FTS_STORAGE_ZONE_MAP_H_
#define FTS_STORAGE_ZONE_MAP_H_

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "fts/storage/compare_op.h"
#include "fts/storage/value.h"

namespace fts {

// Small Materialized Aggregate for one column of one chunk: exact min/max
// plus row count, computed once at ingest (table_builder.cc) via the SIMD
// reduction kernels in fts/simd/minmax_kernels.h. Scans consult it before
// building a chunk's fused chain: a conjunct disproved by the bounds skips
// the chunk entirely, a tautological conjunct is dropped from that chunk's
// chain (per-chunk stage specialization).
//
// `valid` is false when the column carries no usable bounds — notably
// floating-point chunks containing NaN, where min/max-based pruning is
// unsound (NaN compares false against everything, so "min >= v" proves
// nothing about rows holding NaN). Invalid zone maps are simply ignored.
struct ZoneMap {
  bool valid = false;
  // Bounds in the column's value domain, boxed at the column's own type so
  // int64 values beyond double's 2^53 exact range stay exact.
  Value min;
  Value max;
  uint64_t row_count = 0;
  // This engine stores no NULLs, so every zone map is nulls-free today;
  // recorded explicitly because min/max pruning is only sound over columns
  // where every row holds a value.
  bool nulls_free = true;
  // Code-space bounds for dictionary / bit-packed columns: min/max over
  // the *stored codes*. Chunk-local dictionaries built by FromValues
  // reference every entry, but hand-built columns may carry unused
  // dictionary entries, so the code bounds are computed from the codes.
  bool has_codes = false;
  uint32_t min_code = 0;
  uint32_t max_code = 0;
};

// What the zone map proves about one predicate over one chunk.
enum class ZoneFate : uint8_t {
  kMaybe = 0,  // Bounds prove nothing; scan the chunk.
  kNone,       // No row can match; skip the chunk.
  kAll,        // Every row matches; drop the stage from the chain.
};

// Classifies `value op x` for all x in [min, max] (inclusive, exact, no
// NaN among the data — enforced by ZoneMap::valid). Conservative: anything
// not provable is kMaybe.
template <typename T>
ZoneFate ClassifyZone(T min, T max, CompareOp op, T value) {
  if constexpr (std::is_floating_point_v<T>) {
    // A NaN search value compares false under every ordered op, so the
    // outcome is decided without looking at the bounds at all.
    if (std::isnan(value)) {
      return op == CompareOp::kNe ? ZoneFate::kAll : ZoneFate::kNone;
    }
  }
  switch (op) {
    case CompareOp::kEq:
      if (value < min || value > max) return ZoneFate::kNone;
      if (min == max && min == value) return ZoneFate::kAll;
      return ZoneFate::kMaybe;
    case CompareOp::kNe:
      if (min == max && min == value) return ZoneFate::kNone;
      if (value < min || value > max) return ZoneFate::kAll;
      return ZoneFate::kMaybe;
    case CompareOp::kLt:
      if (min >= value) return ZoneFate::kNone;
      if (max < value) return ZoneFate::kAll;
      return ZoneFate::kMaybe;
    case CompareOp::kLe:
      if (min > value) return ZoneFate::kNone;
      if (max <= value) return ZoneFate::kAll;
      return ZoneFate::kMaybe;
    case CompareOp::kGt:
      if (max <= value) return ZoneFate::kNone;
      if (min > value) return ZoneFate::kAll;
      return ZoneFate::kMaybe;
    case CompareOp::kGe:
      if (max < value) return ZoneFate::kNone;
      if (min >= value) return ZoneFate::kAll;
      return ZoneFate::kMaybe;
  }
  __builtin_unreachable();
}

}  // namespace fts

#endif  // FTS_STORAGE_ZONE_MAP_H_
