#ifndef FTS_STORAGE_COLUMN_H_
#define FTS_STORAGE_COLUMN_H_

#include <cstddef>
#include <memory>

#include "fts/storage/data_type.h"
#include "fts/storage/value.h"

namespace fts {

enum class ColumnEncoding : uint8_t {
  kPlain = 0,       // ValueColumn<T>: contiguous unencoded values.
  kDictionary = 1,  // DictionaryColumn<T>: sorted dictionary + uint32 codes.
  kBitPacked = 2,   // BitPackedColumn<T>: dictionary + b-bit packed codes
                    // (null suppression; the paper's Future Work).
  kRle = 3,         // RleColumn<T>: run values + cumulative run ends;
                    // predicates classify each run once (DESIGN.md §13).
  kFor = 4,         // ForColumn<T>: frame-of-reference — per-chunk base +
                    // bit-packed unsigned deltas; literals rebase into the
                    // delta domain and reuse the packed SIMD paths.
  kDelta = 5,       // DeltaColumn<T>: blockwise delta — per-block base +
                    // zigzag diffs; blocks prune on min/max and decode
                    // only when a zone map can't answer.
};

// True for the encodings whose predicates the fused kernels evaluate
// directly (plain values, dictionary codes, packed codes, rebased FoR
// deltas). RLE and delta columns instead go through the compressed-domain
// range path (fts/scan/compressed_scan.h).
inline bool IsKernelScannable(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kPlain:
    case ColumnEncoding::kDictionary:
    case ColumnEncoding::kBitPacked:
    case ColumnEncoding::kFor:
      return true;
    case ColumnEncoding::kRle:
    case ColumnEncoding::kDelta:
      return false;
  }
  return false;
}

inline const char* ColumnEncodingName(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kPlain: return "plain";
    case ColumnEncoding::kDictionary: return "dict";
    case ColumnEncoding::kBitPacked: return "bitpacked";
    case ColumnEncoding::kRle: return "rle";
    case ColumnEncoding::kFor: return "for";
    case ColumnEncoding::kDelta: return "delta";
  }
  return "?";
}

// Abstract column interface. Columns are immutable once attached to a
// chunk; scans access the contiguous fixed-size representation via
// scan_data()/scan_type() (for dictionary columns that is the code vector,
// per the paper's assumption 3: dictionary encoding yields fixed-size
// scannable values).
class BaseColumn {
 public:
  virtual ~BaseColumn() = default;

  virtual size_t size() const = 0;

  // Logical value type of the column as declared in the schema.
  virtual DataType data_type() const = 0;

  virtual ColumnEncoding encoding() const = 0;

  // The fixed-size array that scan kernels read. For plain columns this is
  // the value array (element type == data_type()); for dictionary columns
  // it is the uint32 code vector; for bit-packed columns it is the packed
  // byte stream (logical elements are uint32 codes of packed_bit_width()
  // bits).
  virtual const void* scan_data() const = 0;
  virtual DataType scan_type() const = 0;

  // Code width in bits for bit-packed columns; 0 for every other encoding.
  virtual uint8_t packed_bit_width() const { return 0; }

  // Boxed value at `row` (decoded for dictionary columns). For result
  // materialization and tests, not for hot paths.
  virtual Value GetValue(size_t row) const = 0;
};

using ColumnPtr = std::shared_ptr<const BaseColumn>;

}  // namespace fts

#endif  // FTS_STORAGE_COLUMN_H_
