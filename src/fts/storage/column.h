#ifndef FTS_STORAGE_COLUMN_H_
#define FTS_STORAGE_COLUMN_H_

#include <cstddef>
#include <memory>

#include "fts/storage/data_type.h"
#include "fts/storage/value.h"

namespace fts {

enum class ColumnEncoding : uint8_t {
  kPlain = 0,       // ValueColumn<T>: contiguous unencoded values.
  kDictionary = 1,  // DictionaryColumn<T>: sorted dictionary + uint32 codes.
  kBitPacked = 2,   // BitPackedColumn<T>: dictionary + b-bit packed codes
                    // (null suppression; the paper's Future Work).
};

// Abstract column interface. Columns are immutable once attached to a
// chunk; scans access the contiguous fixed-size representation via
// scan_data()/scan_type() (for dictionary columns that is the code vector,
// per the paper's assumption 3: dictionary encoding yields fixed-size
// scannable values).
class BaseColumn {
 public:
  virtual ~BaseColumn() = default;

  virtual size_t size() const = 0;

  // Logical value type of the column as declared in the schema.
  virtual DataType data_type() const = 0;

  virtual ColumnEncoding encoding() const = 0;

  // The fixed-size array that scan kernels read. For plain columns this is
  // the value array (element type == data_type()); for dictionary columns
  // it is the uint32 code vector; for bit-packed columns it is the packed
  // byte stream (logical elements are uint32 codes of packed_bit_width()
  // bits).
  virtual const void* scan_data() const = 0;
  virtual DataType scan_type() const = 0;

  // Code width in bits for bit-packed columns; 0 for every other encoding.
  virtual uint8_t packed_bit_width() const { return 0; }

  // Boxed value at `row` (decoded for dictionary columns). For result
  // materialization and tests, not for hot paths.
  virtual Value GetValue(size_t row) const = 0;
};

using ColumnPtr = std::shared_ptr<const BaseColumn>;

}  // namespace fts

#endif  // FTS_STORAGE_COLUMN_H_
