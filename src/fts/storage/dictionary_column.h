#ifndef FTS_STORAGE_DICTIONARY_COLUMN_H_
#define FTS_STORAGE_DICTIONARY_COLUMN_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/storage/column.h"
#include "fts/storage/compare_op.h"
#include "fts/storage/dictionary_util.h"

namespace fts {

// Dictionary-encoded column: a sorted, duplicate-free dictionary of T plus
// a fixed-width uint32 code per row. This realizes the paper's assumption 3
// — any type becomes fixed-size scannable data — and the scan kernels
// operate on the code vector directly.
template <typename T>
class DictionaryColumn final : public BaseColumn {
 public:
  // Builds dictionary and code vector from raw values.
  static DictionaryColumn FromValues(const AlignedVector<T>& values) {
    std::vector<T> dictionary = BuildSortedDictionary(values);
    AlignedVector<uint32_t> codes;
    codes.reserve(values.size());
    for (const T& value : values) {
      const auto it =
          std::lower_bound(dictionary.begin(), dictionary.end(), value);
      codes.push_back(static_cast<uint32_t>(it - dictionary.begin()));
    }
    return DictionaryColumn(std::move(dictionary), std::move(codes));
  }

  DictionaryColumn(std::vector<T> dictionary, AlignedVector<uint32_t> codes)
      : dictionary_(std::move(dictionary)), codes_(std::move(codes)) {}

  size_t size() const override { return codes_.size(); }
  DataType data_type() const override { return TypeTraits<T>::kType; }
  ColumnEncoding encoding() const override {
    return ColumnEncoding::kDictionary;
  }
  // Scans run over the uint32 code vector.
  const void* scan_data() const override { return codes_.data(); }
  DataType scan_type() const override { return DataType::kUInt32; }
  Value GetValue(size_t row) const override {
    return dictionary_[codes_[row]];
  }

  const std::vector<T>& dictionary() const { return dictionary_; }
  const AlignedVector<uint32_t>& codes() const { return codes_; }
  size_t dictionary_size() const { return dictionary_.size(); }

  // Rewrites (value `op` search_value) into a code-space predicate.
  DictionaryPredicate TranslatePredicate(CompareOp op, T search_value) const {
    return TranslateSortedDictionaryPredicate(dictionary_, op, search_value);
  }

 private:
  std::vector<T> dictionary_;
  AlignedVector<uint32_t> codes_;
};

}  // namespace fts

#endif  // FTS_STORAGE_DICTIONARY_COLUMN_H_
