#ifndef FTS_STORAGE_DICTIONARY_UTIL_H_
#define FTS_STORAGE_DICTIONARY_UTIL_H_

#include <algorithm>
#include <vector>

#include "fts/storage/compare_op.h"

namespace fts {

// Outcome of rewriting a value predicate into a predicate on dictionary
// codes (shared by DictionaryColumn and BitPackedColumn, whose code spaces
// are both sorted dictionaries). Because the dictionary is sorted, order
// predicates translate to order predicates on codes; impossible predicates
// collapse to kNone and tautologies to kAll, letting the scan skip work.
struct DictionaryPredicate {
  enum class Kind : uint8_t {
    kNone = 0,     // No row can match.
    kAll = 1,      // Every row matches.
    kCompare = 2,  // Compare codes with `op` against `code`.
  };
  Kind kind = Kind::kNone;
  CompareOp op = CompareOp::kEq;
  uint32_t code = 0;
};

// Rewrites (value `op` search_value) into code space for a sorted,
// duplicate-free `dictionary`.
template <typename T>
DictionaryPredicate TranslateSortedDictionaryPredicate(
    const std::vector<T>& dictionary, CompareOp op, T search_value) {
  const auto lb_it =
      std::lower_bound(dictionary.begin(), dictionary.end(), search_value);
  const uint32_t lb = static_cast<uint32_t>(lb_it - dictionary.begin());
  const bool found = lb_it != dictionary.end() && *lb_it == search_value;
  const uint32_t ub = found ? lb + 1 : lb;  // upper_bound for unique dict.
  const uint32_t dict_size = static_cast<uint32_t>(dictionary.size());

  DictionaryPredicate result;
  switch (op) {
    case CompareOp::kEq:
      if (!found) return result;  // kNone.
      result = {DictionaryPredicate::Kind::kCompare, CompareOp::kEq, lb};
      return result;
    case CompareOp::kNe:
      if (!found) {
        result.kind = DictionaryPredicate::Kind::kAll;
        return result;
      }
      result = {DictionaryPredicate::Kind::kCompare, CompareOp::kNe, lb};
      return result;
    case CompareOp::kLt:
      // code < lb  <=>  value < search_value.
      if (lb == 0) return result;  // kNone.
      if (lb >= dict_size) {
        result.kind = DictionaryPredicate::Kind::kAll;
        return result;
      }
      result = {DictionaryPredicate::Kind::kCompare, CompareOp::kLt, lb};
      return result;
    case CompareOp::kLe:
      // code < ub  <=>  value <= search_value.
      if (ub == 0) return result;  // kNone.
      if (ub >= dict_size) {
        result.kind = DictionaryPredicate::Kind::kAll;
        return result;
      }
      result = {DictionaryPredicate::Kind::kCompare, CompareOp::kLt, ub};
      return result;
    case CompareOp::kGt:
      // code >= ub  <=>  value > search_value.
      if (ub >= dict_size) return result;  // kNone.
      if (ub == 0) {
        result.kind = DictionaryPredicate::Kind::kAll;
        return result;
      }
      result = {DictionaryPredicate::Kind::kCompare, CompareOp::kGe, ub};
      return result;
    case CompareOp::kGe:
      // code >= lb  <=>  value >= search_value.
      if (lb >= dict_size) return result;  // kNone.
      if (lb == 0) {
        result.kind = DictionaryPredicate::Kind::kAll;
        return result;
      }
      result = {DictionaryPredicate::Kind::kCompare, CompareOp::kGe, lb};
      return result;
  }
  __builtin_unreachable();
}

// Builds the sorted duplicate-free dictionary for `values`.
template <typename T, typename Alloc>
std::vector<T> BuildSortedDictionary(const std::vector<T, Alloc>& values) {
  std::vector<T> dictionary(values.begin(), values.end());
  std::sort(dictionary.begin(), dictionary.end());
  dictionary.erase(std::unique(dictionary.begin(), dictionary.end()),
                   dictionary.end());
  return dictionary;
}

}  // namespace fts

#endif  // FTS_STORAGE_DICTIONARY_UTIL_H_
