#include "fts/storage/data_generator.h"

#include <cmath>

#include "fts/common/string_util.h"
#include "fts/storage/dictionary_column.h"
#include "fts/storage/table_builder.h"
#include "fts/storage/value_column.h"

namespace fts {

std::vector<uint8_t> ExactSelectivityMask(size_t rows, size_t matches,
                                          Xoshiro256& rng) {
  FTS_CHECK(matches <= rows);
  std::vector<uint8_t> mask(rows, 0);
  size_t remaining_matches = matches;
  size_t remaining_rows = rows;
  for (size_t i = 0; i < rows && remaining_matches > 0; ++i) {
    // P(match) = remaining_matches / remaining_rows gives a uniformly
    // random subset of exactly `matches` positions.
    if (rng.NextBounded(remaining_rows) < remaining_matches) {
      mask[i] = 1;
      --remaining_matches;
    }
    --remaining_rows;
  }
  return mask;
}

size_t MatchCountForSelectivity(size_t rows, double selectivity) {
  FTS_CHECK(selectivity >= 0.0 && selectivity <= 1.0);
  if (rows == 0) return 0;
  auto count = static_cast<size_t>(
      std::llround(static_cast<double>(rows) * selectivity));
  if (count == 0 && selectivity > 0.0) count = 1;
  return std::min(count, rows);
}

namespace {

// Search value for predicate i; the paper's example uses a = 5, b = 2.
int32_t SearchValueForPredicate(size_t i) {
  static constexpr int32_t kValues[] = {5, 2, 7, 3, 9, 11, 13, 17};
  if (i < sizeof(kValues) / sizeof(kValues[0])) return kValues[i];
  return static_cast<int32_t>(2 * i + 1);
}

// Exact-count mask restricted to a subset: rows where `subset[i] != 0`
// receive exactly `matches` ones; rows outside the subset receive ones
// independently with the same fraction (exact within their own group).
std::vector<uint8_t> ExactMaskWithinSubset(const std::vector<uint8_t>& subset,
                                           double fraction, Xoshiro256& rng) {
  size_t in = 0;
  for (const uint8_t s : subset) in += (s != 0);
  const size_t out = subset.size() - in;

  const size_t in_matches = MatchCountForSelectivity(in, fraction);
  const size_t out_matches = MatchCountForSelectivity(out, fraction);

  std::vector<uint8_t> mask(subset.size(), 0);
  size_t in_remaining_rows = in, in_remaining_matches = in_matches;
  size_t out_remaining_rows = out, out_remaining_matches = out_matches;
  for (size_t i = 0; i < subset.size(); ++i) {
    if (subset[i] != 0) {
      if (in_remaining_matches > 0 &&
          rng.NextBounded(in_remaining_rows) < in_remaining_matches) {
        mask[i] = 1;
        --in_remaining_matches;
      }
      --in_remaining_rows;
    } else {
      if (out_remaining_matches > 0 &&
          rng.NextBounded(out_remaining_rows) < out_remaining_matches) {
        mask[i] = 1;
        --out_remaining_matches;
      }
      --out_remaining_rows;
    }
  }
  return mask;
}

}  // namespace

GeneratedScanTable MakeScanTable(const ScanTableOptions& options) {
  FTS_CHECK(options.rows > 0);
  FTS_CHECK(!options.selectivities.empty());
  Xoshiro256 rng(options.seed);

  const size_t num_predicates = options.selectivities.size();
  GeneratedScanTable result;
  result.search_values.reserve(num_predicates);
  result.stage_matches.reserve(num_predicates);

  // Non-match values land far away from every search value.
  constexpr int32_t kNonMatchMin = 1000;
  constexpr int32_t kNonMatchMax = 1 << 30;

  std::vector<ColumnDefinition> schema;
  schema.reserve(num_predicates);
  std::vector<ColumnPtr> columns;
  columns.reserve(num_predicates);

  // Survivor mask of the prefix conjunction; predicate 0 starts with all
  // rows "surviving".
  std::vector<uint8_t> survivors(options.rows, 1);

  for (size_t p = 0; p < num_predicates; ++p) {
    const int32_t search_value = SearchValueForPredicate(p);
    result.search_values.push_back(search_value);

    const std::vector<uint8_t> match_mask =
        ExactMaskWithinSubset(survivors, options.selectivities[p], rng);

    AlignedVector<int32_t> values = FillFromMask<int32_t>(
        match_mask, search_value, kNonMatchMin, kNonMatchMax, rng);

    if (options.dictionary_encode) {
      columns.push_back(std::make_shared<DictionaryColumn<int32_t>>(
          DictionaryColumn<int32_t>::FromValues(values)));
    } else {
      columns.push_back(
          std::make_shared<ValueColumn<int32_t>>(std::move(values)));
    }
    schema.push_back({StrFormat("c%zu", p), DataType::kInt32});

    uint64_t surviving = 0;
    for (size_t i = 0; i < options.rows; ++i) {
      survivors[i] = static_cast<uint8_t>(survivors[i] & match_mask[i]);
      surviving += survivors[i];
    }
    result.stage_matches.push_back(surviving);
  }
  result.final_mask = std::move(survivors);

  // Partition the generated columns into chunks if requested. Columns were
  // built whole; chunking slices them row-wise.
  const size_t chunk_size =
      options.chunk_size == 0 ? options.rows : options.chunk_size;
  TableBuilder builder(schema, chunk_size);
  if (chunk_size >= options.rows) {
    FTS_CHECK(builder.AddChunk(std::move(columns)).ok());
  } else {
    for (size_t start = 0; start < options.rows; start += chunk_size) {
      const size_t len = std::min(chunk_size, options.rows - start);
      std::vector<ColumnPtr> chunk_columns;
      chunk_columns.reserve(columns.size());
      for (const auto& column : columns) {
        // Slice [start, start+len). Columns here are always the int32
        // variants created above.
        if (column->encoding() == ColumnEncoding::kPlain) {
          const auto& full =
              static_cast<const ValueColumn<int32_t>&>(*column);
          AlignedVector<int32_t> slice(full.values().begin() + start,
                                       full.values().begin() + start + len);
          chunk_columns.push_back(
              std::make_shared<ValueColumn<int32_t>>(std::move(slice)));
        } else {
          const auto& full =
              static_cast<const DictionaryColumn<int32_t>&>(*column);
          AlignedVector<int32_t> slice(len);
          for (size_t i = 0; i < len; ++i) {
            slice[i] = full.dictionary()[full.codes()[start + i]];
          }
          chunk_columns.push_back(std::make_shared<DictionaryColumn<int32_t>>(
              DictionaryColumn<int32_t>::FromValues(slice)));
        }
      }
      FTS_CHECK(builder.AddChunk(std::move(chunk_columns)).ok());
    }
  }
  result.table = builder.Build();
  return result;
}

}  // namespace fts
