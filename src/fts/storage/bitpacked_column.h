#ifndef FTS_STORAGE_BITPACKED_COLUMN_H_
#define FTS_STORAGE_BITPACKED_COLUMN_H_

#include <bit>
#include <utility>
#include <vector>

#include "fts/common/aligned_buffer.h"
#include "fts/common/macros.h"
#include "fts/storage/column.h"
#include "fts/storage/dictionary_util.h"

namespace fts {

// Bit-packed (null-suppressed) column — the paper's Future Work realized:
// dictionary codes stored at ceil(log2(|dict|)) bits each, horizontally
// packed ("SIMD-Scan" layout: code i occupies bits [i*b, (i+1)*b) of the
// byte stream, little-endian within each 64-bit window).
//
// The fused scan handles these columns natively (see
// fts/simd/kernels_avx512.cc): the first predicate unpacks a register's
// worth of codes with gather+variable-shift+mask, and — the part the paper
// calls "the main challenge" — follow-up predicates extract *single*
// packed values at gathered positions by loading the 8-byte window that
// contains the code and shifting it into place.
//
// The packed buffer carries kBitPackedSlackBytes of zero padding so an
// 8-byte window load at the last code never reads past the allocation.
inline constexpr size_t kBitPackedSlackBytes = 8;

// Maximum supported code width. Any width <= 56 fits an 8-byte window
// loaded at byte granularity (shift < 8); 26 is the practical cap because
// wider codes defeat the purpose of packing 32-bit dictionary codes (use a
// plain DictionaryColumn instead).
inline constexpr int kMaxPackedBits = 26;

template <typename T>
class BitPackedColumn final : public BaseColumn {
 public:
  // Builds the dictionary, derives the minimal bit width, and packs the
  // codes. Columns whose dictionary needs more than kMaxPackedBits fall
  // back to width kMaxPackedBits only if they fit; otherwise callers
  // should use DictionaryColumn (FromValues CHECKs).
  static BitPackedColumn FromValues(const AlignedVector<T>& values) {
    std::vector<T> dictionary = BuildSortedDictionary(values);
    const int bits = BitWidthFor(dictionary.size());
    FTS_CHECK_MSG(bits <= kMaxPackedBits,
                  "dictionary too large for bit-packing; use "
                  "DictionaryColumn");
    AlignedVector<uint8_t> packed(
        PackedBytes(values.size(), bits) + kBitPackedSlackBytes, 0);
    size_t row = 0;
    for (const T& value : values) {
      const auto it =
          std::lower_bound(dictionary.begin(), dictionary.end(), value);
      const auto code = static_cast<uint64_t>(it - dictionary.begin());
      WriteCode(packed.data(), row++, bits, code);
    }
    return BitPackedColumn(std::move(dictionary), std::move(packed),
                           values.size(), bits);
  }

  BitPackedColumn(std::vector<T> dictionary, AlignedVector<uint8_t> packed,
                  size_t rows, int bits)
      : dictionary_(std::move(dictionary)),
        packed_(std::move(packed)),
        rows_(rows),
        bits_(bits) {
    FTS_CHECK(bits_ >= 1 && bits_ <= kMaxPackedBits);
    FTS_CHECK(packed_.size() >=
              PackedBytes(rows_, bits_) + kBitPackedSlackBytes);
  }

  size_t size() const override { return rows_; }
  DataType data_type() const override { return TypeTraits<T>::kType; }
  ColumnEncoding encoding() const override {
    return ColumnEncoding::kBitPacked;
  }
  // Scans read the packed byte stream; logical scan elements are uint32
  // codes at packed_bit_width() bits each.
  const void* scan_data() const override { return packed_.data(); }
  DataType scan_type() const override { return DataType::kUInt32; }
  uint8_t packed_bit_width() const override {
    return static_cast<uint8_t>(bits_);
  }
  Value GetValue(size_t row) const override {
    return dictionary_[CodeAt(row)];
  }

  // Decoded code of `row` (scalar reference for the SIMD unpack paths).
  uint32_t CodeAt(size_t row) const {
    FTS_DCHECK(row < rows_);
    return ExtractCode(packed_.data(), row, bits_);
  }

  const std::vector<T>& dictionary() const { return dictionary_; }
  int bit_width() const { return bits_; }
  size_t packed_bytes() const { return PackedBytes(rows_, bits_); }

  // Compression ratio versus a plain uint32 code vector.
  double CompressionVsCodes() const {
    return static_cast<double>(rows_ * sizeof(uint32_t)) /
           static_cast<double>(packed_bytes());
  }

  DictionaryPredicate TranslatePredicate(CompareOp op, T search_value) const {
    return TranslateSortedDictionaryPredicate(dictionary_, op, search_value);
  }

  // --- Packing primitives (shared with tests and the scalar kernel) ---

  static int BitWidthFor(size_t dictionary_size) {
    if (dictionary_size <= 2) return 1;
    return std::bit_width(dictionary_size - 1);
  }

  static size_t PackedBytes(size_t rows, int bits) {
    return (rows * static_cast<size_t>(bits) + 7) / 8;
  }

  // Reads the b-bit code of `row` from an 8-byte window at byte
  // granularity — exactly the dataflow the SIMD gather stage uses.
  static uint32_t ExtractCode(const uint8_t* packed, size_t row, int bits) {
    const size_t bit_offset = row * static_cast<size_t>(bits);
    const size_t byte_offset = bit_offset >> 3;
    const int shift = static_cast<int>(bit_offset & 7);
    uint64_t window;
    __builtin_memcpy(&window, packed + byte_offset, sizeof(window));
    const uint64_t mask = (bits == 64) ? ~0ull : ((1ull << bits) - 1);
    return static_cast<uint32_t>((window >> shift) & mask);
  }

  static void WriteCode(uint8_t* packed, size_t row, int bits,
                        uint64_t code) {
    const size_t bit_offset = row * static_cast<size_t>(bits);
    const size_t byte_offset = bit_offset >> 3;
    const int shift = static_cast<int>(bit_offset & 7);
    uint64_t window;
    __builtin_memcpy(&window, packed + byte_offset, sizeof(window));
    const uint64_t mask = ((1ull << bits) - 1) << shift;
    window = (window & ~mask) | ((code << shift) & mask);
    __builtin_memcpy(packed + byte_offset, &window, sizeof(window));
  }

 private:
  std::vector<T> dictionary_;
  AlignedVector<uint8_t> packed_;
  size_t rows_;
  int bits_;
};

}  // namespace fts

#endif  // FTS_STORAGE_BITPACKED_COLUMN_H_
