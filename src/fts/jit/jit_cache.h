#ifndef FTS_JIT_JIT_CACHE_H_
#define FTS_JIT_JIT_CACHE_H_

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fts/common/status.h"
#include "fts/jit/code_generator.h"
#include "fts/jit/compiler_driver.h"
#include "fts/jit/scan_signature.h"

namespace fts {

struct JitCacheOptions {
  JitCompilerOptions compiler;
  // Maximum resident compiled modules; the least recently used entry is
  // evicted beyond this (in-flight users stay alive via shared_ptr).
  size_t capacity = 64;
  // Compile attempts per signature before it is poisoned: further requests
  // return the cached failure without invoking the compiler again.
  int max_compile_attempts = 2;
  // Deadline-aware engine selection: a query whose remaining deadline
  // budget is below this floor does not start a compile for a cache miss
  // (kDeadlineExceeded is returned and the ladder demotes to a
  // precompiled rung). A compile latency the budget cannot amortize is a
  // robustness hazard on short queries, not a perf win. Overridden by
  // FTS_JIT_MIN_COMPILE_BUDGET_MS; <= 0 disables the floor.
  int64_t min_compile_budget_millis = 100;
};

// Signature-keyed cache of compiled fused-scan operators. Section V:
// "Especially when compiled operators are cached for future use, we do not
// see the additional compile time as a deciding bottleneck." Thread-safe.
//
// Robustness properties (all observable through Stats):
//   - single-flight: concurrent requests for one signature trigger exactly
//     one compilation; the others wait for its result;
//   - negative caching: a signature whose compilation failed is retried at
//     most max_compile_attempts times, then poisoned — per-chunk execution
//     cannot stampede a broken toolchain;
//   - sticky compiler-unavailable: when the compiler binary itself cannot
//     be executed (kUnavailable), every signature short-circuits until
//     Clear() — no signature can compile without a compiler;
//   - bounded capacity with LRU eviction.
class JitCache {
 public:
  JitCache() : JitCache(JitCacheOptions()) {}
  explicit JitCache(JitCacheOptions options);
  // Legacy convenience: cache with default bounds over `compiler_options`.
  explicit JitCache(JitCompilerOptions compiler_options);

  struct Entry {
    std::shared_ptr<JitModule> module;
    JitScanFn fn = nullptr;
    // Attribution for the request that produced this copy of the entry:
    // a cache hit returns {0.0, true}; the request that led the compile
    // returns the compile wall time with cache_hit = false. Callers
    // accumulate these into their query's ExecutionReport.
    double compile_millis = 0.0;
    bool cache_hit = false;
  };

  // Returns the compiled operator for `signature`, generating and
  // compiling it on first use. `ctx` (nullable) makes the compile
  // lifecycle-aware: a cache hit is always served, but a miss is refused
  // when the remaining deadline budget is below the compile floor, an
  // in-flight compile is killed when the query is canceled, and — unlike
  // real toolchain failures — a cancellation-driven abort is NOT recorded
  // against the signature (no poisoning, no sticky latch): the next query
  // compiles it fresh.
  StatusOr<Entry> GetOrCompile(const JitScanSignature& signature,
                               QueryContext* ctx = nullptr);

  // The driver owning the child-process bookkeeping (tests assert killed
  // compiles are reaped through this).
  const JitCompiler& compiler() const { return compiler_; }

  struct Stats {
    uint64_t hits = 0;
    // Compilations led by this cache (successful or not).
    uint64_t misses = 0;
    // Requests short-circuited by a poisoned signature or a sticky
    // compiler-unavailable state (degradation events).
    uint64_t negative_hits = 0;
    uint64_t compile_failures = 0;
    // Requests that waited on another thread's in-flight compilation.
    uint64_t single_flight_waits = 0;
    uint64_t evictions = 0;
    double total_compile_millis = 0.0;
  };
  Stats stats() const;

  // Resident compiled modules.
  size_t size() const;

  // Drops all cached modules (the shared_ptrs keep in-flight users alive),
  // forgets negative entries, and clears the compiler-unavailable latch.
  void Clear();

  const JitCacheOptions& options() const { return options_; }

 private:
  struct Resident {
    Entry entry;
    std::list<std::string>::iterator lru;  // Position in lru_.
  };
  struct Failure {
    Status status;
    int attempts = 0;
  };
  struct InFlight {
    bool done = false;
    std::condition_variable cv;
  };

  // Inserts under mutex_ and evicts beyond capacity.
  void InsertLocked(const std::string& key, const Entry& entry);

  mutable std::mutex mutex_;
  JitCompiler compiler_;
  JitCacheOptions options_;
  std::map<std::string, Resident> entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::map<std::string, Failure> failures_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  bool compiler_unavailable_ = false;
  Status compiler_unavailable_status_;
  Stats stats_;
};

// Process-wide cache instance used by JitScanEngine by default.
JitCache& GlobalJitCache();

}  // namespace fts

#endif  // FTS_JIT_JIT_CACHE_H_
