#ifndef FTS_JIT_JIT_CACHE_H_
#define FTS_JIT_JIT_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fts/common/status.h"
#include "fts/jit/code_generator.h"
#include "fts/jit/compiler_driver.h"
#include "fts/jit/scan_signature.h"

namespace fts {

// Signature-keyed cache of compiled fused-scan operators. Section V:
// "Especially when compiled operators are cached for future use, we do not
// see the additional compile time as a deciding bottleneck." Thread-safe.
class JitCache {
 public:
  explicit JitCache(JitCompilerOptions options = JitCompilerOptions());

  struct Entry {
    std::shared_ptr<JitModule> module;
    JitScanFn fn = nullptr;
  };

  // Returns the compiled operator for `signature`, generating and
  // compiling it on first use.
  StatusOr<Entry> GetOrCompile(const JitScanSignature& signature);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double total_compile_millis = 0.0;
  };
  Stats stats() const;

  // Drops all cached modules (the shared_ptrs keep in-flight users alive).
  void Clear();

 private:
  mutable std::mutex mutex_;
  JitCompiler compiler_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

// Process-wide cache instance used by JitScanEngine by default.
JitCache& GlobalJitCache();

}  // namespace fts

#endif  // FTS_JIT_JIT_CACHE_H_
