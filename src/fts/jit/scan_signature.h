#ifndef FTS_JIT_SCAN_SIGNATURE_H_
#define FTS_JIT_SCAN_SIGNATURE_H_

#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/scan/compressed_scan.h"
#include "fts/simd/agg_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// The compile-time shape of a fused scan chain: element type and
// comparator per stage, plus the register width. Search values and column
// pointers stay runtime arguments of the generated function, so one
// compiled operator serves every query with the same shape — this is what
// makes the JIT cache effective, and it is exactly the parameter split
// Section V describes (10 types x 6 comparators per stage explode
// combinatorially; values do not).
struct JitStageSignature {
  ScanElementType type = ScanElementType::kI32;
  CompareOp op = CompareOp::kEq;
  // Bit-packed code stream width; 0 = plain fixed-size elements. Part of
  // the signature because the generated unpack sequence depends on it.
  uint8_t packed_bits = 0;
  // ColumnEncoding of the stage's operand stream as the generated code
  // sees it. Only two values ever appear: 0 (kernel-scannable — plain,
  // dictionary, bit-packed and frame-of-reference stages all compile to
  // the same per-row chain, so they share cache entries) and
  // ColumnEncoding::kRle (the stage operand is a JitRleView and the
  // generated operator co-iterates runs instead of rows).
  uint8_t encoding = 0;

  friend bool operator==(const JitStageSignature& a,
                         const JitStageSignature& b) = default;
};

// One aggregate term of a generated aggregate-pushdown operator. Only
// plain (non-dictionary, non-bit-packed) columns are JIT-eligible — the
// other engines fold those; the ladder demotes such morsels past the JIT
// rungs. The fold code depends on the op, the element type read from the
// column, and the accumulator domain, so all three are signature.
struct JitAggSignature {
  AggOp op = AggOp::kCount;
  ScanElementType type = ScanElementType::kI32;
  AggDomain domain = AggDomain::kSigned;

  friend bool operator==(const JitAggSignature& a,
                         const JitAggSignature& b) = default;
};

struct JitScanSignature {
  std::vector<JitStageSignature> stages;
  int register_bits = 512;  // 128, 256 or 512.
  // Count-only operators skip the compress-store of match positions and
  // just accumulate popcounts — the exact shape of the paper's
  // SELECT COUNT(*) query. The generated function ignores `out`.
  bool count_only = false;
  // Aggregate-pushdown operators fold these terms at every emission site
  // instead of materializing positions; `out` is reinterpreted as an
  // AggAccumulator array (one 72-byte slot per term, already
  // default-initialized by the caller). Mutually exclusive with
  // `count_only`; aggregate column pointers follow the stage columns in
  // the `columns` argument.
  std::vector<JitAggSignature> aggs;

  // Canonical cache key, e.g. "512:i32=;u32<;f64>=" or
  // "512:i32=;i32=#count" or "512:i32<#agg:SUMi32s,MINf64f".
  std::string CacheKey() const;

  friend bool operator==(const JitScanSignature& a,
                         const JitScanSignature& b) = default;
};

// Builds the signature of a prepared per-chunk stage array.
JitScanSignature SignatureForStages(const std::vector<ScanStage>& stages,
                                    int register_bits);

// Builds the signature of an all-RLE compressed-domain chain
// (fts/scan/compressed_scan.h). Fails with InvalidArgument when any stage
// column is not RLE-encoded or its data type has no kernel element type —
// the ladder then demotes the morsel to the interpreted range path.
StatusOr<JitScanSignature> SignatureForRleChain(
    const std::vector<CompressedScanStage>& compressed, int register_bits,
    bool count_only);

}  // namespace fts

#endif  // FTS_JIT_SCAN_SIGNATURE_H_
