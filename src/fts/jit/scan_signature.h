#ifndef FTS_JIT_SCAN_SIGNATURE_H_
#define FTS_JIT_SCAN_SIGNATURE_H_

#include <string>
#include <vector>

#include "fts/common/status.h"
#include "fts/scan/compressed_scan.h"
#include "fts/simd/agg_spec.h"
#include "fts/simd/gather_spec.h"
#include "fts/simd/scan_stage.h"

namespace fts {

// The compile-time shape of a fused scan chain: element type and
// comparator per stage, plus the register width. Search values and column
// pointers stay runtime arguments of the generated function, so one
// compiled operator serves every query with the same shape — this is what
// makes the JIT cache effective, and it is exactly the parameter split
// Section V describes (10 types x 6 comparators per stage explode
// combinatorially; values do not).
struct JitStageSignature {
  ScanElementType type = ScanElementType::kI32;
  CompareOp op = CompareOp::kEq;
  // Bit-packed code stream width; 0 = plain fixed-size elements. Part of
  // the signature because the generated unpack sequence depends on it.
  uint8_t packed_bits = 0;
  // ColumnEncoding of the stage's operand stream as the generated code
  // sees it. Only two values ever appear: 0 (kernel-scannable — plain,
  // dictionary, bit-packed and frame-of-reference stages all compile to
  // the same per-row chain, so they share cache entries) and
  // ColumnEncoding::kRle (the stage operand is a JitRleView and the
  // generated operator co-iterates runs instead of rows).
  uint8_t encoding = 0;

  friend bool operator==(const JitStageSignature& a,
                         const JitStageSignature& b) = default;
};

// One aggregate term of a generated aggregate-pushdown operator. Only
// plain (non-dictionary, non-bit-packed) columns are JIT-eligible — the
// other engines fold those; the ladder demotes such morsels past the JIT
// rungs. The fold code depends on the op, the element type read from the
// column, and the accumulator domain, so all three are signature.
struct JitAggSignature {
  AggOp op = AggOp::kCount;
  ScanElementType type = ScanElementType::kI32;
  AggDomain domain = AggDomain::kSigned;

  friend bool operator==(const JitAggSignature& a,
                         const JitAggSignature& b) = default;
};

// One projected column of a generated batch-gather operator (the JIT
// mirror of GatherTerm). Like the scan stages, only the compile-time
// shape is signature: the element type, the packed code width and
// whether a dictionary translates codes to values. Column pointers, the
// decode table, the FoR base and the output slice stay runtime arguments
// (JitGatherView), so one compiled gather serves every chunk — and every
// query — with the same column shapes.
struct JitGatherSignature {
  ScanElementType type = ScanElementType::kI32;
  // Bit-packed code stream width; 0 = plain elements or unpacked u32
  // codes. The generated window-extract sequence depends on it.
  uint8_t packed_bits = 0;
  // True: codes index a decode table of `type` elements. False with
  // packed_bits != 0 is frame-of-reference (code + runtime base).
  bool dict = false;

  friend bool operator==(const JitGatherSignature& a,
                         const JitGatherSignature& b) = default;
};

struct JitScanSignature {
  std::vector<JitStageSignature> stages;
  int register_bits = 512;  // 128, 256 or 512.
  // Count-only operators skip the compress-store of match positions and
  // just accumulate popcounts — the exact shape of the paper's
  // SELECT COUNT(*) query. The generated function ignores `out`.
  bool count_only = false;
  // Aggregate-pushdown operators fold these terms at every emission site
  // instead of materializing positions; `out` is reinterpreted as an
  // AggAccumulator array (one 72-byte slot per term, already
  // default-initialized by the caller). Mutually exclusive with
  // `count_only`; aggregate column pointers follow the stage columns in
  // the `columns` argument.
  std::vector<JitAggSignature> aggs;
  // Non-empty: the signature names a gather-only operator (stages/aggs
  // empty, count_only false) that materializes these columns at a
  // position list — the late-materialization projection fused into one
  // generated pass. `values` is reinterpreted as the position array and
  // each `columns` slot as a JitGatherView.
  std::vector<JitGatherSignature> gathers;

  // Canonical cache key, e.g. "512:i32=;u32<;f64>=" or
  // "512:i32=;i32=#count" or "512:i32<#agg:SUMi32s,MINf64f" or
  // "512:#gather:i32,u32@7d,i64" for a gather-only operator.
  std::string CacheKey() const;

  friend bool operator==(const JitScanSignature& a,
                         const JitScanSignature& b) = default;
};

// Builds the signature of a prepared per-chunk stage array.
JitScanSignature SignatureForStages(const std::vector<ScanStage>& stages,
                                    int register_bits);

// Builds the signature of an all-RLE compressed-domain chain
// (fts/scan/compressed_scan.h). Fails with InvalidArgument when any stage
// column is not RLE-encoded or its data type has no kernel element type —
// the ladder then demotes the morsel to the interpreted range path.
StatusOr<JitScanSignature> SignatureForRleChain(
    const std::vector<CompressedScanStage>& compressed, int register_bits,
    bool count_only);

// Builds the gather-only signature of `num_terms` kernel-eligible gather
// terms (fts/simd/gather_spec.h) in output-column order. Fails with
// InvalidArgument when the term count is outside 1..kMaxGatherTerms or a
// frame-of-reference term carries a float element type (FoR never
// encodes floats); the caller then projects through the static kernels.
StatusOr<JitScanSignature> SignatureForGatherTerms(const GatherTerm* terms,
                                                   size_t num_terms);

}  // namespace fts

#endif  // FTS_JIT_SCAN_SIGNATURE_H_
