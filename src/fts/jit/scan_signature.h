#ifndef FTS_JIT_SCAN_SIGNATURE_H_
#define FTS_JIT_SCAN_SIGNATURE_H_

#include <string>
#include <vector>

#include "fts/simd/scan_stage.h"

namespace fts {

// The compile-time shape of a fused scan chain: element type and
// comparator per stage, plus the register width. Search values and column
// pointers stay runtime arguments of the generated function, so one
// compiled operator serves every query with the same shape — this is what
// makes the JIT cache effective, and it is exactly the parameter split
// Section V describes (10 types x 6 comparators per stage explode
// combinatorially; values do not).
struct JitStageSignature {
  ScanElementType type = ScanElementType::kI32;
  CompareOp op = CompareOp::kEq;
  // Bit-packed code stream width; 0 = plain fixed-size elements. Part of
  // the signature because the generated unpack sequence depends on it.
  uint8_t packed_bits = 0;

  friend bool operator==(const JitStageSignature& a,
                         const JitStageSignature& b) = default;
};

struct JitScanSignature {
  std::vector<JitStageSignature> stages;
  int register_bits = 512;  // 128, 256 or 512.
  // Count-only operators skip the compress-store of match positions and
  // just accumulate popcounts — the exact shape of the paper's
  // SELECT COUNT(*) query. The generated function ignores `out`.
  bool count_only = false;

  // Canonical cache key, e.g. "512:i32=;u32<;f64>=" or
  // "512:i32=;i32=#count".
  std::string CacheKey() const;

  friend bool operator==(const JitScanSignature& a,
                         const JitScanSignature& b) = default;
};

// Builds the signature of a prepared per-chunk stage array.
JitScanSignature SignatureForStages(const std::vector<ScanStage>& stages,
                                    int register_bits);

}  // namespace fts

#endif  // FTS_JIT_SCAN_SIGNATURE_H_
