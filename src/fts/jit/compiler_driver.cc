#include "fts/jit/compiler_driver.h"

#include <dirent.h>
#include <dlfcn.h>
#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "fts/common/env.h"
#include "fts/common/fault_injection.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"
#include "fts/obs/metrics.h"

namespace fts {
namespace {

// Reads a whole file; empty string when unreadable.
std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Bounded compiler-log excerpt for error messages.
std::string LogExcerpt(const std::string& log_path) {
  std::string log = ReadFileOrEmpty(log_path);
  if (log.size() > 2000) log.resize(2000);
  return log;
}

void SleepMillis(int64_t millis) {
  timespec ts;
  ts.tv_sec = millis / 1000;
  ts.tv_nsec = (millis % 1000) * 1000000;
  nanosleep(&ts, nullptr);
}

// Removes every entry directly inside `dir`, then `dir` itself. The
// compiler may leave files beyond the ones we created (e.g. partial
// objects), so the scratch directory is swept rather than removing a
// fixed file list.
void RemoveScratchDir(const std::string& dir) {
  if (dir.empty()) return;
  DIR* handle = opendir(dir.c_str());
  if (handle != nullptr) {
    while (dirent* entry = readdir(handle)) {
      const char* name = entry->d_name;
      if (strcmp(name, ".") == 0 || strcmp(name, "..") == 0) continue;
      std::remove((dir + "/" + name).c_str());
    }
    closedir(handle);
  }
  rmdir(dir.c_str());
}

// Deletes the scratch directory on scope exit unless told to keep it.
struct ScratchDirGuard {
  std::string path;
  bool keep = false;
  ~ScratchDirGuard() {
    if (!keep) RemoveScratchDir(path);
  }
};

// Runs the external compiler: fork/exec with stdout+stderr redirected into
// `log_path`, transient spawn failures retried with exponential backoff,
// and a waitpid poll loop enforcing both the compile deadline and the
// owning query's cancellation (SIGKILL + reap on either, so no compiler
// process ever outlives the call). `child` reports the pid and whether it
// was killed/reaped, for the zombie-free assertions in tests.
Status RunCompilerProcess(const std::vector<std::string>& command,
                          const std::string& log_path,
                          const JitCompilerOptions& options, QueryContext* ctx,
                          JitCompiler::ChildStats* child) {
  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const std::string& arg : command) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  pid_t pid = -1;
  int64_t backoff = options.retry_backoff_millis > 0
                        ? options.retry_backoff_millis
                        : 1;
  const int max_attempts =
      options.max_spawn_attempts > 0 ? options.max_spawn_attempts : 1;
  for (int attempt = 1;; ++attempt) {
    int spawn_errno = 0;
    if (FaultInjection::Instance().ShouldFail(kFaultJitSpawnTransient)) {
      spawn_errno = EAGAIN;
    } else {
      pid = fork();
      if (pid == 0) {
        // Child: capture everything the compiler says, then exec. 127 is
        // the shell convention for "command not found".
        const int fd =
            open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
          dup2(fd, STDOUT_FILENO);
          dup2(fd, STDERR_FILENO);
          close(fd);
        }
        execvp(argv[0], argv.data());
        _exit(127);
      }
      if (pid > 0) break;
      spawn_errno = errno;
    }
    const bool transient = spawn_errno == EAGAIN || spawn_errno == ENOMEM;
    if (!transient || attempt >= max_attempts) {
      return Status::Internal(StrFormat(
          "cannot spawn JIT compiler '%s': %s (attempt %d of %d)",
          command[0].c_str(), strerror(spawn_errno), attempt, max_attempts));
    }
    SleepMillis(backoff);
    backoff *= 2;
  }

  child->pid = pid;

  Stopwatch stopwatch;
  int wait_status = 0;
  for (;;) {
    const pid_t done = waitpid(pid, &wait_status, WNOHANG);
    if (done == pid) {
      child->reaped = true;
      break;
    }
    if (done < 0) {
      return Status::Internal(
          StrFormat("waitpid(compiler) failed: %s", strerror(errno)));
    }
    // The owning query was canceled (or its deadline fired): the compile
    // result can never be used, so kill the child now rather than letting
    // it burn the core until its own timeout. SIGKILL is unblockable, so
    // the blocking reap below cannot hang.
    const Status cancel = CheckCancellation(ctx);
    if (!cancel.ok()) {
      kill(pid, SIGKILL);
      waitpid(pid, &wait_status, 0);
      child->killed = true;
      child->reaped = true;
      obs::Metrics().jit_compiles_killed_total->Increment();
      return Status(cancel.code(),
                    cancel.message() + "; in-flight compiler process killed");
    }
    if (options.compile_timeout_millis > 0 &&
        stopwatch.ElapsedMillis() >
            static_cast<double>(options.compile_timeout_millis)) {
      kill(pid, SIGKILL);
      waitpid(pid, &wait_status, 0);  // SIGKILL is unblockable: reap now.
      child->killed = true;
      child->reaped = true;
      return Status::DeadlineExceeded(StrFormat(
          "JIT compilation exceeded %lld ms; compiler process killed",
          static_cast<long long>(options.compile_timeout_millis)));
    }
    SleepMillis(5);
  }

  if (WIFSIGNALED(wait_status)) {
    return Status::Internal(StrFormat(
        "JIT compiler terminated by signal %d:\n%s", WTERMSIG(wait_status),
        LogExcerpt(log_path).c_str()));
  }
  const int rc = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  if (rc == 127) {
    return Status::Unavailable(StrFormat("JIT compiler '%s' not executable",
                                         command[0].c_str()));
  }
  if (rc != 0) {
    return Status::Internal(StrFormat("JIT compilation failed (rc=%d):\n%s",
                                      rc, LogExcerpt(log_path).c_str()));
  }
  return Status::Ok();
}

}  // namespace

JitModule::~JitModule() {
  if (handle_ != nullptr) dlclose(handle_);
}

JitCompiler::JitCompiler(JitCompilerOptions options)
    : options_(std::move(options)) {
  options_.compiler = GetEnvString("FTS_JIT_CXX", options_.compiler);
  options_.compile_timeout_millis = GetEnvInt64(
      "FTS_JIT_COMPILE_TIMEOUT_MS", options_.compile_timeout_millis);
  if (options_.work_dir.empty()) {
    options_.work_dir = GetEnvString("TMPDIR", "/tmp");
  }
}

StatusOr<std::shared_ptr<JitModule>> JitCompiler::Compile(
    const std::string& source, const std::string& symbol, QueryContext* ctx) {
  if (source.empty()) return Status::InvalidArgument("empty source");
  // A query canceled before the compile starts skips the spawn entirely
  // (nothing to kill, nothing to clean up).
  FTS_RETURN_IF_ERROR(CheckCancellation(ctx));

  FaultInjection& faults = FaultInjection::Instance();
  if (faults.ShouldFail(kFaultJitCompilerMissing)) {
    return Status::Unavailable(
        StrFormat("JIT compiler '%s' not executable (injected fault %s)",
                  options_.compiler.c_str(), kFaultJitCompilerMissing));
  }

  Stopwatch stopwatch;

  // Private scratch directory per compilation, removed on every exit path
  // (success or failure) unless artifacts were requested.
  std::string dir_template = options_.work_dir + "/fts-jit-XXXXXX";
  std::vector<char> dir_buffer(dir_template.begin(), dir_template.end());
  dir_buffer.push_back('\0');
  if (mkdtemp(dir_buffer.data()) == nullptr) {
    return Status::Internal(
        StrFormat("mkdtemp(%s) failed", dir_template.c_str()));
  }
  ScratchDirGuard scratch{std::string(dir_buffer.data()),
                          options_.keep_artifacts};
  const std::string src_path = scratch.path + "/scan.cpp";
  const std::string so_path = scratch.path + "/scan.so";
  const std::string log_path = scratch.path + "/compile.log";

  {
    std::ofstream out(src_path);
    if (!out) {
      return Status::Internal(StrFormat("cannot write %s", src_path.c_str()));
    }
    out << source;
  }

  if (faults.ShouldFail(kFaultJitCompileError)) {
    return Status::Internal(
        StrFormat("JIT compilation failed (injected fault %s)",
                  kFaultJitCompileError));
  }
  if (faults.ShouldFail(kFaultJitCompileTimeout)) {
    return Status::DeadlineExceeded(
        StrFormat("JIT compilation exceeded %lld ms (injected fault %s)",
                  static_cast<long long>(options_.compile_timeout_millis),
                  kFaultJitCompileTimeout));
  }

  std::vector<std::string> command;
  command.push_back(options_.compiler);
  for (const std::string& flag : Split(options_.flags, ' ')) {
    if (!flag.empty()) command.push_back(flag);
  }
  command.push_back("-o");
  command.push_back(so_path);
  command.push_back(src_path);
  ChildStats child;
  const Status run_status =
      RunCompilerProcess(command, log_path, options_, ctx, &child);
  if (child.pid > 0) RecordChild(child);
  FTS_RETURN_IF_ERROR(run_status);

  if (faults.ShouldFail(kFaultJitDlopenFail)) {
    return Status::Internal(StrFormat("dlopen failed (injected fault %s)",
                                      kFaultJitDlopenFail));
  }
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* error = dlerror();
    return Status::Internal(
        StrFormat("dlopen failed: %s", error != nullptr ? error : "?"));
  }
  void* resolved = dlsym(handle, symbol.c_str());
  if (faults.ShouldFail(kFaultJitSymbolMissing)) resolved = nullptr;
  if (resolved == nullptr) {
    dlclose(handle);
    return Status::Internal(StrFormat(
        "symbol '%s' not found in generated module", symbol.c_str()));
  }

  auto module = std::shared_ptr<JitModule>(new JitModule());
  module->handle_ = handle;
  module->symbol_ = resolved;
  module->compile_millis_ = stopwatch.ElapsedMillis();
  module->source_ = source;
  // The .so stays mapped via the dlopen handle; its directory entry can go
  // unless artifacts were requested (ScratchDirGuard handles both).
  return module;
}

}  // namespace fts
