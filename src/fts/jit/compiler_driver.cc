#include "fts/jit/compiler_driver.h"

#include <dlfcn.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fts/common/env.h"
#include "fts/common/string_util.h"
#include "fts/common/timer.h"

namespace fts {
namespace {

// Reads a whole file; empty string when unreadable.
std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

JitModule::~JitModule() {
  if (handle_ != nullptr) dlclose(handle_);
}

JitCompiler::JitCompiler(JitCompilerOptions options)
    : options_(std::move(options)) {
  options_.compiler = GetEnvString("FTS_JIT_CXX", options_.compiler);
  if (options_.work_dir.empty()) {
    options_.work_dir = GetEnvString("TMPDIR", "/tmp");
  }
}

StatusOr<std::shared_ptr<JitModule>> JitCompiler::Compile(
    const std::string& source, const std::string& symbol) {
  if (source.empty()) return Status::InvalidArgument("empty source");

  Stopwatch stopwatch;

  // Private scratch directory per compilation.
  std::string dir_template = options_.work_dir + "/fts-jit-XXXXXX";
  std::vector<char> dir_buffer(dir_template.begin(), dir_template.end());
  dir_buffer.push_back('\0');
  if (mkdtemp(dir_buffer.data()) == nullptr) {
    return Status::Internal(
        StrFormat("mkdtemp(%s) failed", dir_template.c_str()));
  }
  const std::string dir(dir_buffer.data());
  const std::string src_path = dir + "/scan.cpp";
  const std::string so_path = dir + "/scan.so";
  const std::string log_path = dir + "/compile.log";

  auto cleanup = [&]() {
    if (options_.keep_artifacts) return;
    std::remove(src_path.c_str());
    std::remove(so_path.c_str());
    std::remove(log_path.c_str());
    rmdir(dir.c_str());
  };

  {
    std::ofstream out(src_path);
    if (!out) {
      cleanup();
      return Status::Internal(
          StrFormat("cannot write %s", src_path.c_str()));
    }
    out << source;
  }

  const std::string command =
      StrFormat("%s %s -o %s %s > %s 2>&1", options_.compiler.c_str(),
                options_.flags.c_str(), so_path.c_str(), src_path.c_str(),
                log_path.c_str());
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    std::string log = ReadFileOrEmpty(log_path);
    if (log.size() > 2000) log.resize(2000);
    const Status status =
        (rc == 127 || rc == 32512)
            ? Status::Unavailable(StrFormat(
                  "JIT compiler '%s' not executable",
                  options_.compiler.c_str()))
            : Status::Internal(StrFormat("JIT compilation failed (rc=%d):\n%s",
                                         rc, log.c_str()));
    cleanup();
    return status;
  }

  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const std::string error = dlerror();
    cleanup();
    return Status::Internal(StrFormat("dlopen failed: %s", error.c_str()));
  }
  void* resolved = dlsym(handle, symbol.c_str());
  if (resolved == nullptr) {
    dlclose(handle);
    cleanup();
    return Status::Internal(
        StrFormat("symbol '%s' not found in generated module",
                  symbol.c_str()));
  }

  auto module = std::shared_ptr<JitModule>(new JitModule());
  module->handle_ = handle;
  module->symbol_ = resolved;
  module->compile_millis_ = stopwatch.ElapsedMillis();
  module->source_ = source;
  // The .so stays mapped via the dlopen handle; its directory entry can go
  // unless artifacts were requested.
  cleanup();
  return module;
}

}  // namespace fts
