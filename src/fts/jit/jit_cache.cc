#include "fts/jit/jit_cache.h"

#include <thread>

#include "fts/common/env.h"
#include "fts/common/string_util.h"
#include "fts/obs/metrics.h"
#include "fts/obs/trace.h"

namespace fts {

JitCache::JitCache(JitCacheOptions options)
    : compiler_(options.compiler), options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.max_compile_attempts < 1) options_.max_compile_attempts = 1;
  options_.min_compile_budget_millis = GetEnvInt64(
      "FTS_JIT_MIN_COMPILE_BUDGET_MS", options_.min_compile_budget_millis);
}

JitCache::JitCache(JitCompilerOptions compiler_options)
    : JitCache([&] {
        JitCacheOptions options;
        options.compiler = std::move(compiler_options);
        return options;
      }()) {}

void JitCache::InsertLocked(const std::string& key, const Entry& entry) {
  lru_.push_front(key);
  entries_[key] = Resident{entry, lru_.begin()};
  while (entries_.size() > options_.capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

StatusOr<JitCache::Entry> JitCache::GetOrCompile(
    const JitScanSignature& signature, QueryContext* ctx) {
  const std::string key = signature.CacheKey();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      obs::Metrics().jit_cache_hits_total->Increment();
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      Entry entry = it->second.entry;
      entry.compile_millis = 0.0;
      entry.cache_hit = true;
      return entry;
    }
    // Cache miss: deadline-aware engine selection. A remaining budget
    // below the compile floor cannot amortize a compile (nor a wait on
    // someone else's), so refuse here and let the ladder demote to a
    // precompiled rung. Intentionally NOT recorded as a failure: the
    // signature stays compilable for queries with room.
    if (ctx != nullptr && options_.min_compile_budget_millis > 0 &&
        ctx->has_deadline() &&
        ctx->RemainingMillis() <
            static_cast<double>(options_.min_compile_budget_millis)) {
      obs::Metrics().jit_compiles_skipped_budget_total->Increment();
      return Status::DeadlineExceeded(StrFormat(
          "remaining deadline budget %.1f ms is below the %lld ms JIT "
          "compile floor; demoting to a precompiled engine",
          ctx->RemainingMillis(),
          static_cast<long long>(options_.min_compile_budget_millis)));
    }
    if (compiler_unavailable_) {
      ++stats_.negative_hits;
      obs::Metrics().jit_cache_negative_hits_total->Increment();
      return compiler_unavailable_status_;
    }
    const auto failed = failures_.find(key);
    if (failed != failures_.end() &&
        failed->second.attempts >= options_.max_compile_attempts) {
      ++stats_.negative_hits;
      obs::Metrics().jit_cache_negative_hits_total->Increment();
      return failed->second.status;
    }
    const auto flight = inflight_.find(key);
    if (flight == inflight_.end()) break;
    // Another thread is compiling this signature: wait for its verdict and
    // re-check (single-flight — no compiler stampede per chunk/query).
    ++stats_.single_flight_waits;
    const std::shared_ptr<InFlight> shared = flight->second;
    shared->cv.wait(lock, [&shared] { return shared->done; });
  }

  // This thread leads the compilation for `key`.
  const auto flight = std::make_shared<InFlight>();
  inflight_[key] = flight;
  ++stats_.misses;
  obs::Metrics().jit_cache_misses_total->Increment();
  lock.unlock();

  // A compile is a slow (>=100ms) external-toolchain round trip: run it on
  // a short-lived named thread so its span lands on a dedicated "jit
  // compile" track in traces instead of interleaving with whichever query
  // thread happened to lead the single flight. Spawn cost is noise at this
  // scale, and the cancellation kill path is unaffected (child-pid
  // bookkeeping lives inside the compiler driver).
  StatusOr<Entry> compiled =
      Status::Internal("jit compile thread did not run");
  std::thread compile_thread([&]() {
    obs::SetCurrentThreadLabel("jit compile");
    compiled = [&]() -> StatusOr<Entry> {
      obs::TraceSpan span("jit_compile", "jit");
      FTS_ASSIGN_OR_RETURN(const std::string source,
                           signature.gathers.empty()
                               ? GenerateFusedScanSource(signature)
                               : GenerateGatherSource(signature));
      FTS_ASSIGN_OR_RETURN(std::shared_ptr<JitModule> module,
                           compiler_.Compile(source, kJitScanSymbol, ctx));
      Entry entry;
      entry.module = std::move(module);
      entry.fn = reinterpret_cast<JitScanFn>(entry.module->symbol_address());
      entry.compile_millis = entry.module->compile_millis();
      entry.cache_hit = false;
      if (span.active()) {
        span.AddArg("signature", key);
        span.AddArg("compile_millis",
                    static_cast<uint64_t>(entry.compile_millis));
      }
      return entry;
    }();
  });
  compile_thread.join();

  lock.lock();
  if (compiled.ok()) {
    stats_.total_compile_millis += compiled->module->compile_millis();
    obs::Metrics().jit_compile_micros->Record(
        static_cast<uint64_t>(compiled->module->compile_millis() * 1000.0));
    failures_.erase(key);
    InsertLocked(key, *compiled);
  } else if (ctx != nullptr && ctx->cancelled()) {
    // The compile was aborted because THIS query died, which says nothing
    // about the signature or the toolchain: no poisoning, no sticky
    // unavailable latch. Single-flight waiters wake, find neither an
    // entry nor a failure, and the next one leads a fresh compile.
  } else {
    ++stats_.compile_failures;
    obs::Metrics().jit_compile_failures_total->Increment();
    Failure& failure = failures_[key];
    ++failure.attempts;
    failure.status = compiled.status();
    if (compiled.status().code() == StatusCode::kUnavailable) {
      // The compiler binary itself is unusable; no signature can compile
      // until the operator intervenes (or Clear() is called).
      compiler_unavailable_ = true;
      compiler_unavailable_status_ = compiled.status();
    }
  }
  inflight_.erase(key);
  flight->done = true;
  flight->cv.notify_all();
  return compiled;
}

JitCache::Stats JitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t JitCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void JitCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  failures_.clear();
  compiler_unavailable_ = false;
  compiler_unavailable_status_ = Status::Ok();
}

JitCache& GlobalJitCache() {
  // Function-local static reference; never destroyed (see style guide on
  // static storage duration objects).
  static JitCache& cache = *new JitCache();
  // Expose residency as a gauge. Registered here (not in fts_obs) so the
  // metrics layer keeps no dependency on the JIT layer; the callback runs
  // at exposition time under the cache mutex only, never re-entering the
  // registry.
  static const bool gauge_registered = [] {
    obs::MetricsRegistry::Global().RegisterGauge(
        "fts_jit_cache_entries",
        "Resident compiled modules in the global JIT cache.",
        [] { return static_cast<uint64_t>(GlobalJitCache().size()); });
    return true;
  }();
  (void)gauge_registered;
  return cache;
}

}  // namespace fts
