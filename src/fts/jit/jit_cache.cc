#include "fts/jit/jit_cache.h"

namespace fts {

JitCache::JitCache(JitCompilerOptions options)
    : compiler_(std::move(options)) {}

StatusOr<JitCache::Entry> JitCache::GetOrCompile(
    const JitScanSignature& signature) {
  const std::string key = signature.CacheKey();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Generate + compile outside the lock; a racing duplicate compile is
  // harmless (last one wins, both modules are valid).
  FTS_ASSIGN_OR_RETURN(const std::string source,
                       GenerateFusedScanSource(signature));
  FTS_ASSIGN_OR_RETURN(std::shared_ptr<JitModule> module,
                       compiler_.Compile(source, kJitScanSymbol));
  Entry entry;
  entry.module = std::move(module);
  entry.fn = reinterpret_cast<JitScanFn>(entry.module->symbol_address());

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  stats_.total_compile_millis += entry.module->compile_millis();
  entries_[key] = entry;
  return entry;
}

JitCache::Stats JitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void JitCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

JitCache& GlobalJitCache() {
  // Function-local static reference; never destroyed (see style guide on
  // static storage duration objects).
  static JitCache& cache = *new JitCache();
  return cache;
}

}  // namespace fts
